// Revocation: the publisher excludes a client that stopped paying.
// The admission registry refuses its new subscriptions (with an error
// matching scbr.ErrRevoked even across the wire) and the payload
// group key rotates, so publications after the revocation are opaque
// to it even though the router still forwards the encrypted bytes —
// the paper's requirement that producers can "exclude clients that
// stop paying their fees" (§3.1) combined with the group-key scheme of
// §3.4.
//
// Run with:
//
//	go run ./examples/revocation
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"scbr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, "revocation-demo")
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("revocation router image"), signer.Public())
	if err != nil {
		return err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(ctx, routerLn)
	}()
	defer func() {
		router.Close()
		wg.Wait()
	}()

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return err
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	if err := publisher.ConnectRouter(ctx, rc); err != nil {
		return err
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pubLn.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(ctx, c)
			}()
		}
	}()

	attach := func(id string) (*scbr.Client, *scbr.Subscription, error) {
		c, err := scbr.NewClient(id)
		if err != nil {
			return nil, nil, err
		}
		pc, err := net.Dial("tcp", pubLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		c.ConnectPublisher(pc, publisher.PublicKey())
		lc, err := net.Dial("tcp", routerLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		if err := c.Attach(ctx, lc); err != nil {
			return nil, nil, err
		}
		spec, err := scbr.ParseSpec("symbol = HAL")
		if err != nil {
			return nil, nil, err
		}
		sub, err := c.Subscribe(ctx, spec)
		if err != nil {
			return nil, nil, err
		}
		return c, sub, nil
	}

	alice, aliceSub, err := attach("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, bobSub, err := attach("bob")
	if err != nil {
		return err
	}
	defer bob.Close()
	fmt.Printf("alice and bob subscribed (group key epoch %d)\n", publisher.GroupEpoch())

	publish := func(note string) error {
		header := scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str("HAL")},
			{Name: "price", Value: scbr.Float(44)},
		}}
		return publisher.Publish(ctx, header, []byte(note))
	}
	report := func(name string, sub *scbr.Subscription) {
		waitCtx, waitCancel := context.WithTimeout(ctx, 5*time.Second)
		defer waitCancel()
		d, err := sub.Next(waitCtx)
		if err != nil {
			fmt.Printf("  %-5s timed out (%v)\n", name, err)
			return
		}
		if d.Err != nil {
			fmt.Printf("  %-5s ✗ cannot read payload: %v\n", name, d.Err)
		} else {
			fmt.Printf("  %-5s ✓ %s (epoch %d)\n", name, d.Payload, d.Epoch)
		}
	}

	fmt.Println("publishing before revocation:")
	if err := publish("quarterly results leak at 44"); err != nil {
		return err
	}
	report("alice", aliceSub)
	report("bob", bobSub)

	fmt.Println("revoking bob (stopped paying)…")
	if err := publisher.Revoke("bob"); err != nil {
		return err
	}
	fmt.Printf("group key rotated to epoch %d\n", publisher.GroupEpoch())

	fmt.Println("publishing after revocation:")
	if err := publish("merger announcement at 44"); err != nil {
		return err
	}
	report("alice", aliceSub)
	report("bob", bobSub)

	fmt.Println("bob attempts a new subscription:")
	spec, err := scbr.ParseSpec("symbol = IBM")
	if err != nil {
		return err
	}
	if _, err := bob.Subscribe(ctx, spec); errors.Is(err, scbr.ErrRevoked) {
		fmt.Printf("  refused as expected (errors.Is(err, scbr.ErrRevoked)): %v\n", err)
	} else if err != nil {
		return fmt.Errorf("refusal lost its error class: %w", err)
	} else {
		return fmt.Errorf("revoked client was re-admitted")
	}
	return nil
}
