// Revocation: the publisher excludes a client that stopped paying.
// The admission registry refuses its new subscriptions and the payload
// group key rotates, so publications after the revocation are opaque
// to it even though the router still forwards the encrypted bytes —
// the paper's requirement that producers can "exclude clients that
// stop paying their fees" (§3.1) combined with the group-key scheme of
// §3.4.
//
// Run with:
//
//	go run ./examples/revocation
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"scbr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, "revocation-demo")
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	router, err := scbr.NewRouter(dev, quoter, scbr.RouterConfig{
		EnclaveImage:  []byte("revocation router image"),
		EnclaveSigner: signer.Public(),
	})
	if err != nil {
		return err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(routerLn)
	}()
	defer func() {
		router.Close()
		wg.Wait()
	}()

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return err
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	if err := publisher.ConnectRouter(rc); err != nil {
		return err
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pubLn.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(c)
			}()
		}
	}()

	attach := func(id string) (*scbr.Client, <-chan scbr.Delivery, error) {
		c, err := scbr.NewClient(id)
		if err != nil {
			return nil, nil, err
		}
		pc, err := net.Dial("tcp", pubLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		c.ConnectPublisher(pc, publisher.PublicKey())
		lc, err := net.Dial("tcp", routerLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		ch, err := c.Listen(lc)
		if err != nil {
			return nil, nil, err
		}
		spec, err := scbr.ParseSpec("symbol = HAL")
		if err != nil {
			return nil, nil, err
		}
		if _, err := c.Subscribe(spec); err != nil {
			return nil, nil, err
		}
		return c, ch, nil
	}

	alice, aliceRx, err := attach("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, bobRx, err := attach("bob")
	if err != nil {
		return err
	}
	defer bob.Close()
	fmt.Printf("alice and bob subscribed (group key epoch %d)\n", publisher.GroupEpoch())

	publish := func(note string) error {
		header := scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str("HAL")},
			{Name: "price", Value: scbr.Float(44)},
		}}
		return publisher.Publish(header, []byte(note))
	}
	report := func(name string, rx <-chan scbr.Delivery) {
		select {
		case d := <-rx:
			if d.Err != nil {
				fmt.Printf("  %-5s ✗ cannot read payload: %v\n", name, d.Err)
			} else {
				fmt.Printf("  %-5s ✓ %s (epoch %d)\n", name, d.Payload, d.Epoch)
			}
		case <-time.After(5 * time.Second):
			fmt.Printf("  %-5s timed out\n", name)
		}
	}

	fmt.Println("publishing before revocation:")
	if err := publish("quarterly results leak at 44"); err != nil {
		return err
	}
	report("alice", aliceRx)
	report("bob", bobRx)

	fmt.Println("revoking bob (stopped paying)…")
	if err := publisher.Revoke("bob"); err != nil {
		return err
	}
	fmt.Printf("group key rotated to epoch %d\n", publisher.GroupEpoch())

	fmt.Println("publishing after revocation:")
	if err := publish("merger announcement at 44"); err != nil {
		return err
	}
	report("alice", aliceRx)
	report("bob", bobRx)

	fmt.Println("bob attempts a new subscription:")
	spec, err := scbr.ParseSpec("symbol = IBM")
	if err != nil {
		return err
	}
	if _, err := bob.Subscribe(spec); err != nil {
		fmt.Printf("  refused as expected: %v\n", err)
	} else {
		return fmt.Errorf("revoked client was re-admitted")
	}
	return nil
}
