// Multitenant: two competing service providers (two stock exchanges)
// share the same untrusted infrastructure machine. Each gets its own
// enclave with its own symmetric key, so neither the infrastructure
// nor the other tenant can read the other's subscriptions or
// publications — the isolation argument of §3.1 ("restrict the
// ability to see their subscriptions to a single publisher, and not
// other data providers that leverage the same software and
// infrastructure").
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"scbr"
)

type tenant struct {
	name      string
	router    *scbr.Router
	publisher *scbr.Publisher
	routerLn  net.Listener
	pubLn     net.Listener
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One physical machine (one device, one quoting identity), shared
	// by both tenants — the multi-tenant cloud of the paper. The EPC
	// budget is split between the enclaves.
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, "shared-cloud-host")
	if err != nil {
		return err
	}
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())

	var wg sync.WaitGroup
	defer wg.Wait()
	startTenant := func(name string) (*tenant, error) {
		signer, err := scbr.NewKeyPair(nil)
		if err != nil {
			return nil, err
		}
		router, err := scbr.NewRouter(dev, quoter, []byte("router image for "+name), signer.Public(),
			scbr.WithEPC(scbr.DefaultEPCBytes/2))
		if err != nil {
			return nil, err
		}
		routerLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = router.Serve(ctx, routerLn)
		}()
		publisher, err := scbr.NewPublisher(ias, router.Identity())
		if err != nil {
			return nil, err
		}
		conn, err := net.Dial("tcp", routerLn.Addr().String())
		if err != nil {
			return nil, err
		}
		if err := publisher.ConnectRouter(ctx, conn); err != nil {
			return nil, err
		}
		pubLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := pubLn.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer c.Close()
					publisher.ServeClient(ctx, c)
				}()
			}
		}()
		fmt.Printf("%s: enclave attested on shared host, SK provisioned\n", name)
		return &tenant{name: name, router: router, publisher: publisher, routerLn: routerLn, pubLn: pubLn}, nil
	}

	nyse, err := startTenant("NYSE")
	if err != nil {
		return err
	}
	defer nyse.close()
	lse, err := startTenant("LSE")
	if err != nil {
		return err
	}
	defer lse.close()

	// One client per tenant, same filter on both.
	attach := func(tn *tenant, clientID string) (*scbr.Client, *scbr.Subscription, error) {
		c, err := scbr.NewClient(clientID)
		if err != nil {
			return nil, nil, err
		}
		pc, err := net.Dial("tcp", tn.pubLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		c.ConnectPublisher(pc, tn.publisher.PublicKey())
		rc, err := net.Dial("tcp", tn.routerLn.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		if err := c.Attach(ctx, rc); err != nil {
			return nil, nil, err
		}
		spec, err := scbr.ParseSpec("symbol = ACME, price < 100")
		if err != nil {
			return nil, nil, err
		}
		sub, err := c.Subscribe(ctx, spec)
		if err != nil {
			return nil, nil, err
		}
		return c, sub, nil
	}
	nyseClient, nyseSub, err := attach(nyse, "nyse-customer")
	if err != nil {
		return err
	}
	defer nyseClient.Close()
	lseClient, lseSub, err := attach(lse, "lse-customer")
	if err != nil {
		return err
	}
	defer lseClient.Close()

	// Each exchange publishes a matching quote with its own payload.
	header := scbr.EventSpec{Attrs: []scbr.NamedValue{
		{Name: "symbol", Value: scbr.Str("ACME")},
		{Name: "price", Value: scbr.Float(95)},
	}}
	if err := nyse.publisher.Publish(ctx, header, []byte("NYSE: ACME 95.00")); err != nil {
		return err
	}
	if err := lse.publisher.Publish(ctx, header, []byte("LSE: ACME 74.50 GBP")); err != nil {
		return err
	}

	got := func(name string, sub *scbr.Subscription) error {
		waitCtx, waitCancel := context.WithTimeout(ctx, 5*time.Second)
		defer waitCancel()
		d, err := sub.Next(waitCtx)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if d.Err != nil {
			return d.Err
		}
		fmt.Printf("%s received: %s\n", name, d.Payload)
		return nil
	}
	if err := got("nyse-customer", nyseSub); err != nil {
		return err
	}
	if err := got("lse-customer", lseSub); err != nil {
		return err
	}

	// Isolation: no cross-tenant deliveries are pending on either
	// handle — both Next calls must time out empty.
	for name, sub := range map[string]*scbr.Subscription{"NYSE": nyseSub, "LSE": lseSub} {
		quiet, quietCancel := context.WithTimeout(ctx, 300*time.Millisecond)
		d, err := sub.Next(quiet)
		quietCancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("isolation violated: %s client got %q (err %v)", name, d.Payload, err)
		}
	}
	a, b := nyse.router.Identity(), lse.router.Identity()
	fmt.Printf("tenant enclaves are distinct: %x… vs %x…\n", a.MRENCLAVE[:6], b.MRENCLAVE[:6])
	fmt.Println("isolation holds: each client only sees its own provider's stream")
	return nil
}

func (t *tenant) close() {
	_ = t.pubLn.Close()
	t.router.Close()
}
