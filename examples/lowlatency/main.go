// Lowlatency: publication delivery into the enclave with and without
// the switchless ring (the paper's §6 "message exchanges at the
// enclave border").
//
// The classic router pays one EENTER/EEXIT round trip (~2 µs on the
// paper's hardware) per publication. With RouterConfig.Switchless the
// router's enclave worker enters once and consumes ciphertext from an
// untrusted-memory ring, so a burst of quotes costs zero per-message
// transitions. This example runs the same burst through both
// configurations and prints the enclave transition counts and
// simulated enclave time per publication.
//
// Run with:
//
//	go run ./examples/lowlatency
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"scbr"
)

const burst = 2000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// stack is one complete deployment: device, router, publisher, one
// subscribed client.
type stack struct {
	router     *scbr.Router
	publisher  *scbr.Publisher
	deliveries <-chan scbr.Delivery
	close      func()
}

func deploy(name string, switchless bool) (*stack, error) {
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return nil, err
	}
	quoter, err := scbr.NewQuoter(dev, name+"-platform")
	if err != nil {
		return nil, err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return nil, err
	}
	router, err := scbr.NewRouter(dev, quoter, scbr.RouterConfig{
		EnclaveImage:  []byte(name + " router image"),
		EnclaveSigner: signer.Public(),
		Switchless:    switchless,
	})
	if err != nil {
		return nil, err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(routerLn)
	}()

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return nil, err
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return nil, err
	}
	if err := publisher.ConnectRouter(rc); err != nil {
		return nil, fmt.Errorf("attestation failed: %w", err)
	}

	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(c)
			}()
		}
	}()

	client, err := scbr.NewClient(name + "-trader")
	if err != nil {
		return nil, err
	}
	pc, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		return nil, err
	}
	client.ConnectPublisher(pc, publisher.PublicKey())
	lc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return nil, err
	}
	deliveries, err := client.Listen(lc)
	if err != nil {
		return nil, err
	}
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		return nil, err
	}
	if _, err := client.Subscribe(spec); err != nil {
		return nil, err
	}
	return &stack{
		router:     router,
		publisher:  publisher,
		deliveries: deliveries,
		close: func() {
			client.Close()
			_ = pubLn.Close()
			router.Close()
			wg.Wait()
		},
	}, nil
}

// runBurst publishes the burst and waits for all deliveries, returning
// the enclave-transition and simulated-cycle deltas.
func runBurst(s *stack) (transitions, cycles uint64, wall time.Duration, err error) {
	before := s.router.MeterSnapshot()
	start := time.Now()
	for i := 0; i < burst; i++ {
		header := scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str("HAL")},
			{Name: "price", Value: scbr.Float(40 + float64(i%10))},
			{Name: "volume", Value: scbr.Int(int64(1000 + i))},
		}}
		if err := s.publisher.Publish(header, []byte(fmt.Sprintf("tick %d", i))); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < burst; i++ {
		d := <-s.deliveries
		if d.Err != nil {
			return 0, 0, 0, d.Err
		}
	}
	wall = time.Since(start)
	delta := s.router.MeterSnapshot().Sub(before)
	return delta.Transitions, delta.Cycles, wall, nil
}

func run() error {
	cost := scbr.DefaultCostModel()
	fmt.Printf("publishing a burst of %d encrypted quotes through each router\n\n", burst)
	fmt.Println("  mode         transitions   enclave simµs/pub   wall time")
	for _, mode := range []struct {
		name       string
		switchless bool
	}{
		{"per-ecall", false},
		{"switchless", true},
	} {
		s, err := deploy(mode.name, mode.switchless)
		if err != nil {
			return fmt.Errorf("%s deployment: %w", mode.name, err)
		}
		transitions, cycles, wall, err := runBurst(s)
		s.close()
		if err != nil {
			return fmt.Errorf("%s burst: %w", mode.name, err)
		}
		fmt.Printf("  %-12s %11d %19.2f %11s\n",
			mode.name, transitions, cost.Micros(cycles)/burst, wall.Round(time.Millisecond))
	}
	fmt.Println("\ndone: the ring replaces per-publication EENTER/EEXIT with two atomic ops")
	return nil
}
