// Lowlatency: publication delivery into the enclave with and without
// the switchless ring (the paper's §6 "message exchanges at the
// enclave border"), and with batching on top.
//
// The classic router pays one EENTER/EEXIT round trip (~2 µs on the
// paper's hardware) per publication. With WithSwitchless the router's
// enclave worker enters once and consumes ciphertext from an
// untrusted-memory ring, so a burst of quotes costs zero per-message
// transitions. PublishBatch amortises further: a whole batch is one
// wire round trip and one enclave crossing even on the per-ecall
// path. This example runs the same burst through three configurations
// and prints the enclave transition counts and simulated enclave time
// per publication.
//
// Run with:
//
//	go run ./examples/lowlatency
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"scbr"
)

const (
	burst     = 2000
	batchSize = 100
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// stack is one complete deployment: device, router, publisher, one
// subscribed client.
type stack struct {
	router    *scbr.Router
	publisher *scbr.Publisher
	sub       *scbr.Subscription
	close     func()
}

func deploy(ctx context.Context, name string, opts ...scbr.Option) (*stack, error) {
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return nil, err
	}
	quoter, err := scbr.NewQuoter(dev, name+"-platform")
	if err != nil {
		return nil, err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return nil, err
	}
	// The bursts below publish everything before the subscriber drains
	// a single delivery, so size the per-client delivery queue for a
	// whole burst — the router's slow-consumer policy would otherwise
	// disconnect the (deliberately lazy) subscriber mid-burst.
	opts = append(opts, scbr.WithDeliveryQueue(burst))
	router, err := scbr.NewRouter(dev, quoter, []byte(name+" router image"), signer.Public(), opts...)
	if err != nil {
		return nil, err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(ctx, routerLn)
	}()

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return nil, err
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return nil, err
	}
	if err := publisher.ConnectRouter(ctx, rc); err != nil {
		return nil, fmt.Errorf("attestation failed: %w", err)
	}

	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(ctx, c)
			}()
		}
	}()

	client, err := scbr.NewClient(name + "-trader")
	if err != nil {
		return nil, err
	}
	pc, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		return nil, err
	}
	client.ConnectPublisher(pc, publisher.PublicKey())
	lc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return nil, err
	}
	if err := client.Attach(ctx, lc); err != nil {
		return nil, err
	}
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		return nil, err
	}
	sub, err := client.Subscribe(ctx, spec)
	if err != nil {
		return nil, err
	}
	return &stack{
		router:    router,
		publisher: publisher,
		sub:       sub,
		close: func() {
			client.Close()
			_ = pubLn.Close()
			router.Close()
			wg.Wait()
		},
	}, nil
}

func tick(i int) scbr.Event {
	return scbr.Event{
		Header: scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str("HAL")},
			{Name: "price", Value: scbr.Float(40 + float64(i%10))},
			{Name: "volume", Value: scbr.Int(int64(1000 + i))},
		}},
		Payload: []byte(fmt.Sprintf("tick %d", i)),
	}
}

// runBurst publishes the burst (optionally batched) and waits for all
// deliveries, returning the enclave-transition and simulated-cycle
// deltas.
func runBurst(ctx context.Context, s *stack, batch int) (transitions, cycles uint64, wall time.Duration, err error) {
	before := s.router.MeterSnapshot()
	start := time.Now()
	if batch <= 1 {
		for i := 0; i < burst; i++ {
			ev := tick(i)
			if err := s.publisher.Publish(ctx, ev.Header, ev.Payload); err != nil {
				return 0, 0, 0, err
			}
		}
	} else {
		for i := 0; i < burst; i += batch {
			events := make([]scbr.Event, 0, batch)
			for j := i; j < i+batch && j < burst; j++ {
				events = append(events, tick(j))
			}
			if err := s.publisher.PublishBatch(ctx, events); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	for i := 0; i < burst; i++ {
		d, err := s.sub.Next(ctx)
		if err != nil {
			return 0, 0, 0, err
		}
		if d.Err != nil {
			return 0, 0, 0, d.Err
		}
	}
	wall = time.Since(start)
	delta := s.router.MeterSnapshot().Sub(before)
	return delta.Transitions, delta.Cycles, wall, nil
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cost := scbr.DefaultCostModel()
	fmt.Printf("publishing a burst of %d encrypted quotes through each router\n\n", burst)
	fmt.Println("  mode            transitions   enclave simµs/pub   wall time")
	for _, mode := range []struct {
		name  string
		batch int
		opts  []scbr.Option
	}{
		{"per-ecall", 1, nil},
		{"batched", batchSize, nil},
		{"switchless", 1, []scbr.Option{scbr.WithSwitchless()}},
	} {
		s, err := deploy(ctx, mode.name, mode.opts...)
		if err != nil {
			return fmt.Errorf("%s deployment: %w", mode.name, err)
		}
		transitions, cycles, wall, err := runBurst(ctx, s, mode.batch)
		s.close()
		if err != nil {
			return fmt.Errorf("%s burst: %w", mode.name, err)
		}
		fmt.Printf("  %-15s %11d %19.2f %11s\n",
			mode.name, transitions, cost.Micros(cycles)/burst, wall.Round(time.Millisecond))
	}
	fmt.Println("\ndone: batching amortises the ecall, the ring eliminates it")
	return nil
}
