// Edge: a federated 3-router chain — the overlay deployment the
// paper's content-based routing is built for. Three SCBR routers
// (think: three edge sites) peer over mutually attested links,
// exchange containment-compacted subscription digests, and forward
// publications hop by hop only toward routers with matching
// downstream subscribers:
//
//	publisher → [router-0] ⇄ [router-1] ⇄ [router-2] → subscriber
//
// The demo shows the two federation guarantees:
//
//   - a publication entering router-0 reaches the subscriber on
//     router-2 exactly once, crossing both hops, and
//   - a publication nothing downstream subscribes to is withheld at
//     router-0 — the digest says no interest lies that way, so the
//     ciphertext never leaves the first site.
//
// Run with:
//
//	go run ./examples/edge
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"scbr"
	"scbr/internal/broker"
	"scbr/internal/deploy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- Three edge sites: one device + enclave-backed router each,
	// peered into a chain. The topology helper shares one measured
	// image and registers every platform with one attestation service,
	// so the routers mutually attest before any digest or publication
	// crosses a link.
	topo, err := deploy.NewTopology(ctx, deploy.TopologySpec{
		Routers: 3,
		Links:   [][2]int{{0, 1}, {1, 2}},
	})
	if err != nil {
		return err
	}
	defer topo.Close()
	fmt.Println("overlay up: router-0 ⇄ router-1 ⇄ router-2 (attested links)")

	// --- The service provider attests and provisions every router
	// (the overlay shares one SK); its own feed enters at router-0.
	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		return err
	}

	// --- A subscriber at the far edge: homed on router-2, interested
	// in EDGE quotes under 100.
	alerts, err := broker.NewClient("edge-alerts")
	if err != nil {
		return err
	}
	defer alerts.Close()
	if err := topo.ConnectClient(ctx, pub, alerts, 2); err != nil {
		return err
	}
	spec, err := scbr.ParseSpec(`symbol = "EDGE", price < 100`)
	if err != nil {
		return err
	}
	sub, err := alerts.Subscribe(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("subscribed on router-2: %s\n", spec)

	// The interest travels upstream as digest updates: router-1 learns
	// it from router-2 and re-announces it to router-0.
	if err := topo.WaitRemoteEntries(0, 1, 10*time.Second); err != nil {
		return err
	}
	fmt.Println("digest propagated: router-0 now knows a matching interest lies downstream")

	header := func(symbol string, price float64) scbr.EventSpec {
		return scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str(symbol)},
			{Name: "price", Value: scbr.Float(price)},
		}}
	}

	// --- A matching publication: enters router-0, crosses both hops,
	// delivered once on router-2.
	if err := pub.Publish(ctx, header("EDGE", 88), []byte("EDGE @ 88 — buy signal")); err != nil {
		return err
	}
	next, cancelNext := context.WithTimeout(ctx, 10*time.Second)
	d, err := sub.Next(next)
	cancelNext()
	if err != nil {
		return err
	}
	fmt.Printf("delivered across the chain: %q\n", d.Payload)

	// --- A publication with no downstream interest: withheld at the
	// first hop.
	if err := pub.Publish(ctx, header("CORE", 12), []byte("nobody wants this")); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for topo.Routers[0].FederationSnapshot().Withheld == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("router-0 never recorded the withheld publication")
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println("\nfederation counters per router (forwarded / withheld / received / suppressed):")
	for i, r := range topo.Routers {
		c := r.FederationSnapshot()
		fmt.Printf("  router-%d: peers=%d remote-digest=%d  fwd=%d withheld=%d recv=%d dup-suppressed=%d\n",
			i, c.Peers, c.RemoteEntries, c.Forwarded, c.Withheld, c.ReceivedForwards, c.SuppressedDuplicates)
	}
	fmt.Println("\nthe EDGE quote crossed exactly the hops with matching downstream subscriptions;")
	fmt.Println("the CORE quote never left router-0.")
	return nil
}
