// Bigindex: what happens when the subscription database outgrows the
// enclave page cache — and how the split-memory engine (the paper's §6
// "enclaved and external parts" future work) softens the cliff.
//
// The paper's Figure 8 shows in-enclave registration collapsing to
// ~18× the outside cost once the store exceeds the ~93 MB EPC, because
// every hardware paging event takes an asynchronous exit, a kernel
// crossing, and an EWB/ELD pair. This example registers the same
// subscription stream into three engines — outside, in-enclave with
// hardware paging, and in-enclave with user-level split memory — using
// a deliberately small 4 MB protected budget so the overflow happens
// in seconds, and prints the per-window cost ratios.
//
// Run with:
//
//	go run ./examples/bigindex
package main

import (
	"fmt"
	"log"

	"scbr"
)

const (
	budget    = 4 << 20 // protected-memory budget for both in-enclave engines
	totalSubs = 24_000  // ≈ 10 MB at the paper's ~437 B/subscription
	window    = 3_000   // subscriptions per reported row
	padRecord = 400     // reproduces the paper's record footprint
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	opts := []scbr.Option{scbr.WithEPC(budget), scbr.WithPadding(padRecord)}

	plain, err := scbr.NewPlainEngine(scbr.WithPadding(padRecord))
	if err != nil {
		return err
	}
	epcEngine, _, err := scbr.NewEnclaveEngine(dev, opts...)
	if err != nil {
		return err
	}
	// The split engine gets the same protected budget, but manages it
	// itself: cold pages are sealed to untrusted memory with AES-GCM
	// and version counters instead of being paged by the hardware.
	splitEngine, _, err := scbr.NewSplitEngine(dev, budget, opts...)
	if err != nil {
		return err
	}

	// The same Table 1 stock-quote workload the paper registers.
	qs, err := scbr.NewQuoteSet(1, 200, 500)
	if err != nil {
		return err
	}
	wl, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		return err
	}
	cost := scbr.DefaultCostModel()
	gens := make([]*scbr.WorkloadGenerator, 3)
	for i := range gens {
		// One generator per engine, same seed: identical streams.
		if gens[i], err = scbr.NewWorkloadGenerator(wl, qs, 42); err != nil {
			return err
		}
	}

	fmt.Printf("protected budget: %d MB, store will reach ≈%d MB\n\n",
		budget>>20, totalSubs*(padRecord+64)>>20)
	fmt.Println("  subs    DB MB   out µs/sub   EPC µs/sub   split µs/sub   EPC×   split×")

	engines := []*scbr.Engine{plain, epcEngine, splitEngine}
	for done := 0; done < totalSubs; done += window {
		var micros [3]float64
		for i, e := range engines {
			before := e.Accessor().Meter().C
			for j, spec := range gens[i].Subscriptions(window) {
				if _, err := e.Register(spec, uint32(done+j)); err != nil {
					return fmt.Errorf("registering subscription %d: %w", done+j, err)
				}
			}
			delta := e.Accessor().Meter().C.Sub(before)
			micros[i] = cost.Micros(delta.Cycles) / window
		}
		fmt.Printf("%7d %8.1f %12.2f %12.2f %14.2f %6.1f %8.1f\n",
			done+window,
			float64(splitEngine.Accessor().Size())/(1<<20),
			micros[0], micros[1], micros[2],
			micros[1]/micros[0], micros[2]/micros[0])
	}

	// Past the budget the hardware-paged engine faults on nearly every
	// record touch; the split engine unseals at user level instead.
	epcCounters := epcEngine.Accessor().Meter().C
	splitCounters := splitEngine.Accessor().Meter().C
	fmt.Printf("\nhardware EPC faults: %d (≈%.1f µs each)\n",
		epcCounters.PageFaults, cost.Micros(cost.PageFaultCycles))
	fmt.Printf("split user faults:   %d unseals, %d dirty seals (≈%.1f µs per crypto pass)\n",
		splitCounters.UserFaults, splitCounters.UserWritebacks,
		cost.Micros(cost.SealFixedCycles+uint64(cost.AESByteCycles*4096)))

	// Both engines still match correctly, of course.
	pub := gens[0].Publications(1)[0]
	for name, e := range map[string]*scbr.Engine{"EPC": epcEngine, "split": splitEngine} {
		interned, err := pub.Intern(e.Schema())
		if err != nil {
			return err
		}
		matches, err := e.Match(interned)
		if err != nil {
			return err
		}
		fmt.Printf("%s engine: sample publication matches %d subscriptions\n", name, len(matches))
	}
	fmt.Println("\ndone: split memory turns the paging cliff into a slope (see EXPERIMENTS.md)")
	return nil
}
