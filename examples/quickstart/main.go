// Quickstart: a complete SCBR deployment in one process — enclave
// launch, remote attestation, key provisioning, encrypted
// subscription, encrypted publication, and delivery — using the public
// scbr API over loopback TCP.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"scbr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Infrastructure provider: an SGX machine running the router.
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, "quickstart-platform")
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	router, err := scbr.NewRouter(dev, quoter, scbr.RouterConfig{
		EnclaveImage:  []byte("quickstart router image"),
		EnclaveSigner: signer.Public(),
	})
	if err != nil {
		return err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(routerLn)
	}()
	defer func() {
		router.Close()
		wg.Wait()
	}()
	identity := router.Identity()
	fmt.Printf("router enclave launched (MRENCLAVE %x…)\n", identity.MRENCLAVE[:6])

	// --- Service provider: attest the enclave, provision SK.
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return err
	}
	routerConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	if err := publisher.ConnectRouter(routerConn); err != nil {
		return fmt.Errorf("attestation failed: %w", err)
	}
	fmt.Println("enclave attested; symmetric key SK provisioned")

	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pubLn.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(c)
			}()
		}
	}()

	// --- Client: subscribe to the paper's example filter.
	client, err := scbr.NewClient("alice")
	if err != nil {
		return err
	}
	defer client.Close()
	pubConn, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		return err
	}
	client.ConnectPublisher(pubConn, publisher.PublicKey())
	listenConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	deliveries, err := client.Listen(listenConn)
	if err != nil {
		return err
	}

	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		return err
	}
	subID, err := client.Subscribe(spec)
	if err != nil {
		return err
	}
	fmt.Printf("subscribed #%d: %s\n", subID, spec)

	// --- Publish three quotes; only the matching ones arrive.
	quotes := []struct {
		price float64
		note  string
	}{
		{49.10, "matches (below 50)"},
		{52.75, "filtered out (above 50)"},
		{47.02, "matches (below 50)"},
	}
	for _, q := range quotes {
		header := scbr.EventSpec{Attrs: []scbr.NamedValue{
			{Name: "symbol", Value: scbr.Str("HAL")},
			{Name: "price", Value: scbr.Float(q.price)},
			{Name: "volume", Value: scbr.Int(100_000)},
		}}
		payload := fmt.Sprintf("HAL trading at $%.2f", q.price)
		if err := publisher.Publish(header, []byte(payload)); err != nil {
			return err
		}
		fmt.Printf("published: price=%.2f (%s)\n", q.price, q.note)
	}

	for i := 0; i < 2; i++ {
		d := <-deliveries
		if d.Err != nil {
			return d.Err
		}
		fmt.Printf("alice received: %s\n", d.Payload)
	}
	fmt.Println("done: the router matched encrypted headers inside the enclave")
	return nil
}
