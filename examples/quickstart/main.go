// Quickstart: a complete SCBR deployment in one process — enclave
// launch, remote attestation, key provisioning, encrypted
// subscription, encrypted (batched) publication, and delivery — using
// the public v1 scbr API over loopback TCP: option-based
// constructors, context-aware calls, and a first-class Subscription
// handle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"scbr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- Infrastructure provider: an SGX machine running the router.
	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, "quickstart-platform")
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("quickstart router image"), signer.Public())
	if err != nil {
		return err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(ctx, routerLn)
	}()
	defer func() {
		router.Close()
		wg.Wait()
	}()
	identity := router.Identity()
	fmt.Printf("router enclave launched (MRENCLAVE %x…)\n", identity.MRENCLAVE[:6])

	// --- Service provider: attest the enclave, provision SK.
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		return err
	}
	routerConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	if err := publisher.ConnectRouter(ctx, routerConn); err != nil {
		return fmt.Errorf("attestation failed: %w", err)
	}
	fmt.Println("enclave attested; symmetric key SK provisioned")

	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pubLn.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(ctx, c)
			}()
		}
	}()

	// --- Client: subscribe to the paper's example filter.
	client, err := scbr.NewClient("alice")
	if err != nil {
		return err
	}
	defer client.Close()
	pubConn, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		return err
	}
	client.ConnectPublisher(pubConn, publisher.PublicKey())
	listenConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		return err
	}
	if err := client.Attach(ctx, listenConn); err != nil {
		return err
	}

	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		return err
	}
	sub, err := client.Subscribe(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("subscribed #%d: %s\n", sub.ID(), sub.Spec())

	// --- Publish three quotes as one batch (one router round trip,
	// one enclave crossing); only the matching ones arrive.
	quotes := []struct {
		price float64
		note  string
	}{
		{49.10, "matches (below 50)"},
		{52.75, "filtered out (above 50)"},
		{47.02, "matches (below 50)"},
	}
	batch := make([]scbr.Event, 0, len(quotes))
	for _, q := range quotes {
		batch = append(batch, scbr.Event{
			Header: scbr.EventSpec{Attrs: []scbr.NamedValue{
				{Name: "symbol", Value: scbr.Str("HAL")},
				{Name: "price", Value: scbr.Float(q.price)},
				{Name: "volume", Value: scbr.Int(100_000)},
			}},
			Payload: []byte(fmt.Sprintf("HAL trading at $%.2f", q.price)),
		})
		fmt.Printf("publishing: price=%.2f (%s)\n", q.price, q.note)
	}
	if err := publisher.PublishBatch(ctx, batch); err != nil {
		return err
	}

	for i := 0; i < 2; i++ {
		d, err := sub.Next(ctx)
		if err != nil {
			return err
		}
		if d.Err != nil {
			return d.Err
		}
		fmt.Printf("alice received: %s\n", d.Payload)
	}
	fmt.Println("done: the router matched encrypted headers inside the enclave")
	return nil
}
