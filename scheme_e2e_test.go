package scbr_test

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"

	"scbr"
)

// schemeHarness is one full public-API deployment under a selected
// matching scheme: router served over loopback TCP, publisher attested
// and provisioned, client admission loop running.
type schemeHarness struct {
	router    *scbr.Router
	publisher *scbr.Publisher
	routerLn  net.Listener
	pubLn     net.Listener
}

func schemeOpts(schemeName string) []scbr.Option {
	opts := []scbr.Option{scbr.WithScheme(schemeName,
		scbr.WithSchemeAttrs("symbol", "price", "volume"),
		scbr.WithSchemeSeed(11),
		scbr.WithSchemeScale("price", 100))}
	return opts
}

func newSchemeHarness(t *testing.T, ctx context.Context, schemeName string) *schemeHarness {
	t.Helper()
	dev, err := scbr.NewDevice([]byte("scheme-e2e-" + schemeName))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "scheme-e2e-platform")
	if err != nil {
		t.Fatal(err)
	}
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := &schemeHarness{}
	h.router, err = scbr.NewRouter(dev, quoter, []byte("scheme e2e image"), signer.Public(),
		append(schemeOpts(schemeName), scbr.WithPartitions(2))...)
	if err != nil {
		t.Fatal(err)
	}
	h.routerLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = h.router.Serve(ctx, h.routerLn) }()
	t.Cleanup(h.router.Close)

	h.publisher, err = scbr.NewPublisher(ias, h.router.Identity(), schemeOpts(schemeName)...)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.publisher.ConnectRouter(ctx, rc); err != nil {
		t.Fatalf("attest+provision under %s: %v", schemeName, err)
	}
	h.pubLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.pubLn.Close() })
	go func() {
		for {
			conn, err := h.pubLn.Accept()
			if err != nil {
				return
			}
			go h.publisher.ServeClient(ctx, conn)
		}
	}()
	return h
}

func (h *schemeHarness) client(t *testing.T, ctx context.Context, id string) *scbr.Client {
	t.Helper()
	c, err := scbr.NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.Dial("tcp", h.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pc, h.publisher.PublicKey())
	rc, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(ctx, rc); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestSchemeEndToEnd runs the same publish/subscribe flow once per
// registered matching scheme through the public v1 surface — the
// paper's two approaches on the identical data plane. SCBR_SCHEME
// restricts the matrix to one scheme (CI sets it per job).
func TestSchemeEndToEnd(t *testing.T) {
	for _, schemeName := range scbr.Schemes() {
		if only := os.Getenv("SCBR_SCHEME"); only != "" && only != schemeName {
			continue
		}
		t.Run(schemeName, func(t *testing.T) {
			ctx := context.Background()
			h := newSchemeHarness(t, ctx, schemeName)
			if got := h.router.Scheme(); got != schemeName {
				t.Fatalf("router.Scheme() = %q, want %q", got, schemeName)
			}
			c := h.client(t, ctx, "alice")
			spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.Subscribe(ctx, spec)
			if err != nil {
				t.Fatalf("subscribe under %s: %v", schemeName, err)
			}
			miss := scbr.EventSpec{Attrs: []scbr.NamedValue{
				{Name: "symbol", Value: scbr.Str("IBM")},
				{Name: "price", Value: scbr.Float(42)},
			}}
			hit := scbr.EventSpec{Attrs: []scbr.NamedValue{
				{Name: "symbol", Value: scbr.Str("HAL")},
				{Name: "price", Value: scbr.Float(42)},
			}}
			if err := h.publisher.Publish(ctx, miss, []byte("wrong symbol")); err != nil {
				t.Fatal(err)
			}
			if err := h.publisher.PublishBatch(ctx, []scbr.Event{
				{Header: miss, Payload: []byte("still wrong")},
				{Header: hit, Payload: []byte("matched")},
			}); err != nil {
				t.Fatal(err)
			}
			d, err := sub.Next(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if string(d.Payload) != "matched" {
				t.Fatalf("payload = %q under %s", d.Payload, schemeName)
			}
		})
	}
}

// TestSchemeMismatchE2E is the cross-scheme rejection satellite at the
// public surface: a plain-scheme stack against an aspe router fails
// with the typed sentinel, matchable across the wire.
func TestSchemeMismatchE2E(t *testing.T) {
	ctx := context.Background()
	h := newSchemeHarness(t, ctx, scbr.SchemeASPE)

	// A default-scheme publisher cannot provision the aspe router.
	ias := scbr.NewAttestationService()
	plainPub, err := scbr.NewPublisher(ias, h.router.Identity())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = plainPub.ConnectRouter(ctx, conn)
	if !errors.Is(err, scbr.ErrSchemeMismatch) {
		t.Fatalf("plain publisher vs aspe router: err = %v, want scbr.ErrSchemeMismatch", err)
	}

	// A client that learned sgx-plain from a plain deployment cannot
	// bind its delivery channel to the aspe router.
	plainH := newSchemeHarness(t, ctx, scbr.SchemePlain)
	c, err := scbr.NewClient("drifter")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	pc, err := net.Dial("tcp", plainH.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pc, plainH.publisher.PublicKey())
	spec, err := scbr.ParseSpec(`symbol = "HAL"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(ctx, spec); err != nil {
		t.Fatal(err)
	}
	wrongRouter, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	err = c.Attach(ctx, wrongRouter)
	if !errors.Is(err, scbr.ErrSchemeMismatch) {
		t.Fatalf("plain client vs aspe router: err = %v, want scbr.ErrSchemeMismatch", err)
	}
}
