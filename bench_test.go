// Benchmarks regenerating the paper's evaluation. Every table and
// figure has a bench: Table 1 (workload generation), Figure 5
// (encryption/enclave overhead), Figure 6 (per-workload matching),
// Figure 7 (ASPE comparison + miss rates), and Figure 8 (EPC
// exhaustion). Simulated times from the calibrated cost model are
// reported as custom "sim-µs/op"-style metrics next to the real
// wall-clock numbers; EXPERIMENTS.md records the full-scale paper-vs-
// measured comparison produced by cmd/scbr-bench.
//
// Microbenchmarks for the substrates (engine, ASPE, crypto, EPC
// paging, LLC model, codecs) and the ablations follow: Bloom
// pre-filtering, forest sharding, and the paper's §6 future-work
// features (ecall batching, switchless delivery, split memory,
// cache-line alignment, horizontal partitioning).
package scbr_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"scbr"
	"scbr/internal/aspe"
	"scbr/internal/core"
	scbrdeploy "scbr/internal/deploy"
	"scbr/internal/exp"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/streamhub"
	"scbr/internal/workload"
)

// benchConfig keeps figure benches to seconds, not minutes; the full
// paper-scale runs live in cmd/scbr-bench.
func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.NumSymbols = 100
	cfg.PerSymbol = 250
	cfg.Sizes = []int{1_000, 10_000, 50_000}
	cfg.PubBatch = 200
	cfg.ASPEPubBudget = 500_000
	cfg.Fig8Subs = 30_000
	cfg.Fig8Step = 3_000
	cfg.EPCBytes = 8 << 20
	return cfg
}

// BenchmarkTable1Workloads measures dataset generation per workload
// and reports the realised equality mix.
func BenchmarkTable1Workloads(b *testing.B) {
	qs, err := workload.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range workload.Table1() {
		b.Run(spec.Name, func(b *testing.B) {
			gen, err := workload.NewGenerator(spec, qs, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = gen.Subscription()
			}
			b.StopTimer()
			mix := workload.AnalyzeSpecs(gen.Subscriptions(2000))
			b.ReportMetric(mix.AvgPreds, "preds/sub")
		})
	}
}

// BenchmarkFigure5 runs the four configurations of Figure 5 at a
// reduced scale and reports simulated matching time.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.InAES, "simµs/inAES")
		b.ReportMetric(last.OutAES, "simµs/outAES")
		b.ReportMetric(last.InPlain, "simµs/inPlain")
		b.ReportMetric(last.OutPlain, "simµs/outPlain")
	}
}

// BenchmarkFigure6 runs all nine workloads outside enclaves and
// reports each workload's simulated matching time at the largest size.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		for name, us := range last.Micros {
			b.ReportMetric(us, "simµs/"+name)
		}
	}
}

// BenchmarkFigure7 compares SCBR (in/out enclave) against ASPE per
// workload panel.
func BenchmarkFigure7(b *testing.B) {
	for _, name := range []string{"e100a1", "e80a1", "e80a4"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.Figure7(benchConfig(), name)
				if err != nil {
					b.Fatal(err)
				}
				last := rows[len(rows)-1]
				b.ReportMetric(last.OutASPE, "simµs/ASPE")
				b.ReportMetric(last.OutAES, "simµs/SCBR")
				b.ReportMetric(last.OutASPE/last.OutAES, "ASPE/SCBR")
				b.ReportMetric(last.MissRate*100, "miss%")
			}
		})
	}
}

// BenchmarkFigure8 runs the EPC-exhaustion registration experiment at
// a reduced scale and reports the final in/out ratios.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.TimeRatio, "time-ratio")
		b.ReportMetric(last.FaultRatio, "fault-ratio")
		b.ReportMetric(last.DBMB, "db-MB")
	}
}

// BenchmarkAblationSplitPaging reruns the Figure 8 sweep with the §6
// split-memory engine (user-level sealing instead of hardware EPC
// faults) and reports the final in/out ratios of both paths.
func BenchmarkAblationSplitPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationSplit(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.EPCRatio, "epc-ratio")
		b.ReportMetric(last.SplitRatio, "split-ratio")
		b.ReportMetric(last.DBMB, "db-MB")
	}
}

// BenchmarkAblationSwitchless compares publication delivery into the
// enclave: one ecall per message, batched ecalls, and the §6
// switchless ring (one transition total). It runs on a small (1 k)
// database where the 2 µs transition is a large share of the
// operation — the regime in which the paper's future-work remedies
// matter (at 100 k subscriptions matching is miss-bound and delivery
// cost vanishes; see EXPERIMENTS.md).
func BenchmarkAblationSwitchless(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{1_000}
	cfg.EPCBytes = exp.DefaultConfig().EPCBytes
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationSwitchless(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Micros, "simµs/"+r.Mode)
		}
	}
}

// BenchmarkAblationCacheAlign compares natural against 64B-aligned
// record layout (§6 "fitting into cache lines"), inside and outside
// the enclave. It keeps the default EPC so both runs are cache-bound
// rather than paging-bound — alignment is a cache-line optimisation;
// its interaction with paging pressure is the split ablation's story.
func BenchmarkAblationCacheAlign(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{20_000}
	cfg.EPCBytes = exp.DefaultConfig().EPCBytes
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationCacheAlign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			mode := "natural"
			if r.Aligned {
				mode = "aligned"
			}
			b.ReportMetric(r.OutMicros, "simµs/out-"+mode)
			b.ReportMetric(r.InMicros, "simµs/in-"+mode)
		}
	}
}

// BenchmarkAblationHorizontal validates the paper's closing claim that
// EPC exhaustion "can be overcome through horizontal scalability":
// the same store paged on one enclave vs partitioned across four.
func BenchmarkAblationHorizontal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationHorizontal(benchConfig(), []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MicrosPerSub, fmt.Sprintf("simµs/reg-k%d", r.Partitions))
			b.ReportMetric(float64(r.PageFaults), fmt.Sprintf("faults/k%d", r.Partitions))
		}
	}
}

// --- Substrate microbenchmarks (real wall-clock time). ---

func buildEngine(b *testing.B, n int, opts core.Options) (*core.Engine, []*pubsub.Event) {
	b.Helper()
	qs, err := workload.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, qs, 11)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), opts)
	if err != nil {
		b.Fatal(err)
	}
	for i, s := range gen.Subscriptions(n) {
		if _, err := engine.Register(s, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]*pubsub.Event, 0, 256)
	for _, p := range gen.Publications(256) {
		ev, err := p.Intern(engine.Schema())
		if err != nil {
			b.Fatal(err)
		}
		events = append(events, ev)
	}
	return engine, events
}

// BenchmarkEngineMatch measures real matching throughput at three
// database sizes.
func BenchmarkEngineMatch(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			engine, events := buildEngine(b, n, core.Options{})
			var out []core.MatchResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				out, err = engine.MatchAppend(events[i%len(events)], out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRegister measures real registration throughput.
func BenchmarkEngineRegister(b *testing.B) {
	qs, err := workload.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, qs, 13)
	if err != nil {
		b.Fatal(err)
	}
	subs := gen.Subscriptions(200_000)
	engine, err := core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Register(subs[i%len(subs)], uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharding compares the equality-value-sharded forest
// against the paper's single root-scanned forest (DESIGN.md §5).
func BenchmarkAblationSharding(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"sharded", core.Options{}},
		{"single-forest", core.Options{DisableSharding: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			engine, events := buildEngine(b, 20_000, tc.opts)
			meter := engine.Accessor().Meter()
			before := meter.C
			var out []core.MatchResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				out, err = engine.MatchAppend(events[i%len(events)], out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			delta := meter.C.Sub(before)
			b.ReportMetric(simmem.DefaultCost().Micros(delta.Cycles)/float64(b.N), "simµs/op")
		})
	}
}

// BenchmarkAblationBloomPrefilter isolates the DEBS'12 pre-filtering
// gain inside the ASPE baseline.
func BenchmarkAblationBloomPrefilter(b *testing.B) {
	qs, err := workload.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	wspec, err := workload.SpecByName("e100a1")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		prefilter bool
	}{
		{"prefilter", true},
		{"no-prefilter", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			schema := pubsub.NewSchema()
			ids := make([]pubsub.AttrID, 0, 11)
			for _, n := range []string{"symbol", "open", "high", "low", "close", "volume", "day", "month", "year", "adjclose", "change"} {
				id, err := schema.Intern(n)
				if err != nil {
					b.Fatal(err)
				}
				ids = append(ids, id)
			}
			scheme, err := aspe.NewScheme(schema, ids, 5)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := workload.NewGenerator(wspec, qs, 17)
			if err != nil {
				b.Fatal(err)
			}
			events := make([]*pubsub.Event, 0, 64)
			for _, p := range gen.Publications(64) {
				ev, err := p.Intern(schema)
				if err != nil {
					b.Fatal(err)
				}
				events = append(events, ev)
			}
			if err := scheme.CalibrateScales(events); err != nil {
				b.Fatal(err)
			}
			matcher := aspe.NewMatcher(scheme, simmem.NewPlainAccessor(simmem.DefaultCost()), aspe.Options{Prefilter: tc.prefilter})
			for _, s := range gen.Subscriptions(3_000) {
				sub, err := pubsub.Normalize(schema, s)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := matcher.Register(sub); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matcher.Match(events[i%len(events)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamHubScaling measures the simulated makespan advantage
// of partitioned matching.
func BenchmarkStreamHubScaling(b *testing.B) {
	qs, err := workload.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	wspec, err := workload.SpecByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			hub, err := streamhub.NewPlain(k, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			gen, err := workload.NewGenerator(wspec, qs, 19)
			if err != nil {
				b.Fatal(err)
			}
			for i, s := range gen.Subscriptions(20_000) {
				if _, err := hub.Register(s, uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			// Events intern through the hub's shared schema.
			events := make([]*pubsub.Event, 0, 64)
			for _, p := range gen.Publications(64) {
				ev, err := p.Intern(hub.Schema())
				if err != nil {
					b.Fatal(err)
				}
				events = append(events, ev)
			}
			var makespan uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := hub.Match(events[i%len(events)])
				if err != nil {
					b.Fatal(err)
				}
				makespan += stats.MakespanCycles
			}
			b.StopTimer()
			b.ReportMetric(simmem.DefaultCost().Micros(makespan)/float64(b.N), "simµs/op")
		})
	}
}

// BenchmarkAESEnvelope measures the real header encryption path.
func BenchmarkAESEnvelope(b *testing.B) {
	key, err := scrypto.NewSymmetricKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	header := make([]byte, 256)
	env, err := scrypto.Seal(key, header)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seal", func(b *testing.B) {
		b.SetBytes(int64(len(header)))
		for i := 0; i < b.N; i++ {
			if _, err := scrypto.Seal(key, header); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open", func(b *testing.B) {
		b.SetBytes(int64(len(header)))
		for i := 0; i < b.N; i++ {
			if _, err := scrypto.Open(key, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRSAHybrid measures the client→publisher subscription leg.
func BenchmarkRSAHybrid(b *testing.B) {
	kp, err := scrypto.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	sub := make([]byte, 200)
	ct, err := scrypto.EncryptPK(kp.Public(), sub)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scrypto.EncryptPK(kp.Public(), sub); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scrypto.DecryptPK(kp, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEPCPaging measures the real cost of the paging path
// (residency bookkeeping plus genuine AES-GCM page sealing).
func BenchmarkEPCPaging(b *testing.B) {
	dev, err := sgx.NewDevice([]byte("bench"), simmem.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	enclave, err := dev.Launch([]byte("bench image"), signer.Public(),
		sgx.EnclaveConfig{EPCBytes: 64 * simmem.PageSize})
	if err != nil {
		b.Fatal(err)
	}
	mem := enclave.Memory()
	// Allocate 4× the EPC so every strided read pages.
	offs := make([]uint64, 256)
	for i := range offs {
		off, err := mem.Alloc(simmem.PageSize)
		if err != nil {
			b.Fatal(err)
		}
		mem.Write(off, make([]byte, simmem.PageSize))
		offs[i] = off
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.Read(offs[rng.Intn(len(offs))], 64)
	}
	b.StopTimer()
	b.ReportMetric(float64(mem.PageFaults())/float64(b.N), "faults/op")
}

// BenchmarkLLCModel measures the simulator's own overhead per access.
func BenchmarkLLCModel(b *testing.B) {
	llc := simmem.NewDefaultLLC()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(64 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Touch(addrs[i%len(addrs)])
	}
}

// BenchmarkCodecs measures the wire encodings on the hot path.
func BenchmarkCodecs(b *testing.B) {
	spec := pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "open", Value: pubsub.Float(48.7)},
		{Name: "close", Value: pubsub.Float(49.1)},
		{Name: "volume", Value: pubsub.Int(1_000_000)},
	}}
	raw, err := pubsub.EncodeEventSpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pubsub.EncodeEventSpec(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pubsub.DecodeEventSpec(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndPublish measures a full in-process deployment over
// loopback TCP — encrypt, route through the enclave matcher slices,
// deliver, decrypt — at 1 and 4 partitions. Each iteration publishes
// one workload event into a filler database (matching work, no
// deliveries) plus one probe event, and waits for the probe's
// delivery, so the number is true publish→delivery latency with the
// data plane loaded. Beside wall-clock, it reports the simulated
// matching makespan (the slowest slice's cycles — the deployment
// latency when slices run on their own cores, as in the paper's
// StreamHub setting); wall-clock gains from the fan-out require as
// many real cores as slices, which CI runners rarely have.
func BenchmarkEndToEndPublish(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			benchEndToEndPublish(b, k, scbr.SchemePlain, 0)
		})
	}
	// ASPE variant: the identical single-partition deployment with the
	// software-only encrypted scheme on the data plane. Comparing its
	// simµs/op against partitions=1 above reproduces the paper's
	// headline plain-vs-ASPE matching gap (Figure 7) on the live
	// pipeline rather than the offline harness.
	b.Run("scheme=aspe", func(b *testing.B) {
		benchEndToEndPublish(b, 1, scbr.SchemeASPE, 0)
	})
	// Federated variant: the same probe round trip, but the publisher
	// and the probe subscriber sit on different routers of a 2-router
	// overlay, so every probe crosses an attested hop. Compare its
	// wall-clock and cross-hop simulated makespan against the
	// partitions=1 single-router baseline above to read the federation
	// overhead.
	b.Run("federated=2", benchFederatedPublish)
	// Batch variants: each iteration ships one PublishBatch of N load
	// events — one wire frame, one ring pass, one store pass per slice
	// — followed by the awaited probe publish. ns/op and simµs/op are
	// per *iteration* (N+1 events); ns/event divides by N+1. Per-event
	// cost and allocations should fall and simµs/op should grow
	// sub-linearly as N rises — the batch amortisation at work.
	for _, k := range []int{1, 4} {
		for _, n := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("partitions=%d/batch=%d", k, n), func(b *testing.B) {
				benchEndToEndPublish(b, k, scbr.SchemePlain, n)
			})
		}
	}
	for _, n := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("scheme=aspe/batch=%d", n), func(b *testing.B) {
			benchEndToEndPublish(b, 1, scbr.SchemeASPE, n)
		})
	}
}

// benchSchemeOptions parameterises the deployment's matching scheme:
// the ASPE universe spans the quote-corpus attributes plus the probe's
// "price".
func benchSchemeOptions(schemeName string) scbr.Option {
	return scbr.WithScheme(schemeName,
		scbr.WithSchemeAttrs(append(scbr.QuoteAttrs(1), "price")...),
		scbr.WithSchemeSeed(29),
		scbr.WithSchemeScale("price", 100),
		scbr.WithSchemeScale("volume", 10_000_000),
		scbr.WithSchemeScale("year", 3_000))
}

// benchEndToEndPublish runs the probe round trip at the given
// partition count and scheme. batch == 0 publishes per event (two
// Publish calls per iteration: load then probe); batch == N ≥ 1 ships
// one PublishBatch of N events per iteration with the probe as the
// batch's last event.
func benchEndToEndPublish(b *testing.B, partitions int, schemeName string, batch int) {
	ctx := context.Background()
	dev := mustDevice(b)
	quoter, err := scbr.NewQuoter(dev, "bench-platform")
	if err != nil {
		b.Fatal(err)
	}
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("bench router image"), signer.Public(),
		scbr.WithPartitions(partitions), benchSchemeOptions(schemeName))
	if err != nil {
		b.Fatal(err)
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = router.Serve(ctx, routerLn) }()
	b.Cleanup(router.Close)

	publisher, err := scbr.NewPublisher(ias, router.Identity(), benchSchemeOptions(schemeName))
	if err != nil {
		b.Fatal(err)
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := publisher.ConnectRouter(ctx, rc); err != nil {
		b.Fatal(err)
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = pubLn.Close() })
	go func() {
		for {
			conn, err := pubLn.Accept()
			if err != nil {
				return
			}
			go publisher.ServeClient(ctx, conn)
		}
	}()
	dialPub := func() net.Conn {
		conn, err := net.Dial("tcp", pubLn.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		return conn
	}

	// Filler database: workload subscriptions owned by a client that
	// never listens, so they load the matchers without producing
	// deliveries. Bulk-registered — the population's content is the
	// same as per-subscription Subscribe calls, without paying an RSA
	// round trip per subscription in benchmark setup.
	fillerKeys, err := scbr.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := publisher.Registry().Admit("filler", fillerKeys.Public()); err != nil {
		b.Fatal(err)
	}
	qs, err := scbr.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	wspec, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scbr.NewWorkloadGenerator(wspec, qs, 23)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := publisher.RegisterBulk(ctx, "filler", "", gen.Subscriptions(2000)); err != nil {
		b.Fatal(err)
	}
	events := gen.Publications(256)

	// Probe: the subscription whose delivery each iteration awaits.
	probe, err := scbr.NewClient("probe")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(probe.Close)
	probe.ConnectPublisher(dialPub(), publisher.PublicKey())
	routerConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := probe.Attach(ctx, routerConn); err != nil {
		b.Fatal(err)
	}
	// The probe constrains "price", an attribute quote-corpus events
	// never carry, so no load event can ever satisfy it: each
	// iteration produces exactly the one probe delivery it awaits.
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := probe.Subscribe(ctx, spec)
	if err != nil {
		b.Fatal(err)
	}
	header := pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "price", Value: pubsub.Float(42)},
	}}

	before := router.SliceMeterSnapshots()
	b.ReportAllocs()
	b.ResetTimer()
	if batch > 0 {
		// One batch of N load events, then the awaited probe on the
		// same connection — the event mixture per iteration (N loads +
		// 1 probe) is constant across N, so per-event metrics compare
		// cleanly between batch sizes and against the unbatched
		// variants above.
		evs := make([]scbr.Event, batch)
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				evs[j] = scbr.Event{Header: events[(i*batch+j)%len(events)], Payload: []byte("load")}
			}
			if err := publisher.PublishBatch(ctx, evs); err != nil {
				b.Fatal(err)
			}
			if err := publisher.Publish(ctx, header, []byte("probe")); err != nil {
				b.Fatal(err)
			}
			if _, err := sub.Next(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*(batch+1)), "ns/event")
	} else {
		for i := 0; i < b.N; i++ {
			if err := publisher.Publish(ctx, events[i%len(events)], []byte("load")); err != nil {
				b.Fatal(err)
			}
			if err := publisher.Publish(ctx, header, []byte("probe")); err != nil {
				b.Fatal(err)
			}
			if _, err := sub.Next(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}
	after := router.SliceMeterSnapshots()
	var makespan uint64
	for i := range after {
		if d := after[i].Cycles - before[i].Cycles; d > makespan {
			makespan = d
		}
	}
	b.ReportMetric(scbr.DefaultCostModel().Micros(makespan)/float64(b.N), "simµs/op")
}

// benchFederatedPublish is the 2-router loopback deployment: filler
// subscriptions and the publisher's feed enter router 0, the probe
// subscriber is homed on router 1, and each awaited delivery crosses
// the attested link. The reported simulated makespan is the slowest
// enclave slice across *both* routers — the cross-hop latency when
// every router runs on its own machine, as in a real overlay.
func benchFederatedPublish(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := scbrdeploy.NewTopology(ctx, scbrdeploy.TopologySpec{Routers: 2, Links: [][2]int{{0, 1}}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(topo.Close)
	publisher, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		b.Fatal(err)
	}

	// Filler database on the ingress router: matching work, no
	// deliveries, exactly as the single-router baseline.
	filler, err := scbr.NewClient("filler")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(filler.Close)
	fillerConn, pubSide := net.Pipe()
	go publisher.ServeClient(ctx, pubSide)
	filler.ConnectPublisher(fillerConn, publisher.PublicKey())
	filler.UseRouter(topo.IDs[0])
	qs, err := scbr.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	wspec, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scbr.NewWorkloadGenerator(wspec, qs, 23)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range gen.Subscriptions(2000) {
		if _, err := filler.Subscribe(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	events := gen.Publications(256)

	// Probe subscriber on the far router; its interest propagates to
	// router 0 as a digest entry before the timed loop starts.
	probe, err := scbr.NewClient("probe")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(probe.Close)
	if err := topo.ConnectClient(ctx, publisher, probe, 1); err != nil {
		b.Fatal(err)
	}
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := probe.Subscribe(ctx, spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	header := pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "price", Value: pubsub.Float(42)},
	}}

	before := make([][]simmem.Counters, len(topo.Routers))
	for i, r := range topo.Routers {
		before[i] = r.SliceMeterSnapshots()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := publisher.Publish(ctx, events[i%len(events)], []byte("load")); err != nil {
			b.Fatal(err)
		}
		if err := publisher.Publish(ctx, header, []byte("probe")); err != nil {
			b.Fatal(err)
		}
		if _, err := sub.Next(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var makespan uint64
	for i, r := range topo.Routers {
		after := r.SliceMeterSnapshots()
		for j := range after {
			if d := after[j].Cycles - before[i][j].Cycles; d > makespan {
				makespan = d
			}
		}
	}
	b.ReportMetric(scbr.DefaultCostModel().Micros(makespan)/float64(b.N), "simµs/op")
	fed := topo.Routers[0].FederationSnapshot()
	b.ReportMetric(float64(fed.Forwarded)/float64(b.N), "fwd/op")
}

func mustDevice(b *testing.B) *scbr.Device {
	b.Helper()
	dev, err := scbr.NewDevice([]byte("bench-device"))
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

// BenchmarkRepartitionPublish measures the data plane across online
// resizes. Each iteration is one Repartition cycle (2→4 slices, then
// back on the next iteration) with probe round trips flowing the whole
// time, so ns/op is resize wall time under load. The custom metrics
// are the availability story: p99-publish-ns is the 99th-percentile
// publish→delivery latency of the probes that ran while shards moved
// (the latency a live subscriber saw across the resize), and pause-ns
// the placement map's recorded flush-barrier hold — the window in
// which publications were actually fenced.
func BenchmarkRepartitionPublish(b *testing.B) {
	ctx := context.Background()
	dev := mustDevice(b)
	quoter, err := scbr.NewQuoter(dev, "bench-repartition-platform")
	if err != nil {
		b.Fatal(err)
	}
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("bench router image"), signer.Public(),
		scbr.WithPartitions(2))
	if err != nil {
		b.Fatal(err)
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = router.Serve(ctx, routerLn) }()
	b.Cleanup(router.Close)

	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		b.Fatal(err)
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := publisher.ConnectRouter(ctx, rc); err != nil {
		b.Fatal(err)
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = pubLn.Close() })
	go func() {
		for {
			conn, err := pubLn.Accept()
			if err != nil {
				return
			}
			go publisher.ServeClient(ctx, conn)
		}
	}()

	// Filler population: enough subscriptions that the moves carry
	// real freight, owned by a client that never listens.
	fillerKeys, err := scbr.NewKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := publisher.Registry().Admit("filler", fillerKeys.Public()); err != nil {
		b.Fatal(err)
	}
	qs, err := scbr.NewQuoteSet(1, 100, 250)
	if err != nil {
		b.Fatal(err)
	}
	wspec, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scbr.NewWorkloadGenerator(wspec, qs, 23)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := publisher.RegisterBulk(ctx, "filler", "", gen.Subscriptions(1000)); err != nil {
		b.Fatal(err)
	}

	probe, err := scbr.NewClient("probe")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(probe.Close)
	pubConn, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	probe.ConnectPublisher(pubConn, publisher.PublicKey())
	routerConn, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := probe.Attach(ctx, routerConn); err != nil {
		b.Fatal(err)
	}
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := probe.Subscribe(ctx, spec)
	if err != nil {
		b.Fatal(err)
	}
	header := pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "price", Value: pubsub.Float(42)},
	}}

	var lat []int64
	var maxPause int64
	targets := [2]int{4, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, 1)
		go func(k int) {
			_, err := router.Repartition(ctx, k)
			done <- err
		}(targets[i%2])
		for resizing := true; resizing; {
			select {
			case err := <-done:
				if err != nil {
					b.Fatal(err)
				}
				resizing = false
			default:
			}
			start := time.Now()
			if err := publisher.Publish(ctx, header, []byte("probe")); err != nil {
				b.Fatal(err)
			}
			if _, err := sub.Next(ctx); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(start).Nanoseconds())
		}
		if p := router.PlacementSnapshot().LastPauseNanos; p > maxPause {
			maxPause = p
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		idx := len(lat) * 99 / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		b.ReportMetric(float64(lat[idx]), "p99-publish-ns")
	}
	b.ReportMetric(float64(maxPause), "pause-ns")
}
