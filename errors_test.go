package scbr_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"scbr"
)

// TestSentinelRevokedAcrossWire: a revoked client's refusal is
// produced by the remote publisher, yet the client matches it with
// errors.Is — the error class travels on the wire.
func TestSentinelRevokedAcrossWire(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "err-revoked")
	bob := d.attach(ctx, "bob")
	if _, err := bob.Subscribe(ctx, halSpec(t)); err != nil {
		t.Fatal(err)
	}
	if err := d.publisher.Revoke("bob"); err != nil {
		t.Fatal(err)
	}
	_, err := bob.Subscribe(ctx, halSpec(t))
	if !errors.Is(err, scbr.ErrRevoked) {
		t.Fatalf("revoked subscribe = %v, want ErrRevoked", err)
	}
}

// TestSentinelUnknownAndNotOwner covers unsubscription failures.
func TestSentinelUnknownAndNotOwner(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "err-owner")
	alice := d.attach(ctx, "alice")
	mallory := d.attach(ctx, "mallory")
	sub, err := alice.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	// Mallory needs admission before ownership is even checked.
	if _, err := mallory.Subscribe(ctx, halSpec(t)); err != nil {
		t.Fatal(err)
	}
	if err := mallory.Unsubscribe(ctx, sub.ID()); !errors.Is(err, scbr.ErrNotOwner) {
		t.Fatalf("foreign unsubscribe = %v, want ErrNotOwner", err)
	}
	if err := alice.Unsubscribe(ctx, 99999); !errors.Is(err, scbr.ErrUnknownSubscription) {
		t.Fatalf("unknown unsubscribe = %v, want ErrUnknownSubscription", err)
	}
	// Double unsubscribe: the second attempt names a subscription the
	// publisher no longer holds.
	if err := sub.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(ctx); !errors.Is(err, scbr.ErrUnknownSubscription) {
		t.Fatalf("double unsubscribe = %v, want ErrUnknownSubscription", err)
	}
}

// TestSentinelNotProvisioned: publications and registrations against
// a router no publisher has attested fail with ErrNotProvisioned —
// locally and through a connected publisher's view of the wire.
func TestSentinelNotProvisioned(t *testing.T) {
	dev, err := scbr.NewDevice([]byte("err-unprov"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "unprov-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("unprov image"), signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.SealState(); !errors.Is(err, scbr.ErrNotProvisioned) {
		t.Fatalf("SealState = %v, want ErrNotProvisioned", err)
	}
}

// TestSentinelAttestationFailed: provisioning against the wrong
// pinned identity wraps both ErrAttestationFailed and the specific
// cause.
func TestSentinelAttestationFailed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dev, err := scbr.NewDevice([]byte("err-attest"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "attest-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("attest image"), signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = router.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		router.Close()
		<-done
	})
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	wrongID := router.Identity()
	wrongID.MRENCLAVE[0] ^= 1
	pub, err := scbr.NewPublisher(ias, wrongID)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = pub.ConnectRouter(ctx, conn)
	if !errors.Is(err, scbr.ErrAttestationFailed) {
		t.Fatalf("wrong identity = %v, want ErrAttestationFailed", err)
	}
	if !errors.Is(err, scbr.ErrWrongIdentity) {
		t.Fatalf("wrong identity = %v, want ErrWrongIdentity in the chain", err)
	}
}

// TestSentinelNotConnected: operations before the corresponding
// connections exist.
func TestSentinelNotConnected(t *testing.T) {
	ctx := context.Background()
	client, err := scbr.NewClient("loner")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Subscribe(ctx, halSpec(t)); !errors.Is(err, scbr.ErrNotConnected) {
		t.Fatalf("subscribe = %v, want ErrNotConnected", err)
	}
	if err := client.Unsubscribe(ctx, 1); !errors.Is(err, scbr.ErrNotConnected) {
		t.Fatalf("unsubscribe = %v, want ErrNotConnected", err)
	}
	ias := scbr.NewAttestationService()
	pub, err := scbr.NewPublisher(ias, scbr.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halQuote(42), []byte("x")); !errors.Is(err, scbr.ErrNotConnected) {
		t.Fatalf("publish = %v, want ErrNotConnected", err)
	}
	if err := pub.PublishBatch(ctx, []scbr.Event{{Header: halQuote(42)}}); !errors.Is(err, scbr.ErrNotConnected) {
		t.Fatalf("publish batch = %v, want ErrNotConnected", err)
	}
}

// TestSentinelClosed: a closed client refuses new work with ErrClosed.
func TestSentinelClosed(t *testing.T) {
	ctx := context.Background()
	client, err := scbr.NewClient("gone")
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Subscribe(ctx, halSpec(t)); !errors.Is(err, scbr.ErrClosed) {
		t.Fatalf("subscribe after close = %v, want ErrClosed", err)
	}
	if err := client.Unsubscribe(ctx, 1); !errors.Is(err, scbr.ErrClosed) {
		t.Fatalf("unsubscribe after close = %v, want ErrClosed", err)
	}
}
