package scbr_test

import (
	"fmt"
	"log"

	"scbr"
)

// ExampleParseSpec parses the paper's §3.2 example subscription.
func ExampleParseSpec() {
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spec)
	// Output: symbol = "HAL" ∧ price < 50
}

// ExampleNewPlainEngine matches events against an embedded engine —
// SCBR's filtering without the distributed protocol.
func ExampleNewPlainEngine() {
	engine, err := scbr.NewPlainEngine()
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scbr.ParseSpec("symbol = HAL, price < 50")
	if err != nil {
		log.Fatal(err)
	}
	id, err := engine.Register(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	header := scbr.EventSpec{Attrs: []scbr.NamedValue{
		{Name: "symbol", Value: scbr.Str("HAL")},
		{Name: "price", Value: scbr.Float(42)},
	}}
	ev, err := header.Intern(engine.Schema())
	if err != nil {
		log.Fatal(err)
	}
	matches, err := engine.Match(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscription %d matched %d time(s), client %d\n",
		id, len(matches), matches[0].ClientRef)
	// Output: subscription 1 matched 1 time(s), client 7
}

// ExampleNewEnclaveEngine runs the identical engine inside a simulated
// enclave: same results, metered MEE/EPC costs.
func ExampleNewEnclaveEngine() {
	dev, err := scbr.NewDevice([]byte("example-device"))
	if err != nil {
		log.Fatal(err)
	}
	engine, enclave, err := scbr.NewEnclaveEngine(dev)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scbr.ParseSpec("volume >= 1000")
	if err != nil {
		log.Fatal(err)
	}
	err = enclave.Ecall(func() error {
		_, err := engine.Register(spec, 1)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := engine.Stats()
	fmt.Printf("enclave engine holds %d subscription(s); transitions so far: %d\n",
		stats.Subscriptions, engine.Accessor().Meter().C.Transitions)
	// Output: enclave engine holds 1 subscription(s); transitions so far: 1
}

// ExampleTable1Workloads lists the paper's evaluation datasets.
func ExampleTable1Workloads() {
	for _, wl := range scbr.Table1Workloads()[:3] {
		fmt.Println(wl.Name)
	}
	// Output:
	// e100a1
	// e80a1
	// e80a2
}
