package scbr

import (
	"scbr/internal/broker"
)

// Subscription is the first-class handle returned by
// Client.Subscribe: it carries the router-assigned ID and a buffered
// view of the client's delivery stream filtered to the publications
// that matched this subscription.
//
// Consume deliveries by iteration:
//
//	sub, _ := client.Subscribe(ctx, spec)
//	for {
//	    d, err := sub.Next(ctx)
//	    if err != nil {
//	        break // ctx cancelled or handle closed
//	    }
//	    use(d.Payload)
//	}
//
// or by callback:
//
//	_ = sub.Consume(ctx, func(d scbr.Delivery) error {
//	    use(d.Payload)
//	    return nil
//	})
//
// or select on sub.Deliveries() alongside other channels. Unsubscribe
// (or Client.Close) ends the stream; buffered deliveries drain before
// Next reports ErrClosed.
//
// Handles bound through Client.Attach close when the delivery
// connection drops. Handles bound through Client.Resume survive it:
// the stream goes quiet, and the next Resume presents the client's
// last-seen delivery cursor so the router replays the gap — consumers
// keep iterating the same handle across reconnects and see every
// delivery exactly once, in order, as long as the router's replay
// ring covered the outage (Resume reports the unrecoverable remainder
// as its gap).
type Subscription = broker.Subscription

// Event is one publication for Publisher.Publish/PublishBatch: the
// routable header (matched inside the enclave) and the payload only
// subscribed clients can read.
type Event = broker.Event
