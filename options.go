package scbr

import (
	"crypto/rsa"
	"time"

	"scbr/internal/attest"
	"scbr/internal/broker"
	"scbr/internal/core"
	"scbr/internal/scheme"
	"scbr/internal/sgx"
)

// Option configures a Router or an embedded Engine. All constructors
// of the v1 surface accept a trailing list of options; an option that
// does not apply to the constructed artefact (e.g. WithSwitchless on a
// plain engine) is ignored, so option sets can be shared between
// deployment roles.
type Option func(*settings)

// settings is the resolved option state; zero values select the
// paper's defaults.
type settings struct {
	epcBytes         uint64
	padRecordTo      int
	partitions       int
	placementShards  int
	placementSeed    int64
	switchless       bool
	ringCapacity     int
	deliveryQueueLen int
	overflowPolicy   broker.OverflowPolicy
	replayRingLen    int
	resumeWindow     time.Duration
	drainTimeout     time.Duration
	cacheAlign       bool
	disableSharding  bool
	isvProdID        uint16
	isvSVN           uint16
	debug            bool

	routerID       string
	peers          []string
	peerVerifier   *attest.Service
	peerIdentities []attest.Identity
	federationTTL  int

	scheme     string
	schemeOpts []scheme.Option
}

func resolve(opts []Option) settings {
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// routerConfig lowers the resolved options onto the broker's config.
func (s settings) routerConfig(image []byte, signer *rsa.PublicKey) broker.RouterConfig {
	return broker.RouterConfig{
		EnclaveImage:     image,
		EnclaveSigner:    signer,
		Scheme:           s.scheme,
		EPCBytes:         s.epcBytes,
		PadRecordTo:      s.padRecordTo,
		Partitions:       s.partitions,
		PlacementShards:  s.placementShards,
		PlacementSeed:    s.placementSeed,
		Switchless:       s.switchless,
		RingCapacity:     s.ringCapacity,
		DeliveryQueueLen: s.deliveryQueueLen,
		OverflowPolicy:   s.overflowPolicy,
		ReplayRingLen:    s.replayRingLen,
		ResumeWindow:     s.resumeWindow,
		DrainTimeout:     s.drainTimeout,
		RouterID:         s.routerID,
		Peers:            s.peers,
		PeerVerifier:     s.peerVerifier,
		PeerIdentities:   s.peerIdentities,
		FederationTTL:    s.federationTTL,
	}
}

// enclaveConfig lowers the resolved options onto an enclave launch.
func (s settings) enclaveConfig() sgx.EnclaveConfig {
	return sgx.EnclaveConfig{
		EPCBytes:  s.epcBytes,
		ISVProdID: s.isvProdID,
		ISVSVN:    s.isvSVN,
		Debug:     s.debug,
	}
}

// engineOptions lowers the resolved options onto the matching engine.
func (s settings) engineOptions() core.Options {
	return core.Options{
		PadRecordTo:     s.padRecordTo,
		DisableSharding: s.disableSharding,
		CacheAlign:      s.cacheAlign,
	}
}

// WithEPC bounds the enclave page cache to n bytes (default: the
// paper's ~93 MB usable EPC, DefaultEPCBytes). Experiments shrink it
// to provoke the Figure 8 paging cliff in seconds.
func WithEPC(n uint64) Option { return func(s *settings) { s.epcBytes = n } }

// WithPadding pads every engine record to at least n bytes, matching
// the paper's ≈437 B/subscription footprint (see EngineOptions).
func WithPadding(n int) Option { return func(s *settings) { s.padRecordTo = n } }

// WithPartitions shards the router's subscription database across k
// enclave matcher slices — the paper's §3.4 StreamHub-style
// partitioning. Registrations hash to a slice; every publication is
// matched by all slices in parallel and the results merged, so
// matching parallelises and each enclave holds 1/k of the database
// (the Fig. 8 paging-cliff remedy). The configured EPC budget is
// divided across the slices. Default 1, max 256.
func WithPartitions(k int) Option { return func(s *settings) { s.partitions = k } }

// WithPlacementShards sets the number of fixed virtual shards
// registration keys hash onto (default 64, max 256; raised to the
// partition count when smaller). Shards are the unit of migration for
// Router.Repartition: more shards move in finer grains at the cost of
// a wider placement table. The shard count is immutable for a router's
// lifetime — sealed state only restores under the same count.
func WithPlacementShards(n int) Option { return func(s *settings) { s.placementShards = n } }

// WithPlacementSeed seeds the rendezvous hash assigning shards to
// slices (0, the default, selects a fixed built-in seed). Routers that
// must agree on placement byte-for-byte — e.g. when replaying one
// sealed state into a rebuilt fleet — share a seed.
func WithPlacementSeed(seed int64) Option { return func(s *settings) { s.placementSeed = seed } }

// WithSwitchless routes publications into the enclaves through
// untrusted-memory rings consumed by resident enclave workers (one
// ring and worker per partition) — the paper's §6 "message exchanges
// at the enclave border" — instead of one ecall per publication.
func WithSwitchless() Option { return func(s *settings) { s.switchless = true } }

// WithRingCapacity sizes each switchless publication ring (rounded up
// to a power of two; default 128). Implies nothing by itself — combine
// with WithSwitchless.
func WithRingCapacity(n int) Option { return func(s *settings) { s.ringCapacity = n } }

// WithDeliveryQueue bounds each listening client's outbound delivery
// queue to n messages (default 256). A client that stops draining its
// connection overflows its queue and is handled by the router's
// overflow policy (WithOverflowPolicy) instead of stalling matching
// or other clients.
func WithDeliveryQueue(n int) Option { return func(s *settings) { s.deliveryQueueLen = n } }

// WithOverflowPolicy selects the router's slow-consumer policy: what
// happens when a client's bounded delivery queue is full. The default
// is OverflowDropOldest (evict the oldest queued frame; the client can
// recover it by resuming with its cursor). OverflowDisconnect restores
// the pre-cursor behaviour of severing the connection; OverflowPause
// blocks the delivery stage instead — lossless, but a stalled client
// throttles the publication stream feeding it. Matching itself never
// blocks under any policy.
func WithOverflowPolicy(p OverflowPolicy) Option {
	return func(s *settings) { s.overflowPolicy = p }
}

// WithReplayRing bounds each client's delivery replay ring to n
// messages (default 512) — the window a reconnecting listener can
// recover by presenting its last-seen cursor to Client.Resume. Losses
// beyond the ring are reported as the resume gap. A negative n
// disables the ring: cursors still stamp and gaps stay observable,
// but no payloads are retained per client — for deployments that
// never resume and want the memory back.
func WithReplayRing(n int) Option { return func(s *settings) { s.replayRingLen = n } }

// WithResumeWindow bounds how long the router retains a detached
// client's delivery state (cursor + replay ring) for resumption
// (default 5m). Past the window the state — and the payload memory
// its ring pins — is released, so client churn cannot grow the
// router without bound; a client returning later starts fresh.
func WithResumeWindow(d time.Duration) Option {
	return func(s *settings) { s.resumeWindow = d }
}

// WithCacheAlign rounds engine record allocations to 64-byte cache
// lines — the paper's §6 "appropriately fitting [the containment
// trees] into cache lines".
func WithCacheAlign() Option { return func(s *settings) { s.cacheAlign = true } }

// WithoutSharding keeps every subscription in a single containment
// forest, as the paper's engine does. Much slower on large
// equality-heavy databases; used by the sharding ablation.
func WithoutSharding() Option { return func(s *settings) { s.disableSharding = true } }

// WithDrainTimeout bounds the graceful half of Router.Close: the
// per-client delivery writers get up to d to flush already-matched
// deliveries before their connections are severed (default 2s).
func WithDrainTimeout(d time.Duration) Option {
	return func(s *settings) { s.drainTimeout = d }
}

// WithRouterID names the router in a federation overlay and enables
// federation: the router accepts mutually attested peer links,
// exchanges subscription digests with its peers, and forwards
// publications hop by hop toward matching downstream subscribers.
// Combine with WithPeers and WithPeerVerifier.
func WithRouterID(id string) Option { return func(s *settings) { s.routerID = id } }

// WithPeers lists peer router addresses this router dials (with
// retry) to form attested overlay links. Links are bidirectional —
// only one side of each pair needs the other in its peer list.
func WithPeers(addrs ...string) Option {
	return func(s *settings) { s.peers = append(s.peers, addrs...) }
}

// WithPeerVerifier supplies the attestation service that vouches for
// peer platforms and, optionally, the enclave identities accepted
// from peers (defaulting to the router's own identity — a fleet
// launched from one measured image). Required for federation.
func WithPeerVerifier(svc *AttestationService, ids ...Identity) Option {
	return func(s *settings) {
		s.peerVerifier = svc
		s.peerIdentities = append(s.peerIdentities, ids...)
	}
}

// WithFederationTTL sets the hop budget forwarded publications start
// with (default 8). Digest-driven forwarding already prevents loops on
// converged state; the TTL bounds the blast radius while digests are
// propagating.
func WithFederationTTL(n int) Option { return func(s *settings) { s.federationTTL = n } }

// WithScheme selects the matching scheme a Router stores and matches
// under, or a Publisher encodes under (default SchemePlain, the
// paper's plaintext-in-enclave path). The scheme ID travels in the
// wire handshake: provisioning, registration, and publication frames
// are tagged with it, and a router rejects frames from a
// different-scheme peer with ErrSchemeMismatch.
//
// Scheme options parameterise the publisher-side codec; routers ignore
// them (their stores are configured from the public parameters the
// publisher announces during attested provisioning):
//
//	pub, err := scbr.NewPublisher(svc, id,
//	    scbr.WithScheme(scbr.SchemeASPE,
//	        scbr.WithSchemeAttrs("symbol", "price"),
//	        scbr.WithSchemeSeed(7)))
func WithScheme(name string, opts ...SchemeOption) Option {
	return func(s *settings) {
		s.scheme = name
		s.schemeOpts = append(s.schemeOpts, opts...)
	}
}

// SchemeOption parameterises a matching scheme's publisher-side codec
// (see WithScheme).
type SchemeOption = scheme.Option

// WithSchemeAttrs fixes the scheme's attribute universe. Required by
// SchemeASPE: its vector space has one dimension pair per attribute,
// and subscriptions/publications may only reference these attributes.
func WithSchemeAttrs(names ...string) SchemeOption { return scheme.WithAttrs(names...) }

// WithSchemeSeed seeds the scheme's secret material (ASPE: the
// invertible matrices) deterministically; 0 (the default) draws fresh
// randomness.
func WithSchemeSeed(seed int64) SchemeOption { return scheme.WithSeed(seed) }

// WithSchemeScale fixes one attribute's public normalisation divisor
// (ASPE: balances the sign-test tolerance across attribute
// magnitudes).
func WithSchemeScale(name string, scale float64) SchemeOption {
	return scheme.WithScale(name, scale)
}

// WithSchemeCalibration calibrates per-attribute scales from sample
// events (largest observed magnitude per numeric attribute).
func WithSchemeCalibration(sample ...EventSpec) SchemeOption {
	return scheme.WithCalibration(sample...)
}

// WithISV sets the enclave's product ID and security version, both
// part of the measured identity checked at provisioning.
func WithISV(prodID, svn uint16) Option {
	return func(s *settings) {
		s.isvProdID = prodID
		s.isvSVN = svn
	}
}

// WithDebugEnclave launches the enclave in debug mode. Attestation
// verifiers reject debug enclaves unless explicitly allowed; never
// combine with production secrets.
func WithDebugEnclave() Option { return func(s *settings) { s.debug = true } }
