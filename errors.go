package scbr

import (
	"scbr/internal/attest"
	"scbr/internal/broker"
	"scbr/internal/core"
)

// The v1 error taxonomy. Every failure the deployment roles can
// surface wraps one of these sentinels, so applications branch with
// errors.Is instead of matching message text. The broker protocol
// carries the error class on the wire, so the taxonomy holds across
// the network: a revoked client matching errors.Is(err, ErrRevoked)
// works even though the refusal came from the remote publisher.
var (
	// ErrClosed reports an operation on a closed Router, Client, or
	// Subscription.
	ErrClosed = broker.ErrClosed
	// ErrNotProvisioned reports router operations (registration,
	// publication, sealing) before a publisher attested the enclave
	// and provisioned the symmetric key SK.
	ErrNotProvisioned = broker.ErrNotProvisioned
	// ErrNotConnected reports client or publisher operations before
	// the corresponding connection was established.
	ErrNotConnected = broker.ErrNotConnected
	// ErrAttestationFailed wraps every failure of the remote
	// attestation handshake. The specific cause (ErrWrongIdentity,
	// ErrBadQuote, ErrUnknownPlatform, ...) stays in the chain.
	ErrAttestationFailed = broker.ErrAttestationFailed
	// ErrRevoked reports an excluded client: subscription admission,
	// group key refreshes, and therefore payload decryption all fail
	// with it after Publisher.Revoke.
	ErrRevoked = broker.ErrRevokedClient
	// ErrUnknownClient reports operations naming a client the
	// publisher's admission registry has never seen.
	ErrUnknownClient = broker.ErrUnknownClient
	// ErrNotOwner reports an attempt to remove another client's
	// subscription.
	ErrNotOwner = broker.ErrNotOwner
	// ErrUnknownSubscription reports operations naming a subscription
	// ID the engine does not hold.
	ErrUnknownSubscription = core.ErrUnknownSubscription
	// ErrStateRollback reports a sealed router snapshot that is not
	// the most recently sealed one (§2 rollback protection).
	ErrStateRollback = broker.ErrStateRollback
	// ErrSchemeMismatch reports a matching-scheme disagreement: a
	// publisher or client encoded under one scheme talking to a router
	// running another (WithScheme), or a sealed snapshot restored into
	// a router configured with a different scheme. Carried across the
	// wire, so errors.Is works on the rejected side.
	ErrSchemeMismatch = broker.ErrSchemeMismatch

	// Attestation causes, for callers that need to distinguish them
	// under ErrAttestationFailed.
	ErrWrongIdentity   = attest.ErrWrongIdentity
	ErrBadQuote        = attest.ErrBadQuote
	ErrUnknownPlatform = attest.ErrUnknownPlatform
	ErrDebugEnclave    = attest.ErrDebugEnclave
)
