package scbr_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"scbr"
)

// TestResumeExactlyOnceAcrossReconnect is the delivery-guarantee
// acceptance scenario: a subscriber whose delivery connection dies
// mid-burst reconnects with its cursor and receives every matched
// publication exactly once, in order — the publications matched while
// it was away arrive through the resume replay, none are duplicated,
// and the Subscription handle never notices the flap.
func TestResumeExactlyOnceAcrossReconnect(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	d := deploy(t, "resume-e2e",
		scbr.WithPartitions(2),
		scbr.WithReplayRing(4096),
		scbr.WithOverflowPolicy(scbr.OverflowDropOldest))

	// Wire the client by hand: the stock helper uses Attach, and this
	// test needs the resumable bind.
	client, err := scbr.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	pc, err := net.Dial("tcp", d.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client.ConnectPublisher(pc, d.publisher.PublicKey())
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Resume(ctx, conn); err != nil {
		t.Fatal(err)
	}

	const (
		wave1 = 60
		total = 120
	)
	// Wave 1 flows while the client is connected; wave 2 is published
	// only after its delivery connection is dead, so those matches can
	// only arrive through the cursor replay.
	publish := func(from, to int) {
		for i := from; i < to; i++ {
			if err := d.publisher.Publish(ctx, halQuote(42), []byte(fmt.Sprintf("%04d", i))); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}
	publish(0, wave1)

	next := 0
	for next < total {
		del, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("delivery %d: %v", next, err)
		}
		if del.Err != nil {
			t.Fatalf("delivery %d: %v", next, del.Err)
		}
		if got := string(del.Payload); got != fmt.Sprintf("%04d", next) {
			t.Fatalf("delivery %d out of order, duplicated, or lost: %q", next, got)
		}
		next++
		if next == 10 {
			// Mid-burst disconnect: kill the delivery connection, let the
			// rest of the stream match while we are away, then resume.
			_ = conn.Close()
			<-client.DeliveryDone()
			publish(wave1, total)
			// Resume only once the router has matched part of wave 2, so
			// the replay path is provably exercised (publishing is
			// fire-and-forget; the data plane may lag the wire).
			for d.router.DeliverySnapshot().Enqueued <= wave1+10 {
				time.Sleep(time.Millisecond)
			}
			conn, err = net.Dial("tcp", d.routerLn.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			gap, err := client.Resume(ctx, conn)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if gap != 0 {
				t.Fatalf("resume reported %d unrecoverable deliveries; the ring should have covered the outage", gap)
			}
		}
	}
	// Exactly once: nothing further arrives.
	quiet, quietCancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer quietCancel()
	if del, err := sub.Next(quiet); err == nil {
		t.Fatalf("extra delivery after the full stream: %q", del.Payload)
	}
	if got := client.LastCursor(); got != total {
		t.Fatalf("client cursor = %d, want %d", got, total)
	}
	if snap := d.router.DeliverySnapshot(); snap.DeliveriesReplayed == 0 {
		t.Fatalf("the reconnect replayed nothing: %+v", snap)
	}
}
