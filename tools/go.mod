// Nested tool module: pins the versions of developer tools CI
// installs, so a tool bump is a reviewed go.mod diff instead of a
// floating @tag in the workflow. CI runs `go mod tidy && go install
// honnef.co/go/tools/cmd/staticcheck` from this directory; the module
// is otherwise inert (no Go sources, excluded from the root module's
// ./...).
module scbr/tools

go 1.24.0

tool honnef.co/go/tools/cmd/staticcheck

require honnef.co/go/tools v0.6.1
