package scbr_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"scbr"
)

// TestSubscriptionRouting: two subscriptions on one client; each
// handle only sees the publications that matched it.
func TestSubscriptionRouting(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "sub-routing")
	client := d.attach(ctx, "alice")

	cheap, err := client.Subscribe(ctx, halSpec(t)) // price < 50
	if err != nil {
		t.Fatal(err)
	}
	wideSpec, err := scbr.ParseSpec(`symbol = "HAL", price < 100`)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := client.Subscribe(ctx, wideSpec)
	if err != nil {
		t.Fatal(err)
	}

	// 75 matches only the wide subscription.
	if err := d.publisher.Publish(ctx, halQuote(75), []byte("mid")); err != nil {
		t.Fatal(err)
	}
	del, err := wide.Next(ctx)
	if err != nil || string(del.Payload) != "mid" {
		t.Fatalf("wide delivery = %+v, %v", del, err)
	}
	short, shortCancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer shortCancel()
	if d, err := cheap.Next(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cheap handle saw %+v, %v; want deadline", d, err)
	}

	// 42 matches both; each handle gets one delivery naming both IDs.
	if err := d.publisher.Publish(ctx, halQuote(42), []byte("low")); err != nil {
		t.Fatal(err)
	}
	for name, sub := range map[string]*scbr.Subscription{"cheap": cheap, "wide": wide} {
		del, err := sub.Next(ctx)
		if err != nil || string(del.Payload) != "low" {
			t.Fatalf("%s delivery = %+v, %v", name, del, err)
		}
		if len(del.SubIDs) != 2 {
			t.Fatalf("%s delivery names %v, want both subscriptions", name, del.SubIDs)
		}
	}
}

// TestNextContextCancellation: Next returns promptly with ctx.Err()
// when cancelled mid-wait.
func TestNextContextCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "sub-cancel")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(waitCtx)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	waitCancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
}

// TestServeContextCancellation: cancelling the serve context stops the
// accept loop with ctx.Err() and severs client connections.
func TestServeContextCancellation(t *testing.T) {
	dev, err := scbr.NewDevice([]byte("serve-cancel"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "serve-cancel-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("serve image"), signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- router.Serve(ctx, ln) }()
	// A connected peer must be severed by the cancellation too.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not observe cancellation")
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("peer connection survived Serve cancellation")
	}
	// Serving again on the closed router reports ErrClosed... not
	// applicable here (ctx cancel, not Close); Close stays idempotent.
	router.Close()
	if err := router.Serve(context.Background(), ln); !errors.Is(err, scbr.ErrClosed) {
		t.Fatalf("Serve after Close = %v, want ErrClosed", err)
	}
}

// TestUnsubscribeClosesHandle: after Unsubscribe the handle drains its
// buffer and then reports ErrClosed.
func TestUnsubscribeClosesHandle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "sub-unsub")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.publisher.Publish(ctx, halQuote(42), []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// Wait for the delivery to land in the buffer before closing.
	del, err := sub.Next(ctx)
	if err != nil || string(del.Payload) != "buffered" {
		t.Fatalf("delivery = %+v, %v", del, err)
	}
	if err := sub.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, scbr.ErrClosed) {
		t.Fatalf("Next after unsubscribe = %v, want ErrClosed", err)
	}
	select {
	case <-sub.Done():
	default:
		t.Fatal("Done not closed after unsubscribe")
	}
}

// TestConsumeHandlerMode: the callback mode delivers everything and
// ends cleanly when the subscription closes.
func TestConsumeHandlerMode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "sub-consume")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := d.publisher.Publish(ctx, halQuote(42), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]string, 0, n)
	err = sub.Consume(ctx, func(del scbr.Delivery) error {
		if del.Err != nil {
			return del.Err
		}
		got = append(got, string(del.Payload))
		if len(got) == n {
			return sub.Unsubscribe(ctx) // closing the handle ends Consume with nil
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Consume = %v", err)
	}
	if len(got) != n || got[0] != "m0" || got[n-1] != fmt.Sprintf("m%d", n-1) {
		t.Fatalf("consumed %v", got)
	}
}

// TestRouterDisconnectClosesHandles: when the delivery connection is
// lost (router shut down), blocked Next callers unwind with ErrClosed
// instead of hanging.
func TestRouterDisconnectClosesHandles(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "sub-disconnect")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background()) // no deadline: must unblock via the handle
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	d.router.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, scbr.ErrClosed) {
			t.Fatalf("Next after disconnect = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next hung after the router connection dropped")
	}
}

// TestPublishBatchRoundTrip: a batch pipelines through one router
// round trip; matching items are delivered in order, non-matching ones
// filtered, and the whole batch costs one enclave crossing on the
// synchronous path.
func TestPublishBatchRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "batch")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}

	before := d.router.MeterSnapshot().Transitions
	batch := []scbr.Event{
		{Header: halQuote(49), Payload: []byte("in-1")},
		{Header: halQuote(60), Payload: []byte("filtered")},
		{Header: halQuote(42), Payload: []byte("in-2")},
	}
	if err := d.publisher.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"in-1", "in-2"} {
		del, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if del.Err != nil || string(del.Payload) != want {
			t.Fatalf("delivery = %+v, want %q", del, want)
		}
	}
	if got := d.router.MeterSnapshot().Transitions - before; got != 1 {
		t.Fatalf("batch charged %d enclave transitions, want 1", got)
	}

	// Empty batches are a no-op.
	if err := d.publisher.PublishBatch(ctx, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPublishBatchSplitsOversizedFrames: a batch whose ciphertext
// cannot fit one wire frame is split transparently instead of failing
// wholesale, preserving order.
func TestPublishBatchSplitsOversizedFrames(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	d := deploy(t, "batch-split")
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	before := d.router.MeterSnapshot().Transitions
	// Three 3.5 MB payloads: two fit the 8 MB per-frame budget, the
	// third spills into a second frame.
	const payloadSize = 7 << 19
	batch := make([]scbr.Event, 3)
	for i := range batch {
		payload := make([]byte, payloadSize)
		payload[0] = byte('a' + i)
		batch[i] = scbr.Event{Header: halQuote(42), Payload: payload}
	}
	if err := d.publisher.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		del, err := sub.Next(ctx)
		if err != nil || del.Err != nil {
			t.Fatalf("delivery %d = %+v, %v", i, del, err)
		}
		if len(del.Payload) != payloadSize || del.Payload[0] != byte('a'+i) {
			t.Fatalf("delivery %d corrupted or out of order (lead byte %q)", i, del.Payload[0])
		}
	}
	if got := d.router.MeterSnapshot().Transitions - before; got != 2 {
		t.Fatalf("oversized batch charged %d transitions, want 2 frames", got)
	}
}

// TestPublishBatchSwitchless: in the switchless configuration a batch
// takes one ring pass and zero per-message transitions.
func TestPublishBatchSwitchless(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "batch-switchless", scbr.WithSwitchless())
	client := d.attach(ctx, "alice")
	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the worker's one-time entry transition.
	if err := d.publisher.Publish(ctx, halQuote(42), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(ctx); err != nil {
		t.Fatal(err)
	}
	before := d.router.MeterSnapshot().Transitions
	const n = 20
	batch := make([]scbr.Event, n)
	for i := range batch {
		batch[i] = scbr.Event{Header: halQuote(42), Payload: []byte(fmt.Sprintf("b%02d", i))}
	}
	if err := d.publisher.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		del, err := sub.Next(ctx)
		if err != nil || del.Err != nil {
			t.Fatalf("delivery %d = %+v, %v", i, del, err)
		}
		if want := fmt.Sprintf("b%02d", i); string(del.Payload) != want {
			t.Fatalf("delivery %d = %q, want %q (order lost)", i, del.Payload, want)
		}
	}
	if got := d.router.MeterSnapshot().Transitions - before; got != 0 {
		t.Fatalf("switchless batch charged %d transitions, want 0", got)
	}
}
