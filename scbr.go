// Package scbr is the public API of the SCBR reproduction: a secure
// content-based routing engine that runs its filtering logic inside a
// (simulated) Intel SGX enclave, after Pires, Pasin, Felber and
// Fetzer, "Secure Content-Based Routing Using Intel Software Guard
// Extensions", Middleware 2016.
//
// The v1 surface is context-aware and option-based:
//
//   - constructors take positional identity arguments plus functional
//     Options — NewRouter(dev, quoter, image, signer,
//     WithSwitchless(), WithEPC(n), WithPadding(n)) — instead of
//     positional config structs (thin deprecated shims remain for the
//     old forms),
//
//   - every blocking or network-touching operation takes a
//     context.Context — Router.Serve(ctx, l), Publisher.Publish(ctx,
//     header, payload), Client.Subscribe(ctx, spec) — and
//     cancellation propagates into the broker's connection loops,
//
//   - Subscribe returns a first-class Subscription handle with
//     Next(ctx)/Deliveries()/Consume iteration and
//     Unsubscribe(ctx),
//
//   - Publisher.PublishBatch pipelines a batch of events through one
//     router round trip and one enclave crossing per matcher slice,
//
//   - WithPartitions(k) shards the router's data plane across k
//     enclave matcher slices (§3.4 StreamHub partitioning): matching
//     parallelises, each enclave holds 1/k of the database, and every
//     listening client is served by its own bounded delivery queue so
//     a slow consumer never stalls the data plane; the slice fleet is
//     elastic — Router.Repartition(ctx, k) grows or shrinks it online,
//     live-migrating subscriptions between enclaves without dropping
//     matches (WithPlacementShards/WithPlacementSeed tune the placement
//     map),
//
//   - WithRouterID/WithPeers/WithPeerVerifier federate routers into
//     an overlay: peers dial each other over mutually attested links,
//     exchange containment-compacted subscription digests, and
//     forward publications hop by hop only toward routers with
//     matching downstream subscribers, loop-safe on cyclic
//     topologies (origin+sequence duplicate suppression plus a hop
//     TTL); Router.FederationSnapshot exposes the overlay counters,
//
//   - failures wrap the typed sentinels of errors.go (ErrRevoked,
//     ErrNotProvisioned, ErrAttestationFailed, ErrClosed, ...),
//     matchable with errors.Is even across the wire.
//
// The package re-exports the pieces an application needs:
//
//   - the data model: attribute Values, Predicates, SubscriptionSpecs
//     and EventSpecs (publication headers), plus ParseSpec for the
//     textual subscription syntax of the paper's examples,
//   - the three deployment roles of Figure 3: Router (the filtering
//     engine inside an enclave on untrusted infrastructure), Publisher
//     (the service provider owning the keys and admission), and Client
//     (a consumer),
//   - the simulated SGX platform (Device, Quoter, attestation Service)
//     that stands in for real hardware — see DESIGN.md for the
//     substitution,
//   - the embedded matching engine (Engine) for applications that want
//     content-based filtering without the distributed protocol,
//   - the Table 1 workload generators used by the evaluation.
//
// A minimal deployment (see examples/quickstart for the runnable
// version):
//
//	dev, _ := scbr.NewDevice(nil)
//	quoter, _ := scbr.NewQuoter(dev, "my-platform")
//	router, _ := scbr.NewRouter(dev, quoter, image, signerKey.Public())
//	go router.Serve(ctx, listener)
//	// ... attest + provision via a Publisher, then:
//	sub, _ := client.Subscribe(ctx, spec)
//	d, _ := sub.Next(ctx)
package scbr

import (
	"crypto/rsa"
	"io"

	"scbr/internal/attest"
	"scbr/internal/broker"
	"scbr/internal/core"
	"scbr/internal/federation"
	"scbr/internal/placement"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

// Matching schemes. The paper's central claim is a comparison of
// privacy-preserving matching approaches; both are first-class,
// wire-negotiated backends of the data plane, selected with
// WithScheme on the Router and the Publisher (which must agree — the
// handshake rejects mismatches with ErrSchemeMismatch).
const (
	// SchemePlain (default): plaintext matching inside the enclave;
	// subscriptions and headers travel SK-sealed and are opened only
	// inside the router's enclaves. Full predicate expressiveness and
	// federation-digest support.
	SchemePlain = scheme.Plain
	// SchemeASPE: asymmetric scalar-product-preserving encryption (the
	// paper's software-only baseline). The publisher encrypts, the
	// router matches ciphertext it can never open — no enclave trust
	// needed, at orders-of-magnitude matching cost. No prefix
	// predicates, closed bounds only, no federation digests.
	SchemeASPE = scheme.ASPE
)

// SchemeCapabilities describes what a matching scheme's encodings can
// express and where they may be evaluated (Router.SchemeCapabilities,
// LookupScheme).
type SchemeCapabilities = scheme.Capabilities

// Schemes lists the registered matching-scheme IDs.
func Schemes() []string { return scheme.Names() }

// LookupScheme reports a scheme's capability flags ("" names the
// default scheme).
func LookupScheme(name string) (SchemeCapabilities, error) {
	b, err := scheme.Lookup(name)
	if err != nil {
		return SchemeCapabilities{}, err
	}
	return b.Caps, nil
}

// Data model.
type (
	// Value is a typed attribute value (int, float, or string).
	Value = pubsub.Value
	// Predicate is one constraint of a subscription.
	Predicate = pubsub.Predicate
	// SubscriptionSpec is a conjunction of predicates.
	SubscriptionSpec = pubsub.SubscriptionSpec
	// EventSpec is a publication header: named attribute values.
	EventSpec = pubsub.EventSpec
	// NamedValue is one attribute of an EventSpec.
	NamedValue = pubsub.NamedValue
	// Op is a predicate operator.
	Op = pubsub.Op
)

// Predicate operators.
const (
	OpEq      = pubsub.OpEq
	OpLt      = pubsub.OpLt
	OpLe      = pubsub.OpLe
	OpGt      = pubsub.OpGt
	OpGe      = pubsub.OpGe
	OpBetween = pubsub.OpBetween
)

// Value kinds.
const (
	KindInt    = pubsub.KindInt
	KindFloat  = pubsub.KindFloat
	KindString = pubsub.KindString
)

// Value constructors and parsing.
var (
	// Int builds an integer value.
	Int = pubsub.Int
	// Float builds a floating-point value.
	Float = pubsub.Float
	// Str builds a string value.
	Str = pubsub.Str
	// ParseSpec parses 'symbol = "HAL", price < 50' style expressions.
	ParseSpec = pubsub.ParseSpec
)

// Simulated SGX platform.
type (
	// Device models one SGX-capable CPU package.
	Device = sgx.Device
	// Enclave is a launched enclave instance.
	Enclave = sgx.Enclave
	// EnclaveConfig parameterises enclave launch.
	//
	// Deprecated: pass WithEPC, WithISV, and WithDebugEnclave options
	// to the v1 constructors instead.
	EnclaveConfig = sgx.EnclaveConfig
	// Quoter converts enclave reports into attestation quotes.
	Quoter = attest.Quoter
	// AttestationService verifies quotes (the IAS stand-in).
	AttestationService = attest.Service
	// Identity pins an enclave measurement for provisioning.
	Identity = attest.Identity
)

// DefaultEPCBytes is the usable enclave page cache size of the paper's
// platform (~93 MB).
const DefaultEPCBytes = sgx.DefaultEPCBytes

// NewDevice creates a simulated SGX device with the calibrated cost
// model. A deterministic seed may be supplied for tests; nil draws a
// random device key.
func NewDevice(seed []byte) (*Device, error) {
	return sgx.NewDevice(seed, simmem.DefaultCost())
}

// NewQuoter provisions the platform quoting identity for a device.
func NewQuoter(dev *Device, platformID string) (*Quoter, error) {
	return attest.NewQuoter(dev, platformID)
}

// NewAttestationService returns an empty quote-verification service;
// register genuine platforms with RegisterPlatform.
func NewAttestationService() *AttestationService { return attest.NewService() }

// Deployment roles (Figure 3 of the paper).
type (
	// Router hosts the filtering engine inside an enclave.
	Router = broker.Router
	// RouterConfig parameterises a router.
	//
	// Deprecated: pass Options to NewRouter instead; RouterConfig
	// remains only for NewRouterFromConfig.
	RouterConfig = broker.RouterConfig
	// Publisher is the service provider: key owner, admission
	// controller, and data source.
	Publisher = broker.Publisher
	// Client is a data consumer.
	Client = broker.Client
	// DataPlaneStats summarises a router's partitioned index.
	DataPlaneStats = broker.DataPlaneStats
	// PlacementSnapshot is a router's shard→slice placement table and
	// migration counters (Router.PlacementSnapshot); Router.Repartition
	// resizes the slice fleet online and returns the new snapshot.
	PlacementSnapshot = placement.Snapshot
	// SliceFootprint is one matcher slice's EPC accounting — store
	// bytes, budget, and resident-set high-water mark
	// (Router.SliceFootprints). Router.RecommendPartitions sizes the
	// fleet from these; Repartition(ctx, 0) applies the recommendation.
	SliceFootprint = broker.SliceFootprint
	// FederationCounters snapshots a router's overlay activity: live
	// peers, digest sizes, and forwarded/withheld/suppressed tallies
	// (Router.FederationSnapshot).
	FederationCounters = federation.Counters
	// Delivery is one decrypted payload received by a client.
	Delivery = broker.Delivery
	// ClientRegistry is the publisher's admission database.
	ClientRegistry = broker.ClientRegistry
	// OverflowPolicy is the router's slow-consumer policy
	// (WithOverflowPolicy): what happens when a listening client's
	// bounded delivery queue is full.
	OverflowPolicy = broker.OverflowPolicy
	// DeliveryCounters snapshots a router's delivery-layer loss and
	// recovery activity (Router.DeliverySnapshot): overflow drops,
	// slow-consumer disconnects, cursor replays, and resume gaps.
	DeliveryCounters = broker.DeliveryCounters
	// DeliveryLatency is a router's enqueue→write delivery-latency
	// percentile snapshot, total and per client
	// (Router.DeliveryLatencySnapshot).
	DeliveryLatency = broker.DeliveryLatency
	// LatencyQuantiles is one latency distribution reduced to
	// p50/p95/p99/max, in nanoseconds.
	LatencyQuantiles = broker.LatencyQuantiles
)

// Slow-consumer overflow policies (see WithOverflowPolicy).
const (
	// OverflowDropOldest (default): evict the oldest queued frame; the
	// client recovers it by resuming with its delivery cursor.
	OverflowDropOldest = broker.OverflowDropOldest
	// OverflowDisconnect: sever the stalled client's connection (the
	// legacy policy).
	OverflowDisconnect = broker.OverflowDisconnect
	// OverflowPause: block the delivery stage until the client drains —
	// lossless, at the cost of throttling the publication stream.
	OverflowPause = broker.OverflowPause
)

// ParseOverflowPolicy maps "drop-oldest", "disconnect", or "pause"
// onto the corresponding policy (the CLIs' -overflow flag values).
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	return broker.ParseOverflowPolicy(s)
}

// NewRouter launches the routing enclave on dev from the measured
// image signed by signer (publishers pin both during attestation) and
// applies the given options:
//
//	router, err := scbr.NewRouter(dev, quoter, image, signer.Public(),
//	    scbr.WithSwitchless(), scbr.WithEPC(32<<20), scbr.WithPadding(400))
func NewRouter(dev *Device, quoter *Quoter, image []byte, signer *rsa.PublicKey, opts ...Option) (*Router, error) {
	return broker.NewRouter(dev, quoter, resolve(opts).routerConfig(image, signer))
}

// NewRouterFromConfig launches a router from a positional config
// struct.
//
// Deprecated: use NewRouter with Options.
func NewRouterFromConfig(dev *Device, quoter *Quoter, cfg RouterConfig) (*Router, error) {
	return broker.NewRouter(dev, quoter, cfg)
}

// NewPublisher creates a publisher that provisions secrets only into
// enclaves matching id, as vouched for by svc. WithScheme selects the
// matching scheme the publisher encodes under (default SchemePlain);
// other options are ignored, so option sets can be shared with
// NewRouter.
func NewPublisher(svc *AttestationService, id Identity, opts ...Option) (*Publisher, error) {
	s := resolve(opts)
	codec, err := scheme.NewCodec(s.scheme, s.schemeOpts...)
	if err != nil {
		return nil, err
	}
	return broker.NewPublisherWithCodec(svc, id, codec)
}

// NewClient creates a consumer with a fresh response key pair.
func NewClient(id string) (*Client, error) { return broker.NewClient(id) }

// Embedded engine for applications that want SCBR's matching without
// the distributed protocol.
type (
	// Engine is the containment-based matching engine.
	Engine = core.Engine
	// EngineOptions configure an Engine.
	//
	// Deprecated: pass WithPadding, WithCacheAlign, and
	// WithoutSharding options to the engine constructors instead.
	EngineOptions = core.Options
	// MatchResult identifies one matching subscription.
	MatchResult = core.MatchResult
)

// NewPlainEngine builds an engine over plain (non-enclave) simulated
// memory — the paper's "outside" configuration.
func NewPlainEngine(opts ...Option) (*Engine, error) {
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	return core.NewEngine(acc, pubsub.NewSchema(), resolve(opts).engineOptions())
}

// NewEnclaveEngine builds an engine inside a freshly launched enclave
// on dev and returns both.
func NewEnclaveEngine(dev *Device, opts ...Option) (*Engine, *Enclave, error) {
	s := resolve(opts)
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, nil, err
	}
	enclave, err := dev.Launch([]byte("scbr embedded engine image"), signer.Public(), s.enclaveConfig())
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(enclave.Memory(), pubsub.NewSchema(), s.engineOptions())
	if err != nil {
		enclave.Terminate()
		return nil, nil, err
	}
	return engine, enclave, nil
}

// NewSplitEngine builds an engine inside a freshly launched enclave
// using the split-memory layout of the paper's §6 future work: the
// engine keeps a plaintext working set of at most cacheBytes inside
// the enclave and seals colder pages to untrusted memory itself,
// instead of relying on hardware EPC paging. Use it for subscription
// databases expected to outgrow the EPC — past that point it degrades
// several times more gracefully than the default layout (see the
// split ablation in EXPERIMENTS.md).
func NewSplitEngine(dev *Device, cacheBytes uint64, opts ...Option) (*Engine, *Enclave, error) {
	s := resolve(opts)
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, nil, err
	}
	enclave, err := dev.Launch([]byte("scbr embedded split engine image"), signer.Public(), s.enclaveConfig())
	if err != nil {
		return nil, nil, err
	}
	acc, err := enclave.SplitMemory(cacheBytes)
	if err != nil {
		enclave.Terminate()
		return nil, nil, err
	}
	engine, err := core.NewEngine(acc, pubsub.NewSchema(), s.engineOptions())
	if err != nil {
		enclave.Terminate()
		return nil, nil, err
	}
	return engine, enclave, nil
}

// NewPlainEngineFromOptions builds a plain engine from a positional
// options struct.
//
// Deprecated: use NewPlainEngine with Options.
func NewPlainEngineFromOptions(o EngineOptions) (*Engine, error) {
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	return core.NewEngine(acc, pubsub.NewSchema(), o)
}

// NewEnclaveEngineFromConfig builds an enclave engine from positional
// config structs.
//
// Deprecated: use NewEnclaveEngine with Options.
func NewEnclaveEngineFromConfig(dev *Device, cfg EnclaveConfig, o EngineOptions) (*Engine, *Enclave, error) {
	return NewEnclaveEngine(dev, fromStructs(cfg, o)...)
}

// NewSplitEngineFromConfig builds a split-memory engine from
// positional config structs.
//
// Deprecated: use NewSplitEngine with Options.
func NewSplitEngineFromConfig(dev *Device, cfg EnclaveConfig, cacheBytes uint64, o EngineOptions) (*Engine, *Enclave, error) {
	return NewSplitEngine(dev, cacheBytes, fromStructs(cfg, o)...)
}

// fromStructs lifts the legacy config structs onto the option form so
// the deprecated shims stay one-liners over the v1 constructors.
func fromStructs(cfg EnclaveConfig, o EngineOptions) []Option {
	return []Option{func(s *settings) {
		s.epcBytes = cfg.EPCBytes
		s.isvProdID = cfg.ISVProdID
		s.isvSVN = cfg.ISVSVN
		s.debug = cfg.Debug
		s.padRecordTo = o.PadRecordTo
		s.disableSharding = o.DisableSharding
		s.cacheAlign = o.CacheAlign
	}}
}

// Keys.
type (
	// KeyPair is an RSA key pair (the publisher's PK/PK⁻¹ or an
	// enclave signing key).
	KeyPair = scrypto.KeyPair
)

// NewKeyPair generates an RSA key pair; src defaults to crypto/rand
// when nil.
func NewKeyPair(src io.Reader) (*KeyPair, error) { return scrypto.NewKeyPair(src) }

// Simulated-machine utilities: every engine meters its memory traffic
// against the calibrated model of the paper's evaluation machine, and
// experiments read the counters through these re-exports.
type (
	// CostModel holds the calibrated cycle costs (see internal/simmem).
	CostModel = simmem.CostModel
	// MemoryCounters accumulates the simulator's event counts (cycles,
	// LLC hits/misses, page faults, transitions, ...).
	MemoryCounters = simmem.Counters
)

// DefaultCostModel returns the cycle model calibrated to the paper's
// machine (3.4 GHz i7-6700, 8 MB LLC, SGX v1).
func DefaultCostModel() CostModel { return simmem.DefaultCost() }

// Workloads (Table 1 of the paper).
type (
	// Workload describes one Table 1 dataset.
	Workload = workload.Spec
	// WorkloadGenerator synthesises subscriptions and publications.
	WorkloadGenerator = workload.Generator
	// QuoteSet is the synthetic stock-quote corpus.
	QuoteSet = workload.QuoteSet
)

// Table1Workloads returns the paper's nine workload specifications.
func Table1Workloads() []Workload { return workload.Table1() }

// WorkloadByName looks up a Table 1 workload.
func WorkloadByName(name string) (Workload, error) { return workload.SpecByName(name) }

// NewQuoteSet generates a deterministic synthetic quote corpus.
func NewQuoteSet(seed int64, numSymbols, perSymbol int) (*QuoteSet, error) {
	return workload.NewQuoteSet(seed, numSymbols, perSymbol)
}

// QuoteAttrs returns the quote corpus attribute universe at the given
// workload attribute factor — what a fixed-universe scheme
// (WithSchemeAttrs) needs to cover a Table 1 feed.
func QuoteAttrs(factor int) []string { return workload.QuoteAttrs(factor) }

// NewWorkloadGenerator builds a generator for a workload over a corpus.
func NewWorkloadGenerator(spec Workload, qs *QuoteSet, seed int64) (*WorkloadGenerator, error) {
	return workload.NewGenerator(spec, qs, seed)
}
