package scbr_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"scbr"
)

// deployment is one complete in-process stack over loopback TCP,
// wired through the public v1 API only.
type deployment struct {
	t         *testing.T
	dev       *scbr.Device
	quoter    *scbr.Quoter
	router    *scbr.Router
	publisher *scbr.Publisher
	routerLn  net.Listener
	pubLn     net.Listener
	cancel    context.CancelFunc
	wg        sync.WaitGroup
}

// deploy builds a device, router (with opts), attested publisher, and
// admission loop, all driven by one cancellable context.
func deploy(t *testing.T, seed string, opts ...scbr.Option) *deployment {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	dev, err := scbr.NewDevice([]byte(seed))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, seed+"-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte(seed+" router image"), signer.Public(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{t: t, dev: dev, quoter: quoter, router: router, cancel: cancel}

	d.routerLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = router.Serve(ctx, d.routerLn)
	}()

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	d.publisher, err = scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := net.Dial("tcp", d.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.publisher.ConnectRouter(ctx, rc); err != nil {
		t.Fatalf("attestation failed: %v", err)
	}

	d.pubLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			c, err := d.pubLn.Accept()
			if err != nil {
				return
			}
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				defer c.Close()
				d.publisher.ServeClient(ctx, c)
			}()
		}
	}()

	t.Cleanup(func() {
		cancel()
		_ = d.pubLn.Close()
		router.Close()
		d.wg.Wait()
	})
	return d
}

// attach creates a client wired to publisher and router through the
// v1 Attach path (no legacy channel).
func (d *deployment) attach(ctx context.Context, id string) *scbr.Client {
	d.t.Helper()
	c, err := scbr.NewClient(id)
	if err != nil {
		d.t.Fatal(err)
	}
	pc, err := net.Dial("tcp", d.pubLn.Addr().String())
	if err != nil {
		d.t.Fatal(err)
	}
	c.ConnectPublisher(pc, d.publisher.PublicKey())
	rc, err := net.Dial("tcp", d.routerLn.Addr().String())
	if err != nil {
		d.t.Fatal(err)
	}
	if err := c.Attach(ctx, rc); err != nil {
		d.t.Fatal(err)
	}
	d.t.Cleanup(c.Close)
	return c
}

func halSpec(t *testing.T) scbr.SubscriptionSpec {
	t.Helper()
	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func halQuote(price float64) scbr.EventSpec {
	return scbr.EventSpec{Attrs: []scbr.NamedValue{
		{Name: "symbol", Value: scbr.Str("HAL")},
		{Name: "price", Value: scbr.Float(price)},
	}}
}

// TestPublicAPIEndToEnd exercises the full deployment through the v1
// facade only — what a downstream user of the library would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := deploy(t, "facade-test")
	client := d.attach(ctx, "facade-client")

	sub, err := client.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID() == 0 {
		t.Fatal("subscription has no ID")
	}
	if got := sub.Spec().String(); got == "" {
		t.Fatal("subscription lost its spec")
	}
	if err := d.publisher.Publish(ctx, halQuote(42), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	del, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if del.Err != nil || string(del.Payload) != "payload" {
		t.Fatalf("delivery = %+v", del)
	}
	if len(del.SubIDs) != 1 || del.SubIDs[0] != sub.ID() {
		t.Fatalf("delivery names subscriptions %v, want [%d]", del.SubIDs, sub.ID())
	}
}

// TestEmbeddedEngines covers the facade's option-based engine
// constructors and the deprecated struct shims.
func TestEmbeddedEngines(t *testing.T) {
	plain, err := scbr.NewPlainEngine()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := scbr.NewDevice([]byte("facade-engine"))
	if err != nil {
		t.Fatal(err)
	}
	enclaved, enclave, err := scbr.NewEnclaveEngine(dev)
	if err != nil {
		t.Fatal(err)
	}
	if enclave.MRENCLAVE() == [32]byte{} {
		t.Fatal("enclave has empty measurement")
	}
	split, splitEnclave, err := scbr.NewSplitEngine(dev, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if splitEnclave.MRENCLAVE() == enclave.MRENCLAVE() {
		t.Fatal("split engine image must measure differently")
	}
	spec := scbr.SubscriptionSpec{Predicates: []scbr.Predicate{
		{Attr: "x", Op: scbr.OpGt, Value: scbr.Float(0)},
	}}
	for _, e := range []*scbr.Engine{plain, enclaved, split} {
		if _, err := e.Register(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A split cache larger than the EPC is rejected.
	if _, _, err := scbr.NewSplitEngine(dev, 2<<20, scbr.WithEPC(1<<20)); err == nil {
		t.Fatal("oversized split cache accepted")
	}
	// Deprecated struct shims still build the same engines.
	if _, err := scbr.NewPlainEngineFromOptions(scbr.EngineOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scbr.NewEnclaveEngineFromConfig(dev, scbr.EnclaveConfig{}, scbr.EngineOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scbr.NewSplitEngineFromConfig(dev, scbr.EnclaveConfig{}, 1<<20, scbr.EngineOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadFacade covers the workload re-exports.
func TestWorkloadFacade(t *testing.T) {
	if got := len(scbr.Table1Workloads()); got != 9 {
		t.Fatalf("Table1Workloads = %d", got)
	}
	wl, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := scbr.NewQuoteSet(1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := scbr.NewWorkloadGenerator(wl, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Subscriptions(5)) != 5 || len(gen.Publications(5)) != 5 {
		t.Fatal("generator counts wrong")
	}
	if _, err := scbr.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
