package scbr_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"scbr"
)

// TestPublicAPIEndToEnd exercises the full deployment through the
// facade only — what a downstream user of the library would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	dev, err := scbr.NewDevice([]byte("facade-test"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "facade-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, scbr.RouterConfig{
		EnclaveImage:  []byte("facade router image"),
		EnclaveSigner: signer.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = router.Serve(routerLn)
	}()
	t.Cleanup(func() {
		router.Close()
		wg.Wait()
	})

	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	publisher, err := scbr.NewPublisher(ias, router.Identity())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := publisher.ConnectRouter(rc); err != nil {
		t.Fatal(err)
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pubLn.Close() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				publisher.ServeClient(c)
			}()
		}
	}()

	client, err := scbr.NewClient("facade-client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	pc, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client.ConnectPublisher(pc, publisher.PublicKey())
	lc, err := net.Dial("tcp", routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rx, err := client.Listen(lc)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := scbr.ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Subscribe(spec); err != nil {
		t.Fatal(err)
	}
	header := scbr.EventSpec{Attrs: []scbr.NamedValue{
		{Name: "symbol", Value: scbr.Str("HAL")},
		{Name: "price", Value: scbr.Float(42)},
	}}
	if err := publisher.Publish(header, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-rx:
		if d.Err != nil || string(d.Payload) != "payload" {
			t.Fatalf("delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

// TestEmbeddedEngines covers the facade's engine constructors.
func TestEmbeddedEngines(t *testing.T) {
	plain, err := scbr.NewPlainEngine(scbr.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := scbr.NewDevice([]byte("facade-engine"))
	if err != nil {
		t.Fatal(err)
	}
	enclaved, enclave, err := scbr.NewEnclaveEngine(dev, scbr.EnclaveConfig{}, scbr.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if enclave.MRENCLAVE() == [32]byte{} {
		t.Fatal("enclave has empty measurement")
	}
	split, splitEnclave, err := scbr.NewSplitEngine(dev, scbr.EnclaveConfig{}, 1<<20, scbr.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if splitEnclave.MRENCLAVE() == enclave.MRENCLAVE() {
		t.Fatal("split engine image must measure differently")
	}
	spec := scbr.SubscriptionSpec{Predicates: []scbr.Predicate{
		{Attr: "x", Op: scbr.OpGt, Value: scbr.Float(0)},
	}}
	for _, e := range []*scbr.Engine{plain, enclaved, split} {
		if _, err := e.Register(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A split cache larger than the EPC is rejected.
	if _, _, err := scbr.NewSplitEngine(dev, scbr.EnclaveConfig{EPCBytes: 1 << 20}, 2<<20, scbr.EngineOptions{}); err == nil {
		t.Fatal("oversized split cache accepted")
	}
}

// TestWorkloadFacade covers the workload re-exports.
func TestWorkloadFacade(t *testing.T) {
	if got := len(scbr.Table1Workloads()); got != 9 {
		t.Fatalf("Table1Workloads = %d", got)
	}
	wl, err := scbr.WorkloadByName("e80a1")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := scbr.NewQuoteSet(1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := scbr.NewWorkloadGenerator(wl, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Subscriptions(5)) != 5 || len(gen.Publications(5)) != 5 {
		t.Fatal("generator counts wrong")
	}
	if _, err := scbr.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
