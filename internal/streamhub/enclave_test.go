package streamhub

import (
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// testEnclave wraps one enclave-backed slice for the enclave hub test.
type testEnclave struct {
	enclave *sgx.Enclave
	mem     *sgx.Accessor
}

func newTestEnclave() (*testEnclave, error) {
	dev, err := sgx.NewDevice([]byte("streamhub-test"), simmem.DefaultCost())
	if err != nil {
		return nil, err
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, err
	}
	e, err := dev.Launch([]byte("streamhub slice image"), signer.Public(), sgx.EnclaveConfig{})
	if err != nil {
		return nil, err
	}
	return &testEnclave{enclave: e, mem: e.Memory()}, nil
}

func (t *testEnclave) ecall(fn func() error) error { return t.enclave.Ecall(fn) }

func (t *testEnclave) transitions() uint64 { return t.mem.Meter().C.Transitions }
