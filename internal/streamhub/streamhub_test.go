package streamhub

import (
	"math/rand"
	"sort"
	"testing"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/simmem"
)

func randomSpec(rng *rand.Rand) pubsub.SubscriptionSpec {
	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	var preds []pubsub.Predicate
	if rng.Intn(3) > 0 {
		preds = append(preds, pubsub.Predicate{
			Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str(symbols[rng.Intn(len(symbols))]),
		})
	}
	preds = append(preds, pubsub.Predicate{
		Attr: "price", Op: pubsub.OpLt, Value: pubsub.Float(float64(rng.Intn(100))),
	})
	return pubsub.SubscriptionSpec{Predicates: preds}
}

func randomEvent(t *testing.T, rng *rand.Rand, schema *pubsub.Schema) *pubsub.Event {
	t.Helper()
	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	ev, err := pubsub.NewEvent(schema, map[string]pubsub.Value{
		"symbol": pubsub.Str(symbols[rng.Intn(len(symbols))]),
		"price":  pubsub.Float(float64(rng.Intn(120))),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestHubEquivalentToSingleEngine(t *testing.T) {
	hub, err := NewPlain(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	singleSchema := pubsub.NewSchema()
	single, err := core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), singleSchema, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		spec := randomSpec(rng)
		if _, err := hub.Register(spec, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Register(spec, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		evHub := randomEvent(t, rng, hub.schema)
		evSingle, err := pubsub.NewEvent(singleSchema, map[string]pubsub.Value{
			"symbol": {Kind: pubsub.KindString, S: mustGet(evHub, hub.schema, "symbol").S},
			"price":  {Kind: pubsub.KindFloat, F: mustGet(evHub, hub.schema, "price").F},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := hub.Match(evHub)
		if err != nil {
			t.Fatal(err)
		}
		b, err := single.Match(evSingle)
		if err != nil {
			t.Fatal(err)
		}
		// Same number of matches and the same client refs.
		if len(a) != len(b) {
			t.Fatalf("event %d: hub %d matches, single %d", i, len(a), len(b))
		}
		ra, rb := make([]uint32, len(a)), make([]uint32, len(b))
		for j := range a {
			ra[j] = a[j].ClientRef
			rb[j] = b[j].ClientRef
		}
		sort.Slice(ra, func(x, y int) bool { return ra[x] < ra[y] })
		sort.Slice(rb, func(x, y int) bool { return rb[x] < rb[y] })
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("event %d: hub clients %v, single %v", i, ra, rb)
			}
		}
	}
}

func mustGet(ev *pubsub.Event, schema *pubsub.Schema, name string) pubsub.Value {
	id, _ := schema.Lookup(name)
	v, _ := ev.Get(id)
	return v
}

func TestHubBalancesPartitions(t *testing.T) {
	hub, err := NewPlain(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if _, err := hub.Register(randomSpec(rng), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := hub.Stats()
	if st.Subscriptions != 1000 || st.Partitions != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// Register fills a shard of the least-loaded slice each time
	// (budget-normalised; equal here), so slice loads stay within one
	// of each other: 1000 subscriptions over 4 slices is exactly 250
	// each — balance the old shard-count proxy could not guarantee
	// when the placement map dealt slices unequal shard counts.
	for i, n := range st.PerPartition {
		if n != 250 {
			t.Fatalf("partition %d holds %d subscriptions, want 250 (%v)", i, n, st.PerPartition)
		}
	}
	loads, budgets := hub.SliceLoads()
	for i, b := range loads {
		if b != 250 {
			t.Fatalf("slice %d load %d, want 250 (flat entry cost) (%v)", i, b, loads)
		}
		if budgets[i] != 0 {
			t.Fatalf("slice %d budget %d, want 0 (none set)", i, budgets[i])
		}
	}
}

func TestHubBudgetWeightedPlacement(t *testing.T) {
	hub, err := NewPlain(2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Slice 0 gets three times slice 1's EPC budget, so with a flat
	// entry cost it should absorb three quarters of the registrations.
	hub.SetSliceBudgets([]uint64{3 << 20, 1 << 20})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if _, err := hub.Register(randomSpec(rng), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := hub.Stats()
	if st.PerPartition[0] < 740 || st.PerPartition[0] > 760 {
		t.Fatalf("budget-weighted placement: partitions hold %v, want ~[750 250]", st.PerPartition)
	}
}

func TestHubParallelSpeedup(t *testing.T) {
	// The makespan of a 4-way hub must be well below the total work —
	// that is the point of partitioned matching.
	hub, err := NewPlain(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		if _, err := hub.Register(randomSpec(rng), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	var makespan, total uint64
	for i := 0; i < 50; i++ {
		_, stats, err := hub.Match(randomEvent(t, rng, hub.schema))
		if err != nil {
			t.Fatal(err)
		}
		makespan += stats.MakespanCycles
		total += stats.TotalCycles
	}
	if makespan == 0 || total == 0 {
		t.Fatal("no cycles recorded")
	}
	speedup := float64(total) / float64(makespan)
	if speedup < 1.5 {
		t.Fatalf("speedup = %.2f, want ≥ 1.5 with 4 partitions", speedup)
	}
}

func TestHubUnregister(t *testing.T) {
	hub, err := NewPlain(2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "price", Op: pubsub.OpGt, Value: pubsub.Float(0)},
	}}
	id, err := hub.Register(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := pubsub.NewEvent(hub.schema, map[string]pubsub.Value{"price": pubsub.Float(5)})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := hub.Match(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SubID != id {
		t.Fatalf("match = %v, want hub id %d", got, id)
	}
	if err := hub.Unregister(id); err != nil {
		t.Fatal(err)
	}
	got, _, err = hub.Match(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("match after unregister = %v", got)
	}
	if err := hub.Unregister(id); err == nil {
		t.Fatal("double unregister succeeded")
	}
	if st := hub.Stats(); st.Subscriptions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHubValidation(t *testing.T) {
	if _, err := NewPlain(0, core.Options{}); err == nil {
		t.Fatal("zero partitions accepted")
	}
	hub, err := NewPlain(1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register(pubsub.SubscriptionSpec{}, 1); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestHubDirectSliceAPI(t *testing.T) {
	// The At/In methods are the gate-less surface the broker's
	// partitioned router drives: hash placement onto virtual shards,
	// shard→slice resolution, direct register/unregister, single slice
	// matching, and ID-addressed re-registration for restore.
	hub, err := NewPlain(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "price", Op: pubsub.OpGt, Value: pubsub.Float(0)},
	}}
	sub, err := pubsub.Normalize(hub.Schema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	shard := hub.ShardForKey([]byte("alice"), []byte("blob-1"))
	if again := hub.ShardForKey([]byte("alice"), []byte("blob-1")); again != shard {
		t.Fatalf("placement not deterministic: %d then %d", shard, again)
	}
	if a, b := hub.ShardForKey([]byte("ab"), []byte("c")), hub.ShardForKey([]byte("a"), []byte("bc")); a == b {
		// Not a hard guarantee for every pair, but these two must not
		// collide by mere concatenation; the separator keeps part
		// boundaries significant.
		t.Logf("note: (ab,c) and (a,bc) hashed to the same shard %d", a)
	}
	target := hub.SliceForShard(shard)
	if target < 0 || target >= hub.Partitions() {
		t.Fatalf("shard %d placed on slice %d of %d", shard, target, hub.Partitions())
	}
	id, err := hub.RegisterNormalizedAt(shard, target, sub, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ShardOf(id) != shard {
		t.Fatalf("hub ID %d names shard %d, registered for %d", id, ShardOf(id), shard)
	}
	if owner, ok := hub.OwnerSlice(id); !ok || owner != target {
		t.Fatalf("OwnerSlice(%d) = %d,%v, want %d", id, owner, ok, target)
	}
	ev, err := pubsub.NewEvent(hub.Schema(), map[string]pubsub.Value{"price": pubsub.Float(5)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hub.MatchSlice(target, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SubID != id || got[0].ClientRef != 7 {
		t.Fatalf("MatchSlice = %v, want hub id %d for client 7", got, id)
	}
	for i := 0; i < hub.Partitions(); i++ {
		if i == target {
			continue
		}
		if other, err := hub.MatchSlice(i, ev, nil); err != nil || len(other) != 0 {
			t.Fatalf("slice %d matched %v (err %v), want empty", i, other, err)
		}
	}
	if err := hub.UnregisterIn(id); err != nil {
		t.Fatal(err)
	}
	if err := hub.UnregisterIn(id); err == nil {
		t.Fatal("double UnregisterIn succeeded")
	}
	// Restore lands the subscription back on the slice its shard
	// occupies under the placement map.
	if err := hub.RegisterAssignedIn(sub, 7, id); err != nil {
		t.Fatal(err)
	}
	got, err = hub.MatchSlice(target, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SubID != id {
		t.Fatalf("after restore, MatchSlice = %v, want %d", got, id)
	}
	if st := hub.Stats(); st.Subscriptions != 1 || st.PerPartition[target] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	bad := composeID(hub.Placement().Shards(), 1)
	if err := hub.RegisterAssignedIn(sub, 7, bad); err == nil {
		t.Fatal("RegisterAssignedIn accepted an out-of-range shard")
	}
	if _, err := hub.RegisterNormalizedAt(hub.Placement().Shards(), target, sub, 7); err == nil {
		t.Fatal("RegisterNormalizedAt accepted an out-of-range shard")
	}
	if _, err := hub.RegisterNormalizedAt(shard, hub.Partitions(), sub, 7); err == nil {
		t.Fatal("RegisterNormalizedAt accepted an out-of-range slice")
	}
}

func TestHubElasticResize(t *testing.T) {
	// The resize surface the broker's migration engine drives: AddSlice
	// grows the hub, ImportAssigned relocates a subscription under its
	// existing ID, DropCopy sweeps the stale copy, RemoveSlicesFrom
	// refuses while a removed slice still owns subscriptions and
	// succeeds after migration back.
	hub, err := NewPlain(2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "price", Op: pubsub.OpGt, Value: pubsub.Float(0)},
	}}
	enc, err := pubsub.EncodeSubscriptionSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	shard := hub.ShardForKey([]byte("mover"))
	src := hub.SliceForShard(shard)
	id, err := hub.RegisterEncodedAt(shard, src, enc, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Grow: a third slice joins the fan-out.
	engine, err := core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), hub.Schema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.AddSlice(scheme.NewPlainSlice(engine, hub.Schema())); err != nil {
		t.Fatal(err)
	}
	if hub.Partitions() != 3 {
		t.Fatalf("partitions = %d after AddSlice, want 3", hub.Partitions())
	}
	// Migrate the subscription to the new slice under its existing ID.
	if err := hub.ImportAssigned(2, enc, 9, id); err != nil {
		t.Fatal(err)
	}
	if owner, ok := hub.OwnerSlice(id); !ok || owner != 2 {
		t.Fatalf("OwnerSlice(%d) = %d,%v after import, want 2", id, owner, ok)
	}
	evEnc, err := pubsub.EncodeEventSpec(pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "price", Value: pubsub.Float(5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hub.MatchEncodedIn(2, evEnc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SubID != id || got[0].ClientRef != 9 {
		t.Fatalf("new slice matched %v, want id %d for client 9", got, id)
	}
	// Both copies exist until the sweep; DropCopy on the owner is a
	// refusal, on the source it removes the stale copy.
	hub.DropCopy(2, id)
	if got, err = hub.MatchEncodedIn(2, evEnc, nil); err != nil || len(got) != 1 {
		t.Fatalf("DropCopy removed the owning copy: %v (err %v)", got, err)
	}
	hub.DropCopy(src, id)
	if got, err = hub.MatchEncodedIn(src, evEnc, nil); err != nil || len(got) != 0 {
		t.Fatalf("source still matches %v after DropCopy (err %v)", got, err)
	}
	// Shrink refuses while slice 2 owns the subscription.
	if err := hub.RemoveSlicesFrom(2); err == nil {
		t.Fatal("RemoveSlicesFrom dropped a populated slice")
	}
	// Migrate back, sweep, then shrink succeeds.
	if err := hub.ImportAssigned(src, enc, 9, id); err != nil {
		t.Fatal(err)
	}
	hub.DropCopy(2, id)
	if err := hub.RemoveSlicesFrom(2); err != nil {
		t.Fatal(err)
	}
	if hub.Partitions() != 2 {
		t.Fatalf("partitions = %d after shrink, want 2", hub.Partitions())
	}
	if got, err = hub.MatchEncodedIn(src, evEnc, nil); err != nil || len(got) != 1 || got[0].SubID != id {
		t.Fatalf("after shrink, source matches %v (err %v), want id %d", got, err, id)
	}
	if err := hub.UnregisterIn(id); err != nil {
		t.Fatal(err)
	}
}

func TestHubPartitionBound(t *testing.T) {
	if _, err := NewPlain(MaxPartitions+1, core.Options{}); err == nil {
		t.Fatalf("%d partitions accepted, ID top byte would overflow", MaxPartitions+1)
	}
}

func TestHubEnclaveSlices(t *testing.T) {
	// Enclave-backed slices: each partition gets its own enclave, as
	// the replicated key-management deployment of §3.4 would.
	schema := pubsub.NewSchema()
	enclaves := make([]*testEnclave, 0, 2)
	hub, err := New(2, schema,
		func(i int, s *pubsub.Schema) (*core.Engine, error) {
			e, err := newTestEnclave()
			if err != nil {
				return nil, err
			}
			enclaves = append(enclaves, e)
			return core.NewEngine(e.mem, s, core.Options{})
		},
		func(i int, fn func() error) error { return enclaves[i].ecall(fn) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		if _, err := hub.Register(randomSpec(rng), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, stats, err := hub.Match(randomEvent(t, rng, schema))
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	if stats.TotalCycles == 0 {
		t.Fatal("enclave slices recorded no cycles")
	}
	// Both enclaves saw transitions.
	for i, e := range enclaves {
		if e.transitions() == 0 {
			t.Fatalf("enclave %d saw no ecalls", i)
		}
	}
}
