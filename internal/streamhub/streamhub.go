// Package streamhub implements the scaling architecture §3.4 of the
// paper advocates instead of broker overlays: following StreamHub
// (Barazzutti et al., DEBS'13), the subscription database is
// partitioned across independent matching engines ("matcher slices")
// behind a single ingress. A publication is matched by every slice in
// parallel and the result sets are merged; the publisher↔matcher key
// management of SCBR "could be simply replicated" per slice, which is
// exactly what the enclave-backed constructor does.
//
// Partitioning also attacks the paper's EPC-exhaustion problem
// (Fig. 8): each slice only holds 1/k of the database, so a database
// that would page on one enclave fits k enclaves' EPCs.
package streamhub

import (
	"fmt"
	"hash/fnv"
	"sync"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/simmem"
)

// Hub fans registrations and matches across partitioned slices. Two
// constructions exist:
//
//   - engine-backed (New/NewPlain): every partition is a containment
//     engine; the typed surface (Register, Match, Engine) operates on
//     normalised subscriptions and interned events directly.
//
//   - scheme-backed (NewFromSlices): every partition is a
//     scheme-provided Slice storing whatever the scheme's wire
//     encoding carries — the broker's data plane, where the matching
//     scheme (sgx-plain, aspe, ...) owns storage and matching and the
//     hub owns ID packing, placement, and load accounting. Only the
//     encoded surface (RegisterEncodedIn, MatchEncodedIn, ...) is
//     available.
//
// Engine-backed partitions also expose the encoded surface (they wrap
// their engine in the plain scheme's slice adapter), so callers can be
// written against the scheme-agnostic API alone.
type Hub struct {
	mu     sync.Mutex
	schema *pubsub.Schema
	parts  []*partition
	owner  map[uint64]int // subscription ID → partition index
}

// Engine IDs are per-partition; the hub exposes hub-wide IDs by
// packing the partition index into the top byte.
const (
	idShift = 56
	idMask  = (uint64(1) << idShift) - 1
)

// MaxPartitions bounds a hub's slice count: the partition index must
// fit the top byte of a hub subscription ID.
const MaxPartitions = 256

func composeID(part int, engineID uint64) uint64 {
	return uint64(part)<<idShift | engineID
}

// PartitionOf returns the partition index packed into a hub ID.
func PartitionOf(hubID uint64) int { return int(hubID >> idShift) }

type partition struct {
	engine *core.Engine // nil for scheme-backed partitions
	slice  scheme.Slice // always non-nil
	subs   int
	enter  func(func() error) error // enclave call gate, or nil
}

// New builds a hub with k partitions whose engines are produced by
// newEngine (called with the shared schema and the partition index).
// enter optionally wraps engine calls in an enclave transition
// (pass nil for plain slices).
func New(k int, schema *pubsub.Schema,
	newEngine func(i int, schema *pubsub.Schema) (*core.Engine, error),
	enter func(i int, fn func() error) error) (*Hub, error) {
	if k <= 0 {
		return nil, fmt.Errorf("streamhub: need at least one partition, got %d", k)
	}
	if k > MaxPartitions {
		return nil, fmt.Errorf("streamhub: %d partitions exceed the ID space (max %d)", k, MaxPartitions)
	}
	h := &Hub{schema: schema, owner: make(map[uint64]int)}
	for i := 0; i < k; i++ {
		engine, err := newEngine(i, schema)
		if err != nil {
			return nil, fmt.Errorf("streamhub: building partition %d: %w", i, err)
		}
		p := &partition{engine: engine, slice: scheme.NewPlainSlice(engine, schema)}
		if enter != nil {
			idx := i
			p.enter = func(fn func() error) error { return enter(idx, fn) }
		}
		h.parts = append(h.parts, p)
	}
	return h, nil
}

// NewFromSlices builds a hub over pre-built scheme slices — the
// broker's partitioned data plane, where the matching scheme owns
// per-slice storage and the broker runs its own fan-out and enclave
// transitions. Only the encoded surface applies; the typed
// normalised-subscription methods return errors.
func NewFromSlices(schema *pubsub.Schema, slices []scheme.Slice) (*Hub, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("streamhub: need at least one slice")
	}
	if len(slices) > MaxPartitions {
		return nil, fmt.Errorf("streamhub: %d slices exceed the ID space (max %d)", len(slices), MaxPartitions)
	}
	h := &Hub{schema: schema, owner: make(map[uint64]int)}
	for _, s := range slices {
		if s == nil {
			return nil, fmt.Errorf("streamhub: nil slice")
		}
		h.parts = append(h.parts, &partition{slice: s})
	}
	return h, nil
}

// NewPlain builds a hub of k plain-memory slices with the default cost
// model — the common StreamHub deployment where matchers are ordinary
// processes.
func NewPlain(k int, opts core.Options) (*Hub, error) {
	schema := pubsub.NewSchema()
	return New(k, schema, func(_ int, s *pubsub.Schema) (*core.Engine, error) {
		return core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), s, opts)
	}, nil)
}

// Partitions returns the number of slices.
func (h *Hub) Partitions() int { return len(h.parts) }

// Schema returns the shared attribute intern table; events matched
// against the hub must be interned through it.
func (h *Hub) Schema() *pubsub.Schema { return h.schema }

// Register inserts the subscription into the least-loaded slice.
func (h *Hub) Register(spec pubsub.SubscriptionSpec, clientRef uint32) (uint64, error) {
	sub, err := pubsub.Normalize(h.schema, spec)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	target := 0
	for i, p := range h.parts {
		if p.subs < h.parts[target].subs {
			target = i
		}
	}
	p := h.parts[target]
	p.subs++
	h.mu.Unlock()

	var id uint64
	register := func() error {
		var err error
		id, err = p.engine.RegisterNormalized(sub, clientRef)
		return err
	}
	if p.enter != nil {
		err = p.enter(register)
	} else {
		err = register()
	}
	if err != nil {
		h.mu.Lock()
		p.subs--
		h.mu.Unlock()
		return 0, err
	}
	hubID := composeID(target, id)
	h.mu.Lock()
	h.owner[hubID] = target
	h.mu.Unlock()
	return hubID, nil
}

// Unregister removes a hub subscription.
func (h *Hub) Unregister(hubID uint64) error {
	h.mu.Lock()
	target, ok := h.owner[hubID]
	if ok {
		delete(h.owner, hubID)
		h.parts[target].subs--
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("streamhub: %w: %d", core.ErrUnknownSubscription, hubID)
	}
	p := h.parts[target]
	remove := func() error { return p.slice.Unregister(hubID & idMask) }
	if p.enter != nil {
		return p.enter(remove)
	}
	return remove()
}

// The "In" methods below are the direct per-slice surface for callers
// that run their own fan-out and enclave transitions — the broker's
// partitioned router, whose per-partition resident workers and
// registration ecalls are already inside the slice's enclave when the
// hub is consulted. They skip the optional enter gate; everything else
// (ID packing, load accounting) matches the gated methods.

// Engine returns partition i's engine (experiments and the broker's
// per-slice meters read it). Nil for scheme-backed partitions whose
// scheme is not engine-based.
func (h *Hub) Engine(i int) *core.Engine { return h.parts[i].engine }

// Slice returns partition i's scheme store — the broker configures
// scheme parameters through it under its own partition locks.
func (h *Hub) Slice(i int) scheme.Slice { return h.parts[i].slice }

// RegisterEncodedIn ingests one wire-encoded subscription into
// partition target directly, with no call gate, returning its hub ID.
func (h *Hub) RegisterEncodedIn(target int, enc []byte, clientRef uint32) (uint64, error) {
	if target < 0 || target >= len(h.parts) {
		return 0, fmt.Errorf("streamhub: partition %d of %d", target, len(h.parts))
	}
	p := h.parts[target]
	id, err := p.slice.RegisterEncoded(enc, clientRef)
	if err != nil {
		return 0, err
	}
	hubID := composeID(target, id)
	h.mu.Lock()
	p.subs++
	h.owner[hubID] = target
	h.mu.Unlock()
	return hubID, nil
}

// RegisterEncodedAssigned re-ingests a wire-encoded subscription under
// a previously issued hub ID — the state-restore path; the target
// partition is the one packed into the ID.
func (h *Hub) RegisterEncodedAssigned(enc []byte, clientRef uint32, hubID uint64) error {
	target := PartitionOf(hubID)
	if target >= len(h.parts) {
		return fmt.Errorf("streamhub: hub ID %d names partition %d, but the hub has %d", hubID, target, len(h.parts))
	}
	p := h.parts[target]
	if err := p.slice.RegisterEncodedAssigned(enc, clientRef, hubID&idMask); err != nil {
		return err
	}
	h.mu.Lock()
	p.subs++
	h.owner[hubID] = target
	h.mu.Unlock()
	return nil
}

// MatchEncodedIn matches one wire-encoded publication header against
// partition i only, appending to out with slice-local IDs rewritten
// into hub IDs.
func (h *Hub) MatchEncodedIn(i int, enc []byte, out []core.MatchResult) ([]core.MatchResult, error) {
	n := len(out)
	out, err := h.parts[i].slice.MatchEncoded(enc, out)
	if err != nil {
		return nil, err
	}
	for j := n; j < len(out); j++ {
		out[j].SubID = composeID(i, out[j].SubID)
	}
	return out, nil
}

// MatchEncodedBatchIn matches a batch of wire-encoded publication
// headers against partition i in one store pass, appending encs[j]'s
// matches to out[j] with slice-local IDs rewritten into hub IDs. The
// per-item append semantics are the slice's MatchEncodedBatch: items
// that fail to decode contribute nothing, and the error return is
// reserved for whole-store failures. Safe to call concurrently for
// different partitions (the broker's parallel fan-out does).
func (h *Hub) MatchEncodedBatchIn(i int, encs [][]byte, out [][]core.MatchResult) error {
	// The broker's hot path hands in freshly truncated rows; only
	// remember pre-call lengths when a caller appends onto prior
	// results, so the common case allocates nothing.
	var ns []int
	for j := range encs {
		if len(out[j]) > 0 {
			ns = make([]int, len(encs))
			for k := range encs {
				ns[k] = len(out[k])
			}
			break
		}
	}
	if err := h.parts[i].slice.MatchEncodedBatch(encs, out); err != nil {
		return err
	}
	for j := range encs {
		start := 0
		if ns != nil {
			start = ns[j]
		}
		for k := start; k < len(out[j]); k++ {
			out[j][k].SubID = composeID(i, out[j][k].SubID)
		}
	}
	return nil
}

// PlaceKey deterministically places a registration key on a slice
// (FNV-1a over the key parts, 0xff-separated so part boundaries are
// significant). Hash placement needs no coordination between
// registering connections and is stable across restarts.
func (h *Hub) PlaceKey(parts ...[]byte) int {
	hash := fnv.New64a()
	for _, part := range parts {
		_, _ = hash.Write(part)
		_, _ = hash.Write([]byte{0xff})
	}
	return int(hash.Sum64() % uint64(len(h.parts)))
}

// RegisterNormalizedIn inserts an already-normalised subscription into
// partition target directly, with no call gate.
func (h *Hub) RegisterNormalizedIn(target int, sub *pubsub.Subscription, clientRef uint32) (uint64, error) {
	if target < 0 || target >= len(h.parts) {
		return 0, fmt.Errorf("streamhub: partition %d of %d", target, len(h.parts))
	}
	p := h.parts[target]
	id, err := p.engine.RegisterNormalized(sub, clientRef)
	if err != nil {
		return 0, err
	}
	hubID := composeID(target, id)
	h.mu.Lock()
	p.subs++
	h.owner[hubID] = target
	h.mu.Unlock()
	return hubID, nil
}

// RegisterAssignedIn re-inserts a subscription under a previously
// issued hub ID — the state-restore path. The target partition is the
// one packed into the ID, so a restored database lands exactly where
// the sealed log says it lived.
func (h *Hub) RegisterAssignedIn(sub *pubsub.Subscription, clientRef uint32, hubID uint64) error {
	target := PartitionOf(hubID)
	if target >= len(h.parts) {
		return fmt.Errorf("streamhub: hub ID %d names partition %d, but the hub has %d", hubID, target, len(h.parts))
	}
	p := h.parts[target]
	if err := p.engine.RegisterAssigned(sub, clientRef, hubID&idMask); err != nil {
		return err
	}
	h.mu.Lock()
	p.subs++
	h.owner[hubID] = target
	h.mu.Unlock()
	return nil
}

// UnregisterIn removes a hub subscription directly, with no call gate.
func (h *Hub) UnregisterIn(hubID uint64) error {
	h.mu.Lock()
	target, ok := h.owner[hubID]
	if ok {
		delete(h.owner, hubID)
		h.parts[target].subs--
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("streamhub: %w: %d", core.ErrUnknownSubscription, hubID)
	}
	return h.parts[target].slice.Unregister(hubID & idMask)
}

// MatchSlice matches ev against one slice only, appending to out with
// engine IDs rewritten into hub IDs — the per-partition half of Match
// for callers running their own fan-out.
func (h *Hub) MatchSlice(i int, ev *pubsub.Event, out []core.MatchResult) ([]core.MatchResult, error) {
	n := len(out)
	out, err := h.parts[i].engine.MatchAppend(ev, out)
	if err != nil {
		return nil, err
	}
	for j := n; j < len(out); j++ {
		out[j].SubID = composeID(i, out[j].SubID)
	}
	return out, nil
}

// MatchStats reports the simulated cost of one fan-out match.
type MatchStats struct {
	// MakespanCycles is the slowest slice's cycle count — the simulated
	// latency when slices run in parallel (separate machines/cores).
	MakespanCycles uint64
	// TotalCycles sums all slices — the work a single machine would do.
	TotalCycles uint64
}

// Match fans the event out to every slice in parallel and merges the
// results, rewriting engine IDs into hub IDs.
func (h *Hub) Match(ev *pubsub.Event) ([]core.MatchResult, MatchStats, error) {
	type sliceResult struct {
		idx     int
		matches []core.MatchResult
		cycles  uint64
		err     error
	}
	results := make([]sliceResult, len(h.parts))
	var wg sync.WaitGroup
	for i, p := range h.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			meter := p.engine.Accessor().Meter()
			before := meter.C.Cycles
			match := func() error {
				var err error
				results[i].matches, err = p.engine.Match(ev)
				return err
			}
			var err error
			if p.enter != nil {
				err = p.enter(match)
			} else {
				err = match()
			}
			results[i] = sliceResult{
				idx:     i,
				matches: results[i].matches,
				cycles:  meter.C.Cycles - before,
				err:     err,
			}
		}(i, p)
	}
	wg.Wait()

	var out []core.MatchResult
	var stats MatchStats
	for _, r := range results {
		if r.err != nil {
			return nil, stats, fmt.Errorf("streamhub: partition %d: %w", r.idx, r.err)
		}
		for _, m := range r.matches {
			m.SubID = composeID(r.idx, m.SubID)
			out = append(out, m)
		}
		stats.TotalCycles += r.cycles
		if r.cycles > stats.MakespanCycles {
			stats.MakespanCycles = r.cycles
		}
	}
	return out, stats, nil
}

// Stats aggregates the partition engines.
type Stats struct {
	Partitions    int
	Subscriptions int
	// PerPartition lists each slice's live subscription count.
	PerPartition []int
	// Bytes sums the slices' arena footprints.
	Bytes uint64
}

// Stats returns hub statistics.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{Partitions: len(h.parts)}
	for _, p := range h.parts {
		es := p.slice.Stats()
		st.Subscriptions += es.Subscriptions
		st.PerPartition = append(st.PerPartition, es.Subscriptions)
		st.Bytes += es.Bytes
	}
	return st
}
