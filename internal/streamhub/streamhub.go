// Package streamhub implements the scaling architecture §3.4 of the
// paper advocates instead of broker overlays: following StreamHub
// (Barazzutti et al., DEBS'13), the subscription database is
// partitioned across independent matching engines ("matcher slices")
// behind a single ingress. A publication is matched by every slice in
// parallel and the result sets are merged; the publisher↔matcher key
// management of SCBR "could be simply replicated" per slice, which is
// exactly what the enclave-backed constructor does.
//
// Partitioning also attacks the paper's EPC-exhaustion problem
// (Fig. 8): each slice only holds 1/k of the database, so a database
// that would page on one enclave fits k enclaves' EPCs.
package streamhub

import (
	"fmt"
	"sync"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// Hub fans registrations and matches across partitioned engines.
type Hub struct {
	mu     sync.Mutex
	schema *pubsub.Schema
	parts  []*partition
	owner  map[uint64]int // subscription ID → partition index
}

type partition struct {
	engine *core.Engine
	subs   int
	enter  func(func() error) error // enclave call gate, or nil
}

// New builds a hub with k partitions whose engines are produced by
// newEngine (called with the shared schema and the partition index).
// enter optionally wraps engine calls in an enclave transition
// (pass nil for plain slices).
func New(k int, schema *pubsub.Schema,
	newEngine func(i int, schema *pubsub.Schema) (*core.Engine, error),
	enter func(i int, fn func() error) error) (*Hub, error) {
	if k <= 0 {
		return nil, fmt.Errorf("streamhub: need at least one partition, got %d", k)
	}
	h := &Hub{schema: schema, owner: make(map[uint64]int)}
	for i := 0; i < k; i++ {
		engine, err := newEngine(i, schema)
		if err != nil {
			return nil, fmt.Errorf("streamhub: building partition %d: %w", i, err)
		}
		p := &partition{engine: engine}
		if enter != nil {
			idx := i
			p.enter = func(fn func() error) error { return enter(idx, fn) }
		}
		h.parts = append(h.parts, p)
	}
	return h, nil
}

// NewPlain builds a hub of k plain-memory slices with the default cost
// model — the common StreamHub deployment where matchers are ordinary
// processes.
func NewPlain(k int, opts core.Options) (*Hub, error) {
	schema := pubsub.NewSchema()
	return New(k, schema, func(_ int, s *pubsub.Schema) (*core.Engine, error) {
		return core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), s, opts)
	}, nil)
}

// Partitions returns the number of slices.
func (h *Hub) Partitions() int { return len(h.parts) }

// Schema returns the shared attribute intern table; events matched
// against the hub must be interned through it.
func (h *Hub) Schema() *pubsub.Schema { return h.schema }

// Register inserts the subscription into the least-loaded slice.
func (h *Hub) Register(spec pubsub.SubscriptionSpec, clientRef uint32) (uint64, error) {
	sub, err := pubsub.Normalize(h.schema, spec)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	target := 0
	for i, p := range h.parts {
		if p.subs < h.parts[target].subs {
			target = i
		}
	}
	p := h.parts[target]
	p.subs++
	h.mu.Unlock()

	var id uint64
	register := func() error {
		var err error
		id, err = p.engine.RegisterNormalized(sub, clientRef)
		return err
	}
	if p.enter != nil {
		err = p.enter(register)
	} else {
		err = register()
	}
	if err != nil {
		h.mu.Lock()
		p.subs--
		h.mu.Unlock()
		return 0, err
	}
	// Engine IDs are per-partition; expose a hub-wide ID by packing
	// the partition into the top byte.
	hubID := uint64(target)<<56 | id
	h.mu.Lock()
	h.owner[hubID] = target
	h.mu.Unlock()
	return hubID, nil
}

// Unregister removes a hub subscription.
func (h *Hub) Unregister(hubID uint64) error {
	h.mu.Lock()
	target, ok := h.owner[hubID]
	if ok {
		delete(h.owner, hubID)
		h.parts[target].subs--
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("streamhub: %w: %d", core.ErrUnknownSubscription, hubID)
	}
	p := h.parts[target]
	remove := func() error { return p.engine.Unregister(hubID &^ (uint64(0xFF) << 56)) }
	if p.enter != nil {
		return p.enter(remove)
	}
	return remove()
}

// MatchStats reports the simulated cost of one fan-out match.
type MatchStats struct {
	// MakespanCycles is the slowest slice's cycle count — the simulated
	// latency when slices run in parallel (separate machines/cores).
	MakespanCycles uint64
	// TotalCycles sums all slices — the work a single machine would do.
	TotalCycles uint64
}

// Match fans the event out to every slice in parallel and merges the
// results, rewriting engine IDs into hub IDs.
func (h *Hub) Match(ev *pubsub.Event) ([]core.MatchResult, MatchStats, error) {
	type sliceResult struct {
		idx     int
		matches []core.MatchResult
		cycles  uint64
		err     error
	}
	results := make([]sliceResult, len(h.parts))
	var wg sync.WaitGroup
	for i, p := range h.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			meter := p.engine.Accessor().Meter()
			before := meter.C.Cycles
			match := func() error {
				var err error
				results[i].matches, err = p.engine.Match(ev)
				return err
			}
			var err error
			if p.enter != nil {
				err = p.enter(match)
			} else {
				err = match()
			}
			results[i] = sliceResult{
				idx:     i,
				matches: results[i].matches,
				cycles:  meter.C.Cycles - before,
				err:     err,
			}
		}(i, p)
	}
	wg.Wait()

	var out []core.MatchResult
	var stats MatchStats
	for _, r := range results {
		if r.err != nil {
			return nil, stats, fmt.Errorf("streamhub: partition %d: %w", r.idx, r.err)
		}
		for _, m := range r.matches {
			m.SubID = uint64(r.idx)<<56 | m.SubID
			out = append(out, m)
		}
		stats.TotalCycles += r.cycles
		if r.cycles > stats.MakespanCycles {
			stats.MakespanCycles = r.cycles
		}
	}
	return out, stats, nil
}

// Stats aggregates the partition engines.
type Stats struct {
	Partitions    int
	Subscriptions int
	// PerPartition lists each slice's live subscription count.
	PerPartition []int
	// Bytes sums the slices' arena footprints.
	Bytes uint64
}

// Stats returns hub statistics.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{Partitions: len(h.parts)}
	for _, p := range h.parts {
		es := p.engine.Stats()
		st.Subscriptions += es.Subscriptions
		st.PerPartition = append(st.PerPartition, es.Subscriptions)
		st.Bytes += es.Bytes
	}
	return st
}
