// Package streamhub implements the scaling architecture §3.4 of the
// paper advocates instead of broker overlays: following StreamHub
// (Barazzutti et al., DEBS'13), the subscription database is
// partitioned across independent matching engines ("matcher slices")
// behind a single ingress. A publication is matched by every slice in
// parallel and the result sets are merged; the publisher↔matcher key
// management of SCBR "could be simply replicated" per slice, which is
// exactly what the enclave-backed constructor does.
//
// Partitioning also attacks the paper's EPC-exhaustion problem
// (Fig. 8): each slice only holds 1/k of the database, so a database
// that would page on one enclave fits k enclaves' EPCs.
//
// Placement is elastic: registration keys hash onto fixed virtual
// shards (the top byte of every hub subscription ID), and a movable
// placement.Map assigns shards to slices. Slices can be added and
// removed at runtime (AddSlice, RemoveSlicesFrom) and whole shards
// relocated between them (ImportAssigned, DropCopy) while matching
// continues — the broker's migration engine drives those moves.
package streamhub

import (
	"fmt"
	"hash/fnv"
	"sync"

	"scbr/internal/core"
	"scbr/internal/placement"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/simmem"
)

// Hub fans registrations and matches across partitioned slices. Two
// constructions exist:
//
//   - engine-backed (New/NewPlain): every partition is a containment
//     engine; the typed surface (Register, Match, Engine) operates on
//     normalised subscriptions and interned events directly.
//
//   - scheme-backed (NewFromSlices/NewFromSlicesPlaced): every
//     partition is a scheme-provided Slice storing whatever the
//     scheme's wire encoding carries — the broker's data plane, where
//     the matching scheme (sgx-plain, aspe, ...) owns storage and
//     matching and the hub owns ID packing, placement, and load
//     accounting. Only the encoded surface (RegisterEncodedAt,
//     MatchEncodedIn, ...) is available.
//
// Engine-backed partitions also expose the encoded surface (they wrap
// their engine in the plain scheme's slice adapter), so callers can be
// written against the scheme-agnostic API alone.
//
// The hub assigns every subscription a full 64-bit ID up front —
// shard index in the top byte, a per-shard sequence below — and hands
// that ID to the slice store, so stored IDs ARE hub IDs: match
// results need no rewriting, and a subscription keeps its ID when its
// shard migrates to another slice.
//
// Locking: h.mu guards the owner/sequence/load bookkeeping. The
// partition list itself is only mutated by AddSlice and
// RemoveSlicesFrom; callers that resize concurrently with matching
// must externally fence those calls against in-flight match fan-outs
// (the broker holds its data-plane write lock across them).
type Hub struct {
	mu     sync.Mutex
	schema *pubsub.Schema
	parts  []*partition
	pm     *placement.Map
	owner  map[uint64]ownerRec // subscription ID → owning slice + footprint bytes
	// shardSeq is the per-shard ID sequence (next = shardSeq+1);
	// shardSubs counts live subscriptions per shard; shardBytes carries
	// each shard's estimated store footprint in bytes — the load the
	// typed Register balances, normalised by per-slice EPC budgets.
	shardSeq   []uint64
	shardSubs  []int
	shardBytes []uint64
	// entryCost estimates one subscription's store footprint from its
	// encoding length (-1 when no encoding is at hand — the typed
	// path). Nil charges a flat 1, which reduces byte-weighted
	// selection to subscription counting.
	entryCost func(encLen int) uint64
	// budgets holds each slice's EPC budget in bytes; nil or zero
	// entries weight all slices equally.
	budgets []uint64
}

// ownerRec remembers where a subscription lives and what it weighs, so
// removal can return its bytes to the shard's load account.
type ownerRec struct {
	slice int
	bytes uint64
}

// Hub subscription IDs pack the virtual shard index into the top byte
// and a per-shard sequence below it.
const (
	idShift = 56
	idMask  = (uint64(1) << idShift) - 1
)

// MaxPartitions bounds a hub's slice count: a slice must be able to
// own at least one whole shard, and shard indices fit the top byte of
// a hub subscription ID.
const MaxPartitions = placement.MaxShards

func composeID(shard int, seq uint64) uint64 {
	return uint64(shard)<<idShift | seq
}

// ShardOf returns the virtual shard index packed into a hub ID.
func ShardOf(hubID uint64) int { return int(hubID >> idShift) }

type partition struct {
	engine *core.Engine             // nil for scheme-backed partitions
	slice  scheme.Slice             // always non-nil
	enter  func(func() error) error // enclave call gate, or nil
}

func newPlacementFor(k int) (*placement.Map, error) {
	shards := placement.DefaultShards
	if k > shards {
		shards = k
	}
	return placement.New(shards, k, 0)
}

func (h *Hub) initShards() {
	h.shardSeq = make([]uint64, h.pm.Shards())
	h.shardSubs = make([]int, h.pm.Shards())
	h.shardBytes = make([]uint64, h.pm.Shards())
}

// SetEntryCost installs the per-subscription footprint estimator used
// by the load accounting — typically a scheme footprint model's
// EntryBytes. Must be set before the hub is used concurrently.
func (h *Hub) SetEntryCost(f func(encLen int) uint64) { h.entryCost = f }

// SetSliceBudgets installs each slice's EPC budget in bytes; the typed
// Register normalises slice byte loads by these when picking the
// least-loaded shard. Safe to call again after a resize.
func (h *Hub) SetSliceBudgets(budgets []uint64) {
	h.mu.Lock()
	h.budgets = append([]uint64(nil), budgets...)
	h.mu.Unlock()
}

// entryBytes prices one stored subscription. encLen is the wire
// encoding length, or -1 on the typed path where no encoding exists.
// Without an estimator every subscription weighs 1, reducing
// byte-weighted selection to subscription counting.
func (h *Hub) entryBytes(encLen int) uint64 {
	if h.entryCost == nil {
		return 1
	}
	if b := h.entryCost(encLen); b > 0 {
		return b
	}
	return 1
}

// New builds a hub with k partitions whose engines are produced by
// newEngine (called with the shared schema and the partition index).
// enter optionally wraps engine calls in an enclave transition
// (pass nil for plain slices).
func New(k int, schema *pubsub.Schema,
	newEngine func(i int, schema *pubsub.Schema) (*core.Engine, error),
	enter func(i int, fn func() error) error) (*Hub, error) {
	if k <= 0 {
		return nil, fmt.Errorf("streamhub: need at least one partition, got %d", k)
	}
	if k > MaxPartitions {
		return nil, fmt.Errorf("streamhub: %d partitions exceed the ID space (max %d)", k, MaxPartitions)
	}
	pm, err := newPlacementFor(k)
	if err != nil {
		return nil, fmt.Errorf("streamhub: %w", err)
	}
	h := &Hub{schema: schema, pm: pm, owner: make(map[uint64]ownerRec)}
	h.initShards()
	for i := 0; i < k; i++ {
		engine, err := newEngine(i, schema)
		if err != nil {
			return nil, fmt.Errorf("streamhub: building partition %d: %w", i, err)
		}
		p := &partition{engine: engine, slice: scheme.NewPlainSlice(engine, schema)}
		if enter != nil {
			idx := i
			p.enter = func(fn func() error) error { return enter(idx, fn) }
		}
		h.parts = append(h.parts, p)
	}
	return h, nil
}

// NewFromSlices builds a hub over pre-built scheme slices with a
// default placement map (placement.DefaultShards virtual shards,
// default seed).
func NewFromSlices(schema *pubsub.Schema, slices []scheme.Slice) (*Hub, error) {
	pm, err := newPlacementFor(len(slices))
	if err != nil {
		return nil, fmt.Errorf("streamhub: %w", err)
	}
	return NewFromSlicesPlaced(schema, slices, pm)
}

// NewFromSlicesPlaced builds a hub over pre-built scheme slices with a
// caller-owned placement map — the broker's partitioned data plane,
// where the matching scheme owns per-slice storage, the broker runs
// its own fan-out and enclave transitions, and the placement map is
// shared with the broker's migration engine. Only the encoded surface
// applies; the typed normalised-subscription methods return errors.
func NewFromSlicesPlaced(schema *pubsub.Schema, slices []scheme.Slice, pm *placement.Map) (*Hub, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("streamhub: need at least one slice")
	}
	if pm == nil {
		return nil, fmt.Errorf("streamhub: nil placement map")
	}
	if pm.Slices() != len(slices) {
		return nil, fmt.Errorf("streamhub: placement map covers %d slices, hub has %d", pm.Slices(), len(slices))
	}
	h := &Hub{schema: schema, pm: pm, owner: make(map[uint64]ownerRec)}
	h.initShards()
	for _, s := range slices {
		if s == nil {
			return nil, fmt.Errorf("streamhub: nil slice")
		}
		h.parts = append(h.parts, &partition{slice: s})
	}
	return h, nil
}

// NewPlain builds a hub of k plain-memory slices with the default cost
// model — the common StreamHub deployment where matchers are ordinary
// processes.
func NewPlain(k int, opts core.Options) (*Hub, error) {
	schema := pubsub.NewSchema()
	return New(k, schema, func(_ int, s *pubsub.Schema) (*core.Engine, error) {
		return core.NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), s, opts)
	}, nil)
}

// Partitions returns the number of slices.
func (h *Hub) Partitions() int { return len(h.parts) }

// Placement returns the hub's placement map (shared with the broker's
// migration engine when constructed via NewFromSlicesPlaced).
func (h *Hub) Placement() *placement.Map { return h.pm }

// Schema returns the shared attribute intern table; events matched
// against the hub must be interned through it.
func (h *Hub) Schema() *pubsub.Schema { return h.schema }

// ShardForKey deterministically places a registration key on a virtual
// shard (FNV-1a over the key parts, 0xff-separated so part boundaries
// are significant). Hash placement needs no coordination between
// registering connections and is stable across restarts and resizes —
// only the shard→slice assignment moves.
func (h *Hub) ShardForKey(parts ...[]byte) int {
	hash := fnv.New64a()
	for _, part := range parts {
		_, _ = hash.Write(part)
		_, _ = hash.Write([]byte{0xff})
	}
	return int(hash.Sum64() % uint64(h.pm.Shards()))
}

// SliceForShard resolves a shard's current slice through the placement
// map (observing any in-progress migration divert).
func (h *Hub) SliceForShard(shard int) int { return h.pm.SliceOf(shard) }

// reserveID allocates the next hub ID for a shard. Failed inserts
// leave sequence gaps, which is fine — IDs only need uniqueness.
func (h *Hub) reserveID(shard int) uint64 {
	h.mu.Lock()
	h.shardSeq[shard]++
	id := composeID(shard, h.shardSeq[shard])
	h.mu.Unlock()
	return id
}

// adopt records a successfully stored subscription with its estimated
// store footprint. countShard=false (the migration copy path) flips
// ownership without touching the shard's totals — the subscription
// already exists on the source slice, and its bytes stay charged to
// the same shard either way.
func (h *Hub) adopt(id uint64, slice int, countShard bool, bytes uint64) {
	h.mu.Lock()
	h.owner[id] = ownerRec{slice: slice, bytes: bytes}
	if countShard {
		shard := ShardOf(id)
		h.shardSubs[shard]++
		h.shardBytes[shard] += bytes
	}
	h.mu.Unlock()
}

// bumpSeq raises a shard's sequence past a restored ID so future
// reservations never collide with re-ingested subscriptions.
func (h *Hub) bumpSeq(id uint64) {
	shard, seq := ShardOf(id), id&idMask
	h.mu.Lock()
	if h.shardSeq[shard] < seq {
		h.shardSeq[shard] = seq
	}
	h.mu.Unlock()
}

// Register normalises the subscription and inserts it on the
// least-loaded shard's slice (engine-backed hubs only). Load is the
// owning slice's estimated store bytes normalised by its EPC budget,
// so EPC-poor slices fill proportionally slower than EPC-rich ones;
// ties break to the shard with the fewest bytes of its own.
func (h *Hub) Register(spec pubsub.SubscriptionSpec, clientRef uint32) (uint64, error) {
	sub, err := pubsub.Normalize(h.schema, spec)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	shard := h.leastLoadedShardLocked()
	h.mu.Unlock()

	target := h.pm.SliceOf(shard)
	p := h.parts[target]
	id := h.reserveID(shard)
	register := func() error { return p.engine.RegisterAssigned(sub, clientRef, id) }
	if p.enter != nil {
		err = p.enter(register)
	} else {
		err = register()
	}
	if err != nil {
		return 0, err
	}
	h.adopt(id, target, true, h.entryBytes(-1))
	return id, nil
}

// leastLoadedShardLocked picks the shard whose owning slice carries
// the smallest budget-normalised byte load. Comparisons cross-multiply
// (bytesA·budgetB vs bytesB·budgetA) to stay in integers; a nil or
// zero budget weights that slice equally with every other such slice.
// Caller holds h.mu; the hub→placement lock order is the established
// one.
func (h *Hub) leastLoadedShardLocked() int {
	sliceBytes := make([]uint64, len(h.parts))
	sliceOf := make([]int, h.pm.Shards())
	for s := range sliceOf {
		sliceOf[s] = h.pm.SliceOf(s)
		sliceBytes[sliceOf[s]] += h.shardBytes[s]
	}
	budget := func(slice int) uint64 {
		if slice < len(h.budgets) && h.budgets[slice] > 0 {
			return h.budgets[slice]
		}
		return 1
	}
	best := 0
	for s := 1; s < len(sliceOf); s++ {
		cur, prev := sliceOf[s], sliceOf[best]
		l := sliceBytes[cur] * budget(prev)
		r := sliceBytes[prev] * budget(cur)
		if l < r || (l == r && h.shardBytes[s] < h.shardBytes[best]) {
			best = s
		}
	}
	return best
}

// Unregister removes a hub subscription.
func (h *Hub) Unregister(hubID uint64) error {
	target, ok := h.dropOwner(hubID)
	if !ok {
		return fmt.Errorf("streamhub: %w: %d", core.ErrUnknownSubscription, hubID)
	}
	p := h.parts[target]
	remove := func() error { return p.slice.Unregister(hubID) }
	if p.enter != nil {
		return p.enter(remove)
	}
	return remove()
}

func (h *Hub) dropOwner(hubID uint64) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.owner[hubID]
	if !ok {
		return 0, false
	}
	delete(h.owner, hubID)
	shard := ShardOf(hubID)
	h.shardSubs[shard]--
	if h.shardBytes[shard] >= rec.bytes {
		h.shardBytes[shard] -= rec.bytes
	} else {
		h.shardBytes[shard] = 0
	}
	return rec.slice, true
}

// The "In"/"At" methods below are the direct per-slice surface for
// callers that run their own fan-out and enclave transitions — the
// broker's partitioned router, whose per-partition resident workers
// and registration ecalls are already inside the slice's enclave when
// the hub is consulted. They skip the optional enter gate; everything
// else (ID assignment, load accounting) matches the gated methods.

// Engine returns partition i's engine (experiments and the broker's
// per-slice meters read it). Nil for scheme-backed partitions whose
// scheme is not engine-based.
func (h *Hub) Engine(i int) *core.Engine { return h.parts[i].engine }

// Slice returns partition i's scheme store — the broker configures
// scheme parameters through it under its own partition locks.
func (h *Hub) Slice(i int) scheme.Slice { return h.parts[i].slice }

// OwnerSlice reports which slice currently holds a subscription.
func (h *Hub) OwnerSlice(hubID uint64) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.owner[hubID]
	return rec.slice, ok
}

// RegisterEncodedAt ingests one wire-encoded subscription for shard
// into slice target directly, with no call gate, returning its hub ID.
// The caller resolves target = SliceForShard(shard) under whatever
// fence keeps placement stable across the resolution and the insert.
func (h *Hub) RegisterEncodedAt(shard, target int, enc []byte, clientRef uint32) (uint64, error) {
	if shard < 0 || shard >= h.pm.Shards() {
		return 0, fmt.Errorf("streamhub: shard %d of %d", shard, h.pm.Shards())
	}
	if target < 0 || target >= len(h.parts) {
		return 0, fmt.Errorf("streamhub: partition %d of %d", target, len(h.parts))
	}
	p := h.parts[target]
	id := h.reserveID(shard)
	if err := p.slice.RegisterEncodedAssigned(enc, clientRef, id); err != nil {
		return 0, err
	}
	h.adopt(id, target, true, h.entryBytes(len(enc)))
	return id, nil
}

// RegisterEncodedAssigned re-ingests a wire-encoded subscription under
// a previously issued hub ID — the state-restore path; the target
// slice is resolved through the placement map from the shard packed
// into the ID.
func (h *Hub) RegisterEncodedAssigned(enc []byte, clientRef uint32, hubID uint64) error {
	shard := ShardOf(hubID)
	if shard >= h.pm.Shards() {
		return fmt.Errorf("streamhub: hub ID %d names shard %d, but the hub has %d", hubID, shard, h.pm.Shards())
	}
	target := h.pm.SliceOf(shard)
	if err := h.parts[target].slice.RegisterEncodedAssigned(enc, clientRef, hubID); err != nil {
		return err
	}
	h.bumpSeq(hubID)
	h.adopt(hubID, target, true, h.entryBytes(len(enc)))
	return nil
}

// ImportAssigned inserts a wire-encoded subscription under its
// existing hub ID into an explicit slice and flips ownership to it —
// the migration copy path. The shard's live-subscription count is
// unchanged: the subscription already exists on the source slice.
func (h *Hub) ImportAssigned(target int, enc []byte, clientRef uint32, hubID uint64) error {
	if target < 0 || target >= len(h.parts) {
		return fmt.Errorf("streamhub: partition %d of %d", target, len(h.parts))
	}
	if err := h.parts[target].slice.RegisterEncodedAssigned(enc, clientRef, hubID); err != nil {
		return err
	}
	h.bumpSeq(hubID)
	h.adopt(hubID, target, false, h.entryBytes(len(enc)))
	return nil
}

// DropCopy removes the stale physical copy of a migrated subscription
// from a slice without touching ownership. A no-op when the slice is
// the current owner (the migration was superseded) or the copy is
// already gone.
func (h *Hub) DropCopy(slice int, hubID uint64) {
	h.mu.Lock()
	rec, ok := h.owner[hubID]
	h.mu.Unlock()
	if ok && rec.slice == slice {
		return
	}
	_ = h.parts[slice].slice.Unregister(hubID)
}

// MatchEncodedIn matches one wire-encoded publication header against
// partition i only, appending to out. Stored IDs are hub IDs, so the
// results need no rewriting.
func (h *Hub) MatchEncodedIn(i int, enc []byte, out []core.MatchResult) ([]core.MatchResult, error) {
	return h.parts[i].slice.MatchEncoded(enc, out)
}

// MatchEncodedBatchIn matches a batch of wire-encoded publication
// headers against partition i in one store pass, appending encs[j]'s
// matches to out[j]. The per-item append semantics are the slice's
// MatchEncodedBatch: items that fail to decode contribute nothing, and
// the error return is reserved for whole-store failures. Safe to call
// concurrently for different partitions (the broker's parallel fan-out
// does).
func (h *Hub) MatchEncodedBatchIn(i int, encs [][]byte, out [][]core.MatchResult) error {
	return h.parts[i].slice.MatchEncodedBatch(encs, out)
}

// AddSlice appends a new scheme slice to the hub (the grow half of a
// resize). The caller must fence the call against concurrent match
// fan-outs and update the placement map separately.
func (h *Hub) AddSlice(s scheme.Slice) error {
	if s == nil {
		return fmt.Errorf("streamhub: nil slice")
	}
	if len(h.parts)+1 > h.pm.Shards() {
		return fmt.Errorf("streamhub: %d slices exceed the %d-shard placement map", len(h.parts)+1, h.pm.Shards())
	}
	h.parts = append(h.parts, &partition{slice: s})
	return nil
}

// RemoveSlicesFrom drops every slice at index ≥ k (the shrink half of
// a resize). It fails if any subscription still lives on a removed
// slice — the migration engine must have moved them all off first.
// The caller must fence the call against concurrent match fan-outs.
func (h *Hub) RemoveSlicesFrom(k int) error {
	if k < 1 || k > len(h.parts) {
		return fmt.Errorf("streamhub: cannot truncate %d slices to %d", len(h.parts), k)
	}
	h.mu.Lock()
	for id, rec := range h.owner {
		if rec.slice >= k {
			h.mu.Unlock()
			return fmt.Errorf("streamhub: subscription %d still owned by removed slice %d", id, rec.slice)
		}
	}
	h.mu.Unlock()
	for i := k; i < len(h.parts); i++ {
		h.parts[i] = nil
	}
	h.parts = h.parts[:k]
	return nil
}

// RegisterNormalizedAt inserts an already-normalised subscription for
// shard into slice target directly, with no call gate (engine-backed
// hubs only).
func (h *Hub) RegisterNormalizedAt(shard, target int, sub *pubsub.Subscription, clientRef uint32) (uint64, error) {
	if shard < 0 || shard >= h.pm.Shards() {
		return 0, fmt.Errorf("streamhub: shard %d of %d", shard, h.pm.Shards())
	}
	if target < 0 || target >= len(h.parts) {
		return 0, fmt.Errorf("streamhub: partition %d of %d", target, len(h.parts))
	}
	p := h.parts[target]
	id := h.reserveID(shard)
	if err := p.engine.RegisterAssigned(sub, clientRef, id); err != nil {
		return 0, err
	}
	h.adopt(id, target, true, h.entryBytes(-1))
	return id, nil
}

// RegisterAssignedIn re-inserts a subscription under a previously
// issued hub ID — the state-restore path. The target slice is resolved
// through the placement map from the shard packed into the ID, so a
// restored database lands where the current placement says its shard
// lives.
func (h *Hub) RegisterAssignedIn(sub *pubsub.Subscription, clientRef uint32, hubID uint64) error {
	shard := ShardOf(hubID)
	if shard >= h.pm.Shards() {
		return fmt.Errorf("streamhub: hub ID %d names shard %d, but the hub has %d", hubID, shard, h.pm.Shards())
	}
	target := h.pm.SliceOf(shard)
	if err := h.parts[target].engine.RegisterAssigned(sub, clientRef, hubID); err != nil {
		return err
	}
	h.bumpSeq(hubID)
	h.adopt(hubID, target, true, h.entryBytes(-1))
	return nil
}

// UnregisterIn removes a hub subscription directly, with no call gate.
func (h *Hub) UnregisterIn(hubID uint64) error {
	target, ok := h.dropOwner(hubID)
	if !ok {
		return fmt.Errorf("streamhub: %w: %d", core.ErrUnknownSubscription, hubID)
	}
	return h.parts[target].slice.Unregister(hubID)
}

// MatchSlice matches ev against one slice only, appending to out —
// the per-partition half of Match for callers running their own
// fan-out. Stored IDs are hub IDs, so the results need no rewriting.
func (h *Hub) MatchSlice(i int, ev *pubsub.Event, out []core.MatchResult) ([]core.MatchResult, error) {
	return h.parts[i].engine.MatchAppend(ev, out)
}

// MatchStats reports the simulated cost of one fan-out match.
type MatchStats struct {
	// MakespanCycles is the slowest slice's cycle count — the simulated
	// latency when slices run in parallel (separate machines/cores).
	MakespanCycles uint64
	// TotalCycles sums all slices — the work a single machine would do.
	TotalCycles uint64
}

// Match fans the event out to every slice in parallel and merges the
// results.
func (h *Hub) Match(ev *pubsub.Event) ([]core.MatchResult, MatchStats, error) {
	type sliceResult struct {
		idx     int
		matches []core.MatchResult
		cycles  uint64
		err     error
	}
	results := make([]sliceResult, len(h.parts))
	var wg sync.WaitGroup
	for i, p := range h.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			meter := p.engine.Accessor().Meter()
			before := meter.C.Cycles
			match := func() error {
				var err error
				results[i].matches, err = p.engine.Match(ev)
				return err
			}
			var err error
			if p.enter != nil {
				err = p.enter(match)
			} else {
				err = match()
			}
			results[i] = sliceResult{
				idx:     i,
				matches: results[i].matches,
				cycles:  meter.C.Cycles - before,
				err:     err,
			}
		}(i, p)
	}
	wg.Wait()

	var out []core.MatchResult
	var stats MatchStats
	for _, r := range results {
		if r.err != nil {
			return nil, stats, fmt.Errorf("streamhub: partition %d: %w", r.idx, r.err)
		}
		out = append(out, r.matches...)
		stats.TotalCycles += r.cycles
		if r.cycles > stats.MakespanCycles {
			stats.MakespanCycles = r.cycles
		}
	}
	return out, stats, nil
}

// Stats aggregates the partition engines.
type Stats struct {
	Partitions    int
	Subscriptions int
	// PerPartition lists each slice's live subscription count.
	PerPartition []int
	// Bytes sums the slices' arena footprints.
	Bytes uint64
}

// SliceLoads returns each slice's estimated store byte load (the sum
// of entry-cost charges over the shards it owns) alongside its
// configured EPC budget (0 when none was set) — the accounting the
// byte-weighted Register balances, exposed for metrics and for
// validating deployment plans against actuals.
func (h *Hub) SliceLoads() (bytes, budgets []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bytes = make([]uint64, len(h.parts))
	budgets = make([]uint64, len(h.parts))
	for s := 0; s < h.pm.Shards(); s++ {
		bytes[h.pm.SliceOf(s)] += h.shardBytes[s]
	}
	copy(budgets, h.budgets)
	return bytes, budgets
}

// Stats returns hub statistics.
func (h *Hub) Stats() Stats {
	st := Stats{Partitions: len(h.parts)}
	for _, p := range h.parts {
		es := p.slice.Stats()
		st.Subscriptions += es.Subscriptions
		st.PerPartition = append(st.PerPartition, es.Subscriptions)
		st.Bytes += es.Bytes
	}
	return st
}
