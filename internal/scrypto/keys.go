// Package scrypto provides the cryptographic substrate used throughout
// SCBR: symmetric AES-CTR message envelopes authenticated with
// HMAC-SHA256, AES-GCM sealing for enclave page eviction and state
// persistence, RSA-OAEP/PSS for the client→publisher subscription path,
// and simple key-derivation helpers.
//
// The paper uses Crypto++ AES-CTR and RSA outside the enclave and the
// Intel SDK AES-CTR implementation inside; this package provides the
// same algorithms on top of the Go standard library.
package scrypto

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Key sizes in bytes.
const (
	// SymmetricKeySize is the AES-128 key size used for SK, matching the
	// paper's AES-CTR configuration.
	SymmetricKeySize = 16
	// MACKeySize is the HMAC-SHA256 key size appended to envelopes.
	MACKeySize = 32
	// RSABits is the modulus size for publisher key pairs.
	RSABits = 2048
)

var (
	// ErrAuthentication indicates a MAC or signature verification failure.
	ErrAuthentication = errors.New("scrypto: authentication failed")
	// ErrMalformed indicates a ciphertext too short or structurally invalid.
	ErrMalformed = errors.New("scrypto: malformed ciphertext")
)

// SymmetricKey is the shared key SK between a publisher and the enclave.
// It carries independent encryption and MAC sub-keys.
type SymmetricKey struct {
	Enc [SymmetricKeySize]byte
	MAC [MACKeySize]byte
}

// NewSymmetricKey draws a fresh symmetric key from the given source, or
// crypto/rand when src is nil.
func NewSymmetricKey(src io.Reader) (*SymmetricKey, error) {
	if src == nil {
		src = rand.Reader
	}
	var k SymmetricKey
	if _, err := io.ReadFull(src, k.Enc[:]); err != nil {
		return nil, fmt.Errorf("scrypto: reading encryption key: %w", err)
	}
	if _, err := io.ReadFull(src, k.MAC[:]); err != nil {
		return nil, fmt.Errorf("scrypto: reading MAC key: %w", err)
	}
	return &k, nil
}

// Bytes serialises the key for transport inside attestation provisioning
// messages. The layout is Enc || MAC.
func (k *SymmetricKey) Bytes() []byte {
	out := make([]byte, 0, SymmetricKeySize+MACKeySize)
	out = append(out, k.Enc[:]...)
	out = append(out, k.MAC[:]...)
	return out
}

// SymmetricKeyFromBytes parses the Enc || MAC layout produced by Bytes.
func SymmetricKeyFromBytes(b []byte) (*SymmetricKey, error) {
	if len(b) != SymmetricKeySize+MACKeySize {
		return nil, fmt.Errorf("scrypto: symmetric key must be %d bytes, got %d",
			SymmetricKeySize+MACKeySize, len(b))
	}
	var k SymmetricKey
	copy(k.Enc[:], b[:SymmetricKeySize])
	copy(k.MAC[:], b[SymmetricKeySize:])
	return &k, nil
}

// Equal reports whether two keys are identical, in constant time.
func (k *SymmetricKey) Equal(other *SymmetricKey) bool {
	if other == nil {
		return false
	}
	return hmac.Equal(k.Bytes(), other.Bytes())
}

// KeyPair is a publisher's RSA key pair (PK / PK⁻¹ in the paper).
type KeyPair struct {
	Private *rsa.PrivateKey
}

// NewKeyPair generates a fresh RSA key pair for a publisher.
func NewKeyPair(src io.Reader) (*KeyPair, error) {
	if src == nil {
		src = rand.Reader
	}
	priv, err := rsa.GenerateKey(src, RSABits)
	if err != nil {
		return nil, fmt.Errorf("scrypto: generating RSA key: %w", err)
	}
	return &KeyPair{Private: priv}, nil
}

// Public returns the public half distributed to clients.
func (kp *KeyPair) Public() *rsa.PublicKey { return &kp.Private.PublicKey }

// DeriveKey derives a labelled sub-key from root material using
// HMAC-SHA256 as an HKDF-expand-style PRF. It is used for group-key
// epochs and for enclave sealing-key derivation.
func DeriveKey(root []byte, label string, n int) []byte {
	out := make([]byte, 0, n)
	var counter byte
	var prev []byte
	for len(out) < n {
		counter++
		mac := hmac.New(sha256.New, root)
		mac.Write(prev)
		mac.Write([]byte(label))
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:n]
}
