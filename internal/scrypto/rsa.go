package scrypto

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// The client→publisher leg ({s}PK in the paper) uses hybrid encryption:
// RSA-OAEP wraps a fresh AES key which encrypts the body with CTR, so
// subscriptions of any size fit. Signatures are RSA-PSS over SHA-256.

// EncryptPK encrypts plaintext for the holder of the private half of pk.
// Layout: len(wrapped)(2) || wrapped || nonce(16) || ciphertext.
func EncryptPK(pk *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	var sessionKey [SymmetricKeySize]byte
	if _, err := io.ReadFull(rand.Reader, sessionKey[:]); err != nil {
		return nil, fmt.Errorf("scrypto: reading session key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pk, sessionKey[:], nil)
	if err != nil {
		return nil, fmt.Errorf("scrypto: wrapping session key: %w", err)
	}
	block, err := aes.NewCipher(sessionKey[:])
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating cipher: %w", err)
	}
	out := make([]byte, 2+len(wrapped)+nonceSize+len(plaintext))
	binary.BigEndian.PutUint16(out, uint16(len(wrapped)))
	copy(out[2:], wrapped)
	nonce := out[2+len(wrapped) : 2+len(wrapped)+nonceSize]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("scrypto: reading nonce: %w", err)
	}
	cipher.NewCTR(block, nonce).XORKeyStream(out[2+len(wrapped)+nonceSize:], plaintext)
	return out, nil
}

// DecryptPK reverses EncryptPK using the key pair's private half.
func DecryptPK(kp *KeyPair, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 2 {
		return nil, ErrMalformed
	}
	wrappedLen := int(binary.BigEndian.Uint16(ciphertext))
	if len(ciphertext) < 2+wrappedLen+nonceSize {
		return nil, ErrMalformed
	}
	sessionKey, err := rsa.DecryptOAEP(sha256.New(), nil, kp.Private, ciphertext[2:2+wrappedLen], nil)
	if err != nil {
		return nil, ErrAuthentication
	}
	block, err := aes.NewCipher(sessionKey)
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating cipher: %w", err)
	}
	nonce := ciphertext[2+wrappedLen : 2+wrappedLen+nonceSize]
	body := ciphertext[2+wrappedLen+nonceSize:]
	plaintext := make([]byte, len(body))
	cipher.NewCTR(block, nonce).XORKeyStream(plaintext, body)
	return plaintext, nil
}

// Sign produces an RSA-PSS signature over SHA-256(message).
func Sign(kp *KeyPair, message []byte) ([]byte, error) {
	digest := sha256.Sum256(message)
	sig, err := rsa.SignPSS(rand.Reader, kp.Private, crypto.SHA256, digest[:], nil)
	if err != nil {
		return nil, fmt.Errorf("scrypto: signing: %w", err)
	}
	return sig, nil
}

// Verify checks an RSA-PSS signature produced by Sign.
func Verify(pk *rsa.PublicKey, message, sig []byte) error {
	digest := sha256.Sum256(message)
	if err := rsa.VerifyPSS(pk, crypto.SHA256, digest[:], sig, nil); err != nil {
		return ErrAuthentication
	}
	return nil
}
