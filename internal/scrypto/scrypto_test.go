package scrypto

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) *SymmetricKey {
	t.Helper()
	k, err := NewSymmetricKey(nil)
	if err != nil {
		t.Fatalf("NewSymmetricKey: %v", err)
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := testKey(t)
	for _, size := range []int{0, 1, 15, 16, 17, 255, 4096, 70000} {
		plaintext := make([]byte, size)
		for i := range plaintext {
			plaintext[i] = byte(i * 31)
		}
		env, err := Seal(k, plaintext)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", size, err)
		}
		got, err := Open(k, env)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", size, err)
		}
		if !bytes.Equal(got, plaintext) {
			t.Fatalf("round trip mismatch at size %d", size)
		}
	}
}

func TestSealProducesDistinctCiphertexts(t *testing.T) {
	k := testKey(t)
	msg := []byte("same message")
	a, err := Seal(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Seal(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two Seal calls produced identical envelopes; nonce reuse")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k := testKey(t)
	env, err := Seal(k, []byte("attack at dawn"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(env); i += 7 {
		mutated := bytes.Clone(env)
		mutated[i] ^= 0x40
		if _, err := Open(k, mutated); !errors.Is(err, ErrAuthentication) {
			t.Fatalf("Open accepted envelope tampered at byte %d: %v", i, err)
		}
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1, k2 := testKey(t), testKey(t)
	env, err := Seal(k1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(k2, env); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("Open with wrong key: got %v, want ErrAuthentication", err)
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	k := testKey(t)
	if _, err := Open(k, make([]byte, envelopeMinSize-1)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short envelope: got %v, want ErrMalformed", err)
	}
}

func TestSealOpenQuick(t *testing.T) {
	k := testKey(t)
	f := func(plaintext []byte) bool {
		env, err := Seal(k, plaintext)
		if err != nil {
			return false
		}
		got, err := Open(k, env)
		return err == nil && bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricKeySerialisation(t *testing.T) {
	k := testKey(t)
	parsed, err := SymmetricKeyFromBytes(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(parsed) {
		t.Fatal("serialised key does not round-trip")
	}
	if _, err := SymmetricKeyFromBytes(make([]byte, 10)); err == nil {
		t.Fatal("SymmetricKeyFromBytes accepted short input")
	}
	if k.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
}

func TestGCMRoundTripAndAAD(t *testing.T) {
	key := DeriveKey([]byte("root"), "gcm-test", 16)
	plaintext := []byte("page contents")
	aad := []byte("version=7")
	ct, err := SealGCM(key, plaintext, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenGCM(key, ct, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("GCM round trip mismatch")
	}
	if _, err := OpenGCM(key, ct, []byte("version=8")); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("replayed AAD accepted: %v", err)
	}
	mutated := bytes.Clone(ct)
	mutated[len(mutated)-1] ^= 1
	if _, err := OpenGCM(key, mutated, aad); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("tampered GCM ciphertext accepted: %v", err)
	}
	if _, err := OpenGCM(key, ct[:4], aad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated GCM ciphertext: got %v, want ErrMalformed", err)
	}
}

func TestRSAHybridRoundTrip(t *testing.T) {
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 100, 5000} {
		plaintext := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(plaintext)
		ct, err := EncryptPK(kp.Public(), plaintext)
		if err != nil {
			t.Fatalf("EncryptPK(%d): %v", size, err)
		}
		got, err := DecryptPK(kp, ct)
		if err != nil {
			t.Fatalf("DecryptPK(%d): %v", size, err)
		}
		if !bytes.Equal(got, plaintext) {
			t.Fatalf("RSA hybrid round trip mismatch at size %d", size)
		}
	}
}

func TestRSAHybridRejectsCorruptWrap(t *testing.T) {
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := EncryptPK(kp.Public(), []byte("subscription"))
	if err != nil {
		t.Fatal(err)
	}
	ct[5] ^= 0xFF // inside the wrapped session key
	if _, err := DecryptPK(kp, ct); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("corrupt key wrap accepted: %v", err)
	}
	if _, err := DecryptPK(kp, []byte{0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated hybrid ciphertext: got %v, want ErrMalformed", err)
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("encrypted subscription blob")
	sig, err := Sign(kp, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(kp.Public(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := Verify(kp.Public(), append([]byte("x"), msg...), sig); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("signature over different message accepted: %v", err)
	}
	other, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(other.Public(), msg, sig); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("signature verified under wrong key: %v", err)
	}
}

func TestDeriveKeyProperties(t *testing.T) {
	a := DeriveKey([]byte("root"), "label-a", 48)
	a2 := DeriveKey([]byte("root"), "label-a", 48)
	b := DeriveKey([]byte("root"), "label-b", 48)
	c := DeriveKey([]byte("other"), "label-a", 48)
	if !bytes.Equal(a, a2) {
		t.Fatal("DeriveKey is not deterministic")
	}
	if bytes.Equal(a, b) || bytes.Equal(a, c) {
		t.Fatal("DeriveKey collisions across labels/roots")
	}
	if len(DeriveKey([]byte("r"), "l", 100)) != 100 {
		t.Fatal("DeriveKey wrong output length")
	}
}

func TestGroupKeyRotationOnRevoke(t *testing.T) {
	g, err := NewGroupKeyManager(nil)
	if err != nil {
		t.Fatal(err)
	}
	k1, e1 := g.Join("alice")
	k2, e2 := g.Join("bob")
	if e1 != e2 || !k1.Equal(k2) {
		t.Fatal("join must not rotate the key")
	}
	if got := g.Members(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Members = %v", got)
	}
	epoch, err := g.Revoke("alice")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != e1+1 {
		t.Fatalf("Revoke epoch = %d, want %d", epoch, e1+1)
	}
	k3, _ := g.Key()
	if k3.Equal(k1) {
		t.Fatal("revocation did not rotate the group key")
	}
	if g.IsMember("alice") || !g.IsMember("bob") {
		t.Fatal("membership wrong after revocation")
	}
	// Revoking a non-member keeps the epoch stable.
	epoch2, err := g.Revoke("mallory")
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 != epoch {
		t.Fatal("revoking non-member rotated the key")
	}
}
