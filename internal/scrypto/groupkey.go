package scrypto

import (
	"crypto/rand"
	"fmt"
	"io"
	"sort"
	"sync"
)

// GroupKeyManager implements the publisher-side payload key management
// sketched in §3.4 of the paper: payloads are encrypted under a symmetric
// group key shared between the publisher and its active consumers, and
// the key is rotated ("epochs") whenever the membership changes so that
// revoked clients cannot read newly published messages.
//
// The zero value is not usable; construct with NewGroupKeyManager.
type GroupKeyManager struct {
	mu      sync.RWMutex
	epoch   uint64
	key     *SymmetricKey
	members map[string]bool
	src     io.Reader
}

// NewGroupKeyManager creates a manager at epoch 1 with no members.
// src defaults to crypto/rand when nil.
func NewGroupKeyManager(src io.Reader) (*GroupKeyManager, error) {
	if src == nil {
		src = rand.Reader
	}
	key, err := NewSymmetricKey(src)
	if err != nil {
		return nil, fmt.Errorf("scrypto: initial group key: %w", err)
	}
	return &GroupKeyManager{
		epoch:   1,
		key:     key,
		members: make(map[string]bool),
		src:     src,
	}, nil
}

// Epoch returns the current key epoch.
func (g *GroupKeyManager) Epoch() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.epoch
}

// Key returns the current group key and its epoch.
func (g *GroupKeyManager) Key() (*SymmetricKey, uint64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.key, g.epoch
}

// Members returns the sorted list of current member identities.
func (g *GroupKeyManager) Members() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.members))
	for m := range g.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Join adds a client to the group. Joining does not rotate the key: the
// paper only requires that *departed* clients lose access to future
// messages. It returns the key the new member should use.
func (g *GroupKeyManager) Join(clientID string) (*SymmetricKey, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[clientID] = true
	return g.key, g.epoch
}

// Revoke removes a client and rotates the group key so the client cannot
// decrypt payloads published after the revocation. It returns the new
// epoch. Revoking an unknown client is a no-op and keeps the epoch.
func (g *GroupKeyManager) Revoke(clientID string) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.members[clientID] {
		return g.epoch, nil
	}
	delete(g.members, clientID)
	key, err := NewSymmetricKey(g.src)
	if err != nil {
		return g.epoch, fmt.Errorf("scrypto: rotating group key: %w", err)
	}
	g.key = key
	g.epoch++
	return g.epoch, nil
}

// IsMember reports whether clientID currently belongs to the group.
func (g *GroupKeyManager) IsMember(clientID string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.members[clientID]
}
