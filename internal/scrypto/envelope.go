package scrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
)

// Envelope layout: nonce(16) || ciphertext || tag(32).
//
// The paper encrypts headers and subscriptions with AES-CTR. Bare CTR is
// malleable, and SCBR explicitly requires that the infrastructure cannot
// tamper with messages, so every envelope carries an encrypt-then-MAC
// HMAC-SHA256 tag over nonce||ciphertext.
const (
	nonceSize       = aes.BlockSize
	tagSize         = sha256.Size
	envelopeMinSize = nonceSize + tagSize
)

// Seal encrypts plaintext under k using AES-CTR with a random nonce and
// appends an HMAC-SHA256 tag. The result is safe to hand to the
// untrusted infrastructure.
func Seal(k *SymmetricKey, plaintext []byte) ([]byte, error) {
	return sealWithRand(k, plaintext, rand.Reader)
}

func sealWithRand(k *SymmetricKey, plaintext []byte, src io.Reader) ([]byte, error) {
	block, err := aes.NewCipher(k.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating cipher: %w", err)
	}
	out := make([]byte, nonceSize+len(plaintext), envelopeMinSize+len(plaintext))
	if _, err := io.ReadFull(src, out[:nonceSize]); err != nil {
		return nil, fmt.Errorf("scrypto: reading nonce: %w", err)
	}
	cipher.NewCTR(block, out[:nonceSize]).XORKeyStream(out[nonceSize:], plaintext)
	mac := hmac.New(sha256.New, k.MAC[:])
	mac.Write(out)
	return mac.Sum(out), nil
}

// Open authenticates and decrypts an envelope produced by Seal.
func Open(k *SymmetricKey, envelope []byte) ([]byte, error) {
	o, err := NewOpener(k)
	if err != nil {
		return nil, err
	}
	return o.OpenAppend(envelope, nil)
}

// Opener authenticates and decrypts Seal envelopes under one key with
// the per-key setup — the AES key schedule and the HMAC pad blocks —
// paid once instead of per envelope. The router's batch matching path
// opens every header of a publish-batch on every slice, so the setup
// would otherwise dominate small-header traffic. Not safe for
// concurrent use; callers keep one per serialised context (the broker:
// one per partition, under the partition lock).
type Opener struct {
	block cipher.Block
	mac   hash.Hash
	sum   []byte
}

// NewOpener builds an Opener for k.
func NewOpener(k *SymmetricKey) (*Opener, error) {
	block, err := aes.NewCipher(k.Enc[:])
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating cipher: %w", err)
	}
	return &Opener{block: block, mac: hmac.New(sha256.New, k.MAC[:])}, nil
}

// OpenAppend authenticates envelope and appends its plaintext to buf,
// reusing buf's capacity — Open with caller-owned storage.
func (o *Opener) OpenAppend(envelope, buf []byte) ([]byte, error) {
	if len(envelope) < envelopeMinSize {
		return nil, ErrMalformed
	}
	body, tag := envelope[:len(envelope)-tagSize], envelope[len(envelope)-tagSize:]
	o.mac.Reset()
	o.mac.Write(body)
	o.sum = o.mac.Sum(o.sum[:0])
	if !hmac.Equal(o.sum, tag) {
		return nil, ErrAuthentication
	}
	n := len(body) - nonceSize
	start := len(buf)
	if cap(buf)-start < n {
		grown := make([]byte, start, start+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+n]
	cipher.NewCTR(o.block, body[:nonceSize]).XORKeyStream(buf[start:], body[nonceSize:])
	return buf, nil
}

// SealGCM encrypts-and-authenticates data under a raw 16- or 32-byte key
// with AES-GCM and the given additional authenticated data. It is used by
// the enclave simulator for EPC page eviction and sealed storage, where
// the version counter rides in the AAD to provide replay protection.
func SealGCM(key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("scrypto: reading nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// OpenGCM reverses SealGCM; it fails with ErrAuthentication if the
// ciphertext or the AAD was altered.
func OpenGCM(key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrMalformed
	}
	nonce, body := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, body, aad)
	if err != nil {
		return nil, ErrAuthentication
	}
	return plaintext, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("scrypto: creating GCM: %w", err)
	}
	return aead, nil
}
