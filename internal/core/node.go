// Package core implements SCBR's routing engine: a containment-based
// ("covering", after Siena [5]) subscription index with the matching
// algorithm the paper runs inside the enclave.
//
// All subscription state lives in records serialised into a
// simmem.Accessor-backed arena, so the identical engine code runs
// "inside" the simulated enclave (EPC-paged, MEE-charged accessor) and
// "outside" it (plain accessor) — the paper's methodology for
// quantifying enclave overhead. Every byte the engine touches is
// metered.
//
// The index is a forest where every parent covers (⊒) its children.
// Matching walks the forest depth-first and prunes an entire subtree
// as soon as its root fails, which is sound because an event that
// fails a covering subscription fails everything that subscription
// covers. Identical subscriptions share one node with a list of
// subscribers, realising the footprint reduction the paper attributes
// to containment.
//
// To bound insertion cost on large databases the forest is sharded by
// the subscription's first equality constraint (attribute, value);
// subscriptions without equality constraints live in a general shard.
// Matching consults the shard of each event attribute value plus the
// general shard. Sharding never changes the match result (an event
// matching a sharded subscription necessarily carries the shard's
// attribute value); it only limits which covering edges are
// materialised.
package core

import (
	"encoding/binary"
	"fmt"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// Nodes use the left-child/right-sibling representation, so appends
// are O(1) pointer writes and no auxiliary child arrays are needed.
//
// Node record layout in the arena:
//
//	offset size field
//	0      8    parent offset (nilOff for shard sentinels)
//	8      8    first child offset (nilOff when leaf)
//	16     8    next sibling offset (nilOff at end of list)
//	24     8    first subscriber record offset (nilOff when none)
//	32     2    constraint blob length in bytes
//	34     1    flags
//	35     13   reserved
//	48     -    constraint blob (pubsub.AppendConstraints format)
//
// Subscriber records form a second linked list per node:
//
//	0      8    next subscriber offset (nilOff at end)
//	8      8    subscription ID
//	16     4    client reference
//	20     4    reserved
const (
	nodeHeaderSize = 48
	subRecordSize  = 24

	offParent   = 0
	offChild    = 8
	offSibling  = 16
	offFirstSub = 24
	offPredLen  = 32
	offFlags    = 34
)

// nilOff marks an absent offset. Offset 0 is valid arena space, so the
// engine reserves the first page at construction; nilOff itself can
// never be allocated.
const nilOff = ^uint64(0)

// nodeHeader is the decoded fixed part of a record.
type nodeHeader struct {
	parent   uint64
	child    uint64
	sibling  uint64
	firstSub uint64
	predLen  uint16
	flags    uint8
}

func decodeHeader(raw []byte) nodeHeader {
	return nodeHeader{
		parent:   binary.LittleEndian.Uint64(raw[offParent:]),
		child:    binary.LittleEndian.Uint64(raw[offChild:]),
		sibling:  binary.LittleEndian.Uint64(raw[offSibling:]),
		firstSub: binary.LittleEndian.Uint64(raw[offFirstSub:]),
		predLen:  binary.LittleEndian.Uint16(raw[offPredLen:]),
		flags:    raw[offFlags],
	}
}

func (h nodeHeader) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst[offParent:], h.parent)
	binary.LittleEndian.PutUint64(dst[offChild:], h.child)
	binary.LittleEndian.PutUint64(dst[offSibling:], h.sibling)
	binary.LittleEndian.PutUint64(dst[offFirstSub:], h.firstSub)
	binary.LittleEndian.PutUint16(dst[offPredLen:], h.predLen)
	dst[offFlags] = h.flags
}

// readHeader loads and decodes a node header through the accessor.
func (e *Engine) readHeader(off uint64) nodeHeader {
	return decodeHeader(e.acc.Read(off, nodeHeaderSize))
}

// writeHeader stores a header through the accessor.
func (e *Engine) writeHeader(off uint64, h nodeHeader) {
	var buf [nodeHeaderSize]byte
	h.encode(buf[:])
	e.acc.Write(off, buf[:])
}

// setField updates one u64 field of a node header in place, paying for
// a single-word access rather than a whole-header rewrite.
func (e *Engine) setField(nodeOff uint64, field int, value uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], value)
	e.acc.Write(nodeOff+uint64(field), buf[:])
}

// newNode serialises a record (nil constraints for shard sentinels)
// and returns its offset.
func (e *Engine) newNode(parent uint64, cs []pubsub.Constraint) (uint64, error) {
	var blob []byte
	if len(cs) > 0 {
		var err error
		blob, err = pubsub.AppendConstraints(nil, cs)
		if err != nil {
			return 0, fmt.Errorf("core: encoding constraints: %w", err)
		}
	}
	size := nodeHeaderSize + len(blob)
	if pad := e.opts.PadRecordTo; size < pad {
		size = pad
	}
	size = e.alignSize(size)
	if size > simmem.PageSize {
		return 0, fmt.Errorf("core: subscription record of %d bytes exceeds page size", size)
	}
	off, err := e.acc.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("core: allocating node: %w", err)
	}
	h := nodeHeader{
		parent:   parent,
		child:    nilOff,
		sibling:  nilOff,
		firstSub: nilOff,
		predLen:  uint16(len(blob)),
	}
	var hdr [nodeHeaderSize]byte
	h.encode(hdr[:])
	e.acc.Write(off, hdr[:])
	if len(blob) > 0 {
		e.acc.Write(off+nodeHeaderSize, blob)
	}
	e.nodesLive++
	return off, nil
}

// constraintsOf decodes the node's constraint blob into scratch. The
// result is only valid until the next use of the same scratch.
func (e *Engine) constraintsOf(off uint64, h nodeHeader, scratch *[]pubsub.Constraint) ([]pubsub.Constraint, error) {
	if h.predLen == 0 {
		return nil, nil
	}
	raw := e.acc.Read(off+nodeHeaderSize, int(h.predLen))
	cs, _, err := pubsub.DecodeConstraintsInto(*scratch, raw)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt node at %d: %w", off, err)
	}
	*scratch = cs
	return cs, nil
}

// linkChild prepends child to parent's child list.
func (e *Engine) linkChild(parentOff, childOff uint64) {
	ph := e.readHeader(parentOff)
	e.setField(childOff, offSibling, ph.child)
	e.setField(childOff, offParent, parentOff)
	e.setField(parentOff, offChild, childOff)
}

// unlinkChild removes child from parent's child list by scanning the
// sibling chain.
func (e *Engine) unlinkChild(parentOff, childOff uint64) error {
	ph := e.readHeader(parentOff)
	ch := e.readHeader(childOff)
	if ph.child == childOff {
		e.setField(parentOff, offChild, ch.sibling)
		return nil
	}
	prev := ph.child
	for prev != nilOff {
		prevH := e.readHeader(prev)
		if prevH.sibling == childOff {
			e.setField(prev, offSibling, ch.sibling)
			return nil
		}
		prev = prevH.sibling
	}
	return fmt.Errorf("core: node %d is not a child of %d", childOff, parentOff)
}

// addSubscriber prepends a subscriber record to the node's list and
// returns the record offset.
func (e *Engine) addSubscriber(nodeOff uint64, subID uint64, clientRef uint32) (uint64, error) {
	recOff, err := e.acc.Alloc(e.alignSize(subRecordSize))
	if err != nil {
		return 0, fmt.Errorf("core: allocating subscriber record: %w", err)
	}
	h := e.readHeader(nodeOff)
	var rec [subRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], h.firstSub)
	binary.LittleEndian.PutUint64(rec[8:], subID)
	binary.LittleEndian.PutUint32(rec[16:], clientRef)
	e.acc.Write(recOff, rec[:])
	e.setField(nodeOff, offFirstSub, recOff)
	return recOff, nil
}

// removeSubscriber unlinks subID's record from the node's list and
// reports how many subscribers remain.
func (e *Engine) removeSubscriber(nodeOff uint64, subID uint64) (remaining int, err error) {
	var prev uint64 = nilOff
	cur := e.readHeader(nodeOff).firstSub
	found := false
	for cur != nilOff {
		raw := e.acc.Read(cur, subRecordSize)
		next := binary.LittleEndian.Uint64(raw[0:])
		id := binary.LittleEndian.Uint64(raw[8:])
		if !found && id == subID {
			found = true
			if prev == nilOff {
				e.setField(nodeOff, offFirstSub, next)
			} else {
				e.setField(prev, 0, next)
			}
		} else {
			remaining++
			prev = cur
		}
		cur = next
	}
	if !found {
		return 0, fmt.Errorf("core: subscription %d not on node %d", subID, nodeOff)
	}
	return remaining, nil
}
