package core

import (
	"math/rand"
	"testing"

	"scbr/internal/pubsub"
)

// checkInvariants walks every shard forest and asserts the structural
// invariants the matcher's pruning soundness depends on:
//
//  1. acyclicity — every node is reached exactly once,
//  2. covering — every parent's constraints cover each child's,
//  3. subscriber consistency — the engine's ID index points at nodes
//     that actually list the subscription, and every listed
//     subscription is in the index,
//  4. accounting — the live-node counter matches the walk.
func checkInvariants(t *testing.T, e *Engine) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()

	sentinels := make([]uint64, 0, len(e.shards)+1)
	sentinels = append(sentinels, e.general)
	for _, s := range e.shards {
		sentinels = append(sentinels, s)
	}
	visited := make(map[uint64]bool)
	subsSeen := make(map[uint64]uint64) // subID → node offset
	liveNodes := 0

	var scratchParent, scratchChild []pubsub.Constraint
	var walk func(off uint64, parentCs []pubsub.Constraint)
	walk = func(off uint64, parentCs []pubsub.Constraint) {
		if visited[off] {
			t.Fatalf("node %d reached twice: cycle or shared child", off)
		}
		visited[off] = true
		h := e.readHeader(off)
		cs, err := e.constraintsOf(off, h, &scratchChild)
		if err != nil {
			t.Fatalf("node %d: %v", off, err)
		}
		// Copy: scratch is reused during recursion.
		mine := append([]pubsub.Constraint(nil), cs...)
		if parentCs != nil {
			p := pubsub.Subscription{Constraints: parentCs}
			c := pubsub.Subscription{Constraints: mine}
			if !p.Covers(&c) {
				t.Fatalf("covering violated: parent %+v does not cover child %+v", parentCs, mine)
			}
		}
		if h.predLen > 0 {
			liveNodes++
		}
		// Subscriber list consistency.
		sub := h.firstSub
		for sub != nilOff {
			raw := e.acc.Read(sub, subRecordSize)
			id := leUint64(raw[8:])
			next := leUint64(raw[0:])
			if nodeOff, ok := e.subIndex[id]; !ok || nodeOff != off {
				t.Fatalf("subscription %d listed on node %d but indexed at %d (ok=%v)", id, off, nodeOff, ok)
			}
			if _, dup := subsSeen[id]; dup {
				t.Fatalf("subscription %d appears on two nodes", id)
			}
			subsSeen[id] = off
			sub = next
		}
		child := h.child
		for child != nilOff {
			walk(child, mine)
			child = e.readHeader(child).sibling
		}
	}
	for _, s := range sentinels {
		walk(s, nil)
	}
	_ = scratchParent

	if len(subsSeen) != len(e.subIndex) {
		t.Fatalf("walk found %d subscriptions, index holds %d", len(subsSeen), len(e.subIndex))
	}
	// Tombstone-free design: every walked node with constraints should
	// be live; nodes whose subscribers were all removed are spliced
	// out, so liveNodes must equal the counter.
	if liveNodes != e.nodesLive {
		t.Fatalf("walk found %d live nodes, counter says %d", liveNodes, e.nodesLive)
	}
}

// TestInvariantsUnderChurn drives random register/unregister traffic
// and validates the forest invariants at checkpoints.
func TestInvariantsUnderChurn(t *testing.T) {
	for _, opts := range []Options{{}, {DisableSharding: true}, {PadRecordTo: 300}, {CacheAlign: true}, {CacheAlign: true, PadRecordTo: 437, DisableSharding: true}} {
		e := newTestEngineOpts(t, opts)
		rng := rand.New(rand.NewSource(77))
		var live []uint64
		for step := 0; step < 3000; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				if err := e.Unregister(live[k]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				id, err := e.Register(randomSpec(rng), uint32(step))
				if err != nil {
					continue
				}
				live = append(live, id)
			}
			if step%500 == 499 {
				checkInvariants(t, e)
			}
		}
		checkInvariants(t, e)
		if st := e.Stats(); st.Subscriptions != len(live) {
			t.Fatalf("stats %d vs live %d", st.Subscriptions, len(live))
		}
	}
}

func newTestEngineOpts(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(newPlainAcc(), pubsub.NewSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
