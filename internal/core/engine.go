package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// Options configure an Engine.
type Options struct {
	// PadRecordTo pads every node record to at least this many bytes.
	// The paper's engine stores ≈437 bytes per subscription (10 000
	// subscriptions ≈ 4.37 MB); experiments set this so the memory
	// footprint matches the paper's x-axes. Zero keeps records at
	// their natural size.
	PadRecordTo int
	// DisableSharding keeps every subscription in a single containment
	// forest, as the paper's engine does: insertion and matching scan
	// the forest roots instead of jumping through the equality-value
	// index. Used by the sharding ablation benchmark; much slower on
	// large equality-heavy databases.
	DisableSharding bool
	// CacheAlign rounds every record allocation (node and subscriber)
	// up to a multiple of the 64-byte cache-line size, so no record
	// header straddles a line — the paper's §6 proposal of
	// "appropriately fitting [the containment trees] into cache
	// lines". It trades footprint (more lines allocated) for locality
	// (fewer lines touched per record); the cache-alignment ablation
	// quantifies the balance.
	CacheAlign bool
}

// cacheLineSize is the line size of the modelled LLC (Skylake: 64 B).
const cacheLineSize = 64

// alignSize applies the CacheAlign rounding rule. Keeping every
// allocation a multiple of the line size keeps every record offset
// line-aligned (the arena starts records at page boundaries, which
// are line-aligned).
func (e *Engine) alignSize(n int) int {
	if !e.opts.CacheAlign {
		return n
	}
	return (n + cacheLineSize - 1) &^ (cacheLineSize - 1)
}

// ErrUnknownSubscription is returned by Unregister for IDs the engine
// does not hold.
var ErrUnknownSubscription = errors.New("core: unknown subscription")

// MatchResult identifies one matching subscription.
type MatchResult struct {
	SubID     uint64
	ClientRef uint32
}

// Stats summarises the engine state.
type Stats struct {
	// Subscriptions is the number of live registered subscriptions.
	Subscriptions int
	// Nodes is the number of live index nodes (excluding sentinels);
	// identical subscriptions share a node.
	Nodes int
	// Shards is the number of containment forests.
	Shards int
	// Bytes is the arena footprint, including garbage from unlinked
	// records (the arena is a bump allocator, as is typical for
	// enclave heaps; Fig. 8 grows monotonically anyway).
	Bytes uint64
}

// shardKey identifies one containment forest: the attribute and value
// of the subscription's first equality constraint.
type shardKey struct {
	id  pubsub.AttrID
	str bool
	f   uint64 // float bits for numeric equality
	s   string // value for string equality
}

// Engine is the SCBR matching engine. It is safe for concurrent use,
// but serialises all operations internally: the paper's engine is a
// single-threaded filter (parallelism comes from partitioning, see
// internal/streamhub).
type Engine struct {
	mu     sync.Mutex
	acc    simmem.Accessor
	schema *pubsub.Schema
	opts   Options

	general   uint64              // sentinel of the no-equality shard
	shards    map[shardKey]uint64 // sentinel per equality shard
	subIndex  map[uint64]uint64   // subscription ID → node offset
	nextSubID uint64
	nodesLive int // live non-sentinel nodes

	// Scratch buffers (guarded by mu).
	csNode []pubsub.Constraint
	stack  []uint64
	moved  []uint64
}

// NewEngine builds an engine over the given accessor. The first arena
// page is reserved so that offset 0 never denotes a record.
func NewEngine(acc simmem.Accessor, schema *pubsub.Schema, opts Options) (*Engine, error) {
	e := &Engine{
		acc:      acc,
		schema:   schema,
		opts:     opts,
		shards:   make(map[shardKey]uint64),
		subIndex: make(map[uint64]uint64),
	}
	if _, err := acc.Alloc(simmem.PageSize); err != nil {
		return nil, fmt.Errorf("core: reserving guard page: %w", err)
	}
	general, err := e.newNode(nilOff, nil)
	if err != nil {
		return nil, err
	}
	e.general = general
	e.nodesLive-- // sentinels are not counted
	return e, nil
}

// Schema returns the engine's attribute intern table.
func (e *Engine) Schema() *pubsub.Schema { return e.schema }

// Accessor returns the engine's memory accessor (experiments read its
// meter).
func (e *Engine) Accessor() simmem.Accessor { return e.acc }

// Register normalises spec and inserts it for clientRef, returning the
// subscription ID used for Unregister.
func (e *Engine) Register(spec pubsub.SubscriptionSpec, clientRef uint32) (uint64, error) {
	sub, err := pubsub.Normalize(e.schema, spec)
	if err != nil {
		return 0, err
	}
	return e.RegisterNormalized(sub, clientRef)
}

// RegisterNormalized inserts an already-normalised subscription.
func (e *Engine) RegisterNormalized(sub *pubsub.Subscription, clientRef uint32) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextSubID++
	return e.registerLocked(sub, clientRef, e.nextSubID)
}

// RegisterAssigned inserts a subscription under a caller-chosen ID —
// the state-restore path, which must reproduce the IDs clients already
// hold. The ID must be unused.
func (e *Engine) RegisterAssigned(sub *pubsub.Subscription, clientRef uint32, subID uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if subID == 0 {
		return errors.New("core: subscription ID must be non-zero")
	}
	if _, exists := e.subIndex[subID]; exists {
		return fmt.Errorf("core: subscription ID %d already registered", subID)
	}
	if subID > e.nextSubID {
		e.nextSubID = subID
	}
	_, err := e.registerLocked(sub, clientRef, subID)
	return err
}

func (e *Engine) registerLocked(sub *pubsub.Subscription, clientRef uint32, id uint64) (uint64, error) {
	sentinel, err := e.shardFor(sub)
	if err != nil {
		return 0, err
	}
	nodeOff, err := e.insert(sentinel, sub)
	if err != nil {
		return 0, err
	}
	if _, err := e.addSubscriber(nodeOff, id, clientRef); err != nil {
		return 0, err
	}
	e.subIndex[id] = nodeOff
	return id, nil
}

// shardFor returns (creating on demand) the sentinel of the shard the
// subscription belongs to.
func (e *Engine) shardFor(sub *pubsub.Subscription) (uint64, error) {
	if e.opts.DisableSharding {
		return e.general, nil
	}
	id, v, ok := sub.EqualityAttr()
	if !ok {
		return e.general, nil
	}
	key := shardKey{id: id}
	if v.Kind == pubsub.KindString {
		key.str = true
		key.s = v.S
	} else {
		key.f = math.Float64bits(v.AsFloat())
	}
	if off, ok := e.shards[key]; ok {
		return off, nil
	}
	off, err := e.newNode(nilOff, nil)
	if err != nil {
		return 0, err
	}
	e.nodesLive-- // sentinel
	e.shards[key] = off
	return off, nil
}

// insert descends from the sentinel to the deepest covering node,
// dedups onto an equal node when one is found, and otherwise creates a
// new node there, re-parenting any now-covered siblings beneath it.
func (e *Engine) insert(sentinel uint64, sub *pubsub.Subscription) (uint64, error) {
	cur := sentinel
	for {
		curH := e.readHeader(cur)
		var coverer uint64 = nilOff
		child := curH.child
		for child != nilOff {
			ch := e.readHeader(child)
			cs, err := e.constraintsOf(child, ch, &e.csNode)
			if err != nil {
				return 0, err
			}
			childSub := pubsub.Subscription{Constraints: cs}
			e.chargeCompare(len(cs))
			if childSub.Covers(sub) {
				if sub.Covers(&childSub) {
					// Identical constraints: share the node.
					return child, nil
				}
				coverer = child
				break
			}
			child = ch.sibling
		}
		if coverer == nilOff {
			break
		}
		cur = coverer
	}

	// Attach a new node under cur.
	nodeOff, err := e.newNode(cur, sub.Constraints)
	if err != nil {
		return 0, err
	}
	// Collect cur's children that the new subscription covers; they
	// move beneath it to keep containment paths deep (the property the
	// paper's workload discussion relies on).
	e.moved = e.moved[:0]
	curH := e.readHeader(cur)
	child := curH.child
	for child != nilOff {
		ch := e.readHeader(child)
		cs, err := e.constraintsOf(child, ch, &e.csNode)
		if err != nil {
			return 0, err
		}
		e.chargeCompare(len(sub.Constraints))
		if sub.Covers(&pubsub.Subscription{Constraints: cs}) {
			e.moved = append(e.moved, child)
		}
		child = ch.sibling
	}
	for _, m := range e.moved {
		if err := e.unlinkChild(cur, m); err != nil {
			return 0, err
		}
		e.linkChild(nodeOff, m)
	}
	e.linkChild(cur, nodeOff)
	return nodeOff, nil
}

// Unregister removes a subscription. When its node has no subscribers
// left, the node is spliced out of the forest (children re-attach to
// the grandparent, which still covers them transitively).
func (e *Engine) Unregister(subID uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	nodeOff, ok := e.subIndex[subID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSubscription, subID)
	}
	delete(e.subIndex, subID)
	remaining, err := e.removeSubscriber(nodeOff, subID)
	if err != nil {
		return err
	}
	if remaining > 0 {
		return nil
	}
	// Splice the node out.
	h := e.readHeader(nodeOff)
	if err := e.unlinkChild(h.parent, nodeOff); err != nil {
		return err
	}
	child := h.child
	for child != nilOff {
		next := e.readHeader(child).sibling
		e.linkChild(h.parent, child)
		child = next
	}
	e.nodesLive--
	return nil
}

// Match returns every subscription the event satisfies. It consults
// the shard of each event attribute value plus the general shard and
// walks each containment forest with subtree pruning.
func (e *Engine) Match(ev *pubsub.Event) ([]MatchResult, error) {
	return e.MatchAppend(ev, nil)
}

// MatchAppend is Match appending into out to avoid per-call
// allocations on the hot path.
func (e *Engine) MatchAppend(ev *pubsub.Event, out []MatchResult) ([]MatchResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.matchAppendLocked(ev, out)
}

// MatchAppendBatch matches a batch of events under a single lock
// acquisition — the engine-side half of the batch-first publication
// path, where one enclave crossing covers a whole publish-batch. evs
// and out are parallel; nil events are skipped (a dropped item keeps
// its slot so callers can merge by index), and an event that fails
// mid-walk contributes nothing to its slot, exactly as the per-item
// MatchAppend would have returned nothing.
func (e *Engine) MatchAppendBatch(evs []*pubsub.Event, out [][]MatchResult) error {
	if len(out) < len(evs) {
		return fmt.Errorf("core: batch result slots %d < events %d", len(out), len(evs))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, ev := range evs {
		if ev == nil {
			continue
		}
		base := len(out[i])
		res, err := e.matchAppendLocked(ev, out[i])
		if err != nil {
			out[i] = out[i][:base]
			continue
		}
		out[i] = res
	}
	return nil
}

func (e *Engine) matchAppendLocked(ev *pubsub.Event, out []MatchResult) ([]MatchResult, error) {

	out, err := e.matchForest(e.general, ev, out)
	if err != nil {
		return nil, err
	}
	var key shardKey
	for _, attr := range ev.Attrs {
		key = shardKey{id: attr.ID}
		if attr.Value.Kind == pubsub.KindString {
			key.str = true
			key.s = attr.Value.S
			key.f = 0
		} else {
			key.str = false
			key.s = ""
			key.f = math.Float64bits(attr.Value.AsFloat())
		}
		sentinel, ok := e.shards[key]
		if !ok {
			continue
		}
		if out, err = e.matchForest(sentinel, ev, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// matchForest walks one shard's forest.
func (e *Engine) matchForest(sentinel uint64, ev *pubsub.Event, out []MatchResult) ([]MatchResult, error) {
	h := e.readHeader(sentinel)
	if h.child == nilOff {
		return out, nil
	}
	e.stack = append(e.stack[:0], h.child)
	for len(e.stack) > 0 {
		off := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		nh := e.readHeader(off)
		if nh.sibling != nilOff {
			e.stack = append(e.stack, nh.sibling)
		}
		cs, err := e.constraintsOf(off, nh, &e.csNode)
		if err != nil {
			return nil, err
		}
		matched, evaluated := matchConstraints(ev, cs)
		e.acc.Charge(uint64(evaluated) * e.acc.Meter().Cost.PredicateCycles)
		if !matched {
			continue // prune: nothing below can match
		}
		sub := nh.firstSub
		for sub != nilOff {
			raw := e.acc.Read(sub, subRecordSize)
			out = append(out, MatchResult{
				SubID:     leUint64(raw[8:]),
				ClientRef: leUint32(raw[16:]),
			})
			sub = leUint64(raw[0:])
		}
		if nh.child != nilOff {
			e.stack = append(e.stack, nh.child)
		}
	}
	return out, nil
}

// matchConstraints evaluates the event against a sorted constraint
// slice, returning the verdict and how many constraints were tested
// (for cycle charging).
func matchConstraints(ev *pubsub.Event, cs []pubsub.Constraint) (bool, int) {
	i := 0
	for n, c := range cs {
		for i < len(ev.Attrs) && ev.Attrs[i].ID < c.ID {
			i++
		}
		if i >= len(ev.Attrs) || ev.Attrs[i].ID != c.ID {
			return false, n + 1
		}
		if !c.SatisfiedBy(ev.Attrs[i].Value) {
			return false, n + 1
		}
	}
	return true, len(cs)
}

// chargeCompare charges the CPU cost of one covering test over n
// constraints.
func (e *Engine) chargeCompare(n int) {
	if n == 0 {
		n = 1
	}
	e.acc.Charge(uint64(n) * e.acc.Meter().Cost.PredicateCycles)
}

// Stats returns engine statistics.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Subscriptions: len(e.subIndex),
		Nodes:         e.nodesLive,
		Shards:        len(e.shards) + 1,
		Bytes:         e.acc.Size(),
	}
}

// ForestShape describes the structure of the index: per-shard root
// counts and the depth histogram, used to validate the paper's
// explanation of workload behaviour (deep trees for equality-heavy
// workloads, many shallow roots for wide-attribute ones).
type ForestShape struct {
	Roots    int
	MaxDepth int
	// NodesAtDepth[d] counts nodes at depth d (roots are depth 1).
	NodesAtDepth []int
}

// Shape walks the whole index (metered) and returns its shape.
func (e *Engine) Shape() ForestShape {
	e.mu.Lock()
	defer e.mu.Unlock()
	var shape ForestShape
	sentinels := make([]uint64, 0, len(e.shards)+1)
	sentinels = append(sentinels, e.general)
	for _, s := range e.shards {
		sentinels = append(sentinels, s)
	}
	type item struct {
		off   uint64
		depth int
	}
	var stack []item
	for _, s := range sentinels {
		h := e.readHeader(s)
		child := h.child
		for child != nilOff {
			shape.Roots++
			stack = append(stack, item{off: child, depth: 1})
			child = e.readHeader(child).sibling
		}
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for len(shape.NodesAtDepth) <= it.depth {
			shape.NodesAtDepth = append(shape.NodesAtDepth, 0)
		}
		shape.NodesAtDepth[it.depth]++
		if it.depth > shape.MaxDepth {
			shape.MaxDepth = it.depth
		}
		h := e.readHeader(it.off)
		child := h.child
		for child != nilOff {
			stack = append(stack, item{off: child, depth: it.depth + 1})
			child = e.readHeader(child).sibling
		}
	}
	return shape
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func leUint32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
