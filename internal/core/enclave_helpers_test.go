package core

import (
	"testing"

	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

func newTestDevice(t *testing.T) *sgx.Device {
	t.Helper()
	d, err := sgx.NewDevice([]byte("core-test-device"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func launchTestEnclave(t *testing.T, d *sgx.Device, epcBytes uint64) *sgx.Enclave {
	t.Helper()
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.Launch([]byte("scbr matching engine image"), signer.Public(), sgx.EnclaveConfig{EPCBytes: epcBytes})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newPlainAcc() simmem.Accessor {
	return simmem.NewPlainAccessor(simmem.DefaultCost())
}
