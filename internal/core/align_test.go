package core

import (
	"math/rand"
	"testing"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// alignProbe records every allocation the engine makes so the test can
// check the CacheAlign invariants without reaching into the arena.
type alignProbe struct {
	simmem.Accessor
	allocs []struct {
		off  uint64
		size int
	}
}

func (p *alignProbe) Alloc(n int) (uint64, error) {
	off, err := p.Accessor.Alloc(n)
	if err == nil {
		p.allocs = append(p.allocs, struct {
			off  uint64
			size int
		}{off, n})
	}
	return off, err
}

func TestCacheAlignKeepsRecordsLineAligned(t *testing.T) {
	probe := &alignProbe{Accessor: simmem.NewPlainAccessor(simmem.DefaultCost())}
	e, err := NewEngine(probe, pubsub.NewSchema(), Options{CacheAlign: true, PadRecordTo: 437})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	registered := 0
	for i := 0; i < 500; i++ {
		sp := randomSpec(rng)
		if _, err := e.Register(sp, uint32(i)); err != nil {
			continue // randomSpec may produce unsatisfiable conjunctions
		}
		registered++
	}
	if registered < 300 {
		t.Fatalf("only %d specs registered; generator too lossy", registered)
	}
	// Skip the guard-page reservation (first alloc).
	for _, a := range probe.allocs[1:] {
		if a.off%cacheLineSize != 0 {
			t.Fatalf("record at offset %d is not line-aligned", a.off)
		}
		if a.size%cacheLineSize != 0 {
			t.Fatalf("record size %d is not a line multiple", a.size)
		}
	}
}

// TestCacheAlignEquivalence: alignment is a pure layout change; match
// results must be identical to the unaligned engine on the same
// subscription and event stream.
func TestCacheAlignEquivalence(t *testing.T) {
	plain := newTestEngine(t)
	aligned, err := NewEngine(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), Options{CacheAlign: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	specs := make([]pubsub.SubscriptionSpec, 0, 2000)
	for i := 0; i < 2000; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, sp := range specs {
		idP, errP := plain.Register(sp, uint32(i))
		idA, errA := aligned.Register(sp, uint32(i))
		if (errP == nil) != (errA == nil) {
			t.Fatalf("registration divergence at %d: %v vs %v", i, errP, errA)
		}
		if errP == nil && idP != idA {
			t.Fatalf("subscription IDs diverged: %d vs %d", idP, idA)
		}
	}
	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	for i := 0; i < 200; i++ {
		attrs := map[string]pubsub.Value{
			"symbol": pubsub.Str(symbols[rng.Intn(len(symbols))]),
			"price":  pubsub.Float(float64(rng.Intn(120) - 10)),
			"volume": pubsub.Float(float64(rng.Intn(120) - 10)),
			"open":   pubsub.Float(float64(rng.Intn(120) - 10)),
			"close":  pubsub.Float(float64(rng.Intn(120) - 10)),
		}
		evP := event(t, plain, attrs)
		evA := event(t, aligned, attrs)
		got := matchIDs(t, aligned, evA)
		want := matchIDs(t, plain, evP)
		if len(got) != len(want) {
			t.Fatalf("event %d: aligned %d matches, plain %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("event %d: aligned %v != plain %v", i, got, want)
			}
		}
	}
	// Alignment costs footprint: the aligned arena must be at least as
	// large, and its padding must stay within 2× (sanity bound).
	pb, ab := plain.Stats().Bytes, aligned.Stats().Bytes
	if ab < pb {
		t.Fatalf("aligned footprint %d smaller than plain %d", ab, pb)
	}
	if ab > 2*pb {
		t.Fatalf("aligned footprint %d more than doubles plain %d", ab, pb)
	}
}
