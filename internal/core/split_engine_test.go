package core

import (
	"math/rand"
	"testing"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// TestEngineOnSplitMemoryEquivalent runs the engine over the §6
// split-memory accessor with a deliberately tiny in-enclave cache, so
// records are sealed out and unsealed back constantly, and checks that
// registrations, matches, removals and the structural invariants are
// indistinguishable from the plain engine.
func TestEngineOnSplitMemoryEquivalent(t *testing.T) {
	plainE := newTestEngine(t)

	dev := newTestDevice(t)
	encl := launchTestEnclave(t, dev, 32<<20)
	splitAcc, err := encl.SplitMemory(16 * simmem.PageSize) // 64 KB cache
	if err != nil {
		t.Fatal(err)
	}
	splitE, err := NewEngine(splitAcc, pubsub.NewSchema(), Options{PadRecordTo: 437})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	var livePlain, liveSplit []uint64
	for step := 0; step < 1500; step++ {
		if len(livePlain) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(livePlain))
			if err := plainE.Unregister(livePlain[k]); err != nil {
				t.Fatal(err)
			}
			if err := splitE.Unregister(liveSplit[k]); err != nil {
				t.Fatalf("split engine diverged on unregister: %v", err)
			}
			livePlain = append(livePlain[:k], livePlain[k+1:]...)
			liveSplit = append(liveSplit[:k], liveSplit[k+1:]...)
			continue
		}
		sp := randomSpec(rng)
		idP, errP := plainE.Register(sp, uint32(step))
		idS, errS := splitE.Register(sp, uint32(step))
		if (errP == nil) != (errS == nil) {
			t.Fatalf("step %d: registration divergence: %v vs %v", step, errP, errS)
		}
		if errP != nil {
			continue
		}
		livePlain = append(livePlain, idP)
		liveSplit = append(liveSplit, idS)
	}

	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	for i := 0; i < 150; i++ {
		attrs := map[string]pubsub.Value{
			"symbol": pubsub.Str(symbols[rng.Intn(len(symbols))]),
			"price":  pubsub.Float(float64(rng.Intn(120) - 10)),
			"volume": pubsub.Float(float64(rng.Intn(120) - 10)),
			"open":   pubsub.Float(float64(rng.Intn(120) - 10)),
			"close":  pubsub.Float(float64(rng.Intn(120) - 10)),
		}
		got := matchIDs(t, splitE, event(t, splitE, attrs))
		want := matchIDs(t, plainE, event(t, plainE, attrs))
		if len(got) != len(want) {
			t.Fatalf("event %d: split %d matches, plain %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("event %d: split %v != plain %v", i, got, want)
			}
		}
	}

	// The store must be far larger than the cache (the test is vacuous
	// otherwise), and the structural invariants must hold through all
	// the seal/unseal churn.
	if splitAcc.Size() < 4*16*simmem.PageSize {
		t.Fatalf("store %d bytes did not outgrow the 64 KB cache", splitAcc.Size())
	}
	if splitAcc.UserFaults() == 0 {
		t.Fatal("no user-level faults; split path unexercised")
	}
	checkInvariants(t, splitE)
}
