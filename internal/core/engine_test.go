package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	e, err := NewEngine(acc, pubsub.NewSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func spec(preds ...pubsub.Predicate) pubsub.SubscriptionSpec {
	return pubsub.SubscriptionSpec{Predicates: preds}
}

func eq(attr, val string) pubsub.Predicate {
	return pubsub.Predicate{Attr: attr, Op: pubsub.OpEq, Value: pubsub.Str(val)}
}

func lt(attr string, v float64) pubsub.Predicate {
	return pubsub.Predicate{Attr: attr, Op: pubsub.OpLt, Value: pubsub.Float(v)}
}

func gt(attr string, v float64) pubsub.Predicate {
	return pubsub.Predicate{Attr: attr, Op: pubsub.OpGt, Value: pubsub.Float(v)}
}

func between(attr string, lo, hi float64) pubsub.Predicate {
	return pubsub.Predicate{Attr: attr, Op: pubsub.OpBetween, Value: pubsub.Float(lo), Hi: pubsub.Float(hi)}
}

func event(t *testing.T, e *Engine, attrs map[string]pubsub.Value) *pubsub.Event {
	t.Helper()
	ev, err := pubsub.NewEvent(e.Schema(), attrs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func matchIDs(t *testing.T, e *Engine, ev *pubsub.Event) []uint64 {
	t.Helper()
	res, err := e.Match(ev)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(res))
	for i, m := range res {
		ids[i] = m.SubID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestPaperExampleSubscription(t *testing.T) {
	// 'symbol = "HAL" ∧ price < 50' from §3.2.
	e := newTestEngine(t)
	id, err := e.Register(spec(eq("symbol", "HAL"), lt("price", 50)), 1)
	if err != nil {
		t.Fatal(err)
	}
	hit := event(t, e, map[string]pubsub.Value{
		"symbol": pubsub.Str("HAL"), "price": pubsub.Float(49),
	})
	miss1 := event(t, e, map[string]pubsub.Value{
		"symbol": pubsub.Str("HAL"), "price": pubsub.Float(51),
	})
	miss2 := event(t, e, map[string]pubsub.Value{
		"symbol": pubsub.Str("IBM"), "price": pubsub.Float(49),
	})
	if got := matchIDs(t, e, hit); len(got) != 1 || got[0] != id {
		t.Fatalf("hit: got %v", got)
	}
	if got := matchIDs(t, e, miss1); len(got) != 0 {
		t.Fatalf("price miss matched: %v", got)
	}
	if got := matchIDs(t, e, miss2); len(got) != 0 {
		t.Fatalf("symbol miss matched: %v", got)
	}
}

func TestIdenticalSubscriptionsShareNode(t *testing.T) {
	e := newTestEngine(t)
	id1, err := e.Register(spec(eq("symbol", "HAL"), lt("price", 50)), 1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Register(spec(eq("symbol", "HAL"), lt("price", 50)), 2)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Subscriptions != 2 || st.Nodes != 1 {
		t.Fatalf("stats = %+v, want 2 subs on 1 node", st)
	}
	ev := event(t, e, map[string]pubsub.Value{
		"symbol": pubsub.Str("HAL"), "price": pubsub.Float(10),
	})
	if got := matchIDs(t, e, ev); len(got) != 2 || got[0] != id1 || got[1] != id2 {
		t.Fatalf("match = %v, want both ids", got)
	}
}

func TestCoveringPruning(t *testing.T) {
	// price>0 covers price>10 covers price>100. A deep containment
	// chain must form and match results stay exact.
	e := newTestEngine(t)
	ids := make([]uint64, 0, 3)
	for _, v := range []float64{0, 10, 100} {
		id, err := e.Register(spec(gt("price", v)), 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	shape := e.Shape()
	if shape.Roots != 1 || shape.MaxDepth != 3 {
		t.Fatalf("shape = %+v, want one chain of depth 3", shape)
	}
	ev5 := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(5)})
	if got := matchIDs(t, e, ev5); len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("price=5 matched %v, want only the >0 subscription %d", got, ids[0])
	}
	ev50 := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(50)})
	if got := matchIDs(t, e, ev50); len(got) != 2 {
		t.Fatalf("price=50 matched %v, want >0 and >10", got)
	}
	ev200 := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(200)})
	if got := matchIDs(t, e, ev200); len(got) != 3 {
		t.Fatalf("price=200 matched %v, want all 3", got)
	}
	evNeg := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(-1)})
	if got := matchIDs(t, e, evNeg); len(got) != 0 {
		t.Fatalf("price=-1 matched %v, want none", got)
	}
}

func TestReparentingOnInsert(t *testing.T) {
	// Insert specific first, then the general one: the general one
	// must adopt the specific as its child.
	e := newTestEngine(t)
	if _, err := e.Register(spec(gt("price", 100)), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(spec(gt("price", 10)), 1); err != nil {
		t.Fatal(err)
	}
	shape := e.Shape()
	if shape.Roots != 1 || shape.MaxDepth != 2 {
		t.Fatalf("shape = %+v, want root + child after re-parenting", shape)
	}
}

func TestUnregister(t *testing.T) {
	e := newTestEngine(t)
	id1, err := e.Register(spec(gt("price", 0)), 1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Register(spec(gt("price", 10)), 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(20)})
	if got := matchIDs(t, e, ev); len(got) != 2 {
		t.Fatalf("before unregister: %v", got)
	}
	if err := e.Unregister(id1); err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(t, e, ev); len(got) != 1 || got[0] != id2 {
		t.Fatalf("after unregister: %v", got)
	}
	// id2's node was a child of id1's node; the splice must keep it
	// reachable (checked above) and the engine consistent.
	if st := e.Stats(); st.Subscriptions != 1 || st.Nodes != 1 {
		t.Fatalf("stats after splice = %+v", st)
	}
	if err := e.Unregister(id1); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("double unregister: %v", err)
	}
	if err := e.Unregister(999); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("unknown unregister: %v", err)
	}
}

func TestUnregisterSharedNodeKeepsOthers(t *testing.T) {
	e := newTestEngine(t)
	id1, err := e.Register(spec(eq("symbol", "A")), 1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Register(spec(eq("symbol", "A")), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister(id1); err != nil {
		t.Fatal(err)
	}
	ev := event(t, e, map[string]pubsub.Value{"symbol": pubsub.Str("A")})
	if got := matchIDs(t, e, ev); len(got) != 1 || got[0] != id2 {
		t.Fatalf("shared node lost surviving subscriber: %v", got)
	}
	if st := e.Stats(); st.Nodes != 1 {
		t.Fatalf("node count = %d, want 1 (node still has a subscriber)", st.Nodes)
	}
}

func TestShardingByEqualityAttribute(t *testing.T) {
	e := newTestEngine(t)
	// 100 symbols, one subscription each, plus one range-only sub.
	for i := 0; i < 100; i++ {
		sym := string(rune('A'+i%26)) + string(rune('A'+i/26))
		if _, err := e.Register(spec(eq("symbol", sym), lt("price", 50)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Register(spec(gt("volume", 1000)), 200); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Shards != 101 {
		t.Fatalf("shards = %d, want 101 (100 symbols + general)", st.Shards)
	}
	ev := event(t, e, map[string]pubsub.Value{
		"symbol": pubsub.Str("AA"), "price": pubsub.Float(10), "volume": pubsub.Float(5000),
	})
	got := matchIDs(t, e, ev)
	if len(got) != 2 {
		t.Fatalf("expected symbol shard + general shard hits, got %v", got)
	}
}

// naiveStore duplicates registrations for brute-force comparison.
type naiveStore struct {
	subs map[uint64]*pubsub.Subscription
}

func (n *naiveStore) match(ev *pubsub.Event) []uint64 {
	var out []uint64
	for id, s := range n.subs {
		if s.Matches(ev) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomSpec(rng *rand.Rand) pubsub.SubscriptionSpec {
	attrs := []string{"symbol", "price", "volume", "open", "close"}
	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	var preds []pubsub.Predicate
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			preds = append(preds, eq("symbol", symbols[rng.Intn(len(symbols))]))
		case 1:
			preds = append(preds, lt(attrs[1+rng.Intn(4)], float64(rng.Intn(100))))
		case 2:
			preds = append(preds, gt(attrs[1+rng.Intn(4)], float64(rng.Intn(100)-50)))
		case 3:
			lo := float64(rng.Intn(80))
			preds = append(preds, between(attrs[1+rng.Intn(4)], lo, lo+float64(1+rng.Intn(40))))
		default:
			preds = append(preds, pubsub.Predicate{
				Attr: attrs[1+rng.Intn(4)], Op: pubsub.OpEq, Value: pubsub.Float(float64(rng.Intn(50))),
			})
		}
	}
	return spec(preds...)
}

func randomEngineEvent(t *testing.T, rng *rand.Rand, e *Engine) *pubsub.Event {
	t.Helper()
	symbols := []string{"HAL", "IBM", "MSFT", "AAPL"}
	attrs := map[string]pubsub.Value{
		"symbol": pubsub.Str(symbols[rng.Intn(len(symbols))]),
		"price":  pubsub.Float(float64(rng.Intn(120) - 10)),
		"volume": pubsub.Float(float64(rng.Intn(120) - 10)),
		"open":   pubsub.Float(float64(rng.Intn(120) - 10)),
		"close":  pubsub.Float(float64(rng.Intn(120) - 10)),
	}
	if rng.Intn(5) == 0 {
		delete(attrs, "price")
	}
	return event(t, e, attrs)
}

// TestMatchEquivalentToNaiveScan is the core correctness property: the
// containment forest with pruning and sharding returns exactly the
// brute-force result set.
func TestMatchEquivalentToNaiveScan(t *testing.T) {
	e := newTestEngine(t)
	naive := &naiveStore{subs: make(map[uint64]*pubsub.Subscription)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		sp := randomSpec(rng)
		sub, err := pubsub.Normalize(e.Schema(), sp)
		if err != nil {
			continue
		}
		id, err := e.RegisterNormalized(sub, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		naive.subs[id] = sub
	}
	for i := 0; i < 300; i++ {
		ev := randomEngineEvent(t, rng, e)
		got := matchIDs(t, e, ev)
		want := naive.match(ev)
		if len(got) != len(want) {
			t.Fatalf("event %d: engine %d matches, naive %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("event %d: engine %v != naive %v", i, got, want)
			}
		}
	}
}

// TestMatchEquivalenceUnderChurn mixes registrations and removals.
func TestMatchEquivalenceUnderChurn(t *testing.T) {
	e := newTestEngine(t)
	naive := &naiveStore{subs: make(map[uint64]*pubsub.Subscription)}
	rng := rand.New(rand.NewSource(2))
	var live []uint64
	for i := 0; i < 4000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			if err := e.Unregister(id); err != nil {
				t.Fatal(err)
			}
			delete(naive.subs, id)
			continue
		}
		sub, err := pubsub.Normalize(e.Schema(), randomSpec(rng))
		if err != nil {
			continue
		}
		id, err := e.RegisterNormalized(sub, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		naive.subs[id] = sub
		live = append(live, id)

		if i%200 == 0 {
			ev := randomEngineEvent(t, rng, e)
			got := matchIDs(t, e, ev)
			want := naive.match(ev)
			if len(got) != len(want) {
				t.Fatalf("step %d: engine %v != naive %v", i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: engine %v != naive %v", i, got, want)
				}
			}
		}
	}
	if st := e.Stats(); st.Subscriptions != len(naive.subs) {
		t.Fatalf("live subs = %d, naive = %d", st.Subscriptions, len(naive.subs))
	}
}

func TestEngineInsideEnclaveEquivalent(t *testing.T) {
	// The same registrations against a plain accessor and an enclave
	// accessor must produce identical match results; the enclave run
	// must additionally charge MEE/transition costs.
	plainE := newTestEngine(t)

	dev := newTestDevice(t)
	encl := launchTestEnclave(t, dev, 32<<20)
	enclE, err := NewEngine(encl.Memory(), pubsub.NewSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	specs := make([]pubsub.SubscriptionSpec, 0, 500)
	for i := 0; i < 500; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, sp := range specs {
		if _, err := plainE.Register(sp, uint32(i)); err != nil {
			if _, err2 := enclE.Register(sp, uint32(i)); err2 == nil {
				t.Fatalf("engines disagree on spec validity: %v vs nil", err)
			}
			continue
		}
		if _, err := enclE.Register(sp, uint32(i)); err != nil {
			t.Fatalf("enclave engine rejected valid spec: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		attrs := map[string]pubsub.Value{
			"symbol": pubsub.Str([]string{"HAL", "IBM", "MSFT", "AAPL"}[rng.Intn(4)]),
			"price":  pubsub.Float(float64(rng.Intn(120) - 10)),
			"volume": pubsub.Float(float64(rng.Intn(120) - 10)),
			"open":   pubsub.Float(float64(rng.Intn(120) - 10)),
			"close":  pubsub.Float(float64(rng.Intn(120) - 10)),
		}
		evPlain, err := pubsub.NewEvent(plainE.Schema(), attrs)
		if err != nil {
			t.Fatal(err)
		}
		evEncl, err := pubsub.NewEvent(enclE.Schema(), attrs)
		if err != nil {
			t.Fatal(err)
		}
		a, err := plainE.Match(evPlain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := enclE.Match(evEncl)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("event %d: plain %d matches, enclave %d", i, len(a), len(b))
		}
	}
}

func TestPadRecordTo(t *testing.T) {
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	e, err := NewEngine(acc, pubsub.NewSchema(), Options{PadRecordTo: 400})
	if err != nil {
		t.Fatal(err)
	}
	before := acc.Size()
	if _, err := e.Register(spec(eq("symbol", "HAL")), 1); err != nil {
		t.Fatal(err)
	}
	grew := acc.Size() - before
	// Node (≥400) + shard sentinel (≥400) + subscriber record.
	if grew < 824 {
		t.Fatalf("arena grew %d bytes, want ≥ 824 with padding", grew)
	}
}

func TestMatchChargesCycles(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 100; i++ {
		if _, err := e.Register(spec(gt("price", float64(i))), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	ev := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(50)})
	before := e.Accessor().Meter().C
	if _, err := e.Match(ev); err != nil {
		t.Fatal(err)
	}
	delta := e.Accessor().Meter().C.Sub(before)
	if delta.Cycles == 0 || delta.BytesRead == 0 {
		t.Fatalf("match charged nothing: %+v", delta)
	}
}

func TestEmptyEngineMatches(t *testing.T) {
	e := newTestEngine(t)
	ev := event(t, e, map[string]pubsub.Value{"price": pubsub.Float(1)})
	got, err := e.Match(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty engine matched %v", got)
	}
}

func TestRegisterRejectsBadSpec(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Register(pubsub.SubscriptionSpec{}, 1); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := e.Register(spec(gt("x", 5), lt("x", 1)), 1); err == nil {
		t.Fatal("unsatisfiable spec accepted")
	}
}

func TestDisableShardingEquivalence(t *testing.T) {
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	mono, err := NewEngine(acc, pubsub.NewSchema(), Options{DisableSharding: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded := newTestEngine(t)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1500; i++ {
		sp := randomSpec(rng)
		if _, err := mono.Register(sp, uint32(i)); err != nil {
			continue
		}
		if _, err := sharded.Register(sp, uint32(i)); err != nil {
			t.Fatalf("engines disagree on validity: %v", err)
		}
	}
	if st := mono.Stats(); st.Shards != 1 {
		t.Fatalf("sharding not disabled: %+v", st)
	}
	for i := 0; i < 150; i++ {
		attrs := map[string]pubsub.Value{
			"symbol": pubsub.Str([]string{"HAL", "IBM", "MSFT", "AAPL"}[rng.Intn(4)]),
			"price":  pubsub.Float(float64(rng.Intn(120) - 10)),
			"volume": pubsub.Float(float64(rng.Intn(120) - 10)),
			"open":   pubsub.Float(float64(rng.Intn(120) - 10)),
			"close":  pubsub.Float(float64(rng.Intn(120) - 10)),
		}
		evMono, err := pubsub.NewEvent(mono.Schema(), attrs)
		if err != nil {
			t.Fatal(err)
		}
		evSharded, err := pubsub.NewEvent(sharded.Schema(), attrs)
		if err != nil {
			t.Fatal(err)
		}
		a, err := mono.Match(evMono)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Match(evSharded)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("event %d: mono %d matches, sharded %d", i, len(a), len(b))
		}
	}
}
