package sgx

import (
	"bytes"
	"errors"
	"testing"

	"scbr/internal/scrypto"
	"scbr/internal/simmem"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice([]byte("test-device"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testSigner(t *testing.T) *scrypto.KeyPair {
	t.Helper()
	kp, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func launch(t *testing.T, d *Device, code []byte, cfg EnclaveConfig) *Enclave {
	t.Helper()
	e, err := d.Launch(code, testSigner(t).Public(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLaunchValidation(t *testing.T) {
	d := testDevice(t)
	signer := testSigner(t)
	if _, err := d.Launch(nil, signer.Public(), EnclaveConfig{}); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := d.Launch([]byte("code"), nil, EnclaveConfig{}); err == nil {
		t.Fatal("unsigned image accepted")
	}
	if _, err := d.Launch([]byte("code"), signer.Public(), EnclaveConfig{EPCBytes: 100}); err == nil {
		t.Fatal("sub-page EPC accepted")
	}
}

func TestMeasurementDeterministicAndSensitive(t *testing.T) {
	d := testDevice(t)
	signer := testSigner(t)
	code := bytes.Repeat([]byte("scbr filter v1 "), 2000)
	e1, err := d.Launch(code, signer.Public(), EnclaveConfig{ISVProdID: 1, ISVSVN: 2})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.Launch(code, signer.Public(), EnclaveConfig{ISVProdID: 1, ISVSVN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e1.MRENCLAVE() != e2.MRENCLAVE() {
		t.Fatal("same image produced different measurements")
	}
	mutated := bytes.Clone(code)
	mutated[5000] ^= 1
	e3, err := d.Launch(mutated, signer.Public(), EnclaveConfig{ISVProdID: 1, ISVSVN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e1.MRENCLAVE() == e3.MRENCLAVE() {
		t.Fatal("modified image produced identical measurement")
	}
	e4, err := d.Launch(code, signer.Public(), EnclaveConfig{ISVProdID: 1, ISVSVN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e1.MRENCLAVE() == e4.MRENCLAVE() {
		t.Fatal("ISVSVN change did not affect measurement")
	}
	other := testSigner(t)
	e5, err := d.Launch(code, other.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if e1.MRSIGNER() == e5.MRSIGNER() {
		t.Fatal("different signers produced identical MRSIGNER")
	}
}

func TestEcallChargesTransition(t *testing.T) {
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{})
	before := e.Memory().Meter().C
	ran := false
	if err := e.Ecall(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("ecall body did not run")
	}
	delta := e.Memory().Meter().C.Sub(before)
	if delta.Transitions != 1 {
		t.Fatalf("Transitions = %d, want 1", delta.Transitions)
	}
	if delta.Cycles != simmem.DefaultCost().EnclaveTransitionCycles {
		t.Fatalf("transition cycles = %d", delta.Cycles)
	}
}

func TestEnclaveMemoryRoundTrip(t *testing.T) {
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{})
	mem := e.Memory()
	off, err := mem.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5C}, 200)
	mem.Write(off, want)
	if !bytes.Equal(mem.Read(off, 200), want) {
		t.Fatal("enclave memory round trip failed")
	}
}

// fillPages allocates n pages and writes a recognisable pattern.
func fillPages(t *testing.T, mem *Accessor, n int) []uint64 {
	t.Helper()
	offs := make([]uint64, n)
	buf := make([]byte, simmem.PageSize)
	for i := range offs {
		off, err := mem.Alloc(simmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i + j)
		}
		mem.Write(off, buf)
		offs[i] = off
	}
	return offs
}

func TestEPCEvictionAndReload(t *testing.T) {
	// 4-page EPC, 10 pages of data: heavy paging, data must survive.
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{EPCBytes: 4 * simmem.PageSize})
	mem := e.Memory()
	offs := fillPages(t, mem, 10)
	if mem.ResidentPages() > 4 {
		t.Fatalf("ResidentPages = %d exceeds capacity", mem.ResidentPages())
	}
	if mem.PageFaults() == 0 {
		t.Fatal("no faults despite overcommit")
	}
	for i, off := range offs {
		got := mem.Read(off, simmem.PageSize)
		for j := 0; j < simmem.PageSize; j += 997 {
			if got[j] != byte(i+j) {
				t.Fatalf("page %d corrupted after eviction/reload at byte %d", i, j)
			}
		}
	}
}

func TestEPCFaultsChargePagingCost(t *testing.T) {
	cost := simmem.DefaultCost()
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{EPCBytes: 2 * simmem.PageSize})
	mem := e.Memory()
	offs := fillPages(t, mem, 4)
	before := mem.Meter().C
	faultsBefore := mem.PageFaults()
	mem.Read(offs[0], 8) // page 0 was evicted; this faults
	delta := mem.Meter().C.Sub(before)
	if mem.PageFaults() != faultsBefore+1 {
		t.Fatalf("faults = %d, want +1", mem.PageFaults()-faultsBefore)
	}
	if delta.Cycles < cost.PageFaultCycles {
		t.Fatalf("fault charged %d cycles, want ≥ %d", delta.Cycles, cost.PageFaultCycles)
	}
}

func TestEPCDetectsTamperedPage(t *testing.T) {
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{EPCBytes: 2 * simmem.PageSize})
	mem := e.Memory()
	offs := fillPages(t, mem, 4)
	page0 := simmem.PageOf(offs[0])
	if !mem.CorruptEvictedPage(page0) {
		t.Fatal("page 0 unexpectedly resident")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tampered page reloaded without integrity failure")
		}
	}()
	mem.Read(offs[0], 8)
}

func TestEPCDetectsReplayedPage(t *testing.T) {
	e := launch(t, testDevice(t), []byte("code"), EnclaveConfig{EPCBytes: 2 * simmem.PageSize})
	mem := e.Memory()
	offs := fillPages(t, mem, 4)
	page0 := simmem.PageOf(offs[0])
	oldImage, ok := mem.EvictedPageImage(page0)
	if !ok {
		t.Fatal("page 0 unexpectedly resident")
	}
	// Fault page 0 back in (valid), modify it, force it out again, then
	// replay the stale image: version counters must catch it.
	buf := make([]byte, simmem.PageSize)
	mem.Write(offs[0], buf)
	fillPages(t, mem, 3) // push page 0 out with a newer version
	if !mem.ReplayEvictedPage(page0, oldImage) {
		t.Skip("page 0 not evicted by pressure; CLOCK kept it resident")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replayed stale page accepted")
		}
	}()
	mem.Read(offs[0], 8)
}

func TestSealUnsealPolicies(t *testing.T) {
	d := testDevice(t)
	signer := testSigner(t)
	code := []byte("router enclave")
	e1, err := d.Launch(code, signer.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.Launch(code, signer.Public(), EnclaveConfig{}) // same identity (restart)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := d.Launch([]byte("different code"), signer.Public(), EnclaveConfig{}) // same signer
	if err != nil {
		t.Fatal(err)
	}

	data := []byte("subscription database snapshot")
	aad := []byte("counter=3")

	blob, err := e1.Seal(SealToMRENCLAVE, data, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Unseal(blob, aad)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restart unseal failed: %v", err)
	}
	if _, err := e3.Unseal(blob, aad); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatalf("different code unsealed MRENCLAVE blob: %v", err)
	}

	blobSigner, err := e1.Seal(SealToMRSIGNER, data, aad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Unseal(blobSigner, aad); err != nil {
		t.Fatalf("same-signer unseal failed: %v", err)
	}

	// Wrong AAD (rolled-back counter) must fail.
	if _, err := e2.Unseal(blob, []byte("counter=2")); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatalf("stale counter accepted: %v", err)
	}
	// Different device must fail.
	d2, err := NewDevice([]byte("other-device"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	e4, err := d2.Launch(code, signer.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e4.Unseal(blob, aad); !errors.Is(err, ErrSealedDataCorrupt) {
		t.Fatalf("cross-device unseal succeeded: %v", err)
	}
}

func TestMonotonicCounters(t *testing.T) {
	d := testDevice(t)
	if d.ReadCounter("db") != 0 {
		t.Fatal("fresh counter not zero")
	}
	if d.IncrementCounter("db") != 1 || d.IncrementCounter("db") != 2 {
		t.Fatal("counter increments wrong")
	}
	if d.ReadCounter("db") != 2 {
		t.Fatal("counter read wrong")
	}
	if d.ReadCounter("other") != 0 {
		t.Fatal("counters not independent")
	}
}

func TestLocalReportVerification(t *testing.T) {
	d := testDevice(t)
	signer := testSigner(t)
	prover, err := d.Launch([]byte("prover"), signer.Public(), EnclaveConfig{ISVProdID: 7})
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := d.Launch([]byte("verifier"), signer.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var data ReportData
	copy(data[:], "channel binding hash")
	rep, err := prover.Report(verifier.MRENCLAVE(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !verifier.VerifyReport(rep) {
		t.Fatal("valid report rejected")
	}
	if rep.Body.ISVProdID != 7 || rep.Body.MRENCLAVE != prover.MRENCLAVE() {
		t.Fatal("report body wrong")
	}
	// A report addressed to someone else must not verify.
	other, err := d.Launch([]byte("other"), signer.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	repOther, err := prover.Report(other.MRENCLAVE(), data)
	if err != nil {
		t.Fatal(err)
	}
	if verifier.VerifyReport(repOther) {
		t.Fatal("misaddressed report verified")
	}
	// Tampered body must not verify.
	mutated := *rep
	mutated.Body.ISVSVN++
	if verifier.VerifyReport(&mutated) {
		t.Fatal("tampered report verified")
	}
	// Cross-device reports must not verify.
	d2, err := NewDevice([]byte("other-device"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	verifier2, err := d2.Launch([]byte("verifier"), signer.Public(), EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if verifier2.VerifyReport(rep) {
		t.Fatal("cross-device report verified")
	}
	if verifier.VerifyReport(nil) {
		t.Fatal("nil report verified")
	}
}

func TestReportBodyMarshalRoundTrip(t *testing.T) {
	var data ReportData
	copy(data[:], "payload")
	body := ReportBody{ISVProdID: 3, ISVSVN: 9, Debug: true, Data: data}
	copy(body.MRENCLAVE[:], bytes.Repeat([]byte{1}, 32))
	copy(body.MRSIGNER[:], bytes.Repeat([]byte{2}, 32))
	got, err := UnmarshalReportBody(body.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != body {
		t.Fatalf("round trip mismatch: %+v vs %+v", *got, body)
	}
	if _, err := UnmarshalReportBody([]byte("short")); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestUninitialisedEnclaveRejected(t *testing.T) {
	var e Enclave
	if err := e.Ecall(func() error { return nil }); !errors.Is(err, ErrNotInitialised) {
		t.Fatal("ecall on uninitialised enclave")
	}
	if _, err := e.Seal(SealToMRENCLAVE, nil, nil); !errors.Is(err, ErrNotInitialised) {
		t.Fatal("seal on uninitialised enclave")
	}
	if _, err := e.Unseal(nil, nil); !errors.Is(err, ErrNotInitialised) {
		t.Fatal("unseal on uninitialised enclave")
	}
	if _, err := e.Report([32]byte{}, ReportData{}); !errors.Is(err, ErrNotInitialised) {
		t.Fatal("report on uninitialised enclave")
	}
}
