package sgx

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"scbr/internal/simmem"
)

func splitMem(t *testing.T, cachePages int) *SplitAccessor {
	t.Helper()
	e := launch(t, testDevice(t), []byte("split code"), EnclaveConfig{})
	mem, err := e.SplitMemory(uint64(cachePages) * simmem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

func TestSplitMemoryValidation(t *testing.T) {
	e := launch(t, testDevice(t), []byte("split code"), EnclaveConfig{EPCBytes: 4 * simmem.PageSize})
	if _, err := e.SplitMemory(100); !errors.Is(err, ErrSplitCacheTooSmall) {
		t.Fatalf("sub-page cache: err = %v", err)
	}
	if _, err := e.SplitMemory(8 * simmem.PageSize); !errors.Is(err, ErrSplitCacheTooSmall) {
		t.Fatalf("cache larger than EPC: err = %v", err)
	}
	if _, err := e.SplitMemory(2 * simmem.PageSize); err != nil {
		t.Fatalf("valid cache rejected: %v", err)
	}
	var un Enclave
	if _, err := un.SplitMemory(simmem.PageSize); !errors.Is(err, ErrNotInitialised) {
		t.Fatalf("uninitialised enclave: err = %v", err)
	}
}

// fillSplitPages allocates n pages through the split accessor with a
// recognisable pattern, mirroring fillPages for the EPC accessor.
func fillSplitPages(t *testing.T, mem *SplitAccessor, n int) []uint64 {
	t.Helper()
	offs := make([]uint64, n)
	buf := make([]byte, simmem.PageSize)
	for i := range offs {
		off, err := mem.Alloc(simmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i + j)
		}
		mem.Write(off, buf)
		offs[i] = off
	}
	return offs
}

func TestSplitEvictionAndReload(t *testing.T) {
	mem := splitMem(t, 4)
	offs := fillSplitPages(t, mem, 10)
	if mem.ResidentPages() > 4 {
		t.Fatalf("ResidentPages = %d exceeds cache budget", mem.ResidentPages())
	}
	if mem.Writebacks() == 0 {
		t.Fatal("no writebacks despite dirty evictions")
	}
	for i, off := range offs {
		got := mem.Read(off, simmem.PageSize)
		for j := 0; j < simmem.PageSize; j += 997 {
			if got[j] != byte(i+j) {
				t.Fatalf("page %d corrupted after seal/unseal at byte %d", i, j)
			}
		}
	}
	// Unlike hardware EPC paging, fresh-page adds are not faults in
	// split mode; only unseals are — and the read-back loop above
	// necessarily unsealed the early pages.
	if mem.UserFaults() == 0 {
		t.Fatal("no user-level faults despite overcommit")
	}
}

func TestSplitCleanEvictionSkipsReseal(t *testing.T) {
	mem := splitMem(t, 2)
	offs := fillSplitPages(t, mem, 4)
	// Every page has been sealed once (dirty on first eviction). Now
	// cycle through all pages read-only, twice: the second pass evicts
	// only clean pages, so the writeback count must not grow.
	for _, off := range offs {
		mem.Read(off, 8)
	}
	wbAfterFirstPass := mem.Writebacks()
	for _, off := range offs {
		mem.Read(off, 8)
	}
	if got := mem.Writebacks(); got != wbAfterFirstPass {
		t.Fatalf("clean evictions resealed pages: writebacks %d → %d", wbAfterFirstPass, got)
	}
	if mem.UserFaults() == 0 {
		t.Fatal("expected user faults from the read cycling")
	}
}

func TestSplitFaultCheaperThanEPCFault(t *testing.T) {
	cost := simmem.DefaultCost()
	mem := splitMem(t, 2)
	offs := fillSplitPages(t, mem, 4)
	// Make the target page clean-resident elsewhere: page of offs[0] is
	// currently sealed. A read faults it in (one unseal; victim may be
	// dirty → at most one seal).
	before := mem.Meter().C
	mem.Read(offs[0], 8)
	delta := mem.Meter().C.Sub(before)
	if delta.UserFaults != 1 {
		t.Fatalf("UserFaults = %d, want 1", delta.UserFaults)
	}
	if delta.PageFaults != 0 {
		t.Fatalf("hardware PageFaults = %d in split mode, want 0", delta.PageFaults)
	}
	if delta.Cycles >= cost.PageFaultCycles {
		t.Fatalf("split fault cost %d cycles ≥ hardware paging cost %d — no saving", delta.Cycles, cost.PageFaultCycles)
	}
}

func TestSplitDetectsTamperedPage(t *testing.T) {
	mem := splitMem(t, 2)
	offs := fillSplitPages(t, mem, 4)
	page0 := simmem.PageOf(offs[0])
	if !mem.CorruptSealedPage(page0) {
		t.Fatal("page 0 unexpectedly has no sealed image")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("tampered sealed page reloaded without integrity failure")
		}
		var ie *SplitIntegrityError
		err, ok := r.(error)
		if !ok || !errors.As(err, &ie) {
			t.Fatalf("panic value %v is not a SplitIntegrityError", r)
		}
		if ie.Page != page0 {
			t.Fatalf("integrity error names page %d, want %d", ie.Page, page0)
		}
	}()
	mem.Read(offs[0], 8)
}

func TestSplitDetectsReplayedPage(t *testing.T) {
	mem := splitMem(t, 2)
	offs := fillSplitPages(t, mem, 4)
	page0 := simmem.PageOf(offs[0])
	oldImage, ok := mem.SealedPageImage(page0)
	if !ok {
		t.Fatal("page 0 unexpectedly has no sealed image")
	}
	// Fault page 0 in, dirty it (bumping its version on the next
	// seal), push it out, then replay the stale image.
	buf := make([]byte, simmem.PageSize)
	mem.Write(offs[0], buf)
	fillSplitPages(t, mem, 3)
	if !mem.ReplaySealedPage(page0, oldImage) {
		t.Skip("page 0 not externalised by pressure; CLOCK kept it resident")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replayed stale sealed page accepted")
		}
	}()
	mem.Read(offs[0], 8)
}

// TestSplitMatchesPlainSemantics drives identical random access
// sequences through a split accessor under heavy pressure and a plain
// reference accessor: the stored bytes must be indistinguishable.
func TestSplitMatchesPlainSemantics(t *testing.T) {
	split := splitMem(t, 3)
	plain := simmem.NewPlainAccessor(simmem.DefaultCost())

	type slot struct{ off uint64 }
	var splitSlots, plainSlots []slot
	sizes := []int{24, 48, 437, 1024, simmem.PageSize}

	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, simmem.PageSize)
	for step := 0; step < 4000; step++ {
		switch {
		case len(splitSlots) == 0 || rng.Intn(3) == 0:
			n := sizes[rng.Intn(len(sizes))]
			so, err := split.Alloc(n)
			if err != nil {
				t.Fatal(err)
			}
			po, err := plain.Alloc(n)
			if err != nil {
				t.Fatal(err)
			}
			if so != po {
				t.Fatalf("allocation offsets diverged: split %d plain %d", so, po)
			}
			splitSlots = append(splitSlots, slot{so})
			plainSlots = append(plainSlots, slot{po})
			fallthrough
		case rng.Intn(2) == 0:
			i := rng.Intn(len(splitSlots))
			n := 8 + rng.Intn(16)
			rng.Read(buf[:n])
			split.Write(splitSlots[i].off, buf[:n])
			plain.Write(plainSlots[i].off, buf[:n])
		default:
			i := rng.Intn(len(splitSlots))
			got := split.Read(splitSlots[i].off, 8)
			want := plain.Read(plainSlots[i].off, 8)
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: split bytes %x, plain bytes %x", step, got, want)
			}
		}
	}
	if split.UserFaults() == 0 {
		t.Fatal("pressure workload generated no user faults; test is vacuous")
	}
}

// TestSplitWriteReadProperty checks, via testing/quick, that any
// pattern written through the split accessor is read back intact even
// when the page has been sealed and unsealed in between.
func TestSplitWriteReadProperty(t *testing.T) {
	mem := splitMem(t, 2)
	// Pre-allocate a pool of offsets larger than the cache so seals
	// happen constantly.
	offs := make([]uint64, 8)
	for i := range offs {
		off, err := mem.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		offs[i] = off
	}
	property := func(idx uint8, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{0xA5}
		}
		if len(payload) > 256 {
			payload = payload[:256]
		}
		off := offs[int(idx)%len(offs)]
		mem.Write(off, payload)
		// Evict the page by touching every other slot.
		for _, o := range offs {
			if o != off {
				mem.Read(o, 8)
			}
		}
		return bytes.Equal(mem.Read(off, len(payload)), payload)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAccountsWritebacksAndFaultsSeparately(t *testing.T) {
	mem := splitMem(t, 2)
	fillSplitPages(t, mem, 5)
	c := mem.Meter().C
	if c.UserFaults != mem.UserFaults() {
		t.Fatalf("counter UserFaults %d != accessor %d", c.UserFaults, mem.UserFaults())
	}
	if c.UserWritebacks != mem.Writebacks() {
		t.Fatalf("counter UserWritebacks %d != accessor %d", c.UserWritebacks, mem.Writebacks())
	}
	if c.PageFaults != 0 {
		t.Fatal("split mode must not count hardware EPC faults")
	}
}
