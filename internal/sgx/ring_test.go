package sgx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"scbr/internal/simmem"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRing(-3); err == nil {
		t.Fatal("negative capacity accepted")
	}
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", r.Capacity())
	}
}

func TestRingOrderedDelivery(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var msg [8]byte
		for i := uint64(0); i < n; i++ {
			binary.LittleEndian.PutUint64(msg[:], i)
			if err := r.Push(msg[:]); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		r.Close()
	}()
	var buf []byte
	for i := uint64(0); ; i++ {
		msg, ok := r.Pop(buf)
		if !ok {
			if i != n {
				t.Fatalf("consumer saw %d messages, want %d", i, n)
			}
			break
		}
		buf = msg
		if got := binary.LittleEndian.Uint64(msg); got != i {
			t.Fatalf("message %d out of order: got %d", i, got)
		}
	}
	wg.Wait()
}

func TestRingVaryingSizes(t *testing.T) {
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 500)
	for i := range msgs {
		msgs[i] = bytes.Repeat([]byte{byte(i)}, 1+i%700)
	}
	go func() {
		for _, m := range msgs {
			if err := r.Push(m); err != nil {
				t.Error(err)
				return
			}
		}
		r.Close()
	}()
	var buf []byte
	for i := 0; ; i++ {
		msg, ok := r.Pop(buf)
		if !ok {
			if i != len(msgs) {
				t.Fatalf("received %d messages, want %d", i, len(msgs))
			}
			return
		}
		buf = msg
		if !bytes.Equal(msg, msgs[i]) {
			t.Fatalf("message %d corrupted: %d bytes, first %x", i, len(msg), msg[0])
		}
	}
}

func TestRingPushAfterCloseFails(t *testing.T) {
	r, err := NewRing(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := r.Push([]byte("x")); !errors.Is(err, ErrRingClosed) {
		t.Fatalf("push after close: err = %v", err)
	}
	if ok, err := r.TryPush([]byte("x")); ok || !errors.Is(err, ErrRingClosed) {
		t.Fatalf("trypush after close: ok=%v err=%v", ok, err)
	}
}

func TestRingDrainsAfterClose(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Push([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	for i := 0; i < 3; i++ {
		msg, ok := r.Pop(nil)
		if !ok || msg[0] != byte(i) {
			t.Fatalf("drain message %d: ok=%v msg=%v", i, ok, msg)
		}
	}
	if _, ok := r.Pop(nil); ok {
		t.Fatal("pop returned a message from a drained closed ring")
	}
}

func TestRingTryPushFullAndTryPopEmpty(t *testing.T) {
	r, err := NewRing(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, closed := r.TryPop(nil); ok || closed {
		t.Fatal("TryPop on empty open ring must report not-ok, not-closed")
	}
	for i := 0; i < r.Capacity(); i++ {
		ok, err := r.TryPush([]byte{byte(i)})
		if err != nil || !ok {
			t.Fatalf("fill push %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, err := r.TryPush([]byte{9}); ok || err != nil {
		t.Fatalf("push to full ring: ok=%v err=%v", ok, err)
	}
	if r.Len() != r.Capacity() {
		t.Fatalf("Len = %d, want %d", r.Len(), r.Capacity())
	}
}

// TestRingWrapAroundProperty pushes and pops pseudo-random batches so
// positions wrap the ring many times; contents must round-trip.
func TestRingWrapAroundProperty(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	var expect [][]byte
	property := func(batch []byte) bool {
		// Push the batch as individual messages, then pop and compare.
		for _, b := range batch {
			if err := r.Push([]byte{b}); err != nil {
				return false
			}
			expect = append(expect, []byte{b})
			if r.Len() >= r.Capacity() {
				msg, ok := r.Pop(nil)
				if !ok || !bytes.Equal(msg, expect[0]) {
					return false
				}
				expect = expect[1:]
			}
		}
		for len(expect) > 0 {
			msg, ok := r.Pop(nil)
			if !ok || !bytes.Equal(msg, expect[0]) {
				return false
			}
			expect = expect[1:]
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServeRingChargesOneTransition(t *testing.T) {
	e := launch(t, testDevice(t), []byte("ring code"), EnclaveConfig{})
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	go func() {
		var msg [4]byte
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(msg[:], uint32(i))
			if err := r.Push(msg[:]); err != nil {
				t.Error(err)
				return
			}
		}
		r.Close()
	}()
	cost := simmem.DefaultCost()
	before := e.Memory().Meter().C
	seen := uint32(0)
	err = e.ServeRing(r, func(msg []byte) error {
		if got := binary.LittleEndian.Uint32(msg); got != seen {
			return fmt.Errorf("message %d out of order (got %d)", seen, got)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("handler saw %d messages, want %d", seen, n)
	}
	delta := e.Memory().Meter().C.Sub(before)
	if delta.Transitions != 1 {
		t.Fatalf("Transitions = %d, want 1 (switchless)", delta.Transitions)
	}
	wantPoll := uint64(n) * cost.SwitchlessPollCycles
	if delta.Cycles != cost.EnclaveTransitionCycles+wantPoll {
		t.Fatalf("cycles = %d, want %d", delta.Cycles, cost.EnclaveTransitionCycles+wantPoll)
	}
}

func TestServeRingHandlerErrorStops(t *testing.T) {
	e := launch(t, testDevice(t), []byte("ring code"), EnclaveConfig{})
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Push([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	calls := 0
	err = e.ServeRing(r, func([]byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("handler ran %d times, want 2", calls)
	}
}

func TestServeRingUninitialisedEnclave(t *testing.T) {
	var e Enclave
	r, err := NewRing(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ServeRing(r, func([]byte) error { return nil }); !errors.Is(err, ErrNotInitialised) {
		t.Fatalf("err = %v, want ErrNotInitialised", err)
	}
}
