// Package sgx simulates the Intel Software Guard Extensions substrate
// that the paper's routing engine runs on. It reproduces the pieces of
// SGX that SCBR's design and evaluation depend on:
//
//   - enclave construction with a real measurement chain
//     (ECREATE/EADD/EEXTEND/EINIT → MRENCLAVE) and signer identity
//     (MRSIGNER),
//   - an EPC (enclave page cache) with a hard capacity, CLOCK page
//     eviction, and genuine AES-GCM encryption plus anti-replay version
//     counters for evicted pages (the EWB/ELD instructions),
//   - per-access cost accounting through internal/simmem: MEE charges
//     on LLC misses, page-fault charges on EPC misses, and
//     EENTER/EEXIT charges on ecalls,
//   - sealing keys bound to enclave or signer identity, and platform
//     monotonic counters for rollback protection,
//   - local attestation reports MAC'd with a device-bound key
//     (internal/attest turns these into quotes).
//
// SGX hardware is unavailable in this environment, so this package is
// the substitution documented in DESIGN.md §2: every protection
// mechanism is implemented as real, testable code; only latencies come
// from the calibrated cost model.
package sgx

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"scbr/internal/simmem"
)

// Device models one SGX-capable CPU package: it holds the fused root
// secret from which sealing and report keys derive, and the platform's
// monotonic counters. Enclaves are launched on a device.
type Device struct {
	rootKey [32]byte
	cost    simmem.CostModel

	mu       sync.Mutex
	counters map[string]uint64
}

// NewDevice creates a device. A deterministic seed may be supplied for
// tests; with a nil seed the root key is drawn from crypto/rand.
func NewDevice(seed []byte, cost simmem.CostModel) (*Device, error) {
	d := &Device{cost: cost, counters: make(map[string]uint64)}
	if seed == nil {
		if _, err := io.ReadFull(rand.Reader, d.rootKey[:]); err != nil {
			return nil, fmt.Errorf("sgx: generating device root key: %w", err)
		}
	} else {
		d.rootKey = sha256.Sum256(seed)
	}
	return d, nil
}

// Cost returns the device's cycle cost model.
func (d *Device) Cost() simmem.CostModel { return d.cost }

// deriveKey derives a device-bound key for the given purpose and
// binding (an enclave identity component).
func (d *Device) deriveKey(purpose string, binding []byte) []byte {
	mac := hmac.New(sha256.New, d.rootKey[:])
	mac.Write([]byte(purpose))
	mac.Write(binding)
	return mac.Sum(nil)
}

// IncrementCounter increments the named platform monotonic counter and
// returns the new value. Counters survive enclave restarts, which is
// what lets an enclave detect replayed sealed state (§2 of the paper).
func (d *Device) IncrementCounter(name string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counters[name]++
	return d.counters[name]
}

// ReadCounter returns the current value of the named counter (0 if it
// was never incremented).
func (d *Device) ReadCounter(name string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters[name]
}
