package sgx

import (
	"encoding/binary"
	"fmt"

	"scbr/internal/scrypto"
	"scbr/internal/simmem"
)

// epc manages residency of the enclave heap in the enclave page cache.
// It implements simmem.Pager: the meter calls Touch for every page an
// access spans, and the epc transparently evicts and reloads pages.
//
// Eviction follows the SGX driver's behaviour as the paper describes
// it: a victim page is selected (CLOCK second-chance here), written
// back encrypted and integrity-protected (EWB), and the faulting page
// is decrypted and verified on reload (ELD). Version counters stored in
// trusted metadata make replays of stale page images detectable — the
// mechanism §2 attributes to the CPU tracking authentication tags of
// evicted pages.
type epc struct {
	arena    *simmem.Arena
	capacity int // resident page budget
	key      []byte
	cost     simmem.CostModel
	counters *simmem.Counters

	resident map[uint64]*epcEntry
	clock    []uint64 // ring of resident page numbers
	hand     int

	// evicted holds the encrypted image of each swapped-out page, as
	// untrusted memory would.
	evicted map[uint64][]byte
	// versions is trusted metadata: the expected version of each
	// evicted page (SGX keeps these in versioned arrays inside the
	// EPC).
	versions map[uint64]uint64

	faults uint64
	// peakResident is the residency high-water mark in pages: how much
	// EPC this enclave has actually needed at once, the actual to
	// validate deployment-plan footprints against.
	peakResident int
}

type epcEntry struct {
	ref  bool
	slot int // index in the clock ring
}

var (
	_ simmem.Pager     = (*epc)(nil)
	_ simmem.Residency = (*epc)(nil)
)

func newEPC(capacityBytes uint64, key []byte, cost simmem.CostModel, counters *simmem.Counters) *epc {
	return &epc{
		arena:    simmem.NewArena(),
		capacity: int(capacityBytes / simmem.PageSize),
		key:      key,
		cost:     cost,
		counters: counters,
		resident: make(map[uint64]*epcEntry),
		evicted:  make(map[uint64][]byte),
		versions: make(map[uint64]uint64),
	}
}

// Touch implements simmem.Pager. It returns the extra cycles charged
// for the touch: zero for a resident page, the paging cost for an
// evict/reload pair, and a soft-fault cost for adding a fresh page
// while the EPC still has room (EAUG is not a paging event — the
// paper's pre-knee region shows near-zero fault ratios).
func (m *epc) Touch(page uint64, _ bool) uint64 {
	if ent, ok := m.resident[page]; ok {
		ent.ref = true
		return 0
	}
	_, wasEvicted := m.evicted[page]
	needsEviction := len(m.resident) >= m.capacity
	var cycles uint64
	if wasEvicted || needsEviction {
		m.faults++
		if m.counters != nil {
			m.counters.PageFaults++
		}
		cycles = m.cost.PageFaultCycles
	} else {
		cycles = m.cost.MinorFaultCycles
	}
	if needsEviction {
		m.evictOne()
	}
	if err := m.load(page); err != nil {
		// A decryption failure here means the untrusted side fed the
		// CPU a tampered or replayed page. Real SGX locks the memory
		// controller and forces a reboot; a deterministic simulator
		// can only stop the machine the same way.
		panic(fmt.Sprintf("sgx: EPC integrity failure on page %d: %v", page, err))
	}
	entry := &epcEntry{ref: true, slot: len(m.clock)}
	m.clock = append(m.clock, page)
	m.resident[page] = entry
	if len(m.resident) > m.peakResident {
		m.peakResident = len(m.resident)
	}
	return cycles
}

// evictOne runs the CLOCK hand until it finds a page with a clear
// reference bit, then writes that page back (EWB).
func (m *epc) evictOne() {
	for {
		page := m.clock[m.hand]
		ent := m.resident[page]
		if ent.ref {
			ent.ref = false
			m.hand = (m.hand + 1) % len(m.clock)
			continue
		}
		// EWB: encrypt the page under the paging key with its new
		// version in the AAD, stash the ciphertext in untrusted memory,
		// and scrub the EPC slot.
		m.versions[page]++
		data := m.arena.Page(page)
		ct, err := scrypto.SealGCM(m.key, data, m.pageAAD(page))
		if err != nil {
			panic(fmt.Sprintf("sgx: EWB encryption failed: %v", err))
		}
		m.evicted[page] = ct
		for i := range data {
			data[i] = 0
		}
		// Remove from the ring by swapping in the last element.
		last := len(m.clock) - 1
		moved := m.clock[last]
		m.clock[ent.slot] = moved
		m.resident[moved].slot = ent.slot
		m.clock = m.clock[:last]
		if m.hand >= len(m.clock) {
			m.hand = 0
		}
		delete(m.resident, page)
		return
	}
}

// load brings a page back into the EPC (ELD), decrypting and verifying
// it when it was previously evicted. Pages faulted in for the first
// time are already zeroed EPC frames.
func (m *epc) load(page uint64) error {
	ct, wasEvicted := m.evicted[page]
	if !wasEvicted {
		return nil
	}
	pt, err := scrypto.OpenGCM(m.key, ct, m.pageAAD(page))
	if err != nil {
		return fmt.Errorf("decrypting evicted page: %w", err)
	}
	copy(m.arena.Page(page), pt)
	delete(m.evicted, page)
	return nil
}

func (m *epc) pageAAD(page uint64) []byte {
	var aad [16]byte
	binary.LittleEndian.PutUint64(aad[:8], page)
	binary.LittleEndian.PutUint64(aad[8:], m.versions[page])
	return aad[:]
}

// Faults returns the number of EPC paging events so far.
func (m *epc) Faults() uint64 { return m.faults }

// ResidentPages returns the number of pages currently in the EPC.
func (m *epc) ResidentPages() int { return len(m.resident) }

// ResidentBytes implements simmem.Residency.
func (m *epc) ResidentBytes() (resident, peak uint64) {
	return uint64(len(m.resident)) * simmem.PageSize, uint64(m.peakResident) * simmem.PageSize
}

// Accessor is the enclave-mode simmem.Accessor: identical interface to
// the plain accessor, but accesses charge MEE costs on LLC misses and
// EPC paging costs on residency misses. The matching engine code is
// byte-for-byte the same in both modes, as in the paper.
type Accessor struct {
	arena *simmem.Arena
	meter *simmem.Meter
	epc   *epc
}

var _ simmem.Accessor = (*Accessor)(nil)

// Alloc implements simmem.Accessor. Newly allocated pages become
// resident immediately (they are EAUGed zero pages), which may trigger
// eviction of colder pages.
func (a *Accessor) Alloc(n int) (uint64, error) {
	off, err := a.arena.Alloc(n)
	if err != nil {
		return 0, err
	}
	// Touching through the meter both installs residency and charges
	// for the zeroing write the kernel performs.
	a.meter.Access(off, n, true)
	return off, nil
}

// Read implements simmem.Accessor.
func (a *Accessor) Read(off uint64, n int) []byte {
	a.meter.Access(off, n, false)
	return a.arena.Bytes(off, n)
}

// Write implements simmem.Accessor.
func (a *Accessor) Write(off uint64, b []byte) {
	a.meter.Access(off, len(b), true)
	copy(a.arena.Bytes(off, len(b)), b)
}

// Charge implements simmem.Accessor.
func (a *Accessor) Charge(cycles uint64) { a.meter.Charge(cycles) }

// Meter implements simmem.Accessor.
func (a *Accessor) Meter() *simmem.Meter { return a.meter }

// Size implements simmem.Accessor.
func (a *Accessor) Size() uint64 { return a.arena.Size() }

// PageFaults exposes the EPC fault count for the Fig. 8 experiment.
func (a *Accessor) PageFaults() uint64 { return a.epc.Faults() }

// ResidentPages exposes current EPC occupancy.
func (a *Accessor) ResidentPages() int { return a.epc.ResidentPages() }

// PeakResidentPages exposes the EPC occupancy high-water mark.
func (a *Accessor) PeakResidentPages() int { return a.epc.peakResident }

// CorruptEvictedPage flips a bit in the stored image of an evicted
// page. It exists for failure-injection tests only and returns false if
// the page is not currently evicted.
func (a *Accessor) CorruptEvictedPage(page uint64) bool {
	ct, ok := a.epc.evicted[page]
	if !ok {
		return false
	}
	ct[len(ct)/2] ^= 0x01
	return true
}

// ReplayEvictedPage substitutes the stored image of an evicted page
// with a previously captured image, simulating an untrusted OS replay
// attack. Returns false if the page is not currently evicted.
func (a *Accessor) ReplayEvictedPage(page uint64, oldImage []byte) bool {
	if _, ok := a.epc.evicted[page]; !ok {
		return false
	}
	a.epc.evicted[page] = oldImage
	return true
}

// EvictedPageImage returns a copy of the current encrypted image of an
// evicted page (for failure-injection tests).
func (a *Accessor) EvictedPageImage(page uint64) ([]byte, bool) {
	ct, ok := a.epc.evicted[page]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(ct))
	copy(out, ct)
	return out, true
}
