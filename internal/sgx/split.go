package sgx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scbr/internal/scrypto"
	"scbr/internal/simmem"
)

// This file implements the paper's §6 future-work proposal of
// "splitting [the containment trees] into enclaved and external
// parts": instead of letting the SGX driver page the whole enclave
// heap through the EPC — where every fault costs an asynchronous
// enclave exit, a kernel crossing, and an EWB/ELD pair (~7 µs in the
// calibrated model) — the enclave keeps a bounded plaintext working
// set inside the EPC and seals cold pages to untrusted memory itself,
// at user level. A miss then costs one in-enclave AES-GCM unseal
// (plus a seal when the victim is dirty), with no exit and no kernel
// involvement. Confidentiality, integrity and freshness of the
// external part are preserved exactly as the hardware path preserves
// them: pages are encrypted and authenticated under an
// enclave-specific key, and per-page version counters kept in trusted
// memory make replays of stale images detectable.

// ErrSplitCacheTooSmall is returned when the requested split-cache
// budget cannot hold even a single page, or exceeds the EPC (which
// would reintroduce the hardware paging the layer exists to avoid).
var ErrSplitCacheTooSmall = errors.New("sgx: split cache must hold at least one page and fit the EPC")

// SplitIntegrityError is thrown (as a panic, mirroring the memory
// controller lock of the hardware path) when a sealed page fails
// authentication on reload: the untrusted side tampered with or
// replayed the external part of the store.
type SplitIntegrityError struct {
	Page uint64
	Err  error
}

// Error implements error.
func (e *SplitIntegrityError) Error() string {
	return fmt.Sprintf("sgx: split-memory integrity failure on page %d: %v", e.Page, e.Err)
}

// Unwrap exposes the underlying authentication error.
func (e *SplitIntegrityError) Unwrap() error { return e.Err }

// splitCache manages residency of the enclave heap in a bounded
// in-enclave plaintext cache. It implements simmem.Pager, like the
// epc, but services faults itself: a cold page is unsealed from
// untrusted memory (UserFaults), and a dirty victim is sealed back
// out (UserWritebacks). Clean victims are dropped without
// re-encryption — their sealed image is still current — which is the
// structural advantage over hardware EWB, where every eviction
// re-encrypts.
type splitCache struct {
	arena    *simmem.Arena
	capacity int // resident page budget
	key      []byte
	cost     simmem.CostModel
	counters *simmem.Counters

	resident map[uint64]*splitEntry
	clock    []uint64 // ring of resident page numbers
	hand     int

	// sealed holds the encrypted image of each externalised page, as
	// untrusted memory would.
	sealed map[uint64][]byte
	// versions is trusted metadata (kept inside the enclave): the
	// expected version of each sealed page.
	versions map[uint64]uint64

	faults       uint64 // user-level faults (unseals)
	writebacks   uint64 // dirty seals
	peakResident int    // residency high-water mark in pages
}

type splitEntry struct {
	ref   bool
	dirty bool
	slot  int // index in the clock ring
}

var (
	_ simmem.Pager     = (*splitCache)(nil)
	_ simmem.Residency = (*splitCache)(nil)
)

func newSplitCache(cacheBytes uint64, key []byte, cost simmem.CostModel, counters *simmem.Counters) *splitCache {
	return &splitCache{
		arena:    simmem.NewArena(),
		capacity: int(cacheBytes / simmem.PageSize),
		key:      key,
		cost:     cost,
		counters: counters,
		resident: make(map[uint64]*splitEntry),
		sealed:   make(map[uint64][]byte),
		versions: make(map[uint64]uint64),
	}
}

// sealCycles is the simulated cost of one in-enclave AES-GCM pass over
// a page (seal or unseal).
func (s *splitCache) sealCycles() uint64 {
	return s.cost.SealFixedCycles + uint64(s.cost.AESByteCycles*float64(simmem.PageSize))
}

// Touch implements simmem.Pager.
func (s *splitCache) Touch(page uint64, write bool) uint64 {
	if ent, ok := s.resident[page]; ok {
		ent.ref = true
		ent.dirty = ent.dirty || write
		return 0
	}
	var cycles uint64
	if len(s.resident) >= s.capacity {
		cycles += s.evictOne()
	}
	if _, cold := s.sealed[page]; cold {
		// User-level fault: unseal the page inside the enclave.
		s.faults++
		if s.counters != nil {
			s.counters.UserFaults++
		}
		cycles += s.sealCycles()
		if err := s.load(page); err != nil {
			panic(&SplitIntegrityError{Page: page, Err: err})
		}
	} else {
		// Fresh page: an EAUG-style soft add, not a paging event.
		cycles += s.cost.MinorFaultCycles
	}
	ent := &splitEntry{ref: true, dirty: write, slot: len(s.clock)}
	s.clock = append(s.clock, page)
	s.resident[page] = ent
	if len(s.resident) > s.peakResident {
		s.peakResident = len(s.resident)
	}
	return cycles
}

// ResidentBytes implements simmem.Residency.
func (s *splitCache) ResidentBytes() (resident, peak uint64) {
	return uint64(len(s.resident)) * simmem.PageSize, uint64(s.peakResident) * simmem.PageSize
}

// evictOne runs the CLOCK hand to a victim with a clear reference bit
// and externalises it: dirty pages are sealed (encrypt + version
// bump); clean pages are simply dropped, since their sealed image is
// still valid. Returns the cycles charged.
func (s *splitCache) evictOne() uint64 {
	for {
		page := s.clock[s.hand]
		ent := s.resident[page]
		if ent.ref {
			ent.ref = false
			s.hand = (s.hand + 1) % len(s.clock)
			continue
		}
		var cycles uint64
		data := s.arena.Page(page)
		if _, everSealed := s.sealed[page]; ent.dirty || !everSealed {
			s.versions[page]++
			ct, err := scrypto.SealGCM(s.key, data, s.pageAAD(page))
			if err != nil {
				panic(fmt.Sprintf("sgx: split-memory seal failed: %v", err))
			}
			s.sealed[page] = ct
			s.writebacks++
			if s.counters != nil {
				s.counters.UserWritebacks++
			}
			cycles = s.sealCycles()
		}
		for i := range data {
			data[i] = 0
		}
		last := len(s.clock) - 1
		moved := s.clock[last]
		s.clock[ent.slot] = moved
		s.resident[moved].slot = ent.slot
		s.clock = s.clock[:last]
		if s.hand >= len(s.clock) && len(s.clock) > 0 {
			s.hand = 0
		}
		delete(s.resident, page)
		return cycles
	}
}

// load decrypts and verifies a sealed page back into the cache frame.
// The sealed image is kept: while the reloaded page stays clean it
// remains the page's valid external copy, so a later clean eviction
// can drop the frame without re-encrypting — the structural saving
// over hardware EWB.
func (s *splitCache) load(page uint64) error {
	ct := s.sealed[page]
	pt, err := scrypto.OpenGCM(s.key, ct, s.pageAAD(page))
	if err != nil {
		return fmt.Errorf("unsealing external page: %w", err)
	}
	copy(s.arena.Page(page), pt)
	return nil
}

func (s *splitCache) pageAAD(page uint64) []byte {
	var aad [16]byte
	binary.LittleEndian.PutUint64(aad[:8], page)
	binary.LittleEndian.PutUint64(aad[8:], s.versions[page])
	return aad[:]
}

// SplitAccessor is the enclave-mode accessor of the split-memory
// configuration: identical interface and MEE/LLC charging to the
// EPC-paged Accessor, but residency beyond the in-enclave cache is
// managed at user level by sealing pages to untrusted memory. The
// matching engine code is byte-for-byte the same as in every other
// configuration.
type SplitAccessor struct {
	arena *simmem.Arena
	meter *simmem.Meter
	cache *splitCache
}

var _ simmem.Accessor = (*SplitAccessor)(nil)

// SplitMemory returns a fresh heap accessor whose in-enclave plaintext
// working set is bounded by cacheBytes; everything beyond it lives
// sealed in untrusted memory and is unsealed on demand inside the
// enclave. cacheBytes must hold at least one page and must not exceed
// the enclave's EPC budget (a larger cache would itself be paged by
// the hardware, defeating the layer).
func (e *Enclave) SplitMemory(cacheBytes uint64) (*SplitAccessor, error) {
	if !e.inited {
		return nil, ErrNotInitialised
	}
	if cacheBytes < simmem.PageSize || cacheBytes > e.cfg.EPCBytes {
		return nil, fmt.Errorf("%w: %d bytes requested, EPC %d", ErrSplitCacheTooSmall, cacheBytes, e.cfg.EPCBytes)
	}
	key := e.dev.deriveKey("split-paging", e.mrenclave[:])[:16]
	meter := simmem.NewMeter(e.dev.cost)
	meter.SetEnclave(true)
	cache := newSplitCache(cacheBytes, key, e.dev.cost, &meter.C)
	meter.SetPager(cache)
	return &SplitAccessor{arena: cache.arena, meter: meter, cache: cache}, nil
}

// Alloc implements simmem.Accessor. Like the EPC accessor, newly
// allocated pages become resident immediately and may push colder
// pages out to the sealed external store.
func (a *SplitAccessor) Alloc(n int) (uint64, error) {
	off, err := a.arena.Alloc(n)
	if err != nil {
		return 0, err
	}
	a.meter.Access(off, n, true)
	return off, nil
}

// Read implements simmem.Accessor.
func (a *SplitAccessor) Read(off uint64, n int) []byte {
	a.meter.Access(off, n, false)
	return a.arena.Bytes(off, n)
}

// Write implements simmem.Accessor.
func (a *SplitAccessor) Write(off uint64, b []byte) {
	a.meter.Access(off, len(b), true)
	copy(a.arena.Bytes(off, len(b)), b)
}

// Charge implements simmem.Accessor.
func (a *SplitAccessor) Charge(cycles uint64) { a.meter.Charge(cycles) }

// Meter implements simmem.Accessor.
func (a *SplitAccessor) Meter() *simmem.Meter { return a.meter }

// Size implements simmem.Accessor.
func (a *SplitAccessor) Size() uint64 { return a.arena.Size() }

// UserFaults returns the number of user-level faults (unseals) so far.
func (a *SplitAccessor) UserFaults() uint64 { return a.cache.faults }

// Writebacks returns the number of dirty-page seals so far.
func (a *SplitAccessor) Writebacks() uint64 { return a.cache.writebacks }

// ResidentPages returns the number of pages currently held in
// plaintext inside the enclave.
func (a *SplitAccessor) ResidentPages() int { return len(a.cache.resident) }

// PeakResidentPages returns the in-enclave residency high-water mark.
func (a *SplitAccessor) PeakResidentPages() int { return a.cache.peakResident }

// SealedPages returns the number of pages with a sealed image in
// untrusted memory (the authoritative copy for every non-resident
// page; resident clean pages may also still have one).
func (a *SplitAccessor) SealedPages() int { return len(a.cache.sealed) }

// CorruptSealedPage flips a bit in the sealed image of an external
// page. It exists for failure-injection tests and returns false if the
// page is not currently externalised.
func (a *SplitAccessor) CorruptSealedPage(page uint64) bool {
	ct, ok := a.cache.sealed[page]
	if !ok {
		return false
	}
	ct[len(ct)/2] ^= 0x01
	return true
}

// SealedPageImage returns a copy of the sealed image of an external
// page (for failure-injection tests).
func (a *SplitAccessor) SealedPageImage(page uint64) ([]byte, bool) {
	ct, ok := a.cache.sealed[page]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(ct))
	copy(out, ct)
	return out, true
}

// ReplaySealedPage substitutes the sealed image of an external page
// with a previously captured one, simulating an untrusted-memory
// replay. Returns false if the page is not currently externalised.
func (a *SplitAccessor) ReplaySealedPage(page uint64, oldImage []byte) bool {
	if _, ok := a.cache.sealed[page]; !ok {
		return false
	}
	a.cache.sealed[page] = oldImage
	return true
}
