package sgx

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// ReportData is the user-supplied payload bound into a report; SCBR
// puts the hash of the enclave's ephemeral provisioning key here so the
// attestation transcript pins the secure channel.
type ReportData [64]byte

// ReportBody carries the attested identity. It is the portion of an
// SGX REPORT that quotes expose to remote verifiers.
type ReportBody struct {
	MRENCLAVE [32]byte
	MRSIGNER  [32]byte
	ISVProdID uint16
	ISVSVN    uint16
	Debug     bool
	Data      ReportData
}

// Marshal encodes the body deterministically for MACs and signatures.
func (b *ReportBody) Marshal() []byte {
	out := make([]byte, 0, 32+32+2+2+1+64)
	out = append(out, b.MRENCLAVE[:]...)
	out = append(out, b.MRSIGNER[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], b.ISVProdID)
	out = append(out, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], b.ISVSVN)
	out = append(out, u16[:]...)
	if b.Debug {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return append(out, b.Data[:]...)
}

// UnmarshalReportBody decodes a body produced by Marshal.
func UnmarshalReportBody(raw []byte) (*ReportBody, error) {
	if len(raw) != 32+32+2+2+1+64 {
		return nil, errors.New("sgx: report body has wrong length")
	}
	var b ReportBody
	copy(b.MRENCLAVE[:], raw[:32])
	copy(b.MRSIGNER[:], raw[32:64])
	b.ISVProdID = binary.LittleEndian.Uint16(raw[64:66])
	b.ISVSVN = binary.LittleEndian.Uint16(raw[66:68])
	b.Debug = raw[68] == 1
	copy(b.Data[:], raw[69:])
	return &b, nil
}

// Report is a locally-verifiable attestation: the MAC key derives from
// the device root secret and the *target* enclave's measurement, so
// only an enclave with that measurement on the same device can verify
// it (EREPORT/EGETKEY semantics).
type Report struct {
	Body ReportBody
	MAC  [32]byte
}

// Report produces a local attestation report addressed to the enclave
// whose MRENCLAVE is targetMR.
func (e *Enclave) Report(targetMR [32]byte, data ReportData) (*Report, error) {
	if !e.inited {
		return nil, ErrNotInitialised
	}
	r := &Report{Body: ReportBody{
		MRENCLAVE: e.mrenclave,
		MRSIGNER:  e.mrsigner,
		ISVProdID: e.cfg.ISVProdID,
		ISVSVN:    e.cfg.ISVSVN,
		Debug:     e.cfg.Debug,
		Data:      data,
	}}
	key := e.dev.deriveKey("report", targetMR[:])
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Body.Marshal())
	copy(r.MAC[:], mac.Sum(nil))
	return r, nil
}

// VerifyReport checks a report addressed to this enclave. It returns
// true only when the report was produced on the same device and
// addressed to this enclave's measurement.
func (e *Enclave) VerifyReport(r *Report) bool {
	if !e.inited || r == nil {
		return false
	}
	key := e.dev.deriveKey("report", e.mrenclave[:])
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Body.Marshal())
	return hmac.Equal(mac.Sum(nil), r.MAC[:])
}

// verifyReportForQuoting lets the device's quoting facility check any
// report addressed to the given target measurement. internal/attest
// uses it to implement the quoting enclave.
func (d *Device) verifyReportForQuoting(targetMR [32]byte, r *Report) bool {
	if r == nil {
		return false
	}
	key := d.deriveKey("report", targetMR[:])
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Body.Marshal())
	return hmac.Equal(mac.Sum(nil), r.MAC[:])
}

// QuotingTargetMR is the well-known measurement value reports are
// addressed to when they are destined for the platform quoting enclave.
var QuotingTargetMR = sha256.Sum256([]byte("scbr-quoting-enclave"))

// VerifyQuotableReport checks a report addressed to the quoting enclave
// on this device. It is the entry point internal/attest builds quotes
// from.
func (d *Device) VerifyQuotableReport(r *Report) bool {
	return d.verifyReportForQuoting(QuotingTargetMR, r)
}

// EqualMeasurement is a helper for verifiers comparing measurements.
func EqualMeasurement(a, b [32]byte) bool { return bytes.Equal(a[:], b[:]) }
