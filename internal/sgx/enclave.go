package sgx

import (
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"scbr/internal/scrypto"
	"scbr/internal/simmem"
)

// EnclaveConfig sets the launch parameters of an enclave.
type EnclaveConfig struct {
	// EPCBytes is the usable enclave page cache capacity. The paper's
	// platform reserves 128 MB for the EPC of which roughly 93 MB are
	// available to applications; DefaultEPCBytes reflects that.
	EPCBytes uint64
	// ISVProdID and ISVSVN identify the product and its security
	// version, both part of the measured identity.
	ISVProdID uint16
	ISVSVN    uint16
	// Debug marks a debug-mode enclave; debug enclaves must never be
	// provisioned with production secrets and attestation verifiers
	// reject them by default.
	Debug bool
}

// DefaultEPCBytes is the application-usable EPC size on the paper's
// machine ("applications can use approximately 90 MB"; the knee in
// Fig. 8 sits just over 90 MB).
const DefaultEPCBytes = 93 << 20

var (
	// ErrNotInitialised indicates use of an enclave before EINIT.
	ErrNotInitialised = errors.New("sgx: enclave not initialised")
	// ErrSealedDataCorrupt indicates unsealing failed authentication.
	ErrSealedDataCorrupt = errors.New("sgx: sealed data corrupt or from a different identity")
)

// Enclave is one launched enclave instance. All trusted SCBR code runs
// "inside" it: memory it allocates lives in the EPC-managed arena, and
// entries from untrusted code go through Ecall, which charges the
// transition cost.
type Enclave struct {
	dev  *Device
	cfg  EnclaveConfig
	meas measurement

	mrenclave [32]byte
	mrsigner  [32]byte
	inited    bool

	acc *Accessor
}

// measurement accumulates the ECREATE/EADD/EEXTEND chain.
type measurement struct {
	h interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
}

// Launch builds, measures, and initialises an enclave from the given
// code image signed by signer. It mirrors the SDK flow: ECREATE sizes
// the enclave, each code page is EADDed and EEXTENDed into the
// measurement, and EINIT freezes MRENCLAVE and records MRSIGNER.
func (d *Device) Launch(code []byte, signer *rsa.PublicKey, cfg EnclaveConfig) (*Enclave, error) {
	if len(code) == 0 {
		return nil, errors.New("sgx: empty enclave image")
	}
	if signer == nil {
		return nil, errors.New("sgx: enclave image must be signed")
	}
	if cfg.EPCBytes == 0 {
		cfg.EPCBytes = DefaultEPCBytes
	}
	if cfg.EPCBytes < simmem.PageSize {
		return nil, fmt.Errorf("sgx: EPC of %d bytes holds no pages", cfg.EPCBytes)
	}

	e := &Enclave{dev: d, cfg: cfg}
	h := sha256.New()
	e.meas.h = h

	// ECREATE: the size and attributes enter the measurement.
	var hdr [16]byte
	copy(hdr[:8], "ECREATE\x00")
	binary.LittleEndian.PutUint64(hdr[8:], cfg.EPCBytes)
	h.Write(hdr[:])
	if cfg.Debug {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var isv [4]byte
	binary.LittleEndian.PutUint16(isv[:2], cfg.ISVProdID)
	binary.LittleEndian.PutUint16(isv[2:], cfg.ISVSVN)
	h.Write(isv[:])

	// EADD + EEXTEND each page of the image.
	for off := 0; off < len(code); off += simmem.PageSize {
		end := off + simmem.PageSize
		if end > len(code) {
			end = len(code)
		}
		var tag [16]byte
		copy(tag[:8], "EADD\x00\x00\x00\x00")
		binary.LittleEndian.PutUint64(tag[8:], uint64(off))
		h.Write(tag[:])
		h.Write(code[off:end])
	}

	// EINIT: freeze the identity.
	copy(e.mrenclave[:], h.Sum(nil))
	e.mrsigner = sha256.Sum256(signer.N.Bytes())
	e.inited = true

	// Bring up the EPC-backed heap. The paging key is bound to this
	// enclave instance so evicted pages from one enclave are useless to
	// another.
	pagingKey := d.deriveKey("epc-paging", e.mrenclave[:])[:16]
	meter := simmem.NewMeter(d.cost)
	meter.SetEnclave(true)
	epc := newEPC(cfg.EPCBytes, pagingKey, d.cost, &meter.C)
	meter.SetPager(epc)
	e.acc = &Accessor{arena: epc.arena, meter: meter, epc: epc}
	return e, nil
}

// MRENCLAVE returns the enclave's code measurement.
func (e *Enclave) MRENCLAVE() [32]byte { return e.mrenclave }

// MRSIGNER returns the hash of the signer's public key.
func (e *Enclave) MRSIGNER() [32]byte { return e.mrsigner }

// Config returns the launch configuration.
func (e *Enclave) Config() EnclaveConfig { return e.cfg }

// Memory returns the enclave's metered heap accessor. Trusted code
// allocates and reads subscription state exclusively through it.
func (e *Enclave) Memory() *Accessor { return e.acc }

// Ecall enters the enclave, runs fn, and leaves, charging one
// EENTER+EEXIT round trip. This is the call gate of Figure 2.
func (e *Enclave) Ecall(fn func() error) error {
	if !e.inited {
		return ErrNotInitialised
	}
	e.acc.meter.ChargeTransition()
	return fn()
}

// SealPolicy selects the identity a sealed blob is bound to.
type SealPolicy int

// Sealing policies: MRENCLAVE binds to this exact code version,
// MRSIGNER to any enclave from the same vendor.
const (
	SealToMRENCLAVE SealPolicy = iota + 1
	SealToMRSIGNER
)

// Seal encrypts data so only an enclave with the same identity on the
// same device can recover it. aad is authenticated but not encrypted;
// SCBR stores the monotonic-counter value there to detect rollbacks.
func (e *Enclave) Seal(policy SealPolicy, data, aad []byte) ([]byte, error) {
	if !e.inited {
		return nil, ErrNotInitialised
	}
	key, err := e.sealKey(policy)
	if err != nil {
		return nil, err
	}
	blob, err := scrypto.SealGCM(key, data, aad)
	if err != nil {
		return nil, fmt.Errorf("sgx: sealing: %w", err)
	}
	return append([]byte{byte(policy)}, blob...), nil
}

// Unseal recovers data sealed by an enclave with a matching identity.
func (e *Enclave) Unseal(blob, aad []byte) ([]byte, error) {
	if !e.inited {
		return nil, ErrNotInitialised
	}
	if len(blob) < 1 {
		return nil, ErrSealedDataCorrupt
	}
	key, err := e.sealKey(SealPolicy(blob[0]))
	if err != nil {
		return nil, err
	}
	data, err := scrypto.OpenGCM(key, blob[1:], aad)
	if err != nil {
		return nil, ErrSealedDataCorrupt
	}
	return data, nil
}

func (e *Enclave) sealKey(policy SealPolicy) ([]byte, error) {
	switch policy {
	case SealToMRENCLAVE:
		return e.dev.deriveKey("seal-mrenclave", e.mrenclave[:])[:16], nil
	case SealToMRSIGNER:
		return e.dev.deriveKey("seal-mrsigner", e.mrsigner[:])[:16], nil
	default:
		return nil, fmt.Errorf("sgx: unknown seal policy %d", policy)
	}
}

// Device returns the device this enclave runs on (untrusted helpers
// need it for counter services).
func (e *Enclave) Device() *Device { return e.dev }

// Terminate destroys the enclave, mirroring EREMOVE on every page: its
// EPC-backed heap is released and any further Ecall, Report, Seal, or
// Unseal fails with ErrNotInitialised. Callers that launch an enclave
// and then fail before handing it to an owner must terminate it, or
// its EPC pages stay committed for the life of the device.
func (e *Enclave) Terminate() {
	e.inited = false
	if e.acc != nil {
		e.acc.epc = nil
	}
	e.acc = nil
}
