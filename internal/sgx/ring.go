package sgx

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// This file implements the paper's §6 proposal of "implementing
// message exchanges at the enclave border": a bounded
// single-producer/single-consumer ring in untrusted memory through
// which the host hands messages to an enclave worker thread that
// entered once and stays inside. Steady-state message delivery then
// costs two atomic operations and a copy instead of an EENTER+EEXIT
// round trip per message (~7 k cycles in the calibrated model) — the
// "switchless call" pattern of later SGX runtimes.
//
// The ring carries ciphertext only (SCBR headers are AES-encrypted
// under SK before they leave the publisher), so placing it in
// untrusted memory leaks nothing beyond arrival timing, which the
// per-message ecall leaks identically.

// ErrRingClosed is returned by Push after Close.
var ErrRingClosed = errors.New("sgx: ring closed")

// ringSlot is one exchange cell. seq follows the bounded-queue
// protocol: seq == pos means the slot is free for the producer writing
// position pos; seq == pos+1 means it holds the message of position
// pos for the consumer.
type ringSlot struct {
	seq  atomic.Uint64
	data []byte
}

// Ring is the untrusted-memory message ring. Ownership is one ring
// per enclave matcher slice: the producer side belongs to the router's
// publication dispatch — a single logical producer, since the router
// serialises its fan-out across the per-partition rings under its own
// lock — and the consumer side to that slice's resident in-enclave
// worker. Within that ownership discipline the exchange stays
// lock-free: two atomic operations and a copy per message.
type Ring struct {
	mask   uint64
	slots  []ringSlot
	_      [7]uint64 // keep producer and consumer positions on separate lines
	tail   atomic.Uint64
	_      [7]uint64
	head   atomic.Uint64
	closed atomic.Bool
}

// NewRing builds a ring with at least the requested capacity (rounded
// up to a power of two, minimum 2).
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sgx: invalid ring capacity %d", capacity)
	}
	size := 2
	for size < capacity {
		size <<= 1
	}
	r := &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Capacity returns the ring's slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// TryPush copies msg into the ring if a slot is free. It returns
// ErrRingClosed after Close, and ok=false (no error) when the ring is
// momentarily full.
func (r *Ring) TryPush(msg []byte) (ok bool, err error) {
	if r.closed.Load() {
		return false, ErrRingClosed
	}
	pos := r.tail.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos {
		return false, nil // consumer has not freed this slot yet
	}
	slot.data = append(slot.data[:0], msg...)
	slot.seq.Store(pos + 1)
	r.tail.Store(pos + 1)
	return true, nil
}

// Push blocks until msg is enqueued or the ring is closed.
func (r *Ring) Push(msg []byte) error {
	for spins := 0; ; spins++ {
		ok, err := r.TryPush(msg)
		if err != nil || ok {
			return err
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// TryPop moves the next message into buf (growing it as needed) and
// returns the filled slice. ok is false when the ring is momentarily
// empty; closed is true once Close was called and the ring is fully
// drained.
func (r *Ring) TryPop(buf []byte) (msg []byte, ok, closed bool) {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		if r.closed.Load() && r.head.Load() == r.tail.Load() {
			return buf[:0], false, true
		}
		return buf[:0], false, false
	}
	msg = append(buf[:0], slot.data...)
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return msg, true, false
}

// Pop blocks until a message arrives or the ring closes empty. The
// returned slice reuses buf's storage.
func (r *Ring) Pop(buf []byte) ([]byte, bool) {
	for spins := 0; ; spins++ {
		msg, ok, closed := r.TryPop(buf)
		if ok {
			return msg, true
		}
		if closed {
			return nil, false
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// Close marks the ring closed. The consumer drains remaining messages
// and then observes the close; further pushes fail.
func (r *Ring) Close() { r.closed.Store(true) }

// Len reports the number of queued messages (approximate under
// concurrency).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// ServeRing enters the enclave once and consumes the ring until it is
// closed and drained, invoking handler inside the enclave for every
// message. It charges a single enclave transition (the worker's
// EENTER on start and EEXIT on return form one round trip) plus the
// calibrated switchless poll cost per message — the steady-state cost
// structure of the §6 "message exchanges at the enclave border"
// design. A handler error stops consumption and is returned.
//
// ServeRing charges the enclave's heap meter, which is not safe for
// concurrent use: while it runs, no other goroutine may perform
// ecalls or metered accesses on this enclave. Callers that interleave
// ring consumption with other enclave work (like the broker's router)
// must run their own loop and serialise meter access themselves.
func (e *Enclave) ServeRing(r *Ring, handler func(msg []byte) error) error {
	if !e.inited {
		return ErrNotInitialised
	}
	meter := e.acc.meter
	meter.ChargeTransition() // the worker's entry/exit round trip
	var buf []byte
	for {
		msg, ok := r.Pop(buf)
		if !ok {
			return nil
		}
		buf = msg
		meter.Charge(meter.Cost.SwitchlessPollCycles)
		if err := handler(msg); err != nil {
			return err
		}
	}
}
