package sgx

import (
	"testing"

	"scbr/internal/simmem"
)

// TestResidencyHighWaterMarks drives both enclave accessors past their
// residency budget and checks the high-water mark semantics the
// deployment planner validates plans against: peak never exceeds the
// budget, never falls below the current resident set, and survives
// eviction (the resident count drops back, the peak does not).
func TestResidencyHighWaterMarks(t *testing.T) {
	const budget = 8 * simmem.PageSize

	t.Run("epc", func(t *testing.T) {
		e := launch(t, testDevice(t), []byte("resident"), EnclaveConfig{EPCBytes: budget})
		acc := e.Memory()
		checkResidency(t, acc, acc.Meter(), budget)
		if acc.PeakResidentPages() != 8 {
			t.Errorf("peak resident pages: got %d, want the full budget 8", acc.PeakResidentPages())
		}
	})

	t.Run("split", func(t *testing.T) {
		e := launch(t, testDevice(t), []byte("resident"), EnclaveConfig{EPCBytes: budget})
		acc, err := e.SplitMemory(budget)
		if err != nil {
			t.Fatal(err)
		}
		checkResidency(t, acc, acc.Meter(), budget)
		if acc.PeakResidentPages() != 8 {
			t.Errorf("peak resident pages: got %d, want the full budget 8", acc.PeakResidentPages())
		}
	})

	t.Run("plain", func(t *testing.T) {
		acc := simmem.NewPlainAccessor(simmem.DefaultCost())
		writePages(t, acc, 16)
		resident, peak, ok := acc.Meter().Residency()
		if !ok {
			t.Fatal("plain accessor reports no residency")
		}
		// Plain memory never evicts: peak == resident, THP granularity.
		if resident != peak || resident == 0 {
			t.Errorf("plain residency: resident %d, peak %d", resident, peak)
		}
	})
}

func writePages(t *testing.T, acc simmem.Accessor, pages int) {
	t.Helper()
	buf := make([]byte, simmem.PageSize)
	for i := 0; i < pages; i++ {
		off, err := acc.Alloc(simmem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		acc.Write(off, buf)
	}
}

func checkResidency(t *testing.T, acc simmem.Accessor, meter *simmem.Meter, budget uint64) {
	t.Helper()
	// Touch double the budget so eviction has happened.
	writePages(t, acc, 16)
	resident, peak, ok := meter.Residency()
	if !ok {
		t.Fatal("enclave accessor reports no residency")
	}
	if peak > budget {
		t.Errorf("peak %d exceeds budget %d", peak, budget)
	}
	if resident > peak {
		t.Errorf("resident %d exceeds peak %d", resident, peak)
	}
	if peak != budget {
		t.Errorf("peak %d: want the full budget %d after overflow", peak, budget)
	}
}
