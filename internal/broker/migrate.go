// The router's migration engine: online slice split/merge over the
// movable placement map (internal/placement). Repartition resizes the
// enclave matcher fleet from k to k′ slices while publications,
// registrations, and removals keep flowing; whole virtual shards are
// the unit of movement, and the transport reuses the router's sealed
// persistence machinery — a shard's registrations are sealed inside
// the source slice's enclave, unsealed inside the destination's (both
// run the same measured image, so SealToMRENCLAVE transports), and
// re-ingested under their original IDs.
//
// The protocol per move group (one source→destination slice pair):
//
//  1. Fence (stateMu exclusive): divert the moving shards in the
//     placement map — new registrations resolve to the destination
//     from here on — and snapshot the registration-log entries of
//     those shards. Nothing can race the snapshot: registrations hold
//     the fence shared for resolution + insert.
//  2. Seal the snapshot in the source enclave; unseal in the
//     destination enclave.
//  3. Arm delivery dedup: until the stale source copies are swept, a
//     moving subscription exists on two slices and would match twice.
//  4. Import each entry into the destination under its original ID,
//     serialised (migEntryMu) against client removals on the moving
//     shards so a remove cannot be resurrected by a later import.
//  5. Commit (stateMu exclusive): flip the placement table, bump the
//     epoch, clear the shard fence.
//  6. Flush barrier: wait out every publication dispatched before the
//     flip (plane write lock + a merger sentinel on the switchless
//     path). The barrier hold time is the migration's pause cost.
//  7. Sweep: drop the stale source copies. Duplicate deliveries in
//     the window between 4 and 7 are collapsed by deliverJob's dedup;
//     the client-side cursor machinery (PR 4) makes any that predate
//     the arming harmless.
//
// Growth appends freshly launched slices (same image, same per-slice
// EPC share, scheme parameters re-applied) before the moves; shrink
// removes the highest-indexed slices after every shard has moved off
// them. Partition 0 — the attestation slice — is never removed.

package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"scbr/internal/core"
	"scbr/internal/placement"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/streamhub"
)

// shardExport is the sealed migration payload: the moving shards'
// registration-log entries, ciphertext-at-rest exactly as logged.
type shardExport struct {
	From    int        `json:"from"`
	To      int        `json:"to"`
	Entries []logEntry `json:"entries"`
}

// migrationAAD binds a sealed shard export to its source→destination
// pair, so a blob sealed for one move cannot be replayed into another.
func migrationAAD(from, to int) []byte {
	return []byte(fmt.Sprintf("scbr-shard-migration:%d>%d", from, to))
}

// PlacementSnapshot reports the placement map's observable state: the
// shard→slice table, the epoch, and the migration counters.
func (r *Router) PlacementSnapshot() placement.Snapshot {
	return r.pm.Snapshot()
}

// Repartition resizes the router's data plane to k enclave matcher
// slices, migrating whole shards between slices while traffic flows.
// Committed move groups survive an error or a cancelled context — the
// router is always left in a consistent (if intermediate) placement.
// Concurrent calls serialise; k must be in [1, PlacementShards], or 0
// to resize to RecommendPartitions() — the footprint-sized count a
// deployment plan (deploy.Plan) recommends.
func (r *Router) Repartition(ctx context.Context, k int) (placement.Snapshot, error) {
	// Register with the router's worker group under the same
	// closing-check pattern as Serve's accept loop, so Close waits for
	// an in-flight resize before tearing the pipeline down.
	r.connMu.Lock()
	select {
	case <-r.closing:
		r.connMu.Unlock()
		return placement.Snapshot{}, ErrClosed
	default:
	}
	r.wg.Add(1)
	r.connMu.Unlock()
	defer r.wg.Done()

	r.migMu.Lock()
	defer r.migMu.Unlock()

	if k == 0 {
		k = r.RecommendPartitions()
	}
	if k < 1 || k > r.pm.Shards() {
		return r.pm.Snapshot(), fmt.Errorf("broker: repartition to %d slices out of range [1,%d shards]", k, r.pm.Shards())
	}
	cur := r.pm.Slices()
	if k == cur {
		return r.pm.Snapshot(), nil
	}

	var pause int64
	var subsMoved uint64

	if k > cur {
		if err := r.growSlices(cur, k); err != nil {
			return r.pm.Snapshot(), err
		}
	}

	moves, err := r.pm.Plan(k)
	if err != nil {
		return r.pm.Snapshot(), err
	}
	for _, g := range groupMoves(moves) {
		if err := ctx.Err(); err == nil {
			select {
			case <-r.closing:
				err = ErrClosed
			default:
			}
		} else {
			err = fmt.Errorf("broker: repartition interrupted: %w", err)
		}
		if err != nil {
			r.finishMigration(subsMoved, pause)
			return r.pm.Snapshot(), err
		}
		moved, groupPause, groupErr := r.migrateGroup(g)
		subsMoved += moved
		pause += groupPause
		if groupErr != nil {
			r.finishMigration(subsMoved, pause)
			return r.pm.Snapshot(), fmt.Errorf("broker: migrating shards %d→%d: %w", g.from, g.to, groupErr)
		}
	}

	if k < cur {
		shrinkPause, err := r.shrinkSlices(k)
		pause += shrinkPause
		if err != nil {
			r.finishMigration(subsMoved, pause)
			return r.pm.Snapshot(), err
		}
	}

	r.finishMigration(subsMoved, pause)
	return r.pm.Snapshot(), nil
}

// finishMigration disarms delivery dedup behind one last barrier (so
// no already-matched duplicate slips out after the flag drops) and
// records the run's counters.
func (r *Router) finishMigration(subsMoved uint64, pause int64) {
	if r.dedupActive.Load() {
		r.flushDataPlane()
		r.dedupActive.Store(false)
	}
	r.pm.FinishMigration(subsMoved, pause)
	// Re-key the hub's per-slice budgets to the (possibly intermediate)
	// slice count the resize left behind.
	r.setHubBudgets(r.pm.Slices())
}

// moveGroup is one source→destination slice pair's worth of a plan.
type moveGroup struct {
	from, to int
	moves    []placement.Move
}

// groupMoves splits a plan by (from, to) pair, preserving the plan's
// deterministic order.
func groupMoves(moves []placement.Move) []moveGroup {
	var groups []moveGroup
	for _, mv := range moves {
		if n := len(groups); n > 0 && groups[n-1].from == mv.From && groups[n-1].to == mv.To {
			groups[n-1].moves = append(groups[n-1].moves, mv)
			continue
		}
		groups = append(groups, moveGroup{from: mv.From, to: mv.To, moves: []placement.Move{mv}})
	}
	return groups
}

// growSlices launches slices cur..k-1 from the same enclave image with
// the same per-slice EPC share, re-applies the provisioned scheme
// parameters, and splices them into the data plane under the state and
// plane fences.
func (r *Router) growSlices(cur, k int) error {
	r.keyMu.RLock()
	params := append([]byte(nil), r.schemeParams...)
	provisioned := r.sk != nil
	r.keyMu.RUnlock()

	fresh := make([]*partition, 0, k-cur)
	undo := func() {
		for _, p := range fresh {
			p.enclave.Terminate()
		}
	}
	for i := cur; i < k; i++ {
		enclave, err := r.dev.Launch(r.cfg.EnclaveImage, r.cfg.EnclaveSigner,
			sgx.EnclaveConfig{EPCBytes: r.epcPer})
		if err != nil {
			undo()
			return fmt.Errorf("broker: launching slice enclave: %w", err)
		}
		p := &partition{idx: i, enclave: enclave}
		slice, err := r.backend.NewSlice(enclave.Memory(), r.schema, core.Options{PadRecordTo: r.cfg.PadRecordTo})
		if err != nil {
			enclave.Terminate()
			undo()
			return fmt.Errorf("broker: building slice store: %w", err)
		}
		p.slice = slice
		if ps, isPlain := slice.(*scheme.PlainSlice); isPlain {
			p.engine = ps.Engine()
		}
		if provisioned {
			if err := enclave.Ecall(func() error { return slice.Configure(params) }); err != nil {
				enclave.Terminate()
				undo()
				return fmt.Errorf("broker: configuring scheme parameters on new slice %d: %w", i, err)
			}
		}
		if r.merge != nil {
			if err := r.equipSwitchless(p); err != nil {
				enclave.Terminate()
				undo()
				return err
			}
		}
		fresh = append(fresh, p)
	}

	r.stateMu.Lock()
	r.planeMu.Lock()
	r.quiescePlane()
	for _, p := range fresh {
		r.parts = append(r.parts, p)
		if err := r.hub.AddSlice(p.slice); err != nil {
			// Roll the splice back; nothing has been dispatched to the
			// new slices while both fences are held.
			r.parts = r.parts[:len(r.parts)-1]
			r.planeMu.Unlock()
			r.stateMu.Unlock()
			undo()
			return fmt.Errorf("broker: %w", err)
		}
	}
	err := r.pm.SetSlices(k)
	r.planeMu.Unlock()
	r.stateMu.Unlock()
	if err != nil {
		return fmt.Errorf("broker: %w", err)
	}
	if r.merge != nil {
		for _, p := range fresh {
			go r.publicationWorker(p)
		}
	}
	return nil
}

// shrinkSlices removes every slice at index ≥ k after the moves have
// emptied them, then tears down their workers, rings, and enclaves.
// Returns the time the data plane was fenced.
func (r *Router) shrinkSlices(k int) (int64, error) {
	start := time.Now()
	r.stateMu.Lock()
	r.planeMu.Lock()
	r.quiescePlane()
	var removed []*partition
	err := r.pm.SetSlices(k)
	if err == nil {
		err = r.hub.RemoveSlicesFrom(k)
	}
	if err == nil {
		removed = append(removed, r.parts[k:]...)
		for i := k; i < len(r.parts); i++ {
			r.parts[i] = nil
		}
		r.parts = r.parts[:k]
	}
	r.planeMu.Unlock()
	r.stateMu.Unlock()
	pause := time.Since(start).Nanoseconds()
	if err != nil {
		return pause, fmt.Errorf("broker: %w", err)
	}
	// No publication can reach the removed slices past the fence; jobs
	// dispatched before it still drain (the workers contribute for
	// everything queued before their channel closes).
	for _, p := range removed {
		if p.jobs != nil {
			close(p.jobs)
		}
	}
	for _, p := range removed {
		if p.workerDone != nil {
			<-p.workerDone
			p.ring.Close()
		}
	}
	for _, p := range removed {
		p.enclave.Terminate()
	}
	return pause, nil
}

// migrateGroup moves one group of shards from one slice to another
// using the sealed-transport protocol described in the file header.
// Entries that fail to import stay live on the source slice (still
// matched and removable through the ownership index) and are excluded
// from the sweep; the group still commits.
func (r *Router) migrateGroup(g moveGroup) (subsMoved uint64, pause int64, err error) {
	shardSet := make(map[int]bool, len(g.moves))
	for _, mv := range g.moves {
		shardSet[mv.Shard] = true
	}

	// 1. Fence: divert the shards and snapshot their log entries.
	r.stateMu.Lock()
	r.pm.Begin(g.moves)
	for s := range shardSet {
		r.migShards[s] = true
	}
	r.migEntryMu.Lock()
	r.migRemoved = make(map[uint64]bool)
	r.migEntryMu.Unlock()
	var entries []logEntry
	r.ctlMu.RLock()
	for _, ent := range r.regLog {
		if shardSet[streamhub.ShardOf(ent.SubID)] {
			entries = append(entries, ent)
		}
	}
	r.ctlMu.RUnlock()
	r.stateMu.Unlock()

	commit := func() {
		r.stateMu.Lock()
		r.pm.Commit(g.moves)
		for s := range shardSet {
			delete(r.migShards, s)
		}
		r.stateMu.Unlock()
	}

	src, dst := r.parts[g.from], r.parts[g.to]

	// 2. Seal in the source enclave, unseal in the destination's. A
	// transport failure still commits: the placement flips, the
	// un-copied entries stay live on the source through the ownership
	// index, and the error reports the degraded move.
	var sealed []byte
	if len(entries) > 0 {
		raw, marshalErr := json.Marshal(shardExport{From: g.from, To: g.to, Entries: entries})
		if marshalErr != nil {
			commit()
			return 0, 0, fmt.Errorf("encoding shard export: %w", marshalErr)
		}
		src.mu.Lock()
		err = src.enclave.Ecall(func() error {
			var sealErr error
			sealed, sealErr = src.enclave.Seal(sgx.SealToMRENCLAVE, raw, migrationAAD(g.from, g.to))
			return sealErr
		})
		src.mu.Unlock()
		if err != nil {
			commit()
			return 0, 0, fmt.Errorf("sealing shard export: %w", err)
		}
		var opened []byte
		dst.mu.Lock()
		err = dst.enclave.Ecall(func() error {
			var unsealErr error
			opened, unsealErr = dst.enclave.Unseal(sealed, migrationAAD(g.from, g.to))
			return unsealErr
		})
		dst.mu.Unlock()
		if err != nil {
			commit()
			return 0, 0, fmt.Errorf("unsealing shard export: %w", err)
		}
		var export shardExport
		if err = json.Unmarshal(opened, &export); err != nil {
			commit()
			return 0, 0, fmt.Errorf("decoding shard export: %w", err)
		}
		entries = export.Entries
	}

	// 3–4. Two-copy window: arm delivery dedup, then import each entry
	// into the destination under its original ID. Per-entry
	// serialisation against removals (migEntryMu) keeps a remove from
	// being resurrected; the AEAD seal already authenticated the
	// entries, so the per-item signature check is skipped exactly as
	// the batch-replay path does.
	sk, _ := r.keys()
	var imported []uint64
	if len(entries) > 0 {
		if sk == nil {
			commit()
			return 0, 0, ErrNotProvisioned
		}
		r.dedupActive.Store(true)
		var failed int
		var firstErr error
		for _, ent := range entries {
			r.migEntryMu.Lock()
			if r.migRemoved[ent.SubID] {
				r.migEntryMu.Unlock()
				continue
			}
			dst.mu.Lock()
			ierr := dst.enclave.Ecall(func() error {
				enc := ent.Blob
				if r.backend.Caps.SealedExchange {
					plain, openErr := scrypto.Open(sk, ent.Blob)
					if openErr != nil {
						return fmt.Errorf("decrypting subscription %d: %w", ent.SubID, openErr)
					}
					dst.slice.Accessor().Meter().ChargeAES(len(ent.Blob))
					enc = plain
				}
				return r.hub.ImportAssigned(g.to, enc, r.refFor(ent.ClientID), ent.SubID)
			})
			dst.mu.Unlock()
			r.migEntryMu.Unlock()
			if ierr != nil {
				failed++
				if firstErr == nil {
					firstErr = ierr
				}
				continue
			}
			imported = append(imported, ent.SubID)
			subsMoved++
		}
		if failed > 0 {
			err = fmt.Errorf("%d of %d entries failed to import (left on the source slice): %w", failed, len(entries), firstErr)
		}
	}

	// 5. Commit the placement flip.
	commit()

	// 6. Flush barrier — the pause this move charges the data plane.
	start := time.Now()
	r.flushDataPlane()
	pause = time.Since(start).Nanoseconds()

	// 7. Sweep the stale source copies of what was imported. DropCopy
	// skips anything the destination no longer owns.
	if len(imported) > 0 {
		src.mu.Lock()
		_ = src.enclave.Ecall(func() error {
			for _, id := range imported {
				r.hub.DropCopy(g.from, id)
			}
			return nil
		})
		src.mu.Unlock()
	}
	return subsMoved, pause, err
}

// flushDataPlane waits out every publication in flight when it is
// called: taking the plane write lock drains the synchronous path and
// all switchless dispatches, and the merger sentinel drains the
// switchless pipeline behind them.
func (r *Router) flushDataPlane() {
	r.planeMu.Lock()
	//lint:ignore SA2001 the empty critical section IS the barrier:
	// acquiring the write lock waits out every in-flight publication.
	r.planeMu.Unlock()
	r.quiescePlane()
}

// quiescePlane drains the switchless workers of every job dispatched
// before now: each dispatched job is in the merge queue before its
// producer drops pushMu, so a sentinel enqueued under pushMu follows
// them all, and the merger waits out each one's worker contributions
// before reaching it. The dispatch fence is the caller's — hold
// planeMu (read or write) or otherwise keep producers out, or jobs
// pushed after the sentinel dodge the drain. growSlices/shrinkSlices
// call this under the plane write lock before mutating the slice set
// the workers' match fan-out reads; the merger only takes delivery
// locks (ctlMu and below), so waiting on it here cannot deadlock.
func (r *Router) quiescePlane() {
	if r.merge == nil {
		return
	}
	job := &matchJob{flush: make(chan struct{})}
	r.pushMu.Lock()
	r.merge <- job
	r.pushMu.Unlock()
	<-job.flush
}
