// Package broker implements the three roles of Figure 3 — the service
// provider's publisher, the infrastructure's routing engine, and the
// clients — and the six-step protocol of Figure 4 on top of real
// connections:
//
//	① client  → publisher: {s}PK (subscription under the publisher key)
//	② publisher → router:  {s}SK, signed, after admission control
//	③ router (enclave):    validate, decrypt, index the subscription
//	④ publisher → router:  {header}SK + {payload}GK publications
//	⑤ router (enclave):    decrypt header, match against the index
//	⑥ router → clients:    forward the still-encrypted payload
//
// Before any of this, the publisher remote-attests the router's
// enclave and provisions SK (internal/attest). Payload group keys
// rotate on revocation so departed clients cannot read new messages.
package broker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"scbr/internal/attest"
	"scbr/internal/wire"
)

// MsgType discriminates protocol messages.
type MsgType string

// Protocol message types.
const (
	// Client ↔ publisher.
	TypeSubscribe     MsgType = "subscribe"
	TypeSubscribeOK   MsgType = "subscribe-ok"
	TypeUnsubscribe   MsgType = "unsubscribe"
	TypeUnsubscribeOK MsgType = "unsubscribe-ok"
	TypeGroupKey      MsgType = "groupkey"
	TypeGroupKeyOK    MsgType = "groupkey-ok"

	// Publisher ↔ router.
	TypeProvision    MsgType = "provision"
	TypeProvisionReq MsgType = "provision-req"
	TypeProvisionKey MsgType = "provision-key"
	TypeProvisionOK  MsgType = "provision-ok"
	TypeRegister     MsgType = "register"
	TypeRegisterOK   MsgType = "register-ok"
	// TypeRegisterBatch carries many registrations for one client in a
	// single frame, authenticated by one publisher signature over a
	// digest of the whole batch (see signedRegistrationBatch) instead of
	// one RSA signature per subscription — the bulk-load path that makes
	// million-subscription populations affordable. Items carry the
	// scheme-encoded (and, for sealed-exchange schemes, SK-sealed)
	// subscription blobs; Payload stays empty. The ack echoes the
	// assigned IDs in item order.
	TypeRegisterBatch   MsgType = "register-batch"
	TypeRegisterBatchOK MsgType = "register-batch-ok"
	TypeRemove          MsgType = "remove"
	TypeRemoveOK        MsgType = "remove-ok"
	TypePublish         MsgType = "publish"
	TypePublishBatch    MsgType = "publish-batch"

	// Client ↔ router.
	TypeListen   MsgType = "listen"
	TypeListenOK MsgType = "listen-ok"
	TypeDeliver  MsgType = "deliver"

	// Router ↔ router (federation overlay). PEER_HELLO/PEER_WELCOME
	// carry the mutual attestation handshake; after it, SUB_DIGEST
	// carries incremental subscription-digest updates and FWD_PUB
	// carries publications forwarded toward matching downstreams, both
	// sealed under the per-link key the handshake derived.
	TypePeerHello   MsgType = "peer-hello"
	TypePeerWelcome MsgType = "peer-welcome"
	TypeSubDigest   MsgType = "sub-digest"
	TypeFwdPub      MsgType = "fwd-pub"

	// Any direction.
	TypeError MsgType = "error"
)

// BatchItem is one publication of a publish-batch message: the
// SK-encrypted header plus the group-key-encrypted payload.
type BatchItem struct {
	Blob    []byte `json:"blob"`
	Payload []byte `json:"payload"`
}

// Message is the single wire envelope; unused fields stay empty.
// []byte fields serialise as Base64 inside JSON, matching the paper's
// Base64 text serialisation.
type Message struct {
	Type     MsgType `json:"type"`
	ClientID string  `json:"client_id,omitempty"`
	Router   string  `json:"router,omitempty"` // subscribe/unsubscribe: the client's home router
	// Scheme tags provisioning, registration, publication, and listen
	// frames with the matching-scheme ID their blobs are encoded under
	// (internal/scheme). Routers reject frames tagged with a scheme
	// other than their own with ErrSchemeMismatch; the empty tag means
	// the default sgx-plain scheme, so pre-scheme peers interoperate
	// with default-scheme routers unchanged.
	Scheme string   `json:"scheme,omitempty"`
	SubID  uint64   `json:"sub_id,omitempty"`
	SubIDs []uint64 `json:"sub_ids,omitempty"` // deliver: which subscriptions matched
	Epoch  uint64   `json:"epoch,omitempty"`
	// Cursor is the per-client delivery sequence: stamped on every
	// deliver frame, presented by a resuming listen (last seen), and
	// echoed on listen-ok (the router's current position).
	Cursor uint64 `json:"cursor,omitempty"`
	// Resume asks a listen to replay retained deliveries past Cursor.
	Resume bool `json:"resume,omitempty"`
	// Gap on listen-ok counts deliveries a resuming listener missed
	// that had already left the replay ring — unrecoverable loss.
	Gap     uint64        `json:"gap,omitempty"`
	Blob    []byte        `json:"blob,omitempty"`    // encrypted subscription / header / key material
	Payload []byte        `json:"payload,omitempty"` // encrypted publication payload
	Items   []BatchItem   `json:"items,omitempty"`   // publish-batch publications
	Sig     []byte        `json:"sig,omitempty"`
	PubKey  []byte        `json:"pub_key,omitempty"` // PKIX-encoded RSA key
	Quote   *attest.Quote `json:"quote,omitempty"`
	Err     string        `json:"err,omitempty"`
	Code    string        `json:"code,omitempty"` // machine-readable error class

	// raw is the frame this message was decoded from, kept so the
	// switchless publication path can hand the publisher's exact bytes
	// to the partition rings instead of re-encoding the just-decoded
	// message. Unexported: it never serialises.
	raw []byte

	// enqueuedAt stamps a deliver frame when the delivery layer accepts
	// it, so the writer can record the enqueue→write latency when the
	// frame leaves on the wire. Unexported: it never serialises, and
	// replayed frames (whose stamp describes a previous life) are not
	// re-recorded.
	enqueuedAt time.Time
}

// sendBuffer is one pooled encode buffer: frames are marshalled into
// it, written to the socket, and the buffer is recycled, so the wire's
// hottest producers (delivery writers, publishers) stop allocating a
// fresh JSON encoding per frame.
type sendBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// sendBufMax caps the capacity a recycled buffer may retain; a
// one-off jumbo batch frame must not pin megabytes in the pool.
const sendBufMax = 1 << 20

var sendBufPool = sync.Pool{New: func() any {
	b := &sendBuffer{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// Send marshals and frames one message through a pooled buffer.
func Send(w io.Writer, m *Message) error {
	b := sendBufPool.Get().(*sendBuffer)
	b.buf.Reset()
	if err := b.enc.Encode(m); err != nil {
		sendBufPool.Put(b)
		return fmt.Errorf("broker: encoding %s: %w", m.Type, err)
	}
	raw := b.buf.Bytes()
	raw = raw[:len(raw)-1] // drop the Encoder's trailing newline: frames stay byte-identical to json.Marshal
	err := wire.WriteFrame(w, raw)
	if b.buf.Cap() <= sendBufMax {
		sendBufPool.Put(b)
	}
	return err
}

// Recv reads and unmarshals one message.
func Recv(r io.Reader) (*Message, error) {
	m, _, err := recvAppend(r, nil)
	return m, err
}

// recvAppend is Recv reading the frame into buf's capacity. It returns
// the (possibly grown) buffer for the caller's next call; the returned
// message's raw frame aliases it, so the message must be fully
// consumed before the buffer is reused — the router's connection loop
// finishes each handler before reading the next frame, and every path
// that keeps publication bytes past the handler (the partition rings)
// copies them.
func recvAppend(r io.Reader, buf []byte) (*Message, []byte, error) {
	raw, err := wire.ReadFrameAppend(r, buf)
	if err != nil {
		return nil, buf, err
	}
	var m Message
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, raw, fmt.Errorf("broker: decoding message: %w", err)
	}
	m.raw = raw
	return &m, raw, nil
}

// sendErr reports a protocol error to the peer (best effort),
// stamping the machine-readable class code so the sentinel taxonomy
// survives the hop.
func sendErr(w io.Writer, err error) {
	_ = Send(w, &Message{Type: TypeError, Err: err.Error(), Code: codeFor(err)})
}

// sendErrf is sendErr for ad-hoc protocol violations without a
// sentinel class.
func sendErrf(w io.Writer, format string, args ...any) {
	sendErr(w, fmt.Errorf(format, args...))
}

// errOf converts an error reply into a Go error, re-wrapping the
// sentinel named by the reply's class code so errors.Is matches
// across the network boundary.
func errOf(m *Message) error {
	if m.Type != TypeError {
		return nil
	}
	if sentinel := sentinelFor(m.Code); sentinel != nil {
		return fmt.Errorf("broker: peer error: %w (%s)", sentinel, m.Err)
	}
	return fmt.Errorf("broker: peer error: %s", m.Err)
}

// expect validates a reply's type.
func expect(m *Message, want MsgType) error {
	if err := errOf(m); err != nil {
		return err
	}
	if m.Type != want {
		return fmt.Errorf("broker: unexpected reply %q, want %q", m.Type, want)
	}
	return nil
}
