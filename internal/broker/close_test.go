package broker

import (
	"net"
	"testing"
	"time"
)

// TestDeliveryCloseDrainsPending proves the graceful half of Close:
// deliveries already matched and queued when shutdown starts are
// flushed to the client before its connection closes, instead of
// being discarded with the writer.
func TestDeliveryCloseDrainsPending(t *testing.T) {
	table := newDeliveryTable(16, 0, OverflowDropOldest, -1)
	server, client := net.Pipe()
	defer client.Close()

	if err := table.attach("carol", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	// The client is not reading, so the writer blocks on the hello and
	// these deliveries pile up in the queue — the state Close used to
	// tear down lossily.
	const pending = 5
	for i := 0; i < pending; i++ {
		table.enqueue("carol", &Message{Type: TypeDeliver, Payload: []byte{byte(i)}})
	}

	closed := make(chan struct{})
	go func() {
		table.close(5 * time.Second)
		close(closed)
	}()

	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("first frame %q, want listen-ok", m.Type)
	}
	for i := 0; i < pending; i++ {
		m := mustRecv(t, client)
		if m.Type != TypeDeliver || len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("delivery %d: got %+v", i, m)
		}
	}
	if _, err := Recv(client); err == nil {
		t.Fatal("connection still open after drain")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close never returned")
	}
}

// TestDeliveryCloseBounded proves the drain is bounded: a client that
// never drains its connection cannot hold shutdown hostage.
func TestDeliveryCloseBounded(t *testing.T) {
	table := newDeliveryTable(16, 0, OverflowDropOldest, -1)
	server, client := net.Pipe()
	defer client.Close()

	if err := table.attach("stalled", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	table.enqueue("stalled", &Message{Type: TypeDeliver, Payload: []byte("stuck")})

	start := time.Now()
	table.close(100 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("close took %v despite the 100ms drain bound", elapsed)
	}
}

// TestRouterCloseDrainDefault checks the config plumbing: a router
// built with an explicit DrainTimeout closes within its bound even
// with a stalled listener holding pending deliveries.
func TestRouterCloseDrainDefault(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.DrainTimeout = 200 * time.Millisecond
	})
	alice, _ := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("pending")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sys.router.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("router close took %v", elapsed)
	}
}

func mustRecv(t *testing.T, conn net.Conn) *Message {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := Recv(conn)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return m
}
