package broker

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"
)

// Admission errors.
var (
	ErrUnknownClient = errors.New("broker: unknown client")
	ErrRevokedClient = errors.New("broker: client revoked")
)

// ClientStatus tracks a client's standing with the service provider
// (§3.1: producers "exclude clients that stop paying their fees or
// behave in a non-trustworthy manner").
type ClientStatus int

// Client states.
const (
	StatusActive ClientStatus = iota + 1
	StatusRevoked
)

// ClientRecord is the publisher's view of one client.
type ClientRecord struct {
	ID     string
	PubKey *rsa.PublicKey
	Status ClientStatus
}

// ClientRegistry is the publisher-side admission database. Safe for
// concurrent use.
type ClientRegistry struct {
	mu      sync.RWMutex
	clients map[string]*ClientRecord
}

// NewClientRegistry returns an empty registry.
func NewClientRegistry() *ClientRegistry {
	return &ClientRegistry{clients: make(map[string]*ClientRecord)}
}

// Admit records (or re-activates) a client and its response key.
func (r *ClientRegistry) Admit(id string, pubKey *rsa.PublicKey) error {
	if id == "" {
		return errors.New("broker: empty client ID")
	}
	if pubKey == nil {
		return fmt.Errorf("broker: client %s has no public key", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients[id] = &ClientRecord{ID: id, PubKey: pubKey, Status: StatusActive}
	return nil
}

// Authorize returns the record of an active client.
func (r *ClientRegistry) Authorize(id string) (*ClientRecord, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.clients[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClient, id)
	}
	if rec.Status != StatusActive {
		return nil, fmt.Errorf("%w: %s", ErrRevokedClient, id)
	}
	return rec, nil
}

// Revoke marks a client revoked. Idempotent; unknown clients error.
func (r *ClientRegistry) Revoke(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.clients[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownClient, id)
	}
	rec.Status = StatusRevoked
	return nil
}

// Len returns the number of known clients (any status).
func (r *ClientRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.clients)
}
