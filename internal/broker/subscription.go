package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"scbr/internal/pubsub"
)

// Subscription is a first-class handle on one registered subscription:
// it carries the router-assigned ID, the original spec, and a buffered
// view of the client's delivery stream filtered to the publications
// that matched this subscription. Handles are created by
// Client.Subscribe and live until Unsubscribe or Client.Close.
//
// Deliveries are consumed either by iteration (Next), by channel
// (Deliveries), or by callback (Consume) — pick one per handle; the
// three drain the same buffer.
type Subscription struct {
	id     uint64
	router string // the home router it was registered on (federation)
	spec   pubsub.SubscriptionSpec
	c      *Client
	ch     chan Delivery
	done   chan struct{}
	once   sync.Once
}

// ID returns the router-assigned subscription ID.
func (s *Subscription) ID() uint64 { return s.id }

// Spec returns the subscription's predicate conjunction as submitted.
func (s *Subscription) Spec() pubsub.SubscriptionSpec { return s.spec }

// Next blocks until a delivery for this subscription arrives, ctx is
// cancelled (returning ctx.Err()), or the handle closes (returning an
// error wrapping ErrClosed). Buffered deliveries drain before a close
// is reported, but a cancelled ctx is honoured immediately — callers
// that stop consuming stop, even mid-burst.
func (s *Subscription) Next(ctx context.Context) (Delivery, error) {
	if err := ctx.Err(); err != nil {
		return Delivery{}, err
	}
	// Drain buffered deliveries before reporting a close, so closing
	// the handle never eats them.
	select {
	case d := <-s.ch:
		return d, nil
	default:
	}
	select {
	case d := <-s.ch:
		return d, nil
	case <-ctx.Done():
		return Delivery{}, ctx.Err()
	case <-s.done:
		// The close may race a delivery buffered in the same instant;
		// honour the drain-before-close guarantee.
		select {
		case d := <-s.ch:
			return d, nil
		default:
		}
		return Delivery{}, fmt.Errorf("%w: subscription %d", ErrClosed, s.id)
	case <-s.c.done:
		select {
		case d := <-s.ch:
			return d, nil
		default:
		}
		return Delivery{}, fmt.Errorf("%w: client %s", ErrClosed, s.c.ID)
	}
}

// Deliveries exposes the handle's buffered delivery channel for
// select-based consumers. The channel is never closed; use Next or
// watch Done to observe shutdown.
func (s *Subscription) Deliveries() <-chan Delivery { return s.ch }

// Done is closed when the handle is no longer live (after Unsubscribe
// or Client.Close).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Unsubscribe withdraws the subscription through the publisher and
// closes the handle. Subsequent Next calls drain the buffer and then
// report ErrClosed.
func (s *Subscription) Unsubscribe(ctx context.Context) error {
	return s.c.Unsubscribe(ctx, s.id)
}

// Consume invokes fn for every delivery until ctx is cancelled, the
// handle closes (returning nil — a closed subscription is a normal
// end of stream), or fn returns an error, which is passed through.
func (s *Subscription) Consume(ctx context.Context, fn func(Delivery) error) error {
	for {
		d, err := s.Next(ctx)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		if err := fn(d); err != nil {
			return err
		}
	}
}

// closeHandle marks the handle dead; idempotent.
func (s *Subscription) closeHandle() {
	s.once.Do(func() { close(s.done) })
}

// offer hands a delivery to the handle's buffer. When the buffer is
// full it blocks until the consumer catches up or the handle (or
// client) closes — lossless backpressure, like the pre-Subscription
// channel API.
func (s *Subscription) offer(d Delivery) {
	select {
	case s.ch <- d:
	case <-s.done:
	case <-s.c.done:
	}
}
