package broker

import (
	"errors"
	"net"
	"testing"

	"scbr/internal/attest"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// aspeTestAttrs is the attribute universe the aspe tests fix: the
// quote attributes the helpers' specs and events reference.
var aspeTestAttrs = []string{"symbol", "price", "volume"}

func aspeTestCodec(t *testing.T) scheme.Codec {
	t.Helper()
	codec, err := scheme.NewCodec(scheme.ASPE,
		scheme.WithAttrs(aspeTestAttrs...),
		scheme.WithSeed(41),
		scheme.WithScale("price", 100),
		scheme.WithScale("volume", 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	return codec
}

// newSchemeTestSystem is newTestSystemCfg with a non-default matching
// scheme on both halves of the deployment.
func newSchemeTestSystem(t *testing.T, schemeName string, codec scheme.Codec, mutate func(*RouterConfig)) *testSystem {
	t.Helper()
	dev, err := sgx.NewDevice([]byte("scheme-test-"+schemeName), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "scheme-platform-"+schemeName)
	if err != nil {
		t.Fatal(err)
	}
	ias := attest.NewService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{
		EnclaveImage:  []byte("scbr scheme router image v1"),
		EnclaveSigner: signer.Public(),
		Scheme:        schemeName,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	router, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := &testSystem{t: t, router: router}
	sys.routerLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sys.wg.Add(1)
	go func() {
		defer sys.wg.Done()
		_ = router.Serve(bg, sys.routerLn)
	}()
	sys.publisher, err = NewPublisherWithCodec(ias, router.Identity(), codec)
	if err != nil {
		t.Fatal(err)
	}
	routerConn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.ConnectRouter(bg, routerConn); err != nil {
		t.Fatalf("provisioning failed: %v", err)
	}
	sys.pubLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sys.wg.Add(1)
	go func() {
		defer sys.wg.Done()
		for {
			conn, err := sys.pubLn.Accept()
			if err != nil {
				return
			}
			sys.wg.Add(1)
			go func() {
				defer sys.wg.Done()
				defer conn.Close()
				sys.publisher.ServeClient(bg, conn)
			}()
		}
	}()
	t.Cleanup(func() {
		_ = sys.pubLn.Close()
		router.Close()
		sys.wg.Wait()
	})
	return sys
}

// TestASPEEndToEnd drives the full six-step protocol with the aspe
// scheme on the live data plane, across a partitioned router: the
// publisher encodes ciphertext vectors, the router matches them
// without ever decrypting, and only the matching client's delivery
// arrives.
func TestASPEEndToEnd(t *testing.T) {
	sys := newSchemeTestSystem(t, scheme.ASPE, aspeTestCodec(t), func(cfg *RouterConfig) {
		cfg.Partitions = 3
	})
	if sys.router.Scheme() != scheme.ASPE {
		t.Fatalf("router scheme = %q", sys.router.Scheme())
	}
	if sys.router.Engine() != nil {
		t.Fatal("aspe router exposes a containment engine")
	}
	c, deliveries := sys.attach("alice")
	sub, err := c.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatalf("subscribe under aspe: %v", err)
	}
	// One matching and one non-matching publication.
	if err := sys.publisher.Publish(bg, halQuote(60), []byte("too expensive")); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("cheap HAL")); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, deliveries)
	if d.Err != nil {
		t.Fatalf("delivery error: %v", d.Err)
	}
	if string(d.Payload) != "cheap HAL" {
		t.Fatalf("payload = %q (the non-matching publication leaked?)", d.Payload)
	}
	if len(d.SubIDs) != 1 || d.SubIDs[0] != sub.ID() {
		t.Fatalf("delivery names subscriptions %v, want [%d]", d.SubIDs, sub.ID())
	}
	st := sys.router.DataPlaneStats()
	if st.Subscriptions != 1 || st.Partitions != 3 {
		t.Fatalf("data plane stats = %+v", st)
	}
}

// TestASPEUnsubscribeStopsDeliveries exercises removal through the
// scheme store.
func TestASPEUnsubscribeStopsDeliveries(t *testing.T) {
	sys := newSchemeTestSystem(t, scheme.ASPE, aspeTestCodec(t), nil)
	c, deliveries := sys.attach("bob")
	sub, err := c.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, deliveries); string(d.Payload) != "one" {
		t.Fatalf("payload = %q", d.Payload)
	}
	if err := c.Unsubscribe(bg, sub.ID()); err != nil {
		t.Fatal(err)
	}
	if st := sys.router.DataPlaneStats(); st.Subscriptions != 0 {
		t.Fatalf("store still holds %d subscriptions after unsubscribe", st.Subscriptions)
	}
}

// TestSchemeMismatchProvision asserts the cross-scheme handshake
// rejection in both directions: the publisher's ConnectRouter fails
// with the typed sentinel, across the wire.
func TestSchemeMismatchProvision(t *testing.T) {
	t.Run("plain-publisher-aspe-router", func(t *testing.T) {
		sys := newSchemeTestSystem(t, scheme.ASPE, aspeTestCodec(t), nil)
		plainPub, err := NewPublisher(attest.NewService(), sys.router.Identity())
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		err = plainPub.ConnectRouter(bg, conn)
		if !errors.Is(err, ErrSchemeMismatch) {
			t.Fatalf("plain publisher vs aspe router: err = %v, want ErrSchemeMismatch", err)
		}
	})
	t.Run("aspe-publisher-plain-router", func(t *testing.T) {
		sys := newTestSystem(t)
		aspePub, err := NewPublisherWithCodec(attest.NewService(), sys.router.Identity(), aspeTestCodec(t))
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		err = aspePub.ConnectRouter(bg, conn)
		if !errors.Is(err, ErrSchemeMismatch) {
			t.Fatalf("aspe publisher vs plain router: err = %v, want ErrSchemeMismatch", err)
		}
	})
}

// TestSchemeMismatchFrames asserts the per-frame scheme tag checks:
// register and scheme-tagged listen frames from the wrong scheme are
// rejected with the sentinel, while untagged listens (a pre-scheme or
// not-yet-subscribed client) pass.
func TestSchemeMismatchFrames(t *testing.T) {
	sys := newSchemeTestSystem(t, scheme.ASPE, aspeTestCodec(t), nil)
	exchange := func(m *Message) error {
		conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := Send(conn, m); err != nil {
			t.Fatal(err)
		}
		reply, err := Recv(conn)
		if err != nil {
			t.Fatal(err)
		}
		return errOf(reply)
	}
	if err := exchange(&Message{Type: TypeRegister, ClientID: "mallory", Scheme: scheme.Plain, Blob: []byte("x"), Sig: []byte("y")}); !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("plain-tagged register on aspe router: err = %v, want ErrSchemeMismatch", err)
	}
	// The empty tag means the default scheme — also a mismatch here.
	if err := exchange(&Message{Type: TypeRegister, ClientID: "mallory", Blob: []byte("x"), Sig: []byte("y")}); !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("untagged register on aspe router: err = %v, want ErrSchemeMismatch", err)
	}
	if err := exchange(&Message{Type: TypeListen, ClientID: "mallory", Scheme: scheme.Plain}); !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("plain-tagged listen on aspe router: err = %v, want ErrSchemeMismatch", err)
	}
	// An untagged listen binds fine: deliveries are scheme-neutral.
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, &Message{Type: TypeListen, ClientID: "carol"}); err != nil {
		t.Fatal(err)
	}
	reply, err := Recv(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := expect(reply, TypeListenOK); err != nil {
		t.Fatalf("untagged listen on aspe router rejected: %v", err)
	}
}

// TestASPEFederationRejected asserts the capability gate: a scheme
// without federation-digest support cannot join an overlay.
func TestASPEFederationRejected(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("aspe-fed"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "aspe-fed-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRouter(dev, quoter, RouterConfig{
		EnclaveImage:  []byte("img"),
		EnclaveSigner: signer.Public(),
		Scheme:        scheme.ASPE,
		RouterID:      "r1",
		PeerVerifier:  attest.NewService(),
	})
	if err == nil {
		t.Fatal("aspe router with federation config constructed")
	}
}

// TestASPESealRestore seals an aspe router's state (scheme ID and
// public parameters included) and restores it into a fresh aspe
// router: the ciphertext registrations replay into reconfigured
// stores and keep their IDs, end to end through a re-provisioned
// publisher.
func TestASPESealRestore(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("aspe-persist"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "aspe-persist-platform")
	if err != nil {
		t.Fatal(err)
	}
	ias := attest.NewService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{
		EnclaveImage:  []byte("aspe persistent router image"),
		EnclaveSigner: signer.Public(),
		Scheme:        scheme.ASPE,
		Partitions:    2,
	}
	r1, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisherWithCodec(ias, r1.Identity(), aspeTestCodec(t))
	if err != nil {
		t.Fatal(err)
	}
	serve := func(r *Router) net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = r.Serve(bg, ln) }()
		return ln
	}
	ln1 := serve(r1)
	conn1, err := net.Dial("tcp", ln1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ConnectRouter(bg, conn1); err != nil {
		t.Fatal(err)
	}
	// Register through the protocol: a client subscribing via the
	// publisher served over a pipe.
	c, err := NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	clientSide, pubSide := net.Pipe()
	go pub.ServeClient(bg, pubSide)
	c.ConnectPublisher(clientSide, pub.PublicKey())
	sub, err := c.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	_ = ln1.Close()

	r2, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreState(blob); err != nil {
		t.Fatalf("restoring aspe state: %v", err)
	}
	if st := r2.DataPlaneStats(); st.Subscriptions != 1 {
		t.Fatalf("restored %d subscriptions, want 1", st.Subscriptions)
	}
	// The restored stores must match live traffic: attach the client's
	// delivery channel and publish through a re-provisioned connection.
	ln2 := serve(r2)
	t.Cleanup(func() { r2.Close(); _ = ln2.Close() })
	conn2, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ConnectRouter(bg, conn2); err != nil {
		t.Fatalf("re-provisioning restored router: %v", err)
	}
	routerConn, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(bg, routerConn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := pub.Publish(bg, halQuote(42), []byte("after restart")); err != nil {
		t.Fatal(err)
	}
	d, err := sub.Next(bg)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "after restart" {
		t.Fatalf("payload = %q", d.Payload)
	}
}

// TestRestoreSchemeMismatch is the fail-fast satellite: a snapshot
// sealed by an aspe router must not replay into a plain router (the
// stored encodings would be misinterpreted), and vice versa.
func TestRestoreSchemeMismatch(t *testing.T) {
	f := newRestartFixture(t)
	f.cfg.Scheme = scheme.ASPE
	r1 := f.newRouter()
	ias := attest.NewService()
	ias.RegisterPlatform(f.quoter.PlatformID(), f.quoter.AttestationKey())
	pub, err := NewPublisherWithCodec(ias, r1.Identity(), aspeTestCodec(t))
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); r1.handleConn(server) }()
	t.Cleanup(func() { _ = client.Close(); _ = server.Close(); <-done })
	if err := pub.ConnectRouter(bg, client); err != nil {
		t.Fatal(err)
	}
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	f.cfg.Scheme = scheme.Plain
	r2 := f.newRouter()
	err = r2.RestoreState(blob)
	if !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("restoring aspe state into plain router: err = %v, want ErrSchemeMismatch", err)
	}
	// The fail-fast must leave the router unprovisioned and empty.
	if sk, _ := r2.keys(); sk != nil {
		t.Fatal("failed restore installed secrets anyway")
	}
	if st := r2.DataPlaneStats(); st.Subscriptions != 0 {
		t.Fatalf("failed restore left %d subscriptions", st.Subscriptions)
	}
}
