package broker

// EPC budgeting for the partitioned data plane. The router divides its
// configured EPC budget evenly across its matcher slices: EPCBytes is
// hashed into the enclave measurement, so every slice MUST launch with
// the same share or migration's seal-to-MRENCLAVE transport would
// refuse to move state between them. The planner-facing surfaces here
// report what each slice actually holds against that share and
// recommend a partition count from the live store footprint.

import (
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/streamhub"
)

// SliceEPCShare computes each matcher slice's EPC budget for a router
// with totalBytes of EPC across k partitions. The share is identical
// for every slice (EPCBytes is part of the measured enclave identity)
// and remainder-aware: ceil(total/k) rounded up to a whole page, so no
// EPC is silently lost to integer truncation — the fleet's k·share is
// always ≥ total, never below it. totalBytes 0 means the default EPC
// (sgx.DefaultEPCBytes); k below 1 is treated as 1.
func SliceEPCShare(totalBytes uint64, k int) uint64 {
	if totalBytes == 0 {
		totalBytes = sgx.DefaultEPCBytes
	}
	if k < 1 {
		k = 1
	}
	share := (totalBytes + uint64(k) - 1) / uint64(k)
	if rem := share % simmem.PageSize; rem != 0 {
		share += simmem.PageSize - rem
	}
	return share
}

// SliceFootprint reports one matcher slice's memory position: what its
// store holds, what the hub's load accounting charged it, and how much
// EPC it has actually needed (residency high-water mark) against its
// budget — the actuals a deployment plan is validated against.
type SliceFootprint struct {
	// Partition is the slice index.
	Partition int `json:"partition"`
	// Subscriptions is the slice store's live subscription count.
	Subscriptions int `json:"subscriptions"`
	// StoreBytes is the slice store's arena footprint.
	StoreBytes uint64 `json:"store_bytes"`
	// AccountedBytes is the hub's estimated byte load for the slice
	// (entry-cost charges over the shards it owns).
	AccountedBytes uint64 `json:"accounted_bytes"`
	// EPCBudget is the slice's launch-time EPC share.
	EPCBudget uint64 `json:"epc_budget"`
	// ResidentBytes and PeakResidentBytes are the enclave pager's
	// current and high-water resident sets; zero with Tracked=false
	// when the accessor does not track residency.
	ResidentBytes     uint64 `json:"resident_bytes"`
	PeakResidentBytes uint64 `json:"peak_resident_bytes"`
	// ResidencyTracked reports whether the residency figures are real.
	ResidencyTracked bool `json:"residency_tracked"`
}

// SliceFootprints returns each slice's memory position, indexed by
// partition. Like SliceMeterSnapshots, each slice is read coherently
// under its partition lock, one slice at a time.
func (r *Router) SliceFootprints() []SliceFootprint {
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	accounted, budgets := r.hub.SliceLoads()
	out := make([]SliceFootprint, len(r.parts))
	for i, p := range r.parts {
		p.mu.Lock()
		st := p.slice.Stats()
		resident, peak, tracked := p.slice.Accessor().Meter().Residency()
		p.mu.Unlock()
		out[i] = SliceFootprint{
			Partition:         i,
			Subscriptions:     st.Subscriptions,
			StoreBytes:        st.Bytes,
			AccountedBytes:    accounted[i],
			EPCBudget:         r.epcPer,
			ResidentBytes:     resident,
			PeakResidentBytes: peak,
			ResidencyTracked:  tracked,
		}
		if i < len(budgets) && budgets[i] != 0 {
			out[i].EPCBudget = budgets[i]
		}
	}
	return out
}

// setHubBudgets installs k copies of the fixed per-slice EPC share as
// the hub's slice budgets — at construction and after every resize,
// so the byte-weighted load accounting always normalises against the
// current fleet.
func (r *Router) setHubBudgets(k int) {
	budgets := make([]uint64, k)
	for i := range budgets {
		budgets[i] = r.epcPer
	}
	r.hub.SetSliceBudgets(budgets)
}

// recommendHeadroomNum/Den keep each slice's working set at or below
// 7/8 of its EPC share, leaving room for growth before the paging
// cliff.
const (
	recommendHeadroomNum = 7
	recommendHeadroomDen = 8
)

// RecommendPartitions sizes the partition count from the live store
// footprint: the smallest k whose per-slice working set fits under the
// fixed per-slice EPC share with headroom. The share itself cannot
// change after construction (it is part of the measured identity), so
// the recommendation divides the CURRENT total store bytes by the
// usable fraction of one share, clamped to [1, min(MaxPartitions,
// shards)]. Repartition(ctx, 0) resizes to this value.
func (r *Router) RecommendPartitions() int {
	r.planeMu.RLock()
	st := r.hub.Stats()
	r.planeMu.RUnlock()
	usable := r.epcPer * recommendHeadroomNum / recommendHeadroomDen
	if usable == 0 {
		usable = 1
	}
	k := int((st.Bytes + usable - 1) / usable)
	if k < 1 {
		k = 1
	}
	max := streamhub.MaxPartitions
	if shards := r.pm.Shards(); shards < max {
		max = shards
	}
	if k > max {
		k = max
	}
	return k
}
