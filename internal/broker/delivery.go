// The router's delivery layer: step ⑥ decoupled from matching. Every
// listening client owns a bounded outbound queue drained by a
// dedicated writer goroutine, so a blocked or broken listener never
// blocks matching or deliveries to other clients — the matcher's only
// interaction with a client is a non-blocking enqueue. A client whose
// queue overflows is not draining its connection and is disconnected
// (the slow-consumer policy); within one client, deliveries leave in
// enqueue order.

package broker

import (
	"net"
	"sync"
	"time"

	"scbr/internal/core"
)

// DefaultDeliveryQueueLen is the per-client outbound queue bound used
// when RouterConfig.DeliveryQueueLen is zero.
const DefaultDeliveryQueueLen = 256

// DefaultDrainTimeout bounds the shutdown drain when
// RouterConfig.DrainTimeout is zero: Close lets the per-client
// writers flush already-matched deliveries for at most this long
// before severing the connections.
const DefaultDrainTimeout = 2 * time.Second

// deliveryTable owns the router's client delivery channels.
type deliveryTable struct {
	mu       sync.Mutex
	queues   map[string]*clientQueue
	queueLen int
	closed   bool
	wg       sync.WaitGroup
}

// clientQueue is one client's outbound delivery channel: the bounded
// queue and the connection its writer drains onto.
type clientQueue struct {
	name  string
	conn  net.Conn
	ch    chan *Message
	quit  chan struct{}
	drain chan struct{}
	once  sync.Once
	dOnce sync.Once
}

// stop severs the queue: the writer unwinds (a write in flight fails
// when the conn closes) and pending deliveries are discarded.
func (q *clientQueue) stop() {
	q.once.Do(func() {
		close(q.quit)
		_ = q.conn.Close()
	})
}

// beginDrain tells the writer to flush whatever is buffered and then
// close the connection — the graceful half of shutdown. Producers
// must already be stopped, so the buffer can only shrink.
func (q *clientQueue) beginDrain() {
	q.dOnce.Do(func() { close(q.drain) })
}

func newDeliveryTable(queueLen int) *deliveryTable {
	if queueLen <= 0 {
		queueLen = DefaultDeliveryQueueLen
	}
	return &deliveryTable{queues: make(map[string]*clientQueue), queueLen: queueLen}
}

// attach binds conn as name's delivery channel, replacing (and
// severing) any previous one. hello is queued before the channel
// becomes visible to matching, so it is guaranteed to be the first
// frame the writer puts on the wire.
func (t *deliveryTable) attach(name string, conn net.Conn, hello *Message) error {
	q := &clientQueue{
		name:  name,
		conn:  conn,
		ch:    make(chan *Message, t.queueLen),
		quit:  make(chan struct{}),
		drain: make(chan struct{}),
	}
	q.ch <- hello
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	old := t.queues[name]
	t.queues[name] = q
	t.wg.Add(1)
	t.mu.Unlock()
	if old != nil {
		old.stop()
	}
	go t.writer(q)
	return nil
}

// enqueue offers one delivery to name's queue without ever blocking.
// A full queue means the client is not draining its connection: it is
// disconnected rather than allowed to stall the data plane.
func (t *deliveryTable) enqueue(name string, m *Message) {
	t.mu.Lock()
	q := t.queues[name]
	t.mu.Unlock()
	if q == nil {
		return // client not currently listening
	}
	select {
	case q.ch <- m:
	default:
		t.drop(q) // slow consumer
	}
}

// drop severs one client queue and removes it from the table (unless
// a newer queue already replaced it).
func (t *deliveryTable) drop(q *clientQueue) {
	t.mu.Lock()
	if t.queues[q.name] == q {
		delete(t.queues, q.name)
	}
	t.mu.Unlock()
	q.stop()
}

// writer drains one client's queue onto its connection. It is the
// only goroutine writing this conn, so frames never interleave.
func (t *deliveryTable) writer(q *clientQueue) {
	defer t.wg.Done()
	for {
		// quit always wins over buffered work: a forced stop (slow
		// consumer, drain deadline) must not be outraced by a full
		// queue.
		select {
		case <-q.quit:
			return
		default:
		}
		select {
		case <-q.quit:
			return
		case m := <-q.ch:
			if err := Send(q.conn, m); err != nil {
				// A broken listener must not block the others.
				t.drop(q)
				return
			}
		case <-q.drain:
			// Shutdown: flush what is already buffered, then close the
			// connection. Producers are gone, so this terminates.
			for {
				select {
				case <-q.quit:
					return
				case m := <-q.ch:
					if err := Send(q.conn, m); err != nil {
						t.drop(q)
						return
					}
				default:
					q.stop()
					return
				}
			}
		}
	}
}

// depths reports each listening client's buffered delivery count (the
// observability hook behind the router's metrics endpoint).
func (t *deliveryTable) depths() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.queues))
	for name, q := range t.queues {
		out[name] = len(q.ch)
	}
	return out
}

// close shuts the table down gracefully: every queue switches to
// drain mode so already-matched deliveries are flushed, bounded by
// drainTimeout; queues still busy at the deadline are severed. The
// caller guarantees no producer enqueues past this point.
func (t *deliveryTable) close(drainTimeout time.Duration) {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	t.mu.Lock()
	t.closed = true
	qs := make([]*clientQueue, 0, len(t.queues))
	for _, q := range t.queues {
		qs = append(qs, q)
	}
	t.queues = make(map[string]*clientQueue)
	t.mu.Unlock()
	for _, q := range qs {
		q.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drainTimeout):
		for _, q := range qs {
			q.stop()
		}
		<-done
	}
	for _, q := range qs {
		q.stop() // ensure every connection is closed after its flush
	}
}

// deliver is step ⑥: hand the still-encrypted payload once to every
// matched client's outbound queue, whatever number of its
// subscriptions matched. The delivery names every matched subscription
// of that client, so client-side Subscription handles can route it
// without decrypting twice.
func (r *Router) deliver(matches []core.MatchResult, m *Message) {
	if len(matches) == 0 {
		return
	}
	// Deduplicate client targets: one delivery per client however many
	// of its subscriptions matched.
	perClient := make(map[uint32][]uint64, len(matches))
	order := make([]uint32, 0, len(matches))
	for _, match := range matches {
		if _, ok := perClient[match.ClientRef]; !ok {
			order = append(order, match.ClientRef)
		}
		perClient[match.ClientRef] = append(perClient[match.ClientRef], match.SubID)
	}
	names := make([]string, len(order))
	r.ctlMu.RLock()
	for i, ref := range order {
		names[i] = r.refName[ref]
	}
	r.ctlMu.RUnlock()
	for i, ref := range order {
		r.delivery.enqueue(names[i], &Message{
			Type:    TypeDeliver,
			Payload: m.Payload,
			Epoch:   m.Epoch,
			SubIDs:  perClient[ref],
		})
	}
}
