// The router's delivery layer: step ⑥ decoupled from matching. Every
// listening client owns a bounded outbound queue drained by a
// dedicated writer goroutine, so a blocked or broken listener never
// blocks matching or deliveries to other clients — the matcher's only
// interaction with a client is an enqueue that never waits on a
// socket.
//
// Delivery is resumable: each client has a durable per-router cursor
// (stamped on every deliver frame) and a bounded replay ring of its
// most recent deliveries, both of which outlive any single
// connection. A listener that reconnects and presents its last-seen
// cursor has the gap replayed from the ring instead of losing
// whatever was buffered when its previous connection died; deliveries
// evicted from the ring before the client came back are reported as a
// gap on the listen ack, so loss is observable rather than silent.
// What happens when the live queue overflows is the OverflowPolicy.

package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scbr/internal/core"
	"scbr/internal/hdrhist"
)

// DefaultDeliveryQueueLen is the per-client outbound queue bound used
// when RouterConfig.DeliveryQueueLen is zero.
const DefaultDeliveryQueueLen = 256

// DefaultReplayRingLen is the per-client replay ring bound used when
// RouterConfig.ReplayRingLen is zero. The ring retains the client's
// most recent stamped deliveries for cursor-based replay, so it should
// cover at least one delivery queue plus the burst expected during a
// reconnect window.
const DefaultReplayRingLen = 512

// DefaultDrainTimeout bounds the shutdown drain when
// RouterConfig.DrainTimeout is zero: Close lets the per-client
// writers flush already-matched deliveries for at most this long
// before severing the connections.
const DefaultDrainTimeout = 2 * time.Second

// DefaultResumeWindow is how long a detached client's delivery state
// (cursor + replay ring) is retained for resumption when
// RouterConfig.ResumeWindow is zero. Without a bound, client churn
// would grow the table — and the payloads its rings pin — forever.
const DefaultResumeWindow = 5 * time.Minute

// OverflowPolicy selects what the router does when a listening
// client's bounded delivery queue is full — the slow-consumer policy.
type OverflowPolicy int

const (
	// OverflowDropOldest (the default) evicts the oldest queued frame
	// to make room. The client stays connected and observes the loss as
	// a cursor jump; the evicted frames remain in the replay ring, so a
	// reconnect with the last-seen cursor recovers them — at-least-once
	// within the ring's reach.
	OverflowDropOldest OverflowPolicy = iota
	// OverflowDisconnect severs the client's connection, the legacy
	// policy: a client that stops draining its socket is cut loose
	// rather than allowed to stall the data plane. Deliveries keep
	// accumulating cursors (and ring slots) while it is gone, so a
	// resume still recovers everything the ring retained.
	OverflowDisconnect
	// OverflowPause blocks the enqueue until the writer frees a slot,
	// exerting backpressure into the delivery merger (switchless) or
	// the publishing connection (synchronous) — never into the enclave
	// matchers, which have already finished by the time delivery runs.
	// Lossless while the connection lives, at the cost of one stalled
	// client throttling the publication stream feeding it; a frame
	// parked when the connection dies is abandoned like any other
	// in-flight frame and recovered through the replay ring on resume.
	OverflowPause
)

// String names the policy for flags and logs.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowDisconnect:
		return "disconnect"
	case OverflowPause:
		return "pause"
	default:
		return "drop-oldest"
	}
}

// ParseOverflowPolicy maps a flag string onto a policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "drop-oldest", "":
		return OverflowDropOldest, nil
	case "disconnect":
		return OverflowDisconnect, nil
	case "pause":
		return OverflowPause, nil
	}
	return 0, fmt.Errorf("broker: unknown overflow policy %q (want drop-oldest, disconnect, or pause)", s)
}

// DeliveryCounters observes the delivery layer's loss and recovery
// activity. All counts are cumulative since router start.
type DeliveryCounters struct {
	// Enqueued counts deliveries handed to the layer (one per matched
	// client per publication).
	Enqueued uint64 `json:"enqueued"`
	// DeliveriesDropped counts frames evicted from a live outbound
	// queue under OverflowDropOldest — losses on the current
	// connection, still recoverable from the replay ring on resume.
	DeliveriesDropped uint64 `json:"deliveries_dropped"`
	// SlowConsumerDisconnects counts connections severed under
	// OverflowDisconnect.
	SlowConsumerDisconnects uint64 `json:"slow_consumer_disconnects"`
	// DeliveriesReplayed counts frames re-sent from replay rings to
	// resuming listeners.
	DeliveriesReplayed uint64 `json:"deliveries_replayed"`
	// PauseStalls counts enqueues that blocked under OverflowPause.
	PauseStalls uint64 `json:"pause_stalls"`
	// ReplayGapTotal sums the gaps reported to resuming listeners —
	// deliveries that had already left the replay ring and are
	// unrecoverable.
	ReplayGapTotal uint64 `json:"replay_gap_total"`
}

// deliveryTable owns the router's client delivery state: the durable
// per-client cursors and replay rings, and the live per-connection
// queues.
type deliveryTable struct {
	queueLen     int
	ringLen      int
	policy       OverflowPolicy
	resumeWindow time.Duration // ≤ 0: retain detached state forever

	mu      sync.Mutex
	clients map[string]*clientState
	closed  bool
	wg      sync.WaitGroup

	sweepQuit chan struct{}
	sweepDone chan struct{}

	enqueued    atomic.Uint64
	dropped     atomic.Uint64
	disconnects atomic.Uint64
	replayed    atomic.Uint64
	pauseStalls atomic.Uint64
	gapTotal    atomic.Uint64

	// latency aggregates the enqueue→write latency of every delivered
	// frame across all clients; each clientState keeps its own.
	latency *hdrhist.Hist
}

// clientState is one client's durable delivery state. It outlives any
// single connection — that is what makes reconnection resumable.
type clientState struct {
	name string

	// sendMu serialises enqueues for this client, so cursor order
	// equals queue order even when a Pause-policy enqueue blocks.
	// attach never takes it: a reconnect always gets through, however
	// wedged the previous connection is.
	sendMu sync.Mutex

	mu     sync.Mutex
	cursor uint64 // last stamped delivery sequence (first delivery is 1)
	// ring is the replay buffer: a circular window over the most
	// recent stamped deliveries. It grows to the table's ring bound
	// and then overwrites in place — eviction is O(1), not a shift.
	ring       []*Message
	head       int          // index of the oldest retained frame
	q          *clientQueue // live connection, nil while detached
	detachedAt time.Time    // when q last became nil (resume-window clock)

	// lat records this client's enqueue→write latencies (live frames
	// only; replays are not re-recorded).
	lat *hdrhist.Hist
}

// ringPushLocked retains m in the replay ring, evicting the oldest
// frame once the bound is reached. Caller holds st.mu.
func (st *clientState) ringPushLocked(m *Message, bound int) {
	if len(st.ring) < bound {
		st.ring = append(st.ring, m)
		return
	}
	st.ring[st.head] = m
	st.head = (st.head + 1) % len(st.ring)
}

// replayAfterLocked returns the retained deliveries past lastSeen (in
// cursor order) and the count of deliveries lost to ring eviction
// that the listener can no longer recover. Caller holds st.mu.
func (st *clientState) replayAfterLocked(lastSeen uint64) ([]*Message, uint64) {
	if lastSeen > st.cursor {
		lastSeen = st.cursor // bogus future cursor: clamp, replay nothing
	}
	oldest := st.cursor + 1 // empty ring: nothing retained
	if len(st.ring) > 0 {
		oldest = st.ring[st.head].Cursor
	}
	var gap uint64
	if lastSeen+1 < oldest {
		gap = oldest - lastSeen - 1
	}
	var replay []*Message
	for i := 0; i < len(st.ring); i++ {
		m := st.ring[(st.head+i)%len(st.ring)]
		if m.Cursor > lastSeen {
			replay = append(replay, m)
		}
	}
	return replay, gap
}

// clientQueue is one client's live outbound delivery channel: the
// bounded queue and the connection its writer drains onto. pending
// carries the listen ack plus any cursor replay, written before the
// channel is drained so they are guaranteed to be the first frames on
// the wire.
type clientQueue struct {
	st      *clientState
	conn    net.Conn
	pending []*Message
	ch      chan *Message
	quit    chan struct{}
	drain   chan struct{}
	once    sync.Once
	dOnce   sync.Once
}

// stop severs the queue: the writer unwinds (a write in flight fails
// when the conn closes) and buffered deliveries are abandoned — they
// remain in the replay ring for a later resume.
func (q *clientQueue) stop() {
	q.once.Do(func() {
		close(q.quit)
		_ = q.conn.Close()
	})
}

// beginDrain tells the writer to flush whatever is buffered and then
// close the connection — the graceful half of shutdown. Producers
// must already be stopped, so the buffer can only shrink.
func (q *clientQueue) beginDrain() {
	q.dOnce.Do(func() { close(q.drain) })
}

func newDeliveryTable(queueLen, ringLen int, policy OverflowPolicy, resumeWindow time.Duration) *deliveryTable {
	if queueLen <= 0 {
		queueLen = DefaultDeliveryQueueLen
	}
	if ringLen == 0 {
		ringLen = DefaultReplayRingLen
	} else if ringLen < 0 {
		ringLen = 0 // replay disabled: cursors still stamp, nothing is retained
	}
	if resumeWindow == 0 {
		resumeWindow = DefaultResumeWindow
	}
	t := &deliveryTable{
		queueLen:     queueLen,
		ringLen:      ringLen,
		policy:       policy,
		resumeWindow: resumeWindow,
		clients:      make(map[string]*clientState),
		sweepQuit:    make(chan struct{}),
		sweepDone:    make(chan struct{}),
		latency:      hdrhist.New(),
	}
	if resumeWindow > 0 {
		go t.sweeper()
	} else {
		close(t.sweepDone)
	}
	return t
}

// sweeper bounds the table in time: a client detached for longer than
// the resume window has its state — cursor and the payloads its ring
// pins — released, so client churn cannot grow the router without
// bound. A client resuming after eviction is a fresh listener whose
// ack cursor restarts at zero (the client rebaselines on the
// regression).
func (t *deliveryTable) sweeper() {
	defer close(t.sweepDone)
	period := t.resumeWindow / 4
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-t.sweepQuit:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-t.resumeWindow)
		t.mu.Lock()
		for name, st := range t.clients {
			st.mu.Lock()
			expired := st.q == nil && !st.detachedAt.IsZero() && st.detachedAt.Before(cutoff)
			st.mu.Unlock()
			if expired {
				delete(t.clients, name)
			}
		}
		t.mu.Unlock()
	}
}

// attach binds conn as name's delivery channel, replacing (and
// severing) any previous one. hello is stamped with the client's
// current cursor and sent first; when the listener resumes (presenting
// its last-seen cursor), the retained gap is queued for replay behind
// the hello and the unrecoverable remainder reported in hello.Gap.
// The whole swap runs under the table lock, so an attach and a
// concurrent close always agree on who owns the connection: a closed
// table closes conn before returning ErrClosed (the write side
// belonged to the delivery layer from the listen frame on — leaving
// it open would leak the connection when a listener races
// Router.Close).
func (t *deliveryTable) attach(name string, conn net.Conn, hello *Message, lastSeen uint64, resume bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return ErrClosed
	}
	st := t.clients[name]
	if st == nil {
		st = &clientState{name: name, lat: hdrhist.New()}
		t.clients[name] = st
	}
	q := &clientQueue{
		st:    st,
		conn:  conn,
		ch:    make(chan *Message, t.queueLen),
		quit:  make(chan struct{}),
		drain: make(chan struct{}),
	}
	st.mu.Lock()
	old := st.q
	hello.Cursor = st.cursor
	q.pending = []*Message{hello}
	if resume {
		replay, gap := st.replayAfterLocked(lastSeen)
		hello.Gap = gap
		q.pending = append(q.pending, replay...)
		t.replayed.Add(uint64(len(replay)))
		t.gapTotal.Add(gap)
	}
	st.q = q
	st.detachedAt = time.Time{}
	st.mu.Unlock()
	t.wg.Add(1)
	t.mu.Unlock()
	if old != nil {
		old.stop()
	}
	go t.writer(q)
	return nil
}

// enqueue stamps one delivery with name's next cursor, retains it in
// the replay ring, and offers it to the live queue. It never blocks
// on a socket; whether it may wait for queue space at all is the
// overflow policy. m must be owned by the caller (deliver builds one
// Message per target client) — the cursor stamp mutates it.
func (t *deliveryTable) enqueue(name string, m *Message) {
	t.mu.Lock()
	st := t.clients[name]
	t.mu.Unlock()
	if st == nil {
		return // client has never listened here: nothing to resume onto
	}
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	m.enqueuedAt = time.Now()
	st.mu.Lock()
	st.cursor++
	m.Cursor = st.cursor
	if t.ringLen > 0 {
		st.ringPushLocked(m, t.ringLen)
	}
	q := st.q
	st.mu.Unlock()
	t.enqueued.Add(1)
	if q == nil {
		return // detached: retained in the ring for a later resume
	}
	select {
	case q.ch <- m:
		return
	default:
	}
	switch t.policy {
	case OverflowDisconnect:
		t.disconnects.Add(1)
		t.detach(q)
	case OverflowPause:
		t.pauseStalls.Add(1)
		select {
		case q.ch <- m:
		case <-q.quit:
			// The queue died while we waited (listener broke, reconnect
			// replaced it, shutdown): the ring retains m for replay.
		}
	default: // OverflowDropOldest
		for {
			select {
			case q.ch <- m:
				return
			default:
			}
			select {
			case <-q.ch:
				t.dropped.Add(1)
			default:
			}
			select {
			case <-q.quit:
				return // severed mid-overflow: the ring retains m
			default:
			}
		}
	}
}

// detach severs one live queue and clears it from its client state
// (unless a newer queue already replaced it). The client's cursor and
// ring survive for resumption.
func (t *deliveryTable) detach(q *clientQueue) {
	st := q.st
	st.mu.Lock()
	if st.q == q {
		st.q = nil
		st.detachedAt = time.Now()
	}
	st.mu.Unlock()
	q.stop()
}

// writer drains one client's queue onto its connection. It is the
// only goroutine writing this conn, so frames never interleave; the
// pending frames (listen ack, then any replay) go first.
func (t *deliveryTable) writer(q *clientQueue) {
	defer t.wg.Done()
	for _, m := range q.pending {
		select {
		case <-q.quit:
			return
		default:
		}
		if err := Send(q.conn, m); err != nil {
			t.detach(q)
			return
		}
	}
	q.pending = nil
	for {
		// quit always wins over buffered work: a forced stop (drain
		// deadline, replacement by a reconnect) must not be outraced by
		// a full queue.
		select {
		case <-q.quit:
			return
		default:
		}
		select {
		case <-q.quit:
			return
		case m := <-q.ch:
			if err := Send(q.conn, m); err != nil {
				// A broken listener must not block the others.
				t.detach(q)
				return
			}
			t.recordLatency(q.st, m)
		case <-q.drain:
			// Shutdown: flush what is already buffered, then close the
			// connection. Producers are gone, so this terminates.
			for {
				select {
				case <-q.quit:
					return
				case m := <-q.ch:
					if err := Send(q.conn, m); err != nil {
						t.detach(q)
						return
					}
					t.recordLatency(q.st, m)
				default:
					q.stop()
					return
				}
			}
		}
	}
}

// recordLatency records one delivered frame's enqueue→write span into
// the client's and the table's histograms. Replayed frames travel via
// q.pending, not the live queue, so they never reach here — their
// stamp describes the enqueue of a previous connection's life.
func (t *deliveryTable) recordLatency(st *clientState, m *Message) {
	if m.enqueuedAt.IsZero() {
		return
	}
	d := time.Since(m.enqueuedAt)
	st.lat.RecordDuration(d)
	t.latency.RecordDuration(d)
}

// LatencyQuantiles summarises one delivery-latency histogram as fixed
// percentiles, in nanoseconds.
type LatencyQuantiles struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
}

// quantilesOf extracts the fixed reporting percentiles.
func quantilesOf(s *hdrhist.Snapshot) LatencyQuantiles {
	return LatencyQuantiles{
		Count: s.N,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// DeliveryLatency is the enqueue→write latency surface the router
// exposes: how long delivered frames waited between the matcher's
// enqueue and the moment the per-client writer put them on the wire.
type DeliveryLatency struct {
	Total     LatencyQuantiles            `json:"total"`
	PerClient map[string]LatencyQuantiles `json:"per_client,omitempty"`
}

// latencySnapshot summarises the per-client and aggregate histograms.
func (t *deliveryTable) latencySnapshot() DeliveryLatency {
	out := DeliveryLatency{Total: quantilesOf(t.latency.Snapshot())}
	t.mu.Lock()
	states := make([]*clientState, 0, len(t.clients))
	for _, st := range t.clients {
		states = append(states, st)
	}
	t.mu.Unlock()
	for _, st := range states {
		if st.lat.Count() == 0 {
			continue
		}
		if out.PerClient == nil {
			out.PerClient = make(map[string]LatencyQuantiles)
		}
		out.PerClient[st.name] = quantilesOf(st.lat.Snapshot())
	}
	return out
}

// depths reports each attached client's buffered delivery count (the
// observability hook behind the router's metrics endpoint).
func (t *deliveryTable) depths() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for name, st := range t.clients {
		st.mu.Lock()
		if st.q != nil {
			out[name] = len(st.q.ch)
		}
		st.mu.Unlock()
	}
	return out
}

// cursors snapshots every client's delivery cursor — the part of the
// delivery state that seals into persisted router state, so resumes
// keep working across a router restart.
func (t *deliveryTable) cursors() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64)
	for name, st := range t.clients {
		st.mu.Lock()
		if st.cursor > 0 {
			out[name] = st.cursor
		}
		st.mu.Unlock()
	}
	return out
}

// seed pre-creates client states with restored cursors, so stamping
// continues where the sealed router left off. Rings start empty —
// deliveries matched before the restart are gone, and a resuming
// listener observes exactly that as its reported gap.
func (t *deliveryTable) seed(cursors map[string]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, c := range cursors {
		st := t.clients[name]
		if st == nil {
			// Restored clients start the resume-window clock now: if
			// none returns within it, the cursor is released like any
			// other detached state.
			t.clients[name] = &clientState{name: name, cursor: c, detachedAt: time.Now(), lat: hdrhist.New()}
			continue
		}
		st.mu.Lock()
		if st.cursor < c {
			st.cursor = c
		}
		st.mu.Unlock()
	}
}

// snapshot reads the loss/recovery counters.
func (t *deliveryTable) snapshot() DeliveryCounters {
	return DeliveryCounters{
		Enqueued:                t.enqueued.Load(),
		DeliveriesDropped:       t.dropped.Load(),
		SlowConsumerDisconnects: t.disconnects.Load(),
		DeliveriesReplayed:      t.replayed.Load(),
		PauseStalls:             t.pauseStalls.Load(),
		ReplayGapTotal:          t.gapTotal.Load(),
	}
}

// close shuts the table down gracefully: every live queue switches to
// drain mode so already-matched deliveries are flushed, bounded by
// drainTimeout; queues still busy at the deadline are severed. The
// caller guarantees no producer enqueues past this point.
func (t *deliveryTable) close(drainTimeout time.Duration) {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	if t.resumeWindow > 0 {
		close(t.sweepQuit)
	}
	<-t.sweepDone
	t.mu.Lock()
	t.closed = true
	var qs []*clientQueue
	for _, st := range t.clients {
		st.mu.Lock()
		if st.q != nil {
			qs = append(qs, st.q)
		}
		st.mu.Unlock()
	}
	t.mu.Unlock()
	for _, q := range qs {
		q.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drainTimeout):
		for _, q := range qs {
			q.stop()
		}
		<-done
	}
	for _, q := range qs {
		q.stop() // ensure every connection is closed after its flush
	}
}

// deliver is step ⑥: hand the still-encrypted payload once to every
// matched client's outbound queue, whatever number of its
// subscriptions matched. The delivery names every matched subscription
// of that client, so client-side Subscription handles can route it
// without decrypting twice; each frame is stamped with the client's
// delivery cursor by enqueue. Forwarded publications arriving over
// federation links take this same path, so cross-router deliveries
// ride local cursors like any other.
func (r *Router) deliver(matches []core.MatchResult, payload []byte, epoch uint64) {
	if len(matches) == 0 {
		return
	}
	// Deliver frames and their SubIDs are always freshly allocated:
	// the replay ring retains them indefinitely, so nothing here may
	// alias pooled or per-publication scratch.
	single := true
	for _, match := range matches[1:] {
		if match.ClientRef != matches[0].ClientRef {
			single = false
			break
		}
	}
	if single {
		// Every match names the same client — the common case under
		// selective subscriptions — so skip the dedup map entirely.
		ref := matches[0].ClientRef
		subIDs := make([]uint64, len(matches))
		for i, match := range matches {
			subIDs[i] = match.SubID
		}
		r.ctlMu.RLock()
		name := r.refName[ref]
		r.ctlMu.RUnlock()
		r.delivery.enqueue(name, &Message{
			Type:    TypeDeliver,
			Payload: payload,
			Epoch:   epoch,
			SubIDs:  subIDs,
		})
		return
	}
	// Deduplicate client targets: one delivery per client however many
	// of its subscriptions matched.
	perClient := make(map[uint32][]uint64, len(matches))
	order := make([]uint32, 0, len(matches))
	for _, match := range matches {
		if _, ok := perClient[match.ClientRef]; !ok {
			order = append(order, match.ClientRef)
		}
		perClient[match.ClientRef] = append(perClient[match.ClientRef], match.SubID)
	}
	names := make([]string, len(order))
	r.ctlMu.RLock()
	for i, ref := range order {
		names[i] = r.refName[ref]
	}
	r.ctlMu.RUnlock()
	for i, ref := range order {
		r.delivery.enqueue(names[i], &Message{
			Type:    TypeDeliver,
			Payload: payload,
			Epoch:   epoch,
			SubIDs:  perClient[ref],
		})
	}
}
