package broker

import (
	"errors"
	"net"
	"sync"
	"testing"

	"scbr/internal/attest"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// restartFixture builds a full system, registers subscriptions, seals,
// and then simulates a router restart on the same device with the same
// enclave image.
type restartFixture struct {
	t      *testing.T
	dev    *sgx.Device
	quoter *attest.Quoter
	signer *scrypto.KeyPair
	cfg    RouterConfig
}

func newRestartFixture(t *testing.T) *restartFixture {
	t.Helper()
	dev, err := sgx.NewDevice([]byte("persist-test"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "persist-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &restartFixture{
		t:      t,
		dev:    dev,
		quoter: quoter,
		signer: signer,
		cfg: RouterConfig{
			EnclaveImage:  []byte("persistent router image"),
			EnclaveSigner: signer.Public(),
		},
	}
}

func (f *restartFixture) newRouter() *Router {
	f.t.Helper()
	r, err := NewRouter(f.dev, f.quoter, f.cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	return r
}

// populate provisions the router and registers n subscriptions through
// the real protocol, returning the publisher and subscription IDs.
func (f *restartFixture) populate(r *Router, n int) (*Publisher, []uint64) {
	f.t.Helper()
	ias := attest.NewService()
	ias.RegisterPlatform(f.quoter.PlatformID(), f.quoter.AttestationKey())
	pub, err := NewPublisher(ias, r.Identity())
	if err != nil {
		f.t.Fatal(err)
	}
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.handleConn(server)
	}()
	f.t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
		<-done
	})
	if err := pub.ConnectRouter(bg, client); err != nil {
		f.t.Fatal(err)
	}
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		raw := encodeSpec(f.t, halSpec(float64(40+i)))
		encSK, err := scrypto.Seal(pubSK(pub), raw)
		if err != nil {
			f.t.Fatal(err)
		}
		sig, err := scrypto.Sign(pubKeys(pub), signedRegistration(encSK, "alice"))
		if err != nil {
			f.t.Fatal(err)
		}
		reply, err := pub.routerRequest("", &Message{Type: TypeRegister, ClientID: "alice", Blob: encSK, Sig: sig})
		if err != nil {
			f.t.Fatal(err)
		}
		if err := expect(reply, TypeRegisterOK); err != nil {
			f.t.Fatal(err)
		}
		ids = append(ids, reply.SubID)
	}
	return pub, ids
}

func TestSealRestoreRoundTrip(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	_, ids := f.populate(r1, 5)
	if len(ids) != 5 {
		t.Fatalf("ids = %v", ids)
	}
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh router process on the same machine with the
	// same measured image. No re-attestation needed.
	r2 := f.newRouter()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	st := r2.Engine().Stats()
	if st.Subscriptions != 5 {
		t.Fatalf("restored %d subscriptions, want 5", st.Subscriptions)
	}
	// The restored router matches with the original subscription IDs.
	ev := eventFromSpec(t, r2, halQuote(40.5))
	matches, err := r2.Engine().Match(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("restored router matches nothing")
	}
	for _, m := range matches {
		found := false
		for _, id := range ids {
			if m.SubID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("restored subscription ID %d was never issued (%v)", m.SubID, ids)
		}
	}
}

func TestRestoreRejectsRollback(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	f.populate(r1, 2)
	stale, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	// Seal again (e.g. after more registrations): the counter advances
	// and the first snapshot becomes stale.
	fresh, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.newRouter()
	if err := r2.RestoreState(stale); !errors.Is(err, ErrStateRollback) {
		t.Fatalf("stale snapshot accepted: %v", err)
	}
	r3 := f.newRouter()
	if err := r3.RestoreState(fresh); err != nil {
		t.Fatalf("fresh snapshot rejected: %v", err)
	}
}

func TestRestoreRejectsDifferentImage(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	f.populate(r1, 1)
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewRouter(f.dev, f.quoter, RouterConfig{
		EnclaveImage:  []byte("DIFFERENT router image"),
		EnclaveSigner: f.signer.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("different enclave image unsealed foreign state")
	}
}

func TestRestoreRequiresFreshRouter(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	f.populate(r1, 1)
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.RestoreState(blob); err == nil {
		t.Fatal("restore onto a provisioned router succeeded")
	}
}

func TestSealRequiresProvisioning(t *testing.T) {
	f := newRestartFixture(t)
	r := f.newRouter()
	if _, err := r.SealState(); err == nil {
		t.Fatal("sealed an unprovisioned router")
	}
}

// Helpers bridging test access to publisher internals.

func pubSK(p *Publisher) *scrypto.SymmetricKey { return p.sk }
func pubKeys(p *Publisher) *scrypto.KeyPair    { return p.keys }

func encodeSpec(t *testing.T, spec pubsub.SubscriptionSpec) []byte {
	t.Helper()
	raw, err := pubsub.EncodeSubscriptionSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func eventFromSpec(t *testing.T, r *Router, spec pubsub.EventSpec) *pubsub.Event {
	t.Helper()
	ev, err := spec.Intern(r.Engine().Schema())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestRestartEndToEnd exercises the full §2 restart story over live
// connections: a provisioned, populated router seals its state and
// "crashes"; a fresh router process restores the snapshot without
// re-attestation; clients reconnect their delivery channels and keep
// receiving under their original subscription IDs.
func TestRestartEndToEnd(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		_ = r1.Serve(bg, ln1)
	}()

	ias := attest.NewService()
	ias.RegisterPlatform(f.quoter.PlatformID(), f.quoter.AttestationKey())
	pub, err := NewPublisher(ias, r1.Identity())
	if err != nil {
		t.Fatal(err)
	}
	conn1, err := net.Dial("tcp", ln1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ConnectRouter(bg, conn1); err != nil {
		t.Fatal(err)
	}

	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// The accept loop only exits once the listener closes, so the
	// listener must close before the wait (defers run LIFO).
	defer func() {
		_ = pubLn.Close()
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := pubLn.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				pub.ServeClient(bg, c)
			}()
		}
	}()

	alice, err := NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	pc, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	alice.ConnectPublisher(pc, pub.PublicKey())
	lc1, err := net.Dial("tcp", ln1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rx1, err := alice.Listen(lc1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(bg, halQuote(42), []byte("before restart")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, rx1); d.Err != nil || string(d.Payload) != "before restart" {
		t.Fatalf("pre-restart delivery = %+v", d)
	}

	// Seal, crash, restore on a new port.
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	<-done1

	r2 := f.newRouter()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		_ = r2.Serve(bg, ln2)
	}()
	t.Cleanup(func() {
		r2.Close()
		<-done2
	})

	// The publisher reconnects its data path. No provisioning round:
	// the restored enclave already holds SK, so publications flow
	// directly.
	conn2, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pub.mu.Lock()
	pub.routerConn = conn2
	pub.mu.Unlock()

	// Alice re-binds her delivery channel on the new router.
	lc2, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rx2, err := alice.Listen(lc2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(bg, halQuote(43), []byte("after restart")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, rx2); d.Err != nil || string(d.Payload) != "after restart" {
		t.Fatalf("post-restart delivery = %+v", d)
	}
}

// TestRestoreSeedsDeliveryCursors: per-client delivery cursors ride
// the sealed snapshot, so a client resuming against the restored
// router continues the same numbering — with the deliveries matched
// before the restart accounted as an explicit gap (the replay rings
// are not sealed).
func TestRestoreSeedsDeliveryCursors(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	defer r1.Close()
	f.populate(r1, 2)

	// Bind carol's delivery channel and run three deliveries through
	// the table, of which carol processes only the first two.
	server, client := net.Pipe()
	if err := r1.delivery.attach("carol", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	for i := 1; i <= 3; i++ {
		r1.delivery.enqueue("carol", &Message{Type: TypeDeliver, Payload: []byte{byte(i)}})
	}
	for i := 1; i <= 2; i++ {
		if m := mustRecv(t, client); m.Cursor != uint64(i) {
			t.Fatalf("cursor %d, want %d", m.Cursor, i)
		}
	}
	_ = client.Close()

	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.newRouter()
	defer r2.Close()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}

	// Carol resumes at cursor 2 against the restored router: the
	// numbering continues at 3, and the one delivery she missed across
	// the restart is reported as an unrecoverable gap, not silence.
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := r2.delivery.attach("carol", server2, &Message{Type: TypeListenOK}, 2, true); err != nil {
		t.Fatal(err)
	}
	hello := mustRecv(t, client2)
	if hello.Cursor != 3 || hello.Gap != 1 {
		t.Fatalf("post-restore resume = cursor %d gap %d, want cursor 3 gap 1", hello.Cursor, hello.Gap)
	}
	// New deliveries continue the sealed numbering.
	r2.delivery.enqueue("carol", &Message{Type: TypeDeliver, Payload: []byte{4}})
	if m := mustRecv(t, client2); m.Cursor != 4 {
		t.Fatalf("post-restore delivery cursor = %d, want 4", m.Cursor)
	}
}
