package broker

import (
	"fmt"
	"net"
	"testing"

	"scbr/internal/pubsub"
)

func newSwitchlessSystem(t *testing.T) *testSystem {
	t.Helper()
	return newTestSystemCfg(t, func(cfg *RouterConfig) { cfg.Switchless = true })
}

func TestSwitchlessEndToEnd(t *testing.T) {
	sys := newSwitchlessSystem(t)
	alice, aliceRx := sys.attach("alice")
	_, bobRx := sys.attach("bob")

	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("HAL @ 42")); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, aliceRx)
	if d.Err != nil || string(d.Payload) != "HAL @ 42" {
		t.Fatalf("delivery = %+v", d)
	}
	expectNoDelivery(t, bobRx)
	if err := sys.publisher.Publish(bg, halQuote(60), []byte("HAL @ 60")); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
}

func TestSwitchlessOrderedBurst(t *testing.T) {
	sys := newSwitchlessSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	// A burst larger than the ring capacity (128) exercises
	// backpressure on the producer side; deliveries must arrive
	// complete and in order.
	const n = 500
	for i := 0; i < n; i++ {
		if err := sys.publisher.Publish(bg, halQuote(42), []byte(fmt.Sprintf("q%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d := recvDelivery(t, aliceRx)
		if d.Err != nil {
			t.Fatal(d.Err)
		}
		if want := fmt.Sprintf("q%04d", i); string(d.Payload) != want {
			t.Fatalf("delivery %d = %q, want %q", i, d.Payload, want)
		}
	}
}

func TestSwitchlessPublicationsUseNoPerMessageTransitions(t *testing.T) {
	sys := newSwitchlessSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	// Warm the path so the worker's one-time entry transition has been
	// charged before the measured window.
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	recvDelivery(t, aliceRx)

	before := sys.router.MeterSnapshot().Transitions
	const n = 50
	for i := 0; i < n; i++ {
		if err := sys.publisher.Publish(bg, halQuote(42), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if d := recvDelivery(t, aliceRx); d.Err != nil {
			t.Fatal(d.Err)
		}
	}
	if got := sys.router.MeterSnapshot().Transitions - before; got != 0 {
		t.Fatalf("switchless publications charged %d transitions, want 0", got)
	}
}

func TestSwitchlessTamperedPublicationDropped(t *testing.T) {
	sys := newSwitchlessSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	// A plaintext (unauthenticated) header fails MAC verification
	// inside the enclave worker and is dropped without wedging the
	// ring.
	raw, err := pubsub.EncodeEventSpec(halQuote(42))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, &Message{Type: TypePublish, Blob: raw, Payload: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("real")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); d.Err != nil || string(d.Payload) != "real" {
		t.Fatalf("delivery = %+v", d)
	}
}

// TestSwitchlessSealRestore: sealed-state restart works identically
// when both routers run the switchless publication path (the
// publication ring is transient state and is rebuilt on restart).
func TestSwitchlessSealRestore(t *testing.T) {
	f := newRestartFixture(t)
	f.cfg.Switchless = true
	r1 := f.newRouter()
	defer r1.Close()
	_, ids := f.populate(r1, 5)
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.newRouter()
	defer r2.Close()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if st := r2.Engine().Stats(); st.Subscriptions != len(ids) {
		t.Fatalf("restored %d subscriptions, want %d", st.Subscriptions, len(ids))
	}
}

func TestSwitchlessUnsubscribeStopsDeliveries(t *testing.T) {
	sys := newSwitchlessSystem(t)
	alice, aliceRx := sys.attach("alice")
	sub, err := alice.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); string(d.Payload) != "one" {
		t.Fatalf("delivery = %+v", d)
	}
	if err := alice.Unsubscribe(bg, sub.ID()); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("two")); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
}
