package broker

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scbr/internal/pubsub"
)

// dataPlaneModes runs a subtest per publication path of the
// partitioned data plane.
func dataPlaneModes(t *testing.T, partitions int, body func(t *testing.T, sys *testSystem)) {
	t.Helper()
	for _, tc := range []struct {
		name   string
		mutate func(cfg *RouterConfig)
	}{
		{"ecall", func(cfg *RouterConfig) { cfg.Partitions = partitions }},
		{"switchless", func(cfg *RouterConfig) {
			cfg.Partitions = partitions
			cfg.Switchless = true
			cfg.RingCapacity = 64
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body(t, newTestSystemCfg(t, tc.mutate))
		})
	}
}

// subscribeOnly registers a subscription for id without binding a
// delivery channel.
func subscribeOnly(t *testing.T, sys *testSystem, id string, spec pubsub.SubscriptionSpec) {
	t.Helper()
	c, err := NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	pubConn, err := net.Dial("tcp", sys.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pubConn, sys.publisher.PublicKey())
	if _, err := c.Subscribe(bg, spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
}

// stalledListener binds conn as id's delivery channel and then never
// reads it again: the router-side writer eventually blocks on the
// socket and the queue backs up — the deliberately misbehaving
// consumer of the slow-consumer tests.
func stalledListener(t *testing.T, sys *testSystem, id string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := Send(conn, &Message{Type: TypeListen, ClientID: id}); err != nil {
		t.Fatal(err)
	}
	ack, err := Recv(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := expect(ack, TypeListenOK); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestPartitionedEndToEnd exercises correctness across slices: a
// client whose subscriptions hash to different partitions still gets
// exactly one deduplicated delivery naming all matched subscriptions,
// and non-matching clients stay silent.
func TestPartitionedEndToEnd(t *testing.T) {
	dataPlaneModes(t, 4, func(t *testing.T, sys *testSystem) {
		alice, aliceRx := sys.attach("alice")
		_, bobRx := sys.attach("bob")
		subA, err := alice.Subscribe(bg, halSpec(50))
		if err != nil {
			t.Fatal(err)
		}
		subB, err := alice.Subscribe(bg, halSpec(100))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.publisher.Publish(bg, halQuote(42), []byte("both match")); err != nil {
			t.Fatal(err)
		}
		d := recvDelivery(t, aliceRx)
		if d.Err != nil || string(d.Payload) != "both match" {
			t.Fatalf("delivery = %+v", d)
		}
		if len(d.SubIDs) != 2 {
			t.Fatalf("delivery names %v, want both of [%d %d]", d.SubIDs, subA.ID(), subB.ID())
		}
		// However many slices matched, the client hears once.
		expectNoDelivery(t, aliceRx)
		expectNoDelivery(t, bobRx)
		if st := sys.router.DataPlaneStats(); st.Partitions != 4 || st.Subscriptions != 2 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// TestStalledListenerDoesNotBlockOthers is the delivery-layer
// guarantee: a listener that stops reading its socket — while holding
// a subscription that matches everything — must neither delay
// deliveries to healthy clients nor stall publishers. The tiny
// delivery queue forces the slow-consumer policy to trip.
func TestStalledListenerDoesNotBlockOthers(t *testing.T) {
	dataPlaneModes(t, 2, func(t *testing.T, sys *testSystem) {
		const (
			numPublish = 100
			payloadLen = 64 << 10 // overwhelm socket buffering so the stall is real
		)
		alice, aliceRx := sys.attach("alice")
		if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
			t.Fatal(err)
		}
		subscribeOnly(t, sys, "mallory", halSpec(50))
		stalled := stalledListener(t, sys, "mallory")
		_ = stalled

		received := make(chan struct{})
		go func() {
			for i := 0; i < numPublish; i++ {
				d := <-aliceRx
				if d.Err != nil {
					t.Errorf("delivery %d: %v", i, d.Err)
					return
				}
			}
			close(received)
		}()

		payload := make([]byte, payloadLen)
		start := time.Now()
		for i := 0; i < numPublish; i++ {
			pubStart := time.Now()
			if err := sys.publisher.Publish(bg, halQuote(42), payload); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(pubStart); d > 2*time.Second {
				t.Fatalf("publish %d stalled for %v behind a blocked listener", i, d)
			}
		}
		select {
		case <-received:
		case <-time.After(20 * time.Second):
			t.Fatalf("healthy client starved behind a stalled listener (waited %v)", time.Since(start))
		}
	})
}

// TestStalledListenerDisconnected checks the OverflowDisconnect
// policy: once the stalled client's bounded queue overflows, the
// router cuts the connection instead of buffering without limit.
func TestStalledListenerDisconnected(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.DeliveryQueueLen = 4
		cfg.OverflowPolicy = OverflowDisconnect
	})
	subscribeOnly(t, sys, "mallory", halSpec(50))
	stalled := stalledListener(t, sys, "mallory")
	payload := make([]byte, 64<<10)
	for i := 0; i < 64; i++ {
		if err := sys.publisher.Publish(bg, halQuote(42), payload); err != nil {
			t.Fatal(err)
		}
	}
	// The router must close mallory's connection; draining it observes
	// the EOF once the in-flight frames are consumed.
	_ = stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(buf); err != nil {
			return // disconnected: policy enforced
		}
	}
}

// TestConcurrentDataPlaneStress runs the whole data plane at once
// under the race detector: parallel publishers, registration and
// removal churn, and a stalled listener, all against a partitioned
// router. The healthy subscriber must receive every publication.
func TestConcurrentDataPlaneStress(t *testing.T) {
	dataPlaneModes(t, 3, func(t *testing.T, sys *testSystem) {
		const (
			numPublish    = 120
			numPublishers = 2
			churnRounds   = 30
		)
		alice, aliceRx := sys.attach("alice")
		if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
			t.Fatal(err)
		}
		// bob churns registrations while his deliveries are drained and
		// discarded; mallory holds a matching subscription on a stalled
		// delivery socket.
		bob, bobRx := sys.attach("bob")
		go func() {
			for range bobRx {
			}
		}()
		subscribeOnly(t, sys, "mallory", halSpec(50))
		_ = stalledListener(t, sys, "mallory")

		var got atomic.Int64
		received := make(chan struct{})
		go func() {
			for d := range aliceRx {
				if d.Err != nil {
					t.Errorf("alice delivery: %v", d.Err)
					return
				}
				if got.Add(1) == numPublish*numPublishers {
					close(received)
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < numPublishers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < numPublish; i++ {
					if err := sys.publisher.Publish(bg, halQuote(42), []byte(fmt.Sprintf("p%d-%d", w, i))); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churnRounds; i++ {
				sub, err := bob.Subscribe(bg, halSpec(60+float64(i)))
				if err != nil {
					t.Errorf("churn subscribe: %v", err)
					return
				}
				if err := bob.Unsubscribe(bg, sub.ID()); err != nil {
					t.Errorf("churn unsubscribe: %v", err)
					return
				}
			}
		}()
		wg.Wait()
		select {
		case <-received:
		case <-time.After(30 * time.Second):
			t.Fatalf("alice received %d of %d publications", got.Load(), numPublish*numPublishers)
		}
		if st := sys.router.DataPlaneStats(); st.Subscriptions != 2 {
			t.Fatalf("after churn, %d subscriptions remain, want 2 (alice + mallory): %+v", st.Subscriptions, st)
		}
	})
}

// resumableClient wires a client for cursor-resumable delivery: a
// publisher connection, a subscription, and a delivery connection
// bound through Resume so the Subscription handle survives reconnects.
func resumableClient(t *testing.T, sys *testSystem, id string) (*Client, *Subscription, net.Conn) {
	t.Helper()
	c, err := NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	pubConn, err := net.Dial("tcp", sys.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pubConn, sys.publisher.PublicKey())
	sub, err := c.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume(bg, conn); err != nil {
		t.Fatal(err)
	}
	return c, sub, conn
}

// TestReconnectZeroLossUnderDropOldest is the at-least-once stress
// for the detached window: the subscriber's connection is killed
// mid-burst under the default DropOldest policy, a whole second wave
// of publications matches while it is away, and yet every matched
// publication arrives exactly once, in order — the replay ring covers
// the outage and the resume cursor dedupes the overlap. (Live-queue
// overflow and the client-side jump-sever recovery are covered by the
// delivery_test.go unit tests.)
func TestReconnectZeroLossUnderDropOldest(t *testing.T) {
	for _, switchless := range []bool{false, true} {
		name := "ecall"
		if switchless {
			name = "switchless"
		}
		t.Run(name, func(t *testing.T) {
			sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
				cfg.Partitions = 2
				cfg.Switchless = switchless
				cfg.ReplayRingLen = 4096
				cfg.OverflowPolicy = OverflowDropOldest
			})
			const (
				wave1 = 100
				total = 200
			)
			alice, sub, conn := resumableClient(t, sys, "alice")

			// The publisher sends wave 1, then holds wave 2 until the
			// subscriber's delivery connection is provably dead — so wave
			// 2's frames are enqueued while the client is away and can
			// only reach it through the resume replay.
			outage := make(chan struct{})
			pubErr := make(chan error, 1)
			go func() {
				for i := 0; i < wave1; i++ {
					if err := sys.publisher.Publish(bg, halQuote(42), []byte(fmt.Sprintf("%04d", i))); err != nil {
						pubErr <- err
						return
					}
				}
				<-outage
				for i := wave1; i < total; i++ {
					if err := sys.publisher.Publish(bg, halQuote(42), []byte(fmt.Sprintf("%04d", i))); err != nil {
						pubErr <- err
						return
					}
				}
				pubErr <- nil
			}()

			done := make(chan error, 1)
			go func() {
				next := 0
				for next < total {
					d, err := sub.Next(bg)
					if err != nil {
						done <- fmt.Errorf("delivery %d: %w", next, err)
						return
					}
					if d.Err != nil {
						done <- fmt.Errorf("delivery %d: %w", next, d.Err)
						return
					}
					if got := string(d.Payload); got != fmt.Sprintf("%04d", next) {
						done <- fmt.Errorf("delivery %d out of order, duplicated, or lost: %q", next, got)
						return
					}
					next++
					if next == 25 {
						// Kill the delivery connection mid-burst; release
						// wave 2 only once the pump is dead, and resume only
						// once part of it is already enqueued router-side.
						_ = conn.Close()
						<-alice.DeliveryDone()
						close(outage)
						for sys.router.DeliverySnapshot().Enqueued <= wave1 {
							time.Sleep(time.Millisecond)
						}
						nc, err := net.Dial("tcp", sys.routerLn.Addr().String())
						if err != nil {
							done <- err
							return
						}
						gap, err := alice.Resume(bg, nc)
						if err != nil {
							done <- err
							return
						}
						if gap != 0 {
							done <- fmt.Errorf("resume at delivery %d lost %d frames beyond the ring", next, gap)
							return
						}
						conn = nc
					}
				}
				done <- nil
			}()

			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("subscriber never received the full stream")
			}
			if err := <-pubErr; err != nil {
				t.Fatal(err)
			}
			// The reconnect was a real recovery: wave-2 frames enqueued
			// while the client was away came back from the ring.
			if got := sys.router.DeliverySnapshot(); got.DeliveriesReplayed == 0 {
				t.Fatalf("the reconnect replayed nothing: %+v", got)
			}
		})
	}
}

// TestReconnectGapReportedUnderDisconnect: under the legacy Disconnect
// policy with a replay ring smaller than the backlog, loss is not
// silent — the resume ack reports exactly how many deliveries fell off
// the ring, and the retained tail replays contiguously.
func TestReconnectGapReportedUnderDisconnect(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.DeliveryQueueLen = 4
		cfg.ReplayRingLen = 8
		cfg.OverflowPolicy = OverflowDisconnect
	})
	subscribeOnly(t, sys, "mallory", halSpec(50))
	stalled := stalledListener(t, sys, "mallory")
	const total = 64
	payload := make([]byte, 64<<10)
	for i := 0; i < total; i++ {
		if err := sys.publisher.Publish(bg, halQuote(42), payload); err != nil {
			t.Fatal(err)
		}
	}
	// The stalled listener must have been cut by the policy, and every
	// publication accounted a cursor, before the resume is judged.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := sys.router.DeliverySnapshot()
		if c.SlowConsumerDisconnects > 0 && c.Enqueued == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow-consumer policy never tripped: %+v", c)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = stalled.Close()

	// Resume from scratch: the ack must account for every one of the
	// total deliveries as either gap (evicted) or replay (retained).
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, &Message{Type: TypeListen, ClientID: "mallory", Cursor: 0, Resume: true}); err != nil {
		t.Fatal(err)
	}
	hello := mustRecv(t, conn)
	if err := expect(hello, TypeListenOK); err != nil {
		t.Fatal(err)
	}
	if hello.Cursor != total {
		t.Fatalf("resume cursor = %d, want %d", hello.Cursor, total)
	}
	if hello.Gap == 0 || hello.Gap != total-8 {
		t.Fatalf("resume gap = %d, want %d (ring bound 8)", hello.Gap, total-8)
	}
	for want := uint64(total - 8 + 1); want <= total; want++ {
		m := mustRecv(t, conn)
		if m.Type != TypeDeliver || m.Cursor != want {
			t.Fatalf("replayed frame = %+v, want cursor %d", m, want)
		}
	}
	if got := sys.router.DeliverySnapshot(); got.DeliveriesReplayed != 8 || got.ReplayGapTotal != total-8 {
		t.Fatalf("delivery counters = %+v", got)
	}
}

// TestPartitionedSealRestore: seal/restore round-trips a partitioned
// database, landing every subscription back on the slice that issued
// its ID.
func TestPartitionedSealRestore(t *testing.T) {
	f := newRestartFixture(t)
	f.cfg.Partitions = 3
	r1 := f.newRouter()
	defer r1.Close()
	_, ids := f.populate(r1, 12)
	before := r1.DataPlaneStats()
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.newRouter()
	defer r2.Close()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	after := r2.DataPlaneStats()
	if after.Subscriptions != len(ids) {
		t.Fatalf("restored %d subscriptions, want %d", after.Subscriptions, len(ids))
	}
	for i, n := range after.PerPartition {
		if n != before.PerPartition[i] {
			t.Fatalf("slice loads changed across restore: %v → %v", before.PerPartition, after.PerPartition)
		}
	}
}

// TestResumeRebaselinesAfterRouterStateLoss: a client resuming against
// a router that knows nothing of its cursor (state lost, or re-homed)
// must not filter the fresh stream as replay overlap — the regressed
// ack cursor rebaselines the client, and deliveries flow again.
func TestResumeRebaselinesAfterRouterStateLoss(t *testing.T) {
	sys1 := newTestSystemCfg(t, nil)
	alice, sub1, conn := resumableClient(t, sys1, "alice")
	if err := sys1.publisher.Publish(bg, halQuote(42), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if d := recvSub(t, sub1); string(d.Payload) != "before" {
		t.Fatalf("delivery = %+v", d)
	}
	if alice.LastCursor() == 0 {
		t.Fatal("no cursor observed before the loss")
	}
	_ = conn.Close()
	<-alice.DeliveryDone()

	// A second, independent router stands in for total state loss.
	sys2 := newTestSystemCfg(t, nil)
	pubConn, err := net.Dial("tcp", sys2.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	alice.ConnectPublisher(pubConn, sys2.publisher.PublicKey())
	sub2, err := alice.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := net.Dial("tcp", sys2.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Resume(bg, conn2); err != nil {
		t.Fatal(err)
	}
	// The new router stamps from 1 — below alice's old cursor. Without
	// rebaselining, this delivery would be silently discarded forever.
	if err := sys2.publisher.Publish(bg, halQuote(42), []byte("after")); err != nil {
		t.Fatal(err)
	}
	if d := recvSub(t, sub2); string(d.Payload) != "after" {
		t.Fatalf("post-loss delivery = %+v", d)
	}
	// Close alice before the systems' cleanups run: sys2 was created
	// after her, so its teardown (which waits for its publisher serving
	// loops) would otherwise precede hers.
	alice.Close()
}

// recvSub reads one delivery from a Subscription handle with a bound.
func recvSub(t *testing.T, sub *Subscription) Delivery {
	t.Helper()
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	d, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("waiting for delivery: %v", err)
	}
	return d
}
