package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scbr/internal/pubsub"
)

// dataPlaneModes runs a subtest per publication path of the
// partitioned data plane.
func dataPlaneModes(t *testing.T, partitions int, body func(t *testing.T, sys *testSystem)) {
	t.Helper()
	for _, tc := range []struct {
		name   string
		mutate func(cfg *RouterConfig)
	}{
		{"ecall", func(cfg *RouterConfig) { cfg.Partitions = partitions }},
		{"switchless", func(cfg *RouterConfig) {
			cfg.Partitions = partitions
			cfg.Switchless = true
			cfg.RingCapacity = 64
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body(t, newTestSystemCfg(t, tc.mutate))
		})
	}
}

// subscribeOnly registers a subscription for id without binding a
// delivery channel.
func subscribeOnly(t *testing.T, sys *testSystem, id string, spec pubsub.SubscriptionSpec) {
	t.Helper()
	c, err := NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	pubConn, err := net.Dial("tcp", sys.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pubConn, sys.publisher.PublicKey())
	if _, err := c.Subscribe(bg, spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
}

// stalledListener binds conn as id's delivery channel and then never
// reads it again: the router-side writer eventually blocks on the
// socket and the queue backs up — the deliberately misbehaving
// consumer of the slow-consumer tests.
func stalledListener(t *testing.T, sys *testSystem, id string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := Send(conn, &Message{Type: TypeListen, ClientID: id}); err != nil {
		t.Fatal(err)
	}
	ack, err := Recv(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := expect(ack, TypeListenOK); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestPartitionedEndToEnd exercises correctness across slices: a
// client whose subscriptions hash to different partitions still gets
// exactly one deduplicated delivery naming all matched subscriptions,
// and non-matching clients stay silent.
func TestPartitionedEndToEnd(t *testing.T) {
	dataPlaneModes(t, 4, func(t *testing.T, sys *testSystem) {
		alice, aliceRx := sys.attach("alice")
		_, bobRx := sys.attach("bob")
		subA, err := alice.Subscribe(bg, halSpec(50))
		if err != nil {
			t.Fatal(err)
		}
		subB, err := alice.Subscribe(bg, halSpec(100))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.publisher.Publish(bg, halQuote(42), []byte("both match")); err != nil {
			t.Fatal(err)
		}
		d := recvDelivery(t, aliceRx)
		if d.Err != nil || string(d.Payload) != "both match" {
			t.Fatalf("delivery = %+v", d)
		}
		if len(d.SubIDs) != 2 {
			t.Fatalf("delivery names %v, want both of [%d %d]", d.SubIDs, subA.ID(), subB.ID())
		}
		// However many slices matched, the client hears once.
		expectNoDelivery(t, aliceRx)
		expectNoDelivery(t, bobRx)
		if st := sys.router.DataPlaneStats(); st.Partitions != 4 || st.Subscriptions != 2 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// TestStalledListenerDoesNotBlockOthers is the delivery-layer
// guarantee: a listener that stops reading its socket — while holding
// a subscription that matches everything — must neither delay
// deliveries to healthy clients nor stall publishers. The tiny
// delivery queue forces the slow-consumer policy to trip.
func TestStalledListenerDoesNotBlockOthers(t *testing.T) {
	dataPlaneModes(t, 2, func(t *testing.T, sys *testSystem) {
		const (
			numPublish = 100
			payloadLen = 64 << 10 // overwhelm socket buffering so the stall is real
		)
		alice, aliceRx := sys.attach("alice")
		if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
			t.Fatal(err)
		}
		subscribeOnly(t, sys, "mallory", halSpec(50))
		stalled := stalledListener(t, sys, "mallory")
		_ = stalled

		received := make(chan struct{})
		go func() {
			for i := 0; i < numPublish; i++ {
				d := <-aliceRx
				if d.Err != nil {
					t.Errorf("delivery %d: %v", i, d.Err)
					return
				}
			}
			close(received)
		}()

		payload := make([]byte, payloadLen)
		start := time.Now()
		for i := 0; i < numPublish; i++ {
			pubStart := time.Now()
			if err := sys.publisher.Publish(bg, halQuote(42), payload); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(pubStart); d > 2*time.Second {
				t.Fatalf("publish %d stalled for %v behind a blocked listener", i, d)
			}
		}
		select {
		case <-received:
		case <-time.After(20 * time.Second):
			t.Fatalf("healthy client starved behind a stalled listener (waited %v)", time.Since(start))
		}
	})
}

// TestStalledListenerDisconnected checks the slow-consumer policy
// itself: once the stalled client's bounded queue overflows, the
// router cuts the connection instead of buffering without limit.
func TestStalledListenerDisconnected(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.DeliveryQueueLen = 4
	})
	subscribeOnly(t, sys, "mallory", halSpec(50))
	stalled := stalledListener(t, sys, "mallory")
	payload := make([]byte, 64<<10)
	for i := 0; i < 64; i++ {
		if err := sys.publisher.Publish(bg, halQuote(42), payload); err != nil {
			t.Fatal(err)
		}
	}
	// The router must close mallory's connection; draining it observes
	// the EOF once the in-flight frames are consumed.
	_ = stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(buf); err != nil {
			return // disconnected: policy enforced
		}
	}
}

// TestConcurrentDataPlaneStress runs the whole data plane at once
// under the race detector: parallel publishers, registration and
// removal churn, and a stalled listener, all against a partitioned
// router. The healthy subscriber must receive every publication.
func TestConcurrentDataPlaneStress(t *testing.T) {
	dataPlaneModes(t, 3, func(t *testing.T, sys *testSystem) {
		const (
			numPublish    = 120
			numPublishers = 2
			churnRounds   = 30
		)
		alice, aliceRx := sys.attach("alice")
		if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
			t.Fatal(err)
		}
		// bob churns registrations while his deliveries are drained and
		// discarded; mallory holds a matching subscription on a stalled
		// delivery socket.
		bob, bobRx := sys.attach("bob")
		go func() {
			for range bobRx {
			}
		}()
		subscribeOnly(t, sys, "mallory", halSpec(50))
		_ = stalledListener(t, sys, "mallory")

		var got atomic.Int64
		received := make(chan struct{})
		go func() {
			for d := range aliceRx {
				if d.Err != nil {
					t.Errorf("alice delivery: %v", d.Err)
					return
				}
				if got.Add(1) == numPublish*numPublishers {
					close(received)
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < numPublishers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < numPublish; i++ {
					if err := sys.publisher.Publish(bg, halQuote(42), []byte(fmt.Sprintf("p%d-%d", w, i))); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churnRounds; i++ {
				sub, err := bob.Subscribe(bg, halSpec(60+float64(i)))
				if err != nil {
					t.Errorf("churn subscribe: %v", err)
					return
				}
				if err := bob.Unsubscribe(bg, sub.ID()); err != nil {
					t.Errorf("churn unsubscribe: %v", err)
					return
				}
			}
		}()
		wg.Wait()
		select {
		case <-received:
		case <-time.After(30 * time.Second):
			t.Fatalf("alice received %d of %d publications", got.Load(), numPublish*numPublishers)
		}
		if st := sys.router.DataPlaneStats(); st.Subscriptions != 2 {
			t.Fatalf("after churn, %d subscriptions remain, want 2 (alice + mallory): %+v", st.Subscriptions, st)
		}
	})
}

// TestPartitionedSealRestore: seal/restore round-trips a partitioned
// database, landing every subscription back on the slice that issued
// its ID.
func TestPartitionedSealRestore(t *testing.T) {
	f := newRestartFixture(t)
	f.cfg.Partitions = 3
	r1 := f.newRouter()
	defer r1.Close()
	_, ids := f.populate(r1, 12)
	before := r1.DataPlaneStats()
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := f.newRouter()
	defer r2.Close()
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	after := r2.DataPlaneStats()
	if after.Subscriptions != len(ids) {
		t.Fatalf("restored %d subscriptions, want %d", after.Subscriptions, len(ids))
	}
	for i, n := range after.PerPartition {
		if n != before.PerPartition[i] {
			t.Fatalf("slice loads changed across restore: %v → %v", before.PerPartition, after.PerPartition)
		}
	}
}
