package broker

import (
	"testing"

	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

func TestSliceEPCShare(t *testing.T) {
	cases := []struct {
		name  string
		total uint64
		k     int
		want  uint64
	}{
		// Page-divisible split: unchanged from plain division.
		{"divisible", 93 << 20, 4, 24379392},
		// The truncating split used to hand each of 4 slices a single
		// 5120-byte (sub-2-page) share of 5 pages, losing the remainder;
		// the ceil split rounds each share up to 2 whole pages.
		{"small budget", 5 * simmem.PageSize, 4, 2 * simmem.PageSize},
		// A 3-byte remainder bumps every share a full page rather than
		// vanishing.
		{"remainder", 93<<20 + 3, 4, 24383488},
		// A share can never drop below one page, however many slices.
		{"floor", simmem.PageSize, 8, simmem.PageSize},
		// Zero means the paper's default EPC; k<1 is treated as 1.
		{"defaults", 0, 0, sgx.DefaultEPCBytes},
	}
	for _, c := range cases {
		if got := SliceEPCShare(c.total, c.k); got != c.want {
			t.Errorf("%s: SliceEPCShare(%d, %d) = %d, want %d", c.name, c.total, c.k, got, c.want)
		}
	}

	// Fleet coverage: for any budget and slice count, k equal shares
	// must cover the whole budget (the truncating split violated this),
	// and every share is whole pages.
	for _, total := range []uint64{1, 4097, 1 << 20, 93 << 20, 93<<20 + 1} {
		for k := 1; k <= 9; k++ {
			share := SliceEPCShare(total, k)
			if uint64(k)*share < total {
				t.Errorf("SliceEPCShare(%d, %d) = %d: fleet covers %d < budget", total, k, share, uint64(k)*share)
			}
			if share%simmem.PageSize != 0 {
				t.Errorf("SliceEPCShare(%d, %d) = %d: not page-aligned", total, k, share)
			}
		}
	}
}

func TestSliceFootprints(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.EPCBytes = 1 << 20
	})
	alice, _ := sys.attach("alice")
	for i := 0; i < 8; i++ {
		if _, err := alice.Subscribe(bg, halSpec(float64(40+i))); err != nil {
			t.Fatal(err)
		}
	}

	fps := sys.router.SliceFootprints()
	if len(fps) != 2 {
		t.Fatalf("footprints for %d slices, want 2", len(fps))
	}
	wantBudget := SliceEPCShare(1<<20, 2)
	var subs int
	var accounted uint64
	for _, fp := range fps {
		subs += fp.Subscriptions
		accounted += fp.AccountedBytes
		if fp.EPCBudget != wantBudget {
			t.Errorf("slice %d budget %d, want %d", fp.Partition, fp.EPCBudget, wantBudget)
		}
		if !fp.ResidencyTracked {
			t.Errorf("slice %d residency untracked (enclave slices page through the EPC model)", fp.Partition)
		}
		if fp.PeakResidentBytes < fp.ResidentBytes {
			t.Errorf("slice %d peak %d below resident %d", fp.Partition, fp.PeakResidentBytes, fp.ResidentBytes)
		}
		if fp.Subscriptions > 0 && fp.StoreBytes == 0 {
			t.Errorf("slice %d holds %d subscriptions in 0 store bytes", fp.Partition, fp.Subscriptions)
		}
	}
	if subs != 8 {
		t.Fatalf("footprints count %d subscriptions, want 8", subs)
	}
	if accounted == 0 {
		t.Fatal("no bytes accounted for 8 subscriptions (entry cost not wired)")
	}
}
