package broker

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"scbr/internal/attest"
	"scbr/internal/core"
)

// Sentinel errors of the broker protocol. Every exported failure path
// of the Router, Publisher, and Client wraps one of these (or one of
// the attest/core sentinels), so callers select on failure classes
// with errors.Is instead of matching message strings. The wire
// protocol carries a machine-readable code alongside the human
// message, so the taxonomy survives a network hop: a revoked client
// sees errors.Is(err, ErrRevokedClient) even though the refusal was
// produced by the remote publisher.
var (
	// ErrClosed reports an operation on a closed router, client, or
	// subscription handle.
	ErrClosed = errors.New("broker: closed")
	// ErrNotProvisioned reports router operations before a publisher
	// has attested the enclave and provisioned SK.
	ErrNotProvisioned = errors.New("broker: router not provisioned")
	// ErrNotConnected reports client/publisher operations before the
	// corresponding connection was established.
	ErrNotConnected = errors.New("broker: not connected")
	// ErrAttestationFailed wraps any failure of the remote attestation
	// handshake (bad quote, wrong identity, debug enclave, broken
	// channel binding). The underlying attest sentinel stays in the
	// chain, so errors.Is(err, attest.ErrWrongIdentity) still works.
	ErrAttestationFailed = errors.New("broker: attestation failed")
	// ErrNotOwner reports an attempt to remove a subscription owned by
	// a different client.
	ErrNotOwner = errors.New("broker: subscription not owned by client")
	// ErrSchemeMismatch reports a matching-scheme disagreement: a frame
	// (or a sealed state snapshot) whose blobs are encoded under a
	// different scheme than the router runs, or a provisioning attempt
	// announcing one. Matching a blob against the wrong scheme's store
	// would misinterpret the encoding, so mismatches fail fast.
	ErrSchemeMismatch = errors.New("broker: matching-scheme mismatch")
)

// ErrUnknownSubscription re-exports the engine's sentinel: operations
// naming a subscription ID the router does not hold.
var ErrUnknownSubscription = core.ErrUnknownSubscription

// Wire error codes. sendErr stamps the outgoing error message with the
// code of the first matching sentinel; errOf rebuilds an error that
// wraps the same sentinel on the receiving side.
const (
	codeClosed              = "closed"
	codeNotProvisioned      = "not-provisioned"
	codeNotConnected        = "not-connected"
	codeAttestationFailed   = "attestation-failed"
	codeNotOwner            = "not-owner"
	codeUnknownSubscription = "unknown-subscription"
	codeUnknownClient       = "unknown-client"
	codeRevokedClient       = "revoked"
	codeSchemeMismatch      = "scheme-mismatch"
)

// wireSentinels orders the code↔sentinel mapping; more specific
// classes come first so e.g. a revoked client maps to "revoked" and
// not a broader class it might also wrap.
var wireSentinels = []struct {
	code string
	err  error
}{
	{codeRevokedClient, ErrRevokedClient},
	{codeSchemeMismatch, ErrSchemeMismatch},
	{codeUnknownClient, ErrUnknownClient},
	{codeUnknownSubscription, ErrUnknownSubscription},
	{codeNotOwner, ErrNotOwner},
	{codeNotProvisioned, ErrNotProvisioned},
	{codeNotConnected, ErrNotConnected},
	{codeAttestationFailed, ErrAttestationFailed},
	{codeClosed, ErrClosed},
}

// codeFor maps an error to its wire code ("" when no sentinel of the
// taxonomy is in its chain).
func codeFor(err error) string {
	for _, s := range wireSentinels {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	if errors.Is(err, attest.ErrWrongIdentity) || errors.Is(err, attest.ErrBadQuote) ||
		errors.Is(err, attest.ErrUnknownPlatform) || errors.Is(err, attest.ErrDebugEnclave) ||
		errors.Is(err, attest.ErrChannelBinding) {
		return codeAttestationFailed
	}
	return ""
}

// sentinelFor maps a wire code back to its sentinel (nil for unknown
// or absent codes, e.g. from an older peer).
func sentinelFor(code string) error {
	for _, s := range wireSentinels {
		if s.code == code {
			return s.err
		}
	}
	return nil
}

// ctxGuard arms a watcher that severs conn if ctx is cancelled before
// release is called, which unblocks any Send/Recv in flight. It also
// maps a ctx deadline onto the connection so a blocking read respects
// it. Cancelling a request this way deliberately tears the connection
// down: on a multiplexed stream there is no safe way to abandon a
// half-finished exchange and keep the framing aligned.
func ctxGuard(ctx context.Context, conn net.Conn) (release func()) {
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	stop := make(chan struct{})
	done := ctx.Done()
	if done != nil {
		go func() {
			select {
			case <-done:
				_ = conn.Close()
			case <-stop:
			}
		}()
	}
	return func() {
		close(stop)
		_ = conn.SetDeadline(time.Time{})
	}
}

// deadlineGuard is the goroutine-free sibling of ctxGuard for the
// publish hot path: it maps a ctx deadline onto conn (bounding a
// stalled send) and returns a restore func. A bare cancellation (no
// deadline) does not interrupt an in-flight frame — callers check
// ctx.Err() before each send, so cancellation takes effect on the
// next call — which keeps fire-and-forget publishing free of per-call
// watcher goroutines.
func deadlineGuard(ctx context.Context, conn net.Conn) (release func()) {
	dl, ok := ctx.Deadline()
	if !ok {
		return func() {}
	}
	_ = conn.SetWriteDeadline(dl)
	return func() { _ = conn.SetWriteDeadline(time.Time{}) }
}

// ctxErr folds a context cancellation into an operation error: when
// the guard severed the connection, the I/O error that surfaced is the
// uninteresting symptom and ctx.Err() is the cause.
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("%w (%v)", ctx.Err(), err)
	}
	return err
}
