package broker

import (
	"strings"
	"testing"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// makeBulkSpecs builds n distinct subscriptions.
func makeBulkSpecs(n int) []pubsub.SubscriptionSpec {
	specs := make([]pubsub.SubscriptionSpec, n)
	for i := range specs {
		specs[i] = halSpec(float64(10 + i))
	}
	return specs
}

// admitTestClient registers a fresh response key for id so RegisterBulk
// passes admission without a wire Subscribe.
func admitTestClient(t *testing.T, pub *Publisher, id string) {
	t.Helper()
	keys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Registry().Admit(id, keys.Public()); err != nil {
		t.Fatal(err)
	}
}

// One batch frame registers a whole population: IDs come back in spec
// order, the data plane holds them all, and ownership supports removal.
func TestRegisterBulk(t *testing.T) {
	f := newRestartFixture(t)
	f.cfg.Partitions = 4
	r := f.newRouter()
	t.Cleanup(r.Close)
	pub, _ := f.populate(r, 0)
	admitTestClient(t, pub, "bulk")

	const n = 50
	ids, err := pub.RegisterBulk(bg, "bulk", "", makeBulkSpecs(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("got %d IDs, want %d", len(ids), n)
	}
	seen := make(map[uint64]bool, n)
	for _, id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("bad or duplicate subscription ID %d", id)
		}
		seen[id] = true
	}
	if got := r.DataPlaneStats().Subscriptions; got != n {
		t.Fatalf("data plane holds %d subscriptions, want %d", got, n)
	}
	// Bulk-registered subscriptions are removable like any other.
	reply, err := pub.routerRequest("", &Message{Type: TypeRemove, ClientID: "bulk", SubID: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if err := expect(reply, TypeRemoveOK); err != nil {
		t.Fatal(err)
	}
	if got := r.DataPlaneStats().Subscriptions; got != n-1 {
		t.Fatalf("data plane holds %d subscriptions after removal, want %d", got, n-1)
	}
}

// An unadmitted client cannot bulk-register.
func TestRegisterBulkRequiresAdmission(t *testing.T) {
	f := newRestartFixture(t)
	r := f.newRouter()
	t.Cleanup(r.Close)
	pub, _ := f.populate(r, 0)
	if _, err := pub.RegisterBulk(bg, "ghost", "", makeBulkSpecs(1)); err == nil {
		t.Fatal("bulk registration for unadmitted client succeeded")
	}
}

// A batch whose signature does not cover its items is rejected whole:
// no item registers.
func TestRegisterBatchBadSignature(t *testing.T) {
	f := newRestartFixture(t)
	r := f.newRouter()
	t.Cleanup(r.Close)
	pub, _ := f.populate(r, 0)

	raw := encodeSpec(t, halSpec(50))
	enc, err := scrypto.Seal(pubSK(pub), raw)
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{{Blob: enc}}
	// Signature over a different client binding — must not verify.
	sig, err := scrypto.Sign(pubKeys(pub), signedRegistrationBatch(items, "mallory"))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := pub.routerRequest("", &Message{Type: TypeRegisterBatch, ClientID: "alice", Items: items, Sig: sig})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError || !strings.Contains(reply.Err, "signature") {
		t.Fatalf("batch with foreign signature accepted: %+v", reply)
	}
	if got := r.DataPlaneStats().Subscriptions; got != 0 {
		t.Fatalf("data plane holds %d subscriptions after rejected batch", got)
	}
}

// Batch-logged entries (no per-item signature) survive seal/restore:
// the sealed blob's AEAD authenticates them, and replay skips the
// per-item check exactly for entries marked Batch.
func TestRegisterBulkSealRestore(t *testing.T) {
	f := newRestartFixture(t)
	r1 := f.newRouter()
	pub, _ := f.populate(r1, 2) // two singly-signed registrations too
	admitTestClient(t, pub, "bulk")
	const n = 20
	if _, err := pub.RegisterBulk(bg, "bulk", "", makeBulkSpecs(n)); err != nil {
		t.Fatal(err)
	}
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	r2 := f.newRouter()
	t.Cleanup(r2.Close)
	if err := r2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got := r2.DataPlaneStats().Subscriptions; got != n+2 {
		t.Fatalf("restored data plane holds %d subscriptions, want %d", got, n+2)
	}
}
