package broker

import (
	"errors"
	"net"
	"testing"
	"time"
)

// deliverMsg builds one numbered test delivery.
func deliverMsg(i int) *Message {
	return &Message{Type: TypeDeliver, Payload: []byte{byte(i)}}
}

// expectClosedConn asserts the peer observes the connection closed
// promptly — the leak check for attach racing close.
func expectClosedConn(t *testing.T, conn net.Conn) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after attach was refused")
	}
}

// TestAttachAfterCloseClosesConn: an attach landing on a closed table
// must not leak the caller's connection — the write side belonged to
// the delivery layer from the listen frame on, so ErrClosed comes with
// the conn closed.
func TestAttachAfterCloseClosesConn(t *testing.T) {
	table := newDeliveryTable(4, 8, OverflowDropOldest, -1)
	table.close(10 * time.Millisecond)
	server, client := net.Pipe()
	defer client.Close()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach on closed table = %v, want ErrClosed", err)
	}
	expectClosedConn(t, client)
}

// TestAttachDuringCloseWithBlockedWriter is the attach-during-close
// race, deterministic: client A's writer is blocked mid-hello (its
// peer never reads), the table starts its bounded drain, and a
// reconnect attempt lands while the drain is in flight. The reconnect
// must be refused with its connection closed, the drain must still
// flush A's frames, and close must return.
func TestAttachDuringCloseWithBlockedWriter(t *testing.T) {
	table := newDeliveryTable(16, 32, OverflowDropOldest, -1)
	serverA, clientA := net.Pipe()
	defer clientA.Close()
	if err := table.attach("a", serverA, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	const pending = 3
	for i := 0; i < pending; i++ {
		table.enqueue("a", deliverMsg(i))
	}

	closed := make(chan struct{})
	go func() {
		table.close(5 * time.Second)
		close(closed)
	}()
	// The drain has begun once the table is marked closed; the writer
	// is still wedged on the unread hello.
	for {
		table.mu.Lock()
		c := table.closed
		table.mu.Unlock()
		if c {
			break
		}
		time.Sleep(time.Millisecond)
	}

	serverB, clientB := net.Pipe()
	defer clientB.Close()
	if err := table.attach("a", serverB, &Message{Type: TypeListenOK}, 0, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach during close = %v, want ErrClosed", err)
	}
	expectClosedConn(t, clientB)

	// Unblock the drain: A's hello and every pending delivery arrive.
	if m := mustRecv(t, clientA); m.Type != TypeListenOK {
		t.Fatalf("first frame %q, want listen-ok", m.Type)
	}
	for i := 0; i < pending; i++ {
		m := mustRecv(t, clientA)
		if m.Type != TypeDeliver || m.Payload[0] != byte(i) {
			t.Fatalf("delivery %d: got %+v", i, m)
		}
		if m.Cursor != uint64(i+1) {
			t.Fatalf("delivery %d stamped cursor %d", i, m.Cursor)
		}
	}
	if _, err := Recv(clientA); err == nil {
		t.Fatal("connection still open after drain")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close never returned")
	}
}

// TestResumeReplaysAcrossReconnect: frames the previous connection
// never put on the wire are replayed — exactly once, in cursor order —
// when the listener reconnects and presents its last-seen cursor.
func TestResumeReplaysAcrossReconnect(t *testing.T) {
	table := newDeliveryTable(8, 16, OverflowDropOldest, -1)
	server1, client1 := net.Pipe()
	if err := table.attach("a", server1, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client1); m.Type != TypeListenOK || m.Cursor != 0 {
		t.Fatalf("hello = %+v", m)
	}
	for i := 1; i <= 3; i++ {
		table.enqueue("a", deliverMsg(i))
	}
	for i := 1; i <= 3; i++ {
		if m := mustRecv(t, client1); m.Cursor != uint64(i) {
			t.Fatalf("cursor %d, want %d", m.Cursor, i)
		}
	}
	// The connection dies; the client only processed up to cursor 2.
	_ = client1.Close()
	// Deliveries keep arriving while the client is away: the first may
	// land in the dead queue (the writer discovers the break on its
	// send), the rest accumulate ring-only. All stay replayable.
	for i := 4; i <= 5; i++ {
		table.enqueue("a", deliverMsg(i))
	}

	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 2, true); err != nil {
		t.Fatal(err)
	}
	hello := mustRecv(t, client2)
	if hello.Type != TypeListenOK || hello.Cursor != 5 || hello.Gap != 0 {
		t.Fatalf("resume hello = %+v, want cursor 5 gap 0", hello)
	}
	for i := 3; i <= 5; i++ {
		m := mustRecv(t, client2)
		if m.Type != TypeDeliver || m.Cursor != uint64(i) || m.Payload[0] != byte(i) {
			t.Fatalf("replayed frame %d: %+v", i, m)
		}
	}
	if got := table.snapshot().DeliveriesReplayed; got != 3 {
		t.Fatalf("DeliveriesReplayed = %d, want 3", got)
	}
}

// TestResumeReportsGap: deliveries evicted from the bounded replay
// ring before the client came back are unrecoverable, and the resume
// ack says exactly how many.
func TestResumeReportsGap(t *testing.T) {
	table := newDeliveryTable(4, 2, OverflowDropOldest, -1)
	server1, client1 := net.Pipe()
	if err := table.attach("a", server1, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client1); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	_ = client1.Close()
	const total = 5
	for i := 1; i <= total; i++ {
		table.enqueue("a", deliverMsg(i))
	}
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 0, true); err != nil {
		t.Fatal(err)
	}
	hello := mustRecv(t, client2)
	if hello.Cursor != total || hello.Gap != total-2 {
		t.Fatalf("resume hello = cursor %d gap %d, want cursor %d gap %d", hello.Cursor, hello.Gap, total, total-2)
	}
	for i := total - 1; i <= total; i++ {
		if m := mustRecv(t, client2); m.Cursor != uint64(i) {
			t.Fatalf("replayed cursor %d, want %d", m.Cursor, i)
		}
	}
	if got := table.snapshot().ReplayGapTotal; got != total-2 {
		t.Fatalf("ReplayGapTotal = %d, want %d", got, total-2)
	}
}

// TestOverflowDropOldest: a full queue evicts its oldest frame, keeps
// the connection, counts the drops, and the ring still covers the
// evicted frames for resume.
func TestOverflowDropOldest(t *testing.T) {
	table := newDeliveryTable(2, 16, OverflowDropOldest, -1)
	server, client := net.Pipe()
	defer client.Close()
	// The writer wedges on the unread hello, so the queue fills.
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	const total = 5
	for i := 1; i <= total; i++ {
		table.enqueue("a", deliverMsg(i))
	}
	c := table.snapshot()
	if c.DeliveriesDropped != total-2 {
		t.Fatalf("DeliveriesDropped = %d, want %d", c.DeliveriesDropped, total-2)
	}
	if c.SlowConsumerDisconnects != 0 {
		t.Fatal("drop-oldest severed the connection")
	}
	// The survivors are the newest frames, in order.
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	for i := total - 1; i <= total; i++ {
		if m := mustRecv(t, client); m.Cursor != uint64(i) {
			t.Fatalf("survivor cursor %d, want %d", m.Cursor, i)
		}
	}
}

// TestOverflowDisconnect: the legacy policy severs the stalled
// listener and counts it; the ring keeps the frames for resumption.
func TestOverflowDisconnect(t *testing.T) {
	table := newDeliveryTable(2, 16, OverflowDisconnect, -1)
	server, client := net.Pipe()
	defer client.Close()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		table.enqueue("a", deliverMsg(i))
	}
	if got := table.snapshot().SlowConsumerDisconnects; got != 1 {
		t.Fatalf("SlowConsumerDisconnects = %d, want 1", got)
	}
	expectClosedConn(t, client)
	// Everything enqueued — including the overflow frame — is
	// recoverable by resuming from the start.
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 0, true); err != nil {
		t.Fatal(err)
	}
	if hello := mustRecv(t, client2); hello.Gap != 0 {
		t.Fatalf("resume gap = %d, want 0", hello.Gap)
	}
	for i := 1; i <= 3; i++ {
		if m := mustRecv(t, client2); m.Cursor != uint64(i) {
			t.Fatalf("replayed cursor %d, want %d", m.Cursor, i)
		}
	}
}

// TestOverflowPauseBackpressure: a full queue blocks the enqueue until
// the consumer drains — lossless — and a reconnect releases a blocked
// enqueue instead of deadlocking, with the parked frame recovered via
// replay.
func TestOverflowPauseBackpressure(t *testing.T) {
	table := newDeliveryTable(1, 16, OverflowPause, -1)
	server, client := net.Pipe()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	// Frame 1 is taken by the writer (which wedges on the unread send),
	// frame 2 fills the queue, frame 3 must block.
	table.enqueue("a", deliverMsg(1))
	table.enqueue("a", deliverMsg(2))
	unblocked := make(chan struct{})
	go func() {
		table.enqueue("a", deliverMsg(3))
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("enqueue did not block on a full queue under Pause")
	case <-time.After(100 * time.Millisecond):
	}
	// Draining the connection releases the backpressure losslessly.
	for i := 1; i <= 3; i++ {
		if m := mustRecv(t, client); m.Cursor != uint64(i) {
			t.Fatalf("cursor %d, want %d", m.Cursor, i)
		}
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue stayed blocked after the queue drained")
	}
	if c := table.snapshot(); c.PauseStalls == 0 || c.DeliveriesDropped != 0 {
		t.Fatalf("counters = %+v, want pause stalls and no drops", c)
	}

	// Reconnect-during-stall: wedge the queue again, then attach a new
	// connection. The swap must unblock the parked enqueue (the old
	// queue dies), and the resume replay must deliver its frame anyway.
	table.enqueue("a", deliverMsg(4))
	table.enqueue("a", deliverMsg(5))
	parked := make(chan struct{})
	go func() {
		table.enqueue("a", deliverMsg(6))
		close(parked)
	}()
	time.Sleep(50 * time.Millisecond) // let the enqueue park
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 3, true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("reconnect left the paused enqueue parked")
	}
	_ = client.Close()
	if hello := mustRecv(t, client2); hello.Gap != 0 {
		t.Fatalf("resume gap = %d, want 0", hello.Gap)
	}
	seen := make(map[uint64]bool)
	for i := 4; i <= 6; i++ {
		m := mustRecv(t, client2)
		if m.Type != TypeDeliver || seen[m.Cursor] {
			t.Fatalf("replay frame %d: %+v", i, m)
		}
		seen[m.Cursor] = true
	}
	for i := uint64(4); i <= 6; i++ {
		if !seen[i] {
			t.Fatalf("cursor %d never replayed (saw %v)", i, seen)
		}
	}
}

// TestDetachedDeliveriesAccumulate: a client between connections keeps
// its cursor advancing and its ring filling, so a resume after a quiet
// detachment loses nothing.
func TestDetachedDeliveriesAccumulate(t *testing.T) {
	table := newDeliveryTable(4, 16, OverflowDropOldest, -1)
	server, client := net.Pipe()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatal("no hello")
	}
	_ = client.Close()
	table.enqueue("a", deliverMsg(1)) // writer discovers the break here
	for {
		st := table.clients["a"]
		st.mu.Lock()
		detached := st.q == nil
		st.mu.Unlock()
		if detached {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 2; i <= 4; i++ {
		table.enqueue("a", deliverMsg(i))
	}
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 0, true); err != nil {
		t.Fatal(err)
	}
	if hello := mustRecv(t, client2); hello.Cursor != 4 || hello.Gap != 0 {
		t.Fatalf("resume hello = %+v", hello)
	}
	for i := 1; i <= 4; i++ {
		if m := mustRecv(t, client2); m.Cursor != uint64(i) {
			t.Fatalf("replayed cursor %d, want %d", m.Cursor, i)
		}
	}
}

// TestParseOverflowPolicy round-trips the flag strings.
func TestParseOverflowPolicy(t *testing.T) {
	for _, p := range []OverflowPolicy{OverflowDropOldest, OverflowDisconnect, OverflowPause} {
		got, err := ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseOverflowPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if p, err := ParseOverflowPolicy(""); err != nil || p != OverflowDropOldest {
		t.Fatalf("empty policy = %v, %v, want default drop-oldest", p, err)
	}
}

// TestResumeWindowEvictsDetachedState: a client that stays away past
// the resume window has its cursor and ring released — churn cannot
// grow the table forever — and a later return is a fresh listener.
func TestResumeWindowEvictsDetachedState(t *testing.T) {
	table := newDeliveryTable(4, 8, OverflowDropOldest, 50*time.Millisecond)
	defer table.close(10 * time.Millisecond)
	server, client := net.Pipe()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	_ = client.Close()
	table.enqueue("a", deliverMsg(1)) // the writer discovers the break and detaches

	deadline := time.Now().Add(5 * time.Second)
	for {
		table.mu.Lock()
		_, alive := table.clients["a"]
		table.mu.Unlock()
		if !alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached state never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Returning after eviction starts over: the ack cursor regresses to
	// zero, which is the client's signal to rebaseline.
	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 1, true); err != nil {
		t.Fatal(err)
	}
	if hello := mustRecv(t, client2); hello.Cursor != 0 {
		t.Fatalf("post-eviction resume cursor = %d, want 0", hello.Cursor)
	}
}

// TestPumpSeversOnLiveCursorJump: frames dropped on a live connection
// under DropOldest show up as a cursor jump; a resumable pump must
// sever instead of riding past the gap, so the owner's next Resume
// (from the pre-gap cursor) recovers the dropped frames.
func TestPumpSeversOnLiveCursorJump(t *testing.T) {
	c, err := NewClient("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	server, client := net.Pipe()
	defer server.Close()
	go func() {
		if _, err := Recv(server); err != nil { // listen
			return
		}
		_ = Send(server, &Message{Type: TypeListenOK})
		for _, cur := range []uint64{1, 2, 5} { // 3 and 4 "dropped"
			_ = Send(server, &Message{Type: TypeDeliver, Cursor: cur})
		}
	}()
	if _, err := c.Resume(bg, client); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.DeliveryDone():
	case <-time.After(5 * time.Second):
		t.Fatal("pump did not sever on the cursor jump")
	}
	if got := c.LastCursor(); got != 2 {
		t.Fatalf("cursor after jump = %d, want 2 (the pre-gap position a Resume must present)", got)
	}
	// The client closed the connection, not just stopped reading.
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := Recv(server); err == nil {
		t.Fatal("connection still open after the jump")
	}
}

// TestResumeAcknowledgesReportedGap: when the resume ack reports
// unrecoverable loss, the client folds it into its baseline so the
// replay stream is contiguous and jump detection does not re-sever on
// the first retained frame.
func TestResumeAcknowledgesReportedGap(t *testing.T) {
	c, err := NewClient("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	server1, client1 := net.Pipe()
	go func() {
		if _, err := Recv(server1); err != nil {
			return
		}
		_ = Send(server1, &Message{Type: TypeListenOK})
		_ = Send(server1, &Message{Type: TypeDeliver, Cursor: 1})
		_ = Send(server1, &Message{Type: TypeDeliver, Cursor: 2})
		_ = server1.Close()
	}()
	if _, err := c.Resume(bg, client1); err != nil {
		t.Fatal(err)
	}
	<-c.DeliveryDone()
	if got := c.LastCursor(); got != 2 {
		t.Fatalf("cursor = %d, want 2", got)
	}

	server2, client2 := net.Pipe()
	defer server2.Close()
	ready := make(chan struct{})
	go func() {
		m, err := Recv(server2)
		if err != nil || !m.Resume || m.Cursor != 2 {
			t.Errorf("resume frame = %+v, %v; want resume at cursor 2", m, err)
			return
		}
		// Cursors 3..5 fell off the ring: report the gap, then replay
		// the retained tail.
		_ = Send(server2, &Message{Type: TypeListenOK, Cursor: 7, Gap: 3})
		_ = Send(server2, &Message{Type: TypeDeliver, Cursor: 6})
		_ = Send(server2, &Message{Type: TypeDeliver, Cursor: 7})
		close(ready)
	}()
	gap, err := c.Resume(bg, client2)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 3 {
		t.Fatalf("Resume gap = %d, want 3", gap)
	}
	<-ready
	deadline := time.Now().Add(5 * time.Second)
	for c.LastCursor() != 7 {
		select {
		case <-c.DeliveryDone():
			t.Fatalf("pump severed on the post-gap replay (cursor %d)", c.LastCursor())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor = %d, want 7 (acknowledged gap + replay)", c.LastCursor())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDisabledReplayRing: a negative ring bound turns retention off —
// cursors still stamp and resumes still work, but nothing replays and
// the whole detached span is reported as a gap.
func TestDisabledReplayRing(t *testing.T) {
	table := newDeliveryTable(4, -1, OverflowDropOldest, -1)
	server, client := net.Pipe()
	if err := table.attach("a", server, &Message{Type: TypeListenOK}, 0, false); err != nil {
		t.Fatal(err)
	}
	if m := mustRecv(t, client); m.Type != TypeListenOK {
		t.Fatalf("hello = %+v", m)
	}
	for i := 1; i <= 2; i++ {
		table.enqueue("a", deliverMsg(i))
		if m := mustRecv(t, client); m.Cursor != uint64(i) {
			t.Fatalf("live cursor %d, want %d", m.Cursor, i)
		}
	}
	_ = client.Close()
	table.enqueue("a", deliverMsg(3)) // detaches; nothing retained

	server2, client2 := net.Pipe()
	defer client2.Close()
	if err := table.attach("a", server2, &Message{Type: TypeListenOK}, 2, true); err != nil {
		t.Fatal(err)
	}
	hello := mustRecv(t, client2)
	if hello.Cursor != 3 || hello.Gap != 1 {
		t.Fatalf("resume hello = cursor %d gap %d, want cursor 3 gap 1", hello.Cursor, hello.Gap)
	}
	// Live delivery continues the numbering; no replay preceded it.
	table.enqueue("a", deliverMsg(4))
	if m := mustRecv(t, client2); m.Cursor != 4 {
		t.Fatalf("post-resume cursor = %d, want 4", m.Cursor)
	}
	if got := table.snapshot().DeliveriesReplayed; got != 0 {
		t.Fatalf("DeliveriesReplayed = %d with the ring disabled", got)
	}
}
