package broker

import (
	"crypto/rsa"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// Delivery is one decrypted publication payload received by a client,
// or the error that prevented decryption (e.g. the client was revoked
// and cannot obtain the rotated group key).
type Delivery struct {
	Payload []byte
	Epoch   uint64
	Err     error
}

// Client is a data consumer: it subscribes through the publisher
// (trusted for the service, §3.2) and receives payloads from the
// untrusted router.
type Client struct {
	ID   string
	keys *scrypto.KeyPair

	mu          sync.Mutex
	publisherPK *rsa.PublicKey
	pubConn     net.Conn
	routerConn  net.Conn
	groupKey    *scrypto.SymmetricKey
	epoch       uint64
	wg          sync.WaitGroup
	done        chan struct{}
	closeOnce   sync.Once
}

// NewClient creates a client with a fresh response key pair.
func NewClient(id string) (*Client, error) {
	if id == "" {
		return nil, errors.New("broker: empty client ID")
	}
	keys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: generating client keys: %w", err)
	}
	return &Client{ID: id, keys: keys, done: make(chan struct{})}, nil
}

// ConnectPublisher binds the client to its service provider. pk is the
// publisher's public key PK, obtained out of band.
func (c *Client) ConnectPublisher(conn net.Conn, pk *rsa.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pubConn = conn
	c.publisherPK = pk
}

// Subscribe encrypts the subscription under PK and submits it for
// admission (step ①). On success it returns the subscription ID and
// stores the payload group key delivered with the ack.
func (c *Client) Subscribe(spec pubsub.SubscriptionSpec) (uint64, error) {
	raw, err := pubsub.EncodeSubscriptionSpec(spec)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil || c.publisherPK == nil {
		return 0, errors.New("broker: client not connected to a publisher")
	}
	blob, err := scrypto.EncryptPK(c.publisherPK, raw)
	if err != nil {
		return 0, fmt.Errorf("broker: encrypting subscription: %w", err)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(c.keys.Public())
	if err != nil {
		return 0, fmt.Errorf("broker: encoding response key: %w", err)
	}
	if err := Send(c.pubConn, &Message{Type: TypeSubscribe, ClientID: c.ID, Blob: blob, PubKey: pubDER}); err != nil {
		return 0, err
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return 0, err
	}
	if err := expect(reply, TypeSubscribeOK); err != nil {
		return 0, err
	}
	if err := c.installGroupKeyLocked(reply.Blob, reply.Epoch); err != nil {
		return 0, err
	}
	return reply.SubID, nil
}

// Unsubscribe withdraws one of this client's subscriptions.
func (c *Client) Unsubscribe(subID uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil {
		return errors.New("broker: client not connected to a publisher")
	}
	if err := Send(c.pubConn, &Message{Type: TypeUnsubscribe, ClientID: c.ID, SubID: subID}); err != nil {
		return err
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return err
	}
	return expect(reply, TypeUnsubscribeOK)
}

// RefreshGroupKey fetches the current payload key from the publisher;
// it fails for revoked clients — the mechanism that locks them out of
// new publications.
func (c *Client) RefreshGroupKey() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshGroupKeyLocked()
}

func (c *Client) refreshGroupKeyLocked() error {
	if c.pubConn == nil {
		return errors.New("broker: client not connected to a publisher")
	}
	if err := Send(c.pubConn, &Message{Type: TypeGroupKey, ClientID: c.ID}); err != nil {
		return err
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return err
	}
	if err := expect(reply, TypeGroupKeyOK); err != nil {
		return err
	}
	return c.installGroupKeyLocked(reply.Blob, reply.Epoch)
}

func (c *Client) installGroupKeyLocked(blob []byte, epoch uint64) error {
	raw, err := scrypto.DecryptPK(c.keys, blob)
	if err != nil {
		return fmt.Errorf("broker: unwrapping group key: %w", err)
	}
	key, err := scrypto.SymmetricKeyFromBytes(raw)
	if err != nil {
		return fmt.Errorf("broker: parsing group key: %w", err)
	}
	c.groupKey = key
	c.epoch = epoch
	return nil
}

// Epoch returns the client's current group key epoch.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Listen registers this client's delivery channel with the router and
// returns a channel of decrypted deliveries. The channel closes when
// the connection does. Deliveries whose epoch is newer than the
// client's key trigger a group key refresh through the publisher; if
// the refresh is denied (revocation) the delivery surfaces with an
// error and an opaque payload.
func (c *Client) Listen(conn net.Conn) (<-chan Delivery, error) {
	if err := Send(conn, &Message{Type: TypeListen, ClientID: c.ID}); err != nil {
		return nil, err
	}
	ack, err := Recv(conn)
	if err != nil {
		return nil, err
	}
	if err := expect(ack, TypeListenOK); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.routerConn = conn
	c.mu.Unlock()
	out := make(chan Delivery)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(out)
		for {
			m, err := Recv(conn)
			if err != nil {
				return
			}
			if m.Type != TypeDeliver {
				continue
			}
			select {
			case out <- c.decryptDelivery(m):
			case <-c.done:
				return
			}
		}
	}()
	return out, nil
}

// decryptDelivery recovers a payload, refreshing the group key when
// the publication is from a newer epoch.
func (c *Client) decryptDelivery(m *Message) Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.groupKey == nil || m.Epoch > c.epoch {
		if err := c.refreshGroupKeyLocked(); err != nil {
			return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: cannot obtain group key: %w", err)}
		}
	}
	if m.Epoch != c.epoch {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: no key for epoch %d", m.Epoch)}
	}
	plain, err := scrypto.Open(c.groupKey, m.Payload)
	if err != nil {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: decrypting payload: %w", err)}
	}
	return Delivery{Payload: plain, Epoch: m.Epoch}
}

// Close shuts down the client's connections and waits for the
// delivery goroutine. Safe to call more than once.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.mu.Lock()
	if c.routerConn != nil {
		_ = c.routerConn.Close()
	}
	if c.pubConn != nil {
		_ = c.pubConn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
