package broker

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// Delivery is one decrypted publication payload received by a client,
// or the error that prevented decryption (e.g. the client was revoked
// and cannot obtain the rotated group key).
type Delivery struct {
	Payload []byte
	Epoch   uint64
	// SubIDs names this client's subscriptions the publication
	// matched, as reported by the router (empty for deliveries from a
	// router predating the field).
	SubIDs []uint64
	Err    error
}

// subBuffer is the per-subscription delivery buffer: it absorbs
// bursts without blocking the client's delivery pump. When a handle's
// buffer fills, the pump blocks, which propagates backpressure through
// TCP to the router — deliveries are never dropped, exactly as the
// pre-Subscription channel API behaved. Consumers must drain (or
// Unsubscribe) every handle they hold.
const subBuffer = 256

// Client is a data consumer: it subscribes through the publisher
// (trusted for the service, §3.2) and receives payloads from the
// untrusted router.
type Client struct {
	ID   string
	keys *scrypto.KeyPair

	mu          sync.Mutex
	homeRouter  string // federation: the overlay name of the router this client listens on
	scheme      string // the deployment's matching scheme, learned from the subscribe ack
	publisherPK *rsa.PublicKey
	pubConn     net.Conn
	routerConn  net.Conn
	groupKey    *scrypto.SymmetricKey
	epoch       uint64
	subs        map[uint64]*Subscription
	listened    bool          // a delivery channel has been bound at least once
	pumpDone    chan struct{} // closed when the current delivery pump exits
	wg          sync.WaitGroup
	done        chan struct{}
	closeOnce   sync.Once

	// cursor is the highest delivery cursor observed from the router —
	// what a Resume presents to have the gap replayed. Atomic: the
	// pump advances it while callers read it.
	cursor atomic.Uint64
}

// NewClient creates a client with a fresh response key pair.
func NewClient(id string) (*Client, error) {
	if id == "" {
		return nil, errors.New("broker: empty client ID")
	}
	keys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: generating client keys: %w", err)
	}
	return &Client{ID: id, keys: keys, subs: make(map[uint64]*Subscription), done: make(chan struct{})}, nil
}

// closedErr reports ErrClosed once Close has been called.
func (c *Client) closedErr() error {
	select {
	case <-c.done:
		return fmt.Errorf("%w: client %s", ErrClosed, c.ID)
	default:
		return nil
	}
}

// ConnectPublisher binds the client to its service provider. pk is the
// publisher's public key PK, obtained out of band. Rebinding (e.g.
// reconnecting after a publisher restart) closes the previous
// connection — it belongs to this client, and leaving it open would
// leak it and wedge the old publisher's serving loop.
func (c *Client) ConnectPublisher(conn net.Conn, pk *rsa.PublicKey) {
	c.mu.Lock()
	old := c.pubConn
	c.pubConn = conn
	c.publisherPK = pk
	c.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
}

// UseRouter names the federated router this client attaches to, so
// the publisher registers its subscriptions there (deliveries arrive
// on the router a client listens on, wherever the publication entered
// the overlay). Leave unset outside federated deployments.
func (c *Client) UseRouter(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.homeRouter = name
}

// Subscribe encrypts the subscription under PK and submits it for
// admission (step ①). On success it returns a Subscription handle
// bound to this client's delivery stream and stores the payload group
// key delivered with the ack. The handle is fed by the pump of a live
// Attach: subscribing before Attach (or after the delivery connection
// dropped) is fine, but deliveries only flow once a pump is running.
// Cancelling ctx severs the publisher connection.
func (c *Client) Subscribe(ctx context.Context, spec pubsub.SubscriptionSpec) (*Subscription, error) {
	if err := c.closedErr(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	raw, err := pubsub.EncodeSubscriptionSpec(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil || c.publisherPK == nil {
		return nil, fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	blob, err := scrypto.EncryptPK(c.publisherPK, raw)
	if err != nil {
		return nil, fmt.Errorf("broker: encrypting subscription: %w", err)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(c.keys.Public())
	if err != nil {
		return nil, fmt.Errorf("broker: encoding response key: %w", err)
	}
	release := ctxGuard(ctx, c.pubConn)
	defer release()
	if err := Send(c.pubConn, &Message{Type: TypeSubscribe, ClientID: c.ID, Router: c.homeRouter, Blob: blob, PubKey: pubDER}); err != nil {
		return nil, ctxErr(ctx, err)
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	if err := expect(reply, TypeSubscribeOK); err != nil {
		return nil, err
	}
	if err := c.installGroupKeyLocked(reply.Blob, reply.Epoch); err != nil {
		return nil, err
	}
	// Remember the deployment's matching scheme: subsequent listen
	// frames are tagged with it, so attaching to a wrong-scheme router
	// fails loudly with ErrSchemeMismatch instead of going silent.
	c.scheme = reply.Scheme
	s := &Subscription{
		id:     reply.SubID,
		router: c.homeRouter,
		spec:   spec,
		c:      c,
		ch:     make(chan Delivery, subBuffer),
		done:   make(chan struct{}),
	}
	c.subs[s.id] = s
	return s, nil
}

// Unsubscribe withdraws one of this client's subscriptions by ID and
// closes its Subscription handle, if one is live.
func (c *Client) Unsubscribe(ctx context.Context, subID uint64) error {
	if err := c.closedErr(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil {
		return fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	// Address the router the subscription was registered on, not the
	// client's *current* home — IDs are per-router, so a re-homed
	// client must still unsubscribe where it subscribed.
	router := c.homeRouter
	if s, ok := c.subs[subID]; ok {
		router = s.router
	}
	release := ctxGuard(ctx, c.pubConn)
	defer release()
	if err := Send(c.pubConn, &Message{Type: TypeUnsubscribe, ClientID: c.ID, Router: router, SubID: subID}); err != nil {
		return ctxErr(ctx, err)
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return ctxErr(ctx, err)
	}
	if err := expect(reply, TypeUnsubscribeOK); err != nil {
		return err
	}
	if s, ok := c.subs[subID]; ok {
		delete(c.subs, subID)
		s.closeHandle()
	}
	return nil
}

// RefreshGroupKey fetches the current payload key from the publisher;
// it fails for revoked clients — the mechanism that locks them out of
// new publications.
func (c *Client) RefreshGroupKey() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshGroupKeyLocked()
}

func (c *Client) refreshGroupKeyLocked() error {
	if c.pubConn == nil {
		return fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	if err := Send(c.pubConn, &Message{Type: TypeGroupKey, ClientID: c.ID}); err != nil {
		return err
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return err
	}
	if err := expect(reply, TypeGroupKeyOK); err != nil {
		return err
	}
	return c.installGroupKeyLocked(reply.Blob, reply.Epoch)
}

func (c *Client) installGroupKeyLocked(blob []byte, epoch uint64) error {
	raw, err := scrypto.DecryptPK(c.keys, blob)
	if err != nil {
		return fmt.Errorf("broker: unwrapping group key: %w", err)
	}
	key, err := scrypto.SymmetricKeyFromBytes(raw)
	if err != nil {
		return fmt.Errorf("broker: parsing group key: %w", err)
	}
	c.groupKey = key
	c.epoch = epoch
	return nil
}

// Epoch returns the client's current group key epoch.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Attach registers this client's delivery channel with the router and
// starts the delivery pump that feeds every Subscription handle.
// Deliveries are decrypted once and routed to the handles whose
// subscriptions the router reports as matched. The pump stops when the
// connection drops, ctx is cancelled, or the client closes; losing
// the connection closes every Subscription handle. For handles that
// survive reconnects, bind with Resume instead.
func (c *Client) Attach(ctx context.Context, conn net.Conn) error {
	_, _, err := c.listen(ctx, conn, false, false)
	return err
}

// Resume binds conn as the client's delivery channel, continuing the
// cursor-stamped stream where the previous connection left off: the
// router replays every delivery it retained past the client's
// last-seen cursor, and the returned gap counts deliveries that had
// already left the router's replay ring (0 means the resume was
// lossless). Replayed duplicates are filtered by cursor, so each
// delivery reaches the Subscription handles exactly once, in order.
//
// Unlike Attach, a pump started by Resume leaves Subscription handles
// open when the connection drops — they simply go quiet until the
// next Resume. The first Resume of a fresh client is an ordinary
// attach (nothing to replay). Watch DeliveryDone to learn when the
// connection needs resuming.
func (c *Client) Resume(ctx context.Context, conn net.Conn) (gap uint64, err error) {
	_, gap, err = c.listen(ctx, conn, false, true)
	return gap, err
}

// LastCursor returns the highest delivery cursor this client has
// observed — what the next Resume will present to the router.
func (c *Client) LastCursor() uint64 { return c.cursor.Load() }

// DeliveryDone returns a channel that closes when the current
// delivery pump exits (connection lost, ctx cancelled, or client
// closed). Before any Attach/Resume — or after the pump has already
// exited — the returned channel is closed, so a reconnect loop can
// simply wait on it and Resume.
func (c *Client) DeliveryDone() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pumpDone == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return c.pumpDone
}

// Listen binds a merged client-wide delivery channel, the
// pre-Subscription surface. Every delivery for this client — whatever
// subscription matched — is sent (blocking) on the returned channel,
// which closes when the connection does. A pump started by Listen
// feeds only the merged channel; Subscription handles stay empty on
// this connection.
//
// Deprecated: use Attach and per-Subscription Next/Deliveries instead;
// the merged channel cannot tell subscriptions apart.
func (c *Client) Listen(conn net.Conn) (<-chan Delivery, error) {
	out, _, err := c.listen(context.Background(), conn, true, false)
	return out, err
}

func (c *Client) listen(ctx context.Context, conn net.Conn, withStream, resumable bool) (<-chan Delivery, uint64, error) {
	if err := c.closedErr(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// A resuming client that has listened before presents its cursor;
	// the first bind is an ordinary attach with nothing to replay.
	c.mu.Lock()
	resume := resumable && c.listened
	schemeTag := c.scheme
	c.mu.Unlock()
	hello := &Message{Type: TypeListen, ClientID: c.ID, Scheme: schemeTag}
	if resume {
		hello.Resume = true
		hello.Cursor = c.cursor.Load()
	}
	release := ctxGuard(ctx, conn)
	if err := Send(conn, hello); err != nil {
		release()
		return nil, 0, ctxErr(ctx, err)
	}
	ack, err := Recv(conn)
	if err != nil {
		release()
		return nil, 0, ctxErr(ctx, err)
	}
	if err := expect(ack, TypeListenOK); err != nil {
		release()
		return nil, 0, err
	}
	release()
	// Rebinding replaces any previous delivery connection: close it and
	// wait for its pump to unwind before touching the cursor — a live
	// old pump shares c.cursor and could race the rebaselines below (or
	// CAS the cursor back up from a stale delivery), silencing the new
	// stream.
	c.mu.Lock()
	oldConn, oldDone := c.routerConn, c.pumpDone
	c.mu.Unlock()
	if oldConn != nil && oldConn != conn {
		_ = oldConn.Close()
		if oldDone != nil {
			select {
			case <-oldDone:
			case <-time.After(2 * time.Second):
				// The old pump is parked handing a stale delivery to a
				// slow consumer. Its cursor write for that frame already
				// happened (the cursor advances before dispatch) and its
				// connection is closed, so no further writes can race
				// the rebaseline — proceed.
			}
		}
	}
	if !resume {
		// Baseline: deliveries before this bind were never ours, so a
		// later Resume must not replay them.
		c.cursor.Store(ack.Cursor)
	} else if ack.Cursor < hello.Cursor {
		// The router's cursor for us regressed below what we have seen:
		// it lost its delivery state (restarted without restore, or we
		// re-homed to a different router). Rebaseline — otherwise every
		// future delivery would be filtered as replay overlap and the
		// stream would go silent forever.
		c.cursor.Store(ack.Cursor)
	} else if ack.Gap > 0 {
		// The router reported unrecoverable loss immediately past our
		// cursor. Acknowledge it, so the replay stream is contiguous
		// from the new baseline and the pump's jump detection does not
		// mistake the already-reported gap for fresh loss.
		c.cursor.Store(hello.Cursor + ack.Gap)
	}
	c.mu.Lock()
	c.routerConn = conn
	c.listened = true
	pumpDone := make(chan struct{})
	c.pumpDone = pumpDone
	c.mu.Unlock()
	var out chan Delivery
	if withStream {
		out = make(chan Delivery)
	}
	c.wg.Add(1)
	go c.pump(ctx, conn, out, resumable, pumpDone)
	return out, ack.Gap, nil
}

// pump is the delivery loop of one router connection: it decrypts
// each delivery once and routes it. A pump started by Attach feeds the
// matched Subscription handles; a pump started by the deprecated
// Listen feeds only the merged out channel (handles subscribe-time
// state would otherwise fill unconsumed buffers and stall the pump).
// Both paths block when the consumer lags, so backpressure reaches the
// router instead of deliveries being dropped.
func (c *Client) pump(ctx context.Context, conn net.Conn, out chan Delivery, resumable bool, pumpDone chan struct{}) {
	defer c.wg.Done()
	defer close(pumpDone)
	if out != nil {
		defer close(out)
	} else if !resumable {
		// Attach mode: when the delivery connection is lost (router
		// gone, ctx cancelled, client closed), close every live
		// Subscription handle so blocked Next/Consume callers unwind
		// with ErrClosed — the handle analogue of the legacy channel
		// closing. Buffered deliveries still drain first. The dead
		// handles also leave c.subs, so a later re-Attach dispatches
		// to fresh handles only (re-Subscribe after reconnecting).
		// Resume-mode pumps skip this: handles outlive the connection
		// and pick the stream back up on the next Resume.
		defer func() {
			c.mu.Lock()
			subs := make([]*Subscription, 0, len(c.subs))
			for id, s := range c.subs {
				subs = append(subs, s)
				delete(c.subs, id)
			}
			c.mu.Unlock()
			for _, s := range subs {
				s.closeHandle()
			}
		}()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-c.done:
			_ = conn.Close()
		case <-stop:
		}
	}()
	for {
		m, err := Recv(conn)
		if err != nil {
			return
		}
		if m.Type != TypeDeliver {
			continue
		}
		if resumable && m.Cursor > c.cursor.Load()+1 {
			// A cursor jump on a live connection: the router dropped the
			// frames in between (DropOldest overflow). Processing this
			// frame would advance our cursor past the gap and orphan
			// them in the replay ring, so sever instead — DeliveryDone
			// fires, and the owner's next Resume presents the cursor
			// from before the gap, recovering the dropped frames.
			_ = conn.Close()
			return
		}
		if !c.advanceCursor(m.Cursor) {
			continue // replay overlap: this delivery was already seen
		}
		d := c.decryptDelivery(m)
		d.SubIDs = m.SubIDs
		c.dispatch(d, out)
	}
}

// advanceCursor records a delivery's cursor and reports whether the
// delivery is new. Cursor-less frames (a router predating stamping)
// always pass; replayed duplicates — at-least-once on the wire — are
// filtered here, so consumers see exactly-once.
func (c *Client) advanceCursor(cursor uint64) bool {
	if cursor == 0 {
		return true
	}
	for {
		cur := c.cursor.Load()
		if cursor <= cur {
			return false
		}
		if c.cursor.CompareAndSwap(cur, cursor) {
			return true
		}
	}
}

// dispatch routes one delivery: to the merged stream in legacy Listen
// mode, to the matched subscription handles otherwise.
func (c *Client) dispatch(d Delivery, out chan Delivery) {
	if out != nil {
		select {
		case out <- d:
		case <-c.done:
		}
		return
	}
	c.mu.Lock()
	targets := make([]*Subscription, 0, len(d.SubIDs))
	if len(d.SubIDs) == 0 {
		// Router did not name subscriptions: offer to every handle.
		for _, s := range c.subs {
			targets = append(targets, s)
		}
	} else {
		for _, id := range d.SubIDs {
			if s, ok := c.subs[id]; ok {
				targets = append(targets, s)
			}
		}
	}
	c.mu.Unlock()
	for _, s := range targets {
		s.offer(d)
	}
}

// decryptDelivery recovers a payload, refreshing the group key when
// the publication is from a newer epoch.
func (c *Client) decryptDelivery(m *Message) Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.groupKey == nil || m.Epoch > c.epoch {
		if err := c.refreshGroupKeyLocked(); err != nil {
			return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: cannot obtain group key: %w", err)}
		}
	}
	if m.Epoch != c.epoch {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: no key for epoch %d", m.Epoch)}
	}
	plain, err := scrypto.Open(c.groupKey, m.Payload)
	if err != nil {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: decrypting payload: %w", err)}
	}
	return Delivery{Payload: plain, Epoch: m.Epoch}
}

// Close shuts down the client's connections, closes every Subscription
// handle, and waits for the delivery pump. Safe to call more than
// once.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.mu.Lock()
	if c.routerConn != nil {
		_ = c.routerConn.Close()
	}
	if c.pubConn != nil {
		_ = c.pubConn.Close()
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*Subscription)
	c.mu.Unlock()
	for _, s := range subs {
		s.closeHandle()
	}
	c.wg.Wait()
}
