package broker

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// Delivery is one decrypted publication payload received by a client,
// or the error that prevented decryption (e.g. the client was revoked
// and cannot obtain the rotated group key).
type Delivery struct {
	Payload []byte
	Epoch   uint64
	// SubIDs names this client's subscriptions the publication
	// matched, as reported by the router (empty for deliveries from a
	// router predating the field).
	SubIDs []uint64
	Err    error
}

// subBuffer is the per-subscription delivery buffer: it absorbs
// bursts without blocking the client's delivery pump. When a handle's
// buffer fills, the pump blocks, which propagates backpressure through
// TCP to the router — deliveries are never dropped, exactly as the
// pre-Subscription channel API behaved. Consumers must drain (or
// Unsubscribe) every handle they hold.
const subBuffer = 256

// Client is a data consumer: it subscribes through the publisher
// (trusted for the service, §3.2) and receives payloads from the
// untrusted router.
type Client struct {
	ID   string
	keys *scrypto.KeyPair

	mu          sync.Mutex
	homeRouter  string // federation: the overlay name of the router this client listens on
	publisherPK *rsa.PublicKey
	pubConn     net.Conn
	routerConn  net.Conn
	groupKey    *scrypto.SymmetricKey
	epoch       uint64
	subs        map[uint64]*Subscription
	wg          sync.WaitGroup
	done        chan struct{}
	closeOnce   sync.Once
}

// NewClient creates a client with a fresh response key pair.
func NewClient(id string) (*Client, error) {
	if id == "" {
		return nil, errors.New("broker: empty client ID")
	}
	keys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: generating client keys: %w", err)
	}
	return &Client{ID: id, keys: keys, subs: make(map[uint64]*Subscription), done: make(chan struct{})}, nil
}

// closedErr reports ErrClosed once Close has been called.
func (c *Client) closedErr() error {
	select {
	case <-c.done:
		return fmt.Errorf("%w: client %s", ErrClosed, c.ID)
	default:
		return nil
	}
}

// ConnectPublisher binds the client to its service provider. pk is the
// publisher's public key PK, obtained out of band.
func (c *Client) ConnectPublisher(conn net.Conn, pk *rsa.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pubConn = conn
	c.publisherPK = pk
}

// UseRouter names the federated router this client attaches to, so
// the publisher registers its subscriptions there (deliveries arrive
// on the router a client listens on, wherever the publication entered
// the overlay). Leave unset outside federated deployments.
func (c *Client) UseRouter(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.homeRouter = name
}

// Subscribe encrypts the subscription under PK and submits it for
// admission (step ①). On success it returns a Subscription handle
// bound to this client's delivery stream and stores the payload group
// key delivered with the ack. The handle is fed by the pump of a live
// Attach: subscribing before Attach (or after the delivery connection
// dropped) is fine, but deliveries only flow once a pump is running.
// Cancelling ctx severs the publisher connection.
func (c *Client) Subscribe(ctx context.Context, spec pubsub.SubscriptionSpec) (*Subscription, error) {
	if err := c.closedErr(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	raw, err := pubsub.EncodeSubscriptionSpec(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil || c.publisherPK == nil {
		return nil, fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	blob, err := scrypto.EncryptPK(c.publisherPK, raw)
	if err != nil {
		return nil, fmt.Errorf("broker: encrypting subscription: %w", err)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(c.keys.Public())
	if err != nil {
		return nil, fmt.Errorf("broker: encoding response key: %w", err)
	}
	release := ctxGuard(ctx, c.pubConn)
	defer release()
	if err := Send(c.pubConn, &Message{Type: TypeSubscribe, ClientID: c.ID, Router: c.homeRouter, Blob: blob, PubKey: pubDER}); err != nil {
		return nil, ctxErr(ctx, err)
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	if err := expect(reply, TypeSubscribeOK); err != nil {
		return nil, err
	}
	if err := c.installGroupKeyLocked(reply.Blob, reply.Epoch); err != nil {
		return nil, err
	}
	s := &Subscription{
		id:     reply.SubID,
		router: c.homeRouter,
		spec:   spec,
		c:      c,
		ch:     make(chan Delivery, subBuffer),
		done:   make(chan struct{}),
	}
	c.subs[s.id] = s
	return s, nil
}

// Unsubscribe withdraws one of this client's subscriptions by ID and
// closes its Subscription handle, if one is live.
func (c *Client) Unsubscribe(ctx context.Context, subID uint64) error {
	if err := c.closedErr(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pubConn == nil {
		return fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	// Address the router the subscription was registered on, not the
	// client's *current* home — IDs are per-router, so a re-homed
	// client must still unsubscribe where it subscribed.
	router := c.homeRouter
	if s, ok := c.subs[subID]; ok {
		router = s.router
	}
	release := ctxGuard(ctx, c.pubConn)
	defer release()
	if err := Send(c.pubConn, &Message{Type: TypeUnsubscribe, ClientID: c.ID, Router: router, SubID: subID}); err != nil {
		return ctxErr(ctx, err)
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return ctxErr(ctx, err)
	}
	if err := expect(reply, TypeUnsubscribeOK); err != nil {
		return err
	}
	if s, ok := c.subs[subID]; ok {
		delete(c.subs, subID)
		s.closeHandle()
	}
	return nil
}

// RefreshGroupKey fetches the current payload key from the publisher;
// it fails for revoked clients — the mechanism that locks them out of
// new publications.
func (c *Client) RefreshGroupKey() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshGroupKeyLocked()
}

func (c *Client) refreshGroupKeyLocked() error {
	if c.pubConn == nil {
		return fmt.Errorf("%w: client %s has no publisher", ErrNotConnected, c.ID)
	}
	if err := Send(c.pubConn, &Message{Type: TypeGroupKey, ClientID: c.ID}); err != nil {
		return err
	}
	reply, err := Recv(c.pubConn)
	if err != nil {
		return err
	}
	if err := expect(reply, TypeGroupKeyOK); err != nil {
		return err
	}
	return c.installGroupKeyLocked(reply.Blob, reply.Epoch)
}

func (c *Client) installGroupKeyLocked(blob []byte, epoch uint64) error {
	raw, err := scrypto.DecryptPK(c.keys, blob)
	if err != nil {
		return fmt.Errorf("broker: unwrapping group key: %w", err)
	}
	key, err := scrypto.SymmetricKeyFromBytes(raw)
	if err != nil {
		return fmt.Errorf("broker: parsing group key: %w", err)
	}
	c.groupKey = key
	c.epoch = epoch
	return nil
}

// Epoch returns the client's current group key epoch.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Attach registers this client's delivery channel with the router and
// starts the delivery pump that feeds every Subscription handle.
// Deliveries are decrypted once and routed to the handles whose
// subscriptions the router reports as matched. The pump stops when the
// connection drops, ctx is cancelled, or the client closes.
func (c *Client) Attach(ctx context.Context, conn net.Conn) error {
	_, err := c.listen(ctx, conn, false)
	return err
}

// Listen binds a merged client-wide delivery channel, the
// pre-Subscription surface. Every delivery for this client — whatever
// subscription matched — is sent (blocking) on the returned channel,
// which closes when the connection does. A pump started by Listen
// feeds only the merged channel; Subscription handles stay empty on
// this connection.
//
// Deprecated: use Attach and per-Subscription Next/Deliveries instead;
// the merged channel cannot tell subscriptions apart.
func (c *Client) Listen(conn net.Conn) (<-chan Delivery, error) {
	return c.listen(context.Background(), conn, true)
}

func (c *Client) listen(ctx context.Context, conn net.Conn, withStream bool) (<-chan Delivery, error) {
	if err := c.closedErr(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release := ctxGuard(ctx, conn)
	if err := Send(conn, &Message{Type: TypeListen, ClientID: c.ID}); err != nil {
		release()
		return nil, ctxErr(ctx, err)
	}
	ack, err := Recv(conn)
	if err != nil {
		release()
		return nil, ctxErr(ctx, err)
	}
	if err := expect(ack, TypeListenOK); err != nil {
		release()
		return nil, err
	}
	release()
	c.mu.Lock()
	c.routerConn = conn
	c.mu.Unlock()
	var out chan Delivery
	if withStream {
		out = make(chan Delivery)
	}
	c.wg.Add(1)
	go c.pump(ctx, conn, out)
	return out, nil
}

// pump is the delivery loop of one router connection: it decrypts
// each delivery once and routes it. A pump started by Attach feeds the
// matched Subscription handles; a pump started by the deprecated
// Listen feeds only the merged out channel (handles subscribe-time
// state would otherwise fill unconsumed buffers and stall the pump).
// Both paths block when the consumer lags, so backpressure reaches the
// router instead of deliveries being dropped.
func (c *Client) pump(ctx context.Context, conn net.Conn, out chan Delivery) {
	defer c.wg.Done()
	if out != nil {
		defer close(out)
	} else {
		// Attach mode: when the delivery connection is lost (router
		// gone, ctx cancelled, client closed), close every live
		// Subscription handle so blocked Next/Consume callers unwind
		// with ErrClosed — the handle analogue of the legacy channel
		// closing. Buffered deliveries still drain first. The dead
		// handles also leave c.subs, so a later re-Attach dispatches
		// to fresh handles only (re-Subscribe after reconnecting).
		defer func() {
			c.mu.Lock()
			subs := make([]*Subscription, 0, len(c.subs))
			for id, s := range c.subs {
				subs = append(subs, s)
				delete(c.subs, id)
			}
			c.mu.Unlock()
			for _, s := range subs {
				s.closeHandle()
			}
		}()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-c.done:
			_ = conn.Close()
		case <-stop:
		}
	}()
	for {
		m, err := Recv(conn)
		if err != nil {
			return
		}
		if m.Type != TypeDeliver {
			continue
		}
		d := c.decryptDelivery(m)
		d.SubIDs = m.SubIDs
		c.dispatch(d, out)
	}
}

// dispatch routes one delivery: to the merged stream in legacy Listen
// mode, to the matched subscription handles otherwise.
func (c *Client) dispatch(d Delivery, out chan Delivery) {
	if out != nil {
		select {
		case out <- d:
		case <-c.done:
		}
		return
	}
	c.mu.Lock()
	targets := make([]*Subscription, 0, len(d.SubIDs))
	if len(d.SubIDs) == 0 {
		// Router did not name subscriptions: offer to every handle.
		for _, s := range c.subs {
			targets = append(targets, s)
		}
	} else {
		for _, id := range d.SubIDs {
			if s, ok := c.subs[id]; ok {
				targets = append(targets, s)
			}
		}
	}
	c.mu.Unlock()
	for _, s := range targets {
		s.offer(d)
	}
}

// decryptDelivery recovers a payload, refreshing the group key when
// the publication is from a newer epoch.
func (c *Client) decryptDelivery(m *Message) Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.groupKey == nil || m.Epoch > c.epoch {
		if err := c.refreshGroupKeyLocked(); err != nil {
			return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: cannot obtain group key: %w", err)}
		}
	}
	if m.Epoch != c.epoch {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: no key for epoch %d", m.Epoch)}
	}
	plain, err := scrypto.Open(c.groupKey, m.Payload)
	if err != nil {
		return Delivery{Epoch: m.Epoch, Err: fmt.Errorf("broker: decrypting payload: %w", err)}
	}
	return Delivery{Payload: plain, Epoch: m.Epoch}
}

// Close shuts down the client's connections, closes every Subscription
// handle, and waits for the delivery pump. Safe to call more than
// once.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.mu.Lock()
	if c.routerConn != nil {
		_ = c.routerConn.Close()
	}
	if c.pubConn != nil {
		_ = c.pubConn.Close()
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = make(map[uint64]*Subscription)
	c.mu.Unlock()
	for _, s := range subs {
		s.closeHandle()
	}
	c.wg.Wait()
}
