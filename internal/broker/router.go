package broker

import (
	"context"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scbr/internal/attest"
	"scbr/internal/core"
	"scbr/internal/federation"
	"scbr/internal/placement"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/streamhub"
)

// provisionPayload is the secret bundle the publisher provisions into
// the enclave after attestation: the symmetric key SK, the publisher's
// signature-verification key, and the matching scheme the publisher
// encodes under — its ID plus whatever public parameters the router's
// slices need. Carrying the scheme inside the attested bundle makes
// the negotiation tamper-evident: the untrusted infrastructure cannot
// downgrade a deployment to a different scheme without failing the
// provisioning MAC.
type provisionPayload struct {
	SK        []byte `json:"sk"`
	VerifyKey []byte `json:"verify_key"` // PKIX RSA
	Scheme    string `json:"scheme,omitempty"`
	Params    []byte `json:"scheme_params,omitempty"`
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// EnclaveImage is the measured code image; the publisher pins its
	// measurement during attestation.
	EnclaveImage []byte
	// EnclaveSigner signs the image (MRSIGNER).
	EnclaveSigner *rsa.PublicKey
	// Scheme names the matching scheme this router's slices store and
	// match under (internal/scheme; empty = the default "sgx-plain").
	// Provisioning, registration, publication, and scheme-aware listen
	// frames announcing a different scheme are rejected with
	// ErrSchemeMismatch.
	Scheme string
	// EPCBytes bounds the total enclave page cache across all matcher
	// slices (default: the paper's ~93 MB usable EPC). With k
	// partitions each slice's enclave gets an identical page-aligned
	// ceil(1/k) share (SliceEPCShare) — identical because EPCBytes is
	// part of the measured enclave identity migration seals state to —
	// so a database that would page on one enclave fits k enclaves'
	// EPCs: the §3.4 StreamHub answer to the Fig. 8 paging cliff.
	// deploy.Plan sizes k from the scheme's footprint model so each
	// slice's working set stays under its share.
	EPCBytes uint64
	// PadRecordTo is forwarded to the engines (see core.Options).
	PadRecordTo int
	// Partitions splits the subscription database across this many
	// enclave matcher slices (default 1, max 256). Registrations hash
	// to a virtual shard whose slice the placement map names;
	// publications are matched by every slice in parallel and the
	// result sets merged. Repartition resizes the slice count online.
	Partitions int
	// PlacementShards fixes the virtual shard count of the movable
	// placement map — the granularity of online migration (default
	// placement.DefaultShards, max placement.MaxShards). Raised to
	// Partitions when smaller, since every slice must own at least one
	// shard. The shard count cannot change after construction: it is
	// packed into every issued subscription ID.
	PlacementShards int
	// PlacementSeed seeds the rendezvous election assigning shards to
	// slices (0 = a fixed default). Deployments only need to vary it to
	// de-correlate placement across routers.
	PlacementSeed int64
	// Switchless routes publications to the matchers through
	// untrusted-memory rings consumed by resident enclave workers (one
	// ring and one worker per partition) instead of one ecall per
	// publication — the paper's §6 "message exchanges at the enclave
	// border". Registrations and removals keep their synchronous ecall
	// path (they must be acknowledged).
	Switchless bool
	// RingCapacity sizes each switchless publication ring (rounded up
	// to a power of two; default 128). Ignored unless Switchless.
	RingCapacity int
	// DeliveryQueueLen bounds each listening client's outbound
	// delivery queue (default 256 messages). OverflowPolicy decides
	// what happens to a client whose queue fills.
	DeliveryQueueLen int
	// OverflowPolicy is the slow-consumer policy applied when a
	// client's delivery queue overflows (default OverflowDropOldest:
	// evict the oldest queued frame, recoverable from the replay ring
	// on resume; the pre-cursor behaviour is OverflowDisconnect).
	OverflowPolicy OverflowPolicy
	// ReplayRingLen bounds each client's delivery replay ring (default
	// 512 messages) — the window a reconnecting listener can recover
	// by presenting its last-seen cursor. Negative disables the ring
	// entirely: cursors still stamp (loss stays observable as gaps),
	// but nothing is retained for replay and no payload memory is
	// pinned per client.
	ReplayRingLen int
	// ResumeWindow bounds how long a detached client's delivery state
	// (cursor + replay ring, and the payloads it pins) is retained for
	// resumption (default 5m). A client returning later is a fresh
	// listener. Negative disables eviction — unbounded growth under
	// client churn; use only in tests.
	ResumeWindow time.Duration
	// DrainTimeout bounds how long Close waits for the per-client
	// delivery writers to flush already-matched deliveries before
	// severing the connections (default 2s).
	DrainTimeout time.Duration

	// RouterID names this router in a federation overlay. Setting it
	// (or Peers) enables federation: the router accepts attested peer
	// links, exchanges subscription digests, and forwards publications
	// toward matching downstreams.
	RouterID string
	// Peers lists the addresses of peer routers this router dials
	// (with retry) to establish attested links. The reverse direction
	// of each link needs no entry — links are bidirectional.
	Peers []string
	// PeerVerifier vouches for peer platforms (their quoting keys), as
	// the attestation service does for publishers. Required when
	// federation is enabled.
	PeerVerifier *attest.Service
	// PeerIdentities pins the enclave identities accepted from peers.
	// Empty means "my own identity" — the common fleet launched from
	// one measured image.
	PeerIdentities []attest.Identity
	// FederationTTL is the hop budget forwarded publications start
	// with (default federation.DefaultTTL).
	FederationTTL int
}

// Router hosts the SCBR filtering engine inside enclaves on the
// untrusted infrastructure. One router serves one service provider —
// the paper's deployment; run several routers for multi-tenancy. The
// subscription database is partitioned across cfg.Partitions enclave
// matcher slices (streamhub.Hub), and the router's state is split by
// concern so registrations, matching, and delivery never serialise on
// one lock:
//
//   - keyMu (read-mostly): the provisioned SK and verify key,
//   - ctlMu: the control plane — client refs, subscription ownership,
//     and the registration log,
//   - connMu: the accept loop's connection set,
//   - one lock per partition: that slice's enclave entries and meter,
//   - the delivery table's own lock: per-client outbound queues.
type Router struct {
	dev     *sgx.Device
	quoter  *attest.Quoter
	cfg     RouterConfig
	backend *scheme.Backend // the resolved matching scheme

	hub    *streamhub.Hub
	schema *pubsub.Schema
	pm     *placement.Map
	parts  []*partition
	// p0 is partition 0 — the attestation slice. It is never migrated
	// away or removed by a resize (shrink drops the highest indices,
	// and the minimum slice count is 1), so federation, provisioning,
	// and sealing reference it through this stable field instead of
	// reading r.parts under the data-plane lock.
	p0 *partition
	// epcPer is the per-slice EPC share computed at construction;
	// slices added by Repartition launch with the same share.
	epcPer uint64

	keyMu        sync.RWMutex
	sk           *scrypto.SymmetricKey
	verifyKey    *rsa.PublicKey
	schemeParams []byte // provisioned public scheme parameters

	ctlMu     sync.RWMutex
	clientRef map[string]uint32
	refName   []string
	subOwner  map[uint64]string
	regLog    []logEntry
	regPos    map[uint64]int // SubID → regLog index (O(1) removal)

	// stateMu makes the register/remove two-step (engine mutation,
	// then log mutation) atomic with respect to SealState: mutators
	// hold it shared for the span of both steps, the sealer exclusively
	// while snapshotting, so a sealed blob never captures an engine/log
	// divergence a client was already acknowledged across. The
	// migration engine reuses the same fence: placement diverts flip
	// and shard snapshots are taken under the exclusive lock, so a
	// registration resolves its shard's slice and lands there under one
	// shared hold — it either precedes the divert (and is in the
	// migrated snapshot) or follows it (and registers on the
	// destination directly).
	stateMu sync.RWMutex

	// planeMu fences the data plane for slice-set changes: every
	// publication path holds it shared end to end (dispatch through
	// delivery on the sync path, dispatch through ring push on the
	// switchless path), and Repartition holds it exclusively while
	// appending or removing slices, so r.parts and the per-job slot
	// layout are stable within any single publication.
	planeMu sync.RWMutex

	// Migration engine state (migrate.go): migMu admits one Repartition
	// at a time; migShards (guarded by stateMu) names the shards of the
	// in-flight move group; migEntryMu serialises per-entry imports
	// against removals on moving shards; migRemoved (guarded by
	// migEntryMu) records removals that must not be resurrected by a
	// later import; dedupActive arms per-item delivery dedup during the
	// two-copy migration window.
	migMu       sync.Mutex
	migShards   map[int]bool
	migEntryMu  sync.Mutex
	migRemoved  map[uint64]bool
	dedupActive atomic.Bool

	connMu   sync.Mutex
	conns    map[net.Conn]bool
	listener net.Listener

	delivery *deliveryTable

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once

	// Switchless publication spine (nil merge channel when disabled).
	pushMu     sync.Mutex // aligns ring pushes with job dispatch across partitions
	merge      chan *matchJob
	mergerDone chan struct{}

	// jobPool recycles matchJobs — batch carriers plus their per-slice
	// merge slots — across publications on both publication paths.
	jobPool sync.Pool

	// Federation overlay (nil when disabled): digest state plus the
	// live attested peer links.
	fed      *federation.Overlay
	fedMu    sync.Mutex
	fedLinks map[*peerLink]bool
}

// NewRouter launches the router's enclave slices on the given device
// and builds one scheme store per slice over enclave memory (the
// containment engine for sgx-plain, the ciphertext-vector store for
// aspe). On any failure after launch every launched enclave is
// terminated before the error returns, so a failed construction never
// leaks EPC pages.
func NewRouter(dev *sgx.Device, quoter *attest.Quoter, cfg RouterConfig) (*Router, error) {
	if len(cfg.EnclaveImage) == 0 {
		return nil, errors.New("broker: router needs an enclave image")
	}
	backend, err := scheme.Lookup(cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	if (cfg.RouterID != "" || len(cfg.Peers) > 0) && !backend.Caps.FederationDigests {
		// The explicit capability gate: federation needs §3.2 containment
		// digests over subscription plaintext, which this scheme never
		// reveals to the router.
		return nil, fmt.Errorf("broker: scheme %q cannot join a federation overlay (no federation-digest support)", backend.Name)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitions < 0 || cfg.Partitions > streamhub.MaxPartitions {
		return nil, fmt.Errorf("broker: partition count %d out of range [1,%d]", cfg.Partitions, streamhub.MaxPartitions)
	}
	if cfg.PlacementShards == 0 {
		cfg.PlacementShards = placement.DefaultShards
	}
	if cfg.PlacementShards < 0 || cfg.PlacementShards > placement.MaxShards {
		return nil, fmt.Errorf("broker: placement shard count %d out of range [1,%d]", cfg.PlacementShards, placement.MaxShards)
	}
	if cfg.PlacementShards < cfg.Partitions {
		cfg.PlacementShards = cfg.Partitions
	}
	pm, err := placement.New(cfg.PlacementShards, cfg.Partitions, cfg.PlacementSeed)
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	epcPer := SliceEPCShare(cfg.EPCBytes, cfg.Partitions)

	r := &Router{
		dev:        dev,
		quoter:     quoter,
		cfg:        cfg,
		backend:    backend,
		pm:         pm,
		epcPer:     epcPer,
		clientRef:  make(map[string]uint32),
		subOwner:   make(map[uint64]string),
		regPos:     make(map[uint64]int),
		migShards:  make(map[int]bool),
		migRemoved: make(map[uint64]bool),
		conns:      make(map[net.Conn]bool),
		delivery:   newDeliveryTable(cfg.DeliveryQueueLen, cfg.ReplayRingLen, cfg.OverflowPolicy, cfg.ResumeWindow),
		closing:    make(chan struct{}),
	}
	ok := false
	defer func() {
		if !ok {
			for _, p := range r.parts {
				p.enclave.Terminate()
			}
		}
	}()
	schema := pubsub.NewSchema()
	r.schema = schema
	slices := make([]scheme.Slice, 0, cfg.Partitions)
	for i := 0; i < cfg.Partitions; i++ {
		enclave, launchErr := dev.Launch(cfg.EnclaveImage, cfg.EnclaveSigner,
			sgx.EnclaveConfig{EPCBytes: epcPer})
		if launchErr != nil {
			return nil, fmt.Errorf("broker: launching slice enclave: %w", launchErr)
		}
		p := &partition{idx: i, enclave: enclave}
		r.parts = append(r.parts, p)
		slice, sliceErr := backend.NewSlice(enclave.Memory(), schema, core.Options{PadRecordTo: cfg.PadRecordTo})
		if sliceErr != nil {
			return nil, fmt.Errorf("broker: building slice store: %w", sliceErr)
		}
		p.slice = slice
		if ps, isPlain := slice.(*scheme.PlainSlice); isPlain {
			p.engine = ps.Engine()
		}
		slices = append(slices, slice)
	}
	r.p0 = r.parts[0]
	hub, err := streamhub.NewFromSlicesPlaced(schema, slices, pm)
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	r.hub = hub
	if fp := backend.Footprint; !fp.Zero() {
		hub.SetEntryCost(func(encLen int) uint64 {
			if encLen < 0 {
				encLen = 0
			}
			return fp.EntryBytes(encLen)
		})
	}
	r.setHubBudgets(cfg.Partitions)
	if cfg.Switchless {
		if err := r.startSwitchless(); err != nil {
			return nil, err
		}
	}
	if cfg.RouterID != "" || len(cfg.Peers) > 0 {
		if err := r.startFederation(); err != nil {
			r.stopSwitchless()
			return nil, err
		}
	}
	ok = true
	return r, nil
}

// Enclave exposes the router's attestation enclave — partition 0, the
// slice whose quote publishers verify. All slices launch from the same
// image with the same per-slice EPC share, so they carry the same
// measured identity.
func (r *Router) Enclave() *sgx.Enclave { return r.p0.enclave }

// Engine exposes partition 0's routing engine (experiments read its
// stats; with the default single partition it is the whole index). Use
// DataPlaneStats for the aggregate of a partitioned router. Nil when
// the router's matching scheme is not engine-based (e.g. aspe).
func (r *Router) Engine() *core.Engine { return r.p0.engine }

// Scheme returns the canonical ID of the router's matching scheme.
func (r *Router) Scheme() string { return r.backend.Name }

// SchemeCapabilities returns the matching scheme's capability flags.
func (r *Router) SchemeCapabilities() scheme.Capabilities { return r.backend.Caps }

// checkScheme validates a frame's scheme tag against the router's
// scheme (the empty tag means the default scheme, so pre-scheme peers
// keep working against default routers).
func (r *Router) checkScheme(tag string) error {
	if got := scheme.Canonical(tag); got != r.backend.Name {
		return fmt.Errorf("%w: frame encoded under %q, router runs %q", ErrSchemeMismatch, got, r.backend.Name)
	}
	return nil
}

// Partitions returns the number of enclave matcher slices.
func (r *Router) Partitions() int {
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	return len(r.parts)
}

// DataPlaneStats summarises the partitioned index.
type DataPlaneStats struct {
	// Partitions is the number of enclave matcher slices.
	Partitions int
	// Subscriptions is the live count across all slices.
	Subscriptions int
	// PerPartition lists each slice's live subscription count.
	PerPartition []int
	// Bytes sums the slices' enclave arena footprints.
	Bytes uint64
}

// DataPlaneStats aggregates the partition engines.
func (r *Router) DataPlaneStats() DataPlaneStats {
	r.planeMu.RLock()
	st := r.hub.Stats()
	r.planeMu.RUnlock()
	return DataPlaneStats{
		Partitions:    st.Partitions,
		Subscriptions: st.Subscriptions,
		PerPartition:  st.PerPartition,
		Bytes:         st.Bytes,
	}
}

// MeterSnapshot aggregates the slices' enclave meters into one view.
// Each slice's counters are read under its partition lock, so every
// per-slice contribution is coherent; slices are read one at a time,
// so concurrent traffic may land between reads, as with any fleet-wide
// aggregate.
func (r *Router) MeterSnapshot() simmem.Counters {
	var total simmem.Counters
	for _, c := range r.SliceMeterSnapshots() {
		total = total.Add(c)
	}
	return total
}

// SliceMeterSnapshots returns each partition meter's counters, indexed
// by slice. Experiments compare the slowest slice against the sum to
// quantify the partition speed-up (slices run in parallel, so the
// makespan is the max, not the total).
func (r *Router) SliceMeterSnapshots() []simmem.Counters {
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	out := make([]simmem.Counters, len(r.parts))
	for i, p := range r.parts {
		p.mu.Lock()
		out[i] = p.slice.Accessor().Meter().C
		p.mu.Unlock()
	}
	return out
}

// DeliveryQueueDepths reports each listening client's buffered
// delivery count — the backlog the per-client writers have yet to put
// on the wire.
func (r *Router) DeliveryQueueDepths() map[string]int {
	return r.delivery.depths()
}

// DeliverySnapshot reports the delivery layer's loss and recovery
// counters: enqueues, overflow drops, slow-consumer disconnects,
// cursor replays, pause stalls, and unrecoverable replay gaps. Zero
// loss counters with a non-zero Enqueued means every matched delivery
// made it onto a queue.
func (r *Router) DeliverySnapshot() DeliveryCounters {
	return r.delivery.snapshot()
}

// DeliveryLatencySnapshot reports the enqueue→write latency of
// delivered frames — p50/p95/p99 per client and in aggregate — the
// router-side half of the latency the load harness measures end to
// end. Recording is per delivered frame on the live path; replayed
// frames are excluded (their stamps describe a previous connection).
func (r *Router) DeliveryLatencySnapshot() DeliveryLatency {
	return r.delivery.latencySnapshot()
}

// keys returns the provisioned secrets (nil SK before provisioning).
func (r *Router) keys() (*scrypto.SymmetricKey, *rsa.PublicKey) {
	r.keyMu.RLock()
	defer r.keyMu.RUnlock()
	return r.sk, r.verifyKey
}

// Identity returns the enclave identity a publisher should pin.
func (r *Router) Identity() attest.Identity {
	return attest.Identity{
		MRENCLAVE: r.Enclave().MRENCLAVE(),
		MRSIGNER:  r.Enclave().MRSIGNER(),
	}
}

// Serve accepts connections until ctx is cancelled or Close is
// called. Each connection is handled on its own goroutine; ctx
// cancellation severs the listener and every active connection, so
// handler loops blocked in Recv unwind promptly. Serve returns nil
// after Close and ctx.Err() after cancellation.
func (r *Router) Serve(ctx context.Context, l net.Listener) error {
	select {
	case <-r.closing:
		return ErrClosed
	default:
	}
	r.connMu.Lock()
	r.listener = l
	r.connMu.Unlock()
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				_ = l.Close()
				r.connMu.Lock()
				for c := range r.conns {
					_ = c.Close()
				}
				r.connMu.Unlock()
			case <-r.closing:
			case <-stop:
			}
		}()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.closing:
				return nil
			default:
			}
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("broker: accept: %w", err)
		}
		r.connMu.Lock()
		select {
		case <-r.closing:
			// Accepted concurrently with Close: its sweep ran before
			// this conn was registered, so reject it here — a handler
			// started now would outlive Close's wg.Wait and publish
			// into the torn-down pipeline.
			r.connMu.Unlock()
			_ = conn.Close()
			return nil
		default:
		}
		r.conns[conn] = true
		r.wg.Add(1)
		r.connMu.Unlock()
		if ctx.Err() != nil {
			// Accepted concurrently with cancellation: the watcher's
			// sweep may have run before this conn was registered, so
			// sever it here — either the sweep saw it or this does.
			_ = conn.Close()
		}
		go func() {
			defer r.wg.Done()
			defer func() {
				r.connMu.Lock()
				delete(r.conns, conn)
				r.connMu.Unlock()
				_ = conn.Close()
			}()
			r.handleConn(conn)
		}()
	}
}

// Close stops the router: the accept loop, every client connection,
// and every peer link are severed, the switchless pipeline is
// drained, and the per-client delivery writers flush already-matched
// deliveries (bounded by DrainTimeout) before their connections
// close. Safe to call more than once; concurrent callers block until
// the first teardown completes.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.closing)
		r.connMu.Lock()
		if r.listener != nil {
			_ = r.listener.Close()
		}
		for c := range r.conns {
			_ = c.Close()
		}
		r.connMu.Unlock()
		r.fedMu.Lock()
		for link := range r.fedLinks {
			link.stop()
		}
		r.fedMu.Unlock()
		r.wg.Wait() // no producers remain past this point
		if r.fed != nil {
			r.fed.Close()
		}
		r.stopSwitchless()
		r.delivery.close(r.cfg.DrainTimeout)
	})
}

// handleConn dispatches messages from one peer connection. Frames are
// read into one per-connection buffer reused across messages: every
// handler finishes before the next read, and the []byte fields that
// outlive a handler (blobs, payloads, registration records) are fresh
// Base64 decodings, never views of the frame — only m.raw aliases it,
// and the one consumer that keeps raw bytes (the partition rings)
// copies them before the handler returns.
func (r *Router) handleConn(conn net.Conn) {
	var buf []byte
	for {
		var m *Message
		var err error
		m, buf, err = recvAppend(conn, buf)
		if err != nil {
			return // connection closed or corrupt framing
		}
		switch m.Type {
		case TypeProvision:
			err = r.handleProvision(conn, m)
		case TypeRegister:
			err = r.handleRegister(conn, m)
		case TypeRegisterBatch:
			err = r.handleRegisterBatch(conn, m)
		case TypeRemove:
			err = r.handleRemove(conn, m)
		case TypePublish, TypePublishBatch:
			// Publications are fire-and-forget on the wire; a publish
			// that fails authentication is dropped, not answered, so
			// the reply stream stays aligned with request/response
			// messages on the same connection.
			_ = r.handlePublish(m)
			continue
		case TypePeerHello:
			// The connection becomes an attested peer link; it never
			// returns to this loop (runPeer serves it until it drops).
			if err := r.handlePeerHello(conn, m); err != nil {
				sendErr(conn, fmt.Errorf("peer hello: %w", err))
			}
			return
		case TypeListen:
			if err := r.handleListen(conn, m); err != nil {
				sendErr(conn, fmt.Errorf("listen: %w", err))
				return
			}
			// The connection's write side now belongs exclusively to
			// the delivery writer — replying to anything further here
			// would interleave frames with in-flight deliveries. Drain
			// and discard the read side so the close is still observed.
			for {
				if _, err := Recv(conn); err != nil {
					return
				}
			}
		default:
			sendErrf(conn, "unexpected message %q", m.Type)
			return
		}
		if err != nil {
			sendErr(conn, err)
		}
	}
}

// handleProvision runs the router side of remote attestation against
// the attestation slice (partition 0): emit a quote-bound provisioning
// request, then install the secrets the publisher returns. The paper's
// §3.4 partitioning note applies to the keys — "the key management
// [...] could be simply replicated" — so one provisioning run arms
// every slice. The publisher's matching scheme is checked twice: the
// plaintext tag on the provision frame rejects mismatched publishers
// before the attestation round trips, and the scheme ID inside the
// attested bundle is the authoritative, tamper-evident check.
func (r *Router) handleProvision(conn net.Conn, m *Message) error {
	if err := r.checkScheme(m.Scheme); err != nil {
		return err
	}
	p0 := r.p0
	p0.mu.Lock()
	req, ephemeral, err := attest.NewProvisioningRequest(p0.enclave, r.quoter)
	p0.mu.Unlock()
	if err != nil {
		return fmt.Errorf("building provisioning request: %w", err)
	}
	if err := Send(conn, &Message{Type: TypeProvisionReq, Quote: req.Quote, PubKey: req.PubKey}); err != nil {
		return err
	}
	reply, err := Recv(conn)
	if err != nil {
		return err
	}
	if err := expect(reply, TypeProvisionKey); err != nil {
		return err
	}
	p0.mu.Lock()
	secret, err := attest.ReceiveSecret(p0.enclave, ephemeral, reply.Blob)
	p0.mu.Unlock()
	if err != nil {
		return fmt.Errorf("receiving secret: %w", err)
	}
	var payload provisionPayload
	if err := json.Unmarshal(secret, &payload); err != nil {
		return fmt.Errorf("decoding provisioned bundle: %w", err)
	}
	sk, err := scrypto.SymmetricKeyFromBytes(payload.SK)
	if err != nil {
		return fmt.Errorf("decoding SK: %w", err)
	}
	parsed, err := x509.ParsePKIXPublicKey(payload.VerifyKey)
	if err != nil {
		return fmt.Errorf("decoding verify key: %w", err)
	}
	verifyKey, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return fmt.Errorf("verify key is %T, want RSA", parsed)
	}
	if err := r.checkScheme(payload.Scheme); err != nil {
		return err
	}
	if err := r.configureSlices(payload.Params); err != nil {
		return err
	}
	r.keyMu.Lock()
	r.sk = sk
	r.verifyKey = verifyKey
	r.schemeParams = append([]byte(nil), payload.Params...)
	r.keyMu.Unlock()
	return Send(conn, &Message{Type: TypeProvisionOK, Scheme: r.backend.Name})
}

// configureSlices applies the scheme's wire-negotiated public
// parameters to every slice store, inside each slice's enclave.
func (r *Router) configureSlices(params []byte) error {
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	for _, p := range r.parts {
		p.mu.Lock()
		err := p.enclave.Ecall(func() error { return p.slice.Configure(params) })
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("configuring scheme parameters on slice %d: %w", p.idx, err)
		}
	}
	return nil
}

// handleRegister is step ③: hash the registration to a virtual shard,
// resolve the shard's slice through the placement map, then validate
// the publisher's signature and ingest the subscription inside that
// slice's enclave — opening the SK envelope first for sealed-exchange
// schemes, storing the scheme ciphertext as-is otherwise. Only the
// target partition serialises — registrations on other slices, and all
// matching not on this slice, proceed concurrently. Resolution happens
// under the shared state lock, so the registration either precedes a
// migration divert (and is captured in the migrated snapshot) or
// follows it (and lands on the destination slice directly).
func (r *Router) handleRegister(conn net.Conn, m *Message) error {
	if m.ClientID == "" {
		return errors.New("registration without client identity")
	}
	if err := r.checkScheme(m.Scheme); err != nil {
		return err
	}
	r.stateMu.RLock()
	shard := r.hub.ShardForKey([]byte(m.ClientID), m.Blob)
	target := r.hub.SliceForShard(shard)
	subID, spec, haveSpec, err := r.ingestRegistration(shard, target, m.ClientID, m.Blob, m.Sig, 0, false)
	if err != nil {
		r.stateMu.RUnlock()
		return err
	}
	r.ctlMu.Lock()
	r.subOwner[subID] = m.ClientID
	r.regPos[subID] = len(r.regLog)
	r.regLog = append(r.regLog, logEntry{
		SubID:    subID,
		ClientID: m.ClientID,
		Blob:     append([]byte(nil), m.Blob...),
		Sig:      append([]byte(nil), m.Sig...),
	})
	r.ctlMu.Unlock()
	r.stateMu.RUnlock()
	if haveSpec {
		r.fedAddLocal(subID, spec)
	}
	return Send(conn, &Message{Type: TypeRegisterOK, SubID: subID})
}

// handleRegisterBatch is step ③ for a whole batch: one signature —
// over a digest binding every blob to the client identity — is
// verified inside the attestation slice's enclave, then each item is
// ingested on its hash-placed partition with the per-item signature
// check skipped (the batch signature already authenticated the exact
// bytes being ingested). Items are logged with Batch set so restore
// replays them the same way; the sealed state blob is AEAD-
// authenticated by the enclave seal, so skipping per-item signatures
// at replay gives the untrusted host no forgery window. A bad item
// aborts the frame with an error; items ingested before it remain
// registered (the publisher encodes every blob itself, so a mid-batch
// failure indicates publisher-side corruption, not client input).
func (r *Router) handleRegisterBatch(conn net.Conn, m *Message) error {
	if m.ClientID == "" {
		return errors.New("batch registration without client identity")
	}
	if err := r.checkScheme(m.Scheme); err != nil {
		return err
	}
	if len(m.Items) == 0 {
		return Send(conn, &Message{Type: TypeRegisterBatchOK})
	}
	_, verifyKey := r.keys()
	if verifyKey == nil {
		return ErrNotProvisioned
	}
	p0 := r.p0
	p0.mu.Lock()
	err := p0.enclave.Ecall(func() error {
		if err := scrypto.Verify(verifyKey, signedRegistrationBatch(m.Items, m.ClientID), m.Sig); err != nil {
			return fmt.Errorf("batch registration signature invalid: %w", err)
		}
		return nil
	})
	p0.mu.Unlock()
	if err != nil {
		return err
	}
	subIDs := make([]uint64, 0, len(m.Items))
	specs := make([]pubsub.SubscriptionSpec, 0, len(m.Items))
	specIDs := make([]uint64, 0, len(m.Items))
	entries := make([]logEntry, 0, len(m.Items))
	r.stateMu.RLock()
	for i, it := range m.Items {
		shard := r.hub.ShardForKey([]byte(m.ClientID), it.Blob)
		target := r.hub.SliceForShard(shard)
		subID, spec, haveSpec, err := r.ingestRegistration(shard, target, m.ClientID, it.Blob, nil, 0, true)
		if err != nil {
			r.stateMu.RUnlock()
			return fmt.Errorf("batch item %d: %w", i, err)
		}
		subIDs = append(subIDs, subID)
		entries = append(entries, logEntry{
			SubID:    subID,
			ClientID: m.ClientID,
			Blob:     append([]byte(nil), it.Blob...),
			Batch:    true,
		})
		if haveSpec {
			specs = append(specs, spec)
			specIDs = append(specIDs, subID)
		}
	}
	r.ctlMu.Lock()
	for i := range entries {
		r.subOwner[entries[i].SubID] = m.ClientID
		r.regPos[entries[i].SubID] = len(r.regLog)
		r.regLog = append(r.regLog, entries[i])
	}
	r.ctlMu.Unlock()
	r.stateMu.RUnlock()
	for i := range specs {
		r.fedAddLocal(specIDs[i], specs[i])
	}
	return Send(conn, &Message{Type: TypeRegisterBatchOK, SubIDs: subIDs})
}

// ingestRegistration validates one signed registration and indexes it
// in the slice's enclave: on partition target (shard's current slice)
// under a fresh shard-packed ID, or — when assignID is non-zero (the
// state-restore path) — under that ID on its shard's current slice.
// For digest-capable schemes with federation enabled it also returns
// the decoded subscription spec for the overlay. Callers hold stateMu
// (shared on the live path), which keeps the shard→slice resolution
// they did stable across the insert.
//
// preVerified skips the per-item signature check for blobs whose
// authenticity is already established by an enclosing proof: a batch
// signature verified over the whole frame (handleRegisterBatch), or
// the AEAD seal of a restored state blob for batch-logged entries.
func (r *Router) ingestRegistration(shard, target int, clientID string, blob, sig []byte, assignID uint64, preVerified bool) (uint64, pubsub.SubscriptionSpec, bool, error) {
	sk, verifyKey := r.keys()
	if sk == nil {
		return 0, pubsub.SubscriptionSpec{}, false, ErrNotProvisioned
	}
	p := r.parts[target]
	var subID uint64
	var spec pubsub.SubscriptionSpec
	haveSpec := false
	p.mu.Lock()
	err := p.enclave.Ecall(func() error {
		// The signature covers the encoded subscription and the
		// client binding, so the infrastructure cannot re-route
		// subscriptions between clients.
		if !preVerified {
			if err := scrypto.Verify(verifyKey, signedRegistration(blob, clientID), sig); err != nil {
				return fmt.Errorf("registration signature invalid: %w", err)
			}
		}
		enc := blob
		if r.backend.Caps.SealedExchange {
			plain, err := scrypto.Open(sk, blob)
			if err != nil {
				return fmt.Errorf("decrypting subscription: %w", err)
			}
			p.slice.Accessor().Meter().ChargeAES(len(blob))
			enc = plain
		}
		if r.fed != nil && r.backend.Caps.FederationDigests {
			s, err := pubsub.DecodeSubscriptionSpec(enc)
			if err != nil {
				return fmt.Errorf("decoding subscription: %w", err)
			}
			spec, haveSpec = s, true
		}
		// Intern the client identity only now that the registration
		// authenticated: rejected traffic must leave no state behind.
		ref := r.refFor(clientID)
		if assignID != 0 {
			subID = assignID
			return r.hub.RegisterEncodedAssigned(enc, ref, assignID)
		}
		var err error
		subID, err = r.hub.RegisterEncodedAt(shard, target, enc, ref)
		return err
	})
	p.mu.Unlock()
	if err != nil {
		return 0, pubsub.SubscriptionSpec{}, false, err
	}
	return subID, spec, haveSpec, nil
}

// handleRemove unregisters a subscription on the owner's behalf. The
// registration log is indexed by SubID, so removal under churn is
// constant-time (the vacated slot is back-filled with the last entry;
// restore replays by assigned ID, so log order is immaterial). The
// slice holding the subscription comes from the hub's ownership index,
// not the ID — a migrated subscription keeps its ID but lives
// elsewhere. When the subscription's shard is mid-migration the
// removal serialises with the copy engine (migEntryMu) and records
// itself, so a later import cannot resurrect what a client removed.
func (r *Router) handleRemove(conn net.Conn, m *Message) error {
	r.ctlMu.RLock()
	owner, ok := r.subOwner[m.SubID]
	r.ctlMu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSubscription, m.SubID)
	}
	if owner != m.ClientID {
		return fmt.Errorf("%w: subscription %d, client %s", ErrNotOwner, m.SubID, m.ClientID)
	}
	r.stateMu.RLock()
	moving := r.migShards[streamhub.ShardOf(m.SubID)]
	if moving {
		r.migEntryMu.Lock()
	}
	target, live := r.hub.OwnerSlice(m.SubID)
	var err error
	if !live {
		err = fmt.Errorf("%w: %d", ErrUnknownSubscription, m.SubID)
	} else {
		p := r.parts[target]
		p.mu.Lock()
		err = p.enclave.Ecall(func() error { return r.hub.UnregisterIn(m.SubID) })
		p.mu.Unlock()
	}
	if moving {
		if err == nil {
			r.migRemoved[m.SubID] = true
		}
		r.migEntryMu.Unlock()
	}
	if err != nil {
		r.stateMu.RUnlock()
		return err
	}
	r.ctlMu.Lock()
	delete(r.subOwner, m.SubID)
	if pos, found := r.regPos[m.SubID]; found {
		last := len(r.regLog) - 1
		if pos != last {
			r.regLog[pos] = r.regLog[last]
			r.regPos[r.regLog[pos].SubID] = pos
		}
		r.regLog = r.regLog[:last]
		delete(r.regPos, m.SubID)
	}
	r.ctlMu.Unlock()
	r.stateMu.RUnlock()
	r.fedRemoveLocal(m.SubID)
	return Send(conn, &Message{Type: TypeRemoveOK, SubID: m.SubID})
}

// handleListen binds a connection as a client's delivery channel: a
// dedicated writer goroutine owns the write side from here on, and the
// listen ack is queued ahead of any delivery so it is the first frame
// on the wire. A resuming listen presents the client's last-seen
// cursor; retained deliveries past it are replayed right behind the
// ack, and the unrecoverable remainder is reported as the ack's gap.
func (r *Router) handleListen(conn net.Conn, m *Message) error {
	if m.ClientID == "" {
		return errors.New("listen without client identity")
	}
	// Clients learn their deployment's scheme from the subscribe ack
	// and tag subsequent listens; a tagged mismatch is rejected so a
	// client homed on the wrong-scheme router fails loudly instead of
	// waiting for deliveries that can never match. Untagged listens
	// (a client that has not subscribed yet) pass — deliveries carry
	// only group-key-sealed payloads, nothing scheme-encoded.
	if m.Scheme != "" {
		if err := r.checkScheme(m.Scheme); err != nil {
			return err
		}
	}
	return r.delivery.attach(m.ClientID, conn, &Message{Type: TypeListenOK}, m.Cursor, m.Resume)
}

// refFor interns a client identity as the engines' compact client
// reference.
func (r *Router) refFor(clientID string) uint32 {
	r.ctlMu.RLock()
	ref, ok := r.clientRef[clientID]
	r.ctlMu.RUnlock()
	if ok {
		return ref
	}
	r.ctlMu.Lock()
	defer r.ctlMu.Unlock()
	if ref, ok := r.clientRef[clientID]; ok {
		return ref
	}
	ref = uint32(len(r.refName))
	r.clientRef[clientID] = ref
	r.refName = append(r.refName, clientID)
	return ref
}

// signedRegistration is the byte string the publisher signs for step
// ②: the ciphertext bound to the client identity.
func signedRegistration(blob []byte, clientID string) []byte {
	out := make([]byte, 0, len(blob)+len(clientID)+1)
	out = append(out, blob...)
	out = append(out, 0)
	return append(out, clientID...)
}

// signedRegistrationBatch is the byte string one batch signature
// covers: a domain-separated digest over the client identity and
// every item blob, length-prefixed so blob boundaries are unambiguous.
// Signing the digest instead of the concatenation keeps the RSA input
// small however large the batch is, and binding the client identity
// preserves the step-② property that the infrastructure cannot
// re-route subscriptions between clients.
func signedRegistrationBatch(items []BatchItem, clientID string) []byte {
	h := sha256.New()
	h.Write([]byte("scbr-register-batch\x00"))
	h.Write([]byte(clientID))
	var n [8]byte
	for _, it := range items {
		binary.LittleEndian.PutUint64(n[:], uint64(len(it.Blob)))
		h.Write(n[:])
		h.Write(it.Blob)
	}
	return h.Sum(nil)
}

// marshalVerifyKey and unmarshalVerifyKey move the publisher's
// signature key through sealed state.
func marshalVerifyKey(pk *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pk)
	if err != nil {
		return nil, fmt.Errorf("broker: encoding verify key: %w", err)
	}
	return der, nil
}

func unmarshalVerifyKey(der []byte) (*rsa.PublicKey, error) {
	parsed, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("broker: decoding sealed verify key: %w", err)
	}
	pk, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("broker: sealed verify key is %T, want RSA", parsed)
	}
	return pk, nil
}
