package broker

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"scbr/internal/attest"
	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// provisionPayload is the secret bundle the publisher provisions into
// the enclave after attestation: the symmetric key SK plus the
// publisher's signature-verification key.
type provisionPayload struct {
	SK        []byte `json:"sk"`
	VerifyKey []byte `json:"verify_key"` // PKIX RSA
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// EnclaveImage is the measured code image; the publisher pins its
	// measurement during attestation.
	EnclaveImage []byte
	// EnclaveSigner signs the image (MRSIGNER).
	EnclaveSigner *rsa.PublicKey
	// EPCBytes bounds the enclave page cache (default: the paper's
	// ~93 MB usable EPC).
	EPCBytes uint64
	// PadRecordTo is forwarded to the engine (see core.Options).
	PadRecordTo int
	// Switchless routes publications to the matcher through an
	// untrusted-memory ring consumed by a resident enclave worker
	// instead of one ecall per publication — the paper's §6 "message
	// exchanges at the enclave border". Registrations and removals
	// keep their synchronous ecall path (they must be acknowledged).
	Switchless bool
	// RingCapacity sizes the switchless publication ring (rounded up
	// to a power of two; default 128). Ignored unless Switchless.
	RingCapacity int
}

// Router hosts the SCBR filtering engine inside an enclave on the
// untrusted infrastructure. One router serves one service provider —
// the paper's deployment; run several routers for multi-tenancy.
type Router struct {
	dev     *sgx.Device
	quoter  *attest.Quoter
	enclave *sgx.Enclave
	engine  *core.Engine

	mu        sync.Mutex
	sk        *scrypto.SymmetricKey
	verifyKey *rsa.PublicKey
	listeners map[string]net.Conn
	conns     map[net.Conn]bool
	clientRef map[string]uint32
	refName   []string
	subOwner  map[uint64]string
	regLog    []logEntry

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	listener  net.Listener

	// Switchless publication path (nil when disabled).
	pubRing    *sgx.Ring
	pushMu     sync.Mutex // serialises producers onto the SPSC ring
	workerDone chan struct{}
}

// NewRouter launches the router's enclave on the given device and
// builds the engine over enclave memory. On any failure after launch
// the enclave is terminated before the error returns, so a failed
// construction never leaks EPC pages.
func NewRouter(dev *sgx.Device, quoter *attest.Quoter, cfg RouterConfig) (*Router, error) {
	if len(cfg.EnclaveImage) == 0 {
		return nil, errors.New("broker: router needs an enclave image")
	}
	enclave, err := dev.Launch(cfg.EnclaveImage, cfg.EnclaveSigner, sgx.EnclaveConfig{EPCBytes: cfg.EPCBytes})
	if err != nil {
		return nil, fmt.Errorf("broker: launching router enclave: %w", err)
	}
	engine, err := core.NewEngine(enclave.Memory(), pubsub.NewSchema(), core.Options{PadRecordTo: cfg.PadRecordTo})
	if err != nil {
		enclave.Terminate()
		return nil, fmt.Errorf("broker: building engine: %w", err)
	}
	r := &Router{
		dev:       dev,
		quoter:    quoter,
		enclave:   enclave,
		engine:    engine,
		listeners: make(map[string]net.Conn),
		conns:     make(map[net.Conn]bool),
		clientRef: make(map[string]uint32),
		subOwner:  make(map[uint64]string),
		closing:   make(chan struct{}),
	}
	if cfg.Switchless {
		capacity := cfg.RingCapacity
		if capacity <= 0 {
			capacity = 128
		}
		ring, err := sgx.NewRing(capacity)
		if err != nil {
			enclave.Terminate()
			return nil, fmt.Errorf("broker: building publication ring: %w", err)
		}
		r.pubRing = ring
		r.workerDone = make(chan struct{})
		go r.publicationWorker()
	}
	return r, nil
}

// publicationWorker is the resident enclave thread of the switchless
// configuration: it enters the enclave once and matches publications
// straight off the untrusted ring. Per-message failures (tampered
// ciphertext, malformed headers, unprovisioned router) drop the
// publication, exactly as the per-ecall path does for fire-and-forget
// publish messages.
//
// The worker does not use Enclave.ServeRing: that helper charges the
// enclave meter outside any lock and is meant for single-threaded
// harnesses, while here registration ecalls charge the same meter
// concurrently. All meter access below happens under r.mu, like every
// other router path.
func (r *Router) publicationWorker() {
	defer close(r.workerDone)
	entered := false
	var buf []byte
	for {
		raw, ok := r.pubRing.Pop(buf)
		if !ok {
			return // ring closed and drained
		}
		buf = raw
		var m Message
		if err := json.Unmarshal(raw, &m); err != nil {
			continue // drop undecodable publication
		}
		r.mu.Lock()
		meter := r.engine.Accessor().Meter()
		if !entered {
			meter.ChargeTransition() // the worker's one-time entry/exit round trip
			entered = true
		}
		meter.Charge(meter.Cost.SwitchlessPollCycles)
		if r.sk != nil {
			r.routePublicationLocked(&m)
		}
		r.mu.Unlock()
	}
}

// routePublicationLocked runs steps ⑤–⑥ for a publish or publish-batch
// message: match each header inside the enclave and forward the still
// encrypted payloads. Per-item failures (tampered ciphertext,
// malformed headers) drop that publication, exactly as the wire's
// fire-and-forget semantics specify. The caller holds r.mu and has
// accounted the enclave entry (an ecall on the synchronous path, the
// resident worker on the switchless path); a batch therefore costs one
// enclave crossing however many publications it carries.
func (r *Router) routePublicationLocked(m *Message) {
	if m.Type == TypePublishBatch {
		for i := range m.Items {
			item := &Message{Type: TypePublish, Blob: m.Items[i].Blob, Payload: m.Items[i].Payload, Epoch: m.Epoch}
			if matches, err := r.matchPublication(item); err == nil {
				r.forwardLocked(matches, item)
			}
		}
		return
	}
	if matches, err := r.matchPublication(m); err == nil {
		r.forwardLocked(matches, m)
	}
}

// Enclave exposes the router's enclave (for identity pinning and
// experiment counters).
func (r *Router) Enclave() *sgx.Enclave { return r.enclave }

// Engine exposes the routing engine (experiments read its stats).
func (r *Router) Engine() *core.Engine { return r.engine }

// MeterSnapshot returns a consistent copy of the enclave meter's
// counters. The router serialises all enclave work (ecalls and the
// switchless worker) under its lock, so the snapshot is coherent even
// while traffic is flowing.
func (r *Router) MeterSnapshot() simmem.Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.Accessor().Meter().C
}

// Identity returns the enclave identity a publisher should pin.
func (r *Router) Identity() attest.Identity {
	return attest.Identity{
		MRENCLAVE: r.enclave.MRENCLAVE(),
		MRSIGNER:  r.enclave.MRSIGNER(),
	}
}

// Serve accepts connections until ctx is cancelled or Close is
// called. Each connection is handled on its own goroutine; ctx
// cancellation severs the listener and every active connection, so
// handler loops blocked in Recv unwind promptly. Serve returns nil
// after Close and ctx.Err() after cancellation.
func (r *Router) Serve(ctx context.Context, l net.Listener) error {
	select {
	case <-r.closing:
		return ErrClosed
	default:
	}
	r.mu.Lock()
	r.listener = l
	r.mu.Unlock()
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				_ = l.Close()
				r.mu.Lock()
				for c := range r.conns {
					_ = c.Close()
				}
				r.mu.Unlock()
			case <-r.closing:
			case <-stop:
			}
		}()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.closing:
				return nil
			default:
			}
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("broker: accept: %w", err)
		}
		r.mu.Lock()
		r.conns[conn] = true
		r.mu.Unlock()
		if ctx.Err() != nil {
			// Accepted concurrently with cancellation: the watcher's
			// sweep may have run before this conn was registered, so
			// sever it here — either the sweep saw it or this does.
			_ = conn.Close()
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
				_ = conn.Close()
			}()
			r.handleConn(conn)
		}()
	}
}

// Close stops the router, drains the switchless worker if one is
// running, and waits for connection handlers. Safe to call more than
// once.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.closing) })
	r.mu.Lock()
	if r.listener != nil {
		_ = r.listener.Close()
	}
	for c := range r.conns {
		_ = c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	if r.pubRing != nil {
		r.pubRing.Close()
		<-r.workerDone
	}
}

// handleConn dispatches messages from one peer connection.
func (r *Router) handleConn(conn net.Conn) {
	for {
		m, err := Recv(conn)
		if err != nil {
			return // connection closed or corrupt framing
		}
		switch m.Type {
		case TypeProvision:
			err = r.handleProvision(conn)
		case TypeRegister:
			err = r.handleRegister(conn, m)
		case TypeRemove:
			err = r.handleRemove(conn, m)
		case TypePublish, TypePublishBatch:
			// Publications are fire-and-forget on the wire; a publish
			// that fails authentication is dropped, not answered, so
			// the reply stream stays aligned with request/response
			// messages on the same connection.
			_ = r.handlePublish(m)
			continue
		case TypeListen:
			if err := r.handleListen(conn, m); err != nil {
				sendErr(conn, fmt.Errorf("listen: %w", err))
				return
			}
			// The connection now belongs to the delivery path; this
			// handler keeps draining (ignoring) anything the client
			// sends so the connection close is still observed.
			continue
		default:
			sendErrf(conn, "unexpected message %q", m.Type)
			return
		}
		if err != nil {
			sendErr(conn, err)
		}
	}
}

// handleProvision runs the router side of remote attestation: emit a
// quote-bound provisioning request, then install the secrets the
// publisher returns.
func (r *Router) handleProvision(conn net.Conn) error {
	req, ephemeral, err := attest.NewProvisioningRequest(r.enclave, r.quoter)
	if err != nil {
		return fmt.Errorf("building provisioning request: %w", err)
	}
	if err := Send(conn, &Message{Type: TypeProvisionReq, Quote: req.Quote, PubKey: req.PubKey}); err != nil {
		return err
	}
	reply, err := Recv(conn)
	if err != nil {
		return err
	}
	if err := expect(reply, TypeProvisionKey); err != nil {
		return err
	}
	secret, err := attest.ReceiveSecret(r.enclave, ephemeral, reply.Blob)
	if err != nil {
		return fmt.Errorf("receiving secret: %w", err)
	}
	var payload provisionPayload
	if err := json.Unmarshal(secret, &payload); err != nil {
		return fmt.Errorf("decoding provisioned bundle: %w", err)
	}
	sk, err := scrypto.SymmetricKeyFromBytes(payload.SK)
	if err != nil {
		return fmt.Errorf("decoding SK: %w", err)
	}
	parsed, err := x509.ParsePKIXPublicKey(payload.VerifyKey)
	if err != nil {
		return fmt.Errorf("decoding verify key: %w", err)
	}
	verifyKey, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return fmt.Errorf("verify key is %T, want RSA", parsed)
	}
	r.mu.Lock()
	r.sk = sk
	r.verifyKey = verifyKey
	r.mu.Unlock()
	return Send(conn, &Message{Type: TypeProvisionOK})
}

// handleRegister is step ③: validate the publisher's signature, then
// decrypt and index the subscription inside the enclave.
func (r *Router) handleRegister(conn net.Conn, m *Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sk == nil {
		return ErrNotProvisioned
	}
	if m.ClientID == "" {
		return errors.New("registration without client identity")
	}
	var subID uint64
	err := r.enclave.Ecall(func() error {
		// The signature covers the encrypted subscription and the
		// client binding, so the infrastructure cannot re-route
		// subscriptions between clients.
		if err := scrypto.Verify(r.verifyKey, signedRegistration(m.Blob, m.ClientID), m.Sig); err != nil {
			return fmt.Errorf("registration signature invalid: %w", err)
		}
		plain, err := scrypto.Open(r.sk, m.Blob)
		if err != nil {
			return fmt.Errorf("decrypting subscription: %w", err)
		}
		r.engine.Accessor().Meter().ChargeAES(len(m.Blob))
		spec, err := pubsub.DecodeSubscriptionSpec(plain)
		if err != nil {
			return fmt.Errorf("decoding subscription: %w", err)
		}
		subID, err = r.engine.Register(spec, r.refFor(m.ClientID))
		return err
	})
	if err != nil {
		return err
	}
	r.subOwner[subID] = m.ClientID
	r.regLog = append(r.regLog, logEntry{
		SubID:    subID,
		ClientID: m.ClientID,
		Blob:     append([]byte(nil), m.Blob...),
		Sig:      append([]byte(nil), m.Sig...),
	})
	return Send(conn, &Message{Type: TypeRegisterOK, SubID: subID})
}

// handleRemove unregisters a subscription on the owner's behalf.
func (r *Router) handleRemove(conn net.Conn, m *Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, ok := r.subOwner[m.SubID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSubscription, m.SubID)
	}
	if owner != m.ClientID {
		return fmt.Errorf("%w: subscription %d, client %s", ErrNotOwner, m.SubID, m.ClientID)
	}
	if err := r.enclave.Ecall(func() error { return r.engine.Unregister(m.SubID) }); err != nil {
		return err
	}
	delete(r.subOwner, m.SubID)
	for i := range r.regLog {
		if r.regLog[i].SubID == m.SubID {
			r.regLog = append(r.regLog[:i], r.regLog[i+1:]...)
			break
		}
	}
	return Send(conn, &Message{Type: TypeRemoveOK, SubID: m.SubID})
}

// handlePublish is steps ⑤–⑥ for both single publications and
// batches: decrypt each header inside the enclave, match, and forward
// the (still encrypted) payloads to every client with a matching
// subscription. A batch crosses the enclave border once — one ecall on
// the synchronous path, one ring pass in the switchless configuration,
// where the whole message is handed to the resident enclave worker
// through the untrusted ring.
func (r *Router) handlePublish(m *Message) error {
	if r.pubRing != nil {
		raw, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("encoding publication for the ring: %w", err)
		}
		r.pushMu.Lock()
		defer r.pushMu.Unlock()
		if err := r.pubRing.Push(raw); err != nil {
			return fmt.Errorf("%w: publication ring: %v", ErrClosed, err)
		}
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sk == nil {
		return ErrNotProvisioned
	}
	return r.enclave.Ecall(func() error {
		r.routePublicationLocked(m)
		return nil
	})
}

// matchPublication is the trusted step ⑤: authenticate and decrypt the
// header, then match it against the index. The caller holds r.mu and
// is responsible for enclave-entry accounting (an ecall on the
// synchronous path, the resident worker on the switchless path).
func (r *Router) matchPublication(m *Message) ([]core.MatchResult, error) {
	plain, err := scrypto.Open(r.sk, m.Blob)
	if err != nil {
		return nil, fmt.Errorf("decrypting header: %w", err)
	}
	r.engine.Accessor().Meter().ChargeAES(len(m.Blob))
	spec, err := pubsub.DecodeEventSpec(plain)
	if err != nil {
		return nil, fmt.Errorf("decoding header: %w", err)
	}
	ev, err := spec.Intern(r.engine.Schema())
	if err != nil {
		return nil, err
	}
	return r.engine.Match(ev)
}

// forwardLocked is step ⑥: deliver the still-encrypted payload once to
// every matched client that is currently listening. The delivery names
// every subscription of that client that matched, so client-side
// Subscription handles can route it without decrypting twice. Caller
// holds r.mu.
func (r *Router) forwardLocked(matches []core.MatchResult, m *Message) {
	// Deduplicate client targets: one delivery per client however many
	// of its subscriptions matched.
	perClient := make(map[uint32][]uint64, len(matches))
	order := make([]uint32, 0, len(matches))
	for _, match := range matches {
		if _, ok := perClient[match.ClientRef]; !ok {
			order = append(order, match.ClientRef)
		}
		perClient[match.ClientRef] = append(perClient[match.ClientRef], match.SubID)
	}
	for _, ref := range order {
		name := r.refName[ref]
		conn, ok := r.listeners[name]
		if !ok {
			continue // client not currently listening
		}
		if err := Send(conn, &Message{Type: TypeDeliver, Payload: m.Payload, Epoch: m.Epoch, SubIDs: perClient[ref]}); err != nil {
			// A broken listener must not block the others.
			delete(r.listeners, name)
			_ = conn.Close()
		}
	}
}

// handleListen binds a connection as a client's delivery channel.
func (r *Router) handleListen(conn net.Conn, m *Message) error {
	if m.ClientID == "" {
		return errors.New("listen without client identity")
	}
	r.mu.Lock()
	if old, ok := r.listeners[m.ClientID]; ok {
		_ = old.Close()
	}
	r.listeners[m.ClientID] = conn
	r.mu.Unlock()
	return Send(conn, &Message{Type: TypeListenOK})
}

// refFor interns a client identity as the engine's compact client
// reference. Caller holds r.mu.
func (r *Router) refFor(clientID string) uint32 {
	if ref, ok := r.clientRef[clientID]; ok {
		return ref
	}
	ref := uint32(len(r.refName))
	r.clientRef[clientID] = ref
	r.refName = append(r.refName, clientID)
	return ref
}

// signedRegistration is the byte string the publisher signs for step
// ②: the ciphertext bound to the client identity.
func signedRegistration(blob []byte, clientID string) []byte {
	out := make([]byte, 0, len(blob)+len(clientID)+1)
	out = append(out, blob...)
	out = append(out, 0)
	return append(out, clientID...)
}

// marshalVerifyKey and unmarshalVerifyKey move the publisher's
// signature key through sealed state.
func marshalVerifyKey(pk *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pk)
	if err != nil {
		return nil, fmt.Errorf("broker: encoding verify key: %w", err)
	}
	return der, nil
}

func unmarshalVerifyKey(der []byte) (*rsa.PublicKey, error) {
	parsed, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("broker: decoding sealed verify key: %w", err)
	}
	pk, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("broker: sealed verify key is %T, want RSA", parsed)
	}
	return pk, nil
}
