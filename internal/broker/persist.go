package broker

import (
	"encoding/json"
	"errors"
	"fmt"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
)

// Sealed-state persistence: §2 of the paper describes how an enclave
// restarts without a fresh remote attestation by sealing its secrets
// and state to disk under the enclave-specific seal key, with a
// platform monotonic counter preventing the untrusted host from
// serving a stale (rolled-back) snapshot.
//
// The router seals (a) the provisioned secrets and (b) its
// registration log — the signed, SK-encrypted subscriptions exactly as
// the publisher submitted them. Restore replays the log through the
// same validation path as live registrations, reproducing the
// subscription IDs clients hold.

// stateCounter names the router's rollback-protection counter.
const stateCounter = "scbr-router-state"

// ErrStateRollback indicates the supplied snapshot is not the most
// recently sealed one.
var ErrStateRollback = errors.New("broker: sealed state is stale (rollback detected)")

// logEntry is one accepted registration, stored ciphertext-at-rest.
type logEntry struct {
	SubID    uint64 `json:"sub_id"`
	ClientID string `json:"client_id"`
	Blob     []byte `json:"blob"` // {s}SK
	Sig      []byte `json:"sig"`
}

// routerState is the sealed snapshot.
type routerState struct {
	SK        []byte     `json:"sk"`
	VerifyKey []byte     `json:"verify_key"`
	NextRef   uint32     `json:"next_ref"`
	RefNames  []string   `json:"ref_names"`
	Log       []logEntry `json:"log"`
}

// SealState snapshots the router's trusted state, bound to a fresh
// monotonic counter value. The returned blob is safe to store on
// untrusted disk; only the latest blob will restore.
func (r *Router) SealState() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sk == nil {
		return nil, fmt.Errorf("%w: nothing to seal", ErrNotProvisioned)
	}
	verifyDER, err := marshalVerifyKey(r.verifyKey)
	if err != nil {
		return nil, err
	}
	state := routerState{
		SK:        r.sk.Bytes(),
		VerifyKey: verifyDER,
		NextRef:   uint32(len(r.refName)),
		RefNames:  append([]string(nil), r.refName...),
		Log:       make([]logEntry, 0, len(r.regLog)),
	}
	state.Log = append(state.Log, r.regLog...)
	raw, err := json.Marshal(&state)
	if err != nil {
		return nil, fmt.Errorf("broker: encoding state: %w", err)
	}
	counter := r.dev.IncrementCounter(stateCounter)
	var blob []byte
	err = r.enclave.Ecall(func() error {
		var sealErr error
		blob, sealErr = r.enclave.Seal(sgx.SealToMRENCLAVE, raw, counterAAD(counter))
		return sealErr
	})
	if err != nil {
		return nil, fmt.Errorf("broker: sealing state: %w", err)
	}
	return blob, nil
}

// RestoreState rehydrates a router from a sealed snapshot: secrets are
// unsealed inside the enclave, the counter binding is checked against
// the platform counter, and the registration log is replayed through
// full signature verification and decryption. The router must be
// freshly constructed (no provisioning, no registrations).
func (r *Router) RestoreState(blob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sk != nil || len(r.subOwner) > 0 {
		return errors.New("broker: restore requires a fresh router")
	}
	counter := r.dev.ReadCounter(stateCounter)
	var raw []byte
	err := r.enclave.Ecall(func() error {
		var unsealErr error
		raw, unsealErr = r.enclave.Unseal(blob, counterAAD(counter))
		return unsealErr
	})
	if err != nil {
		// Distinguish rollback from corruption is impossible from the
		// MAC alone; both surface as a rollback-or-corrupt failure.
		return fmt.Errorf("%w: %v", ErrStateRollback, err)
	}
	var state routerState
	if err := json.Unmarshal(raw, &state); err != nil {
		return fmt.Errorf("broker: decoding state: %w", err)
	}
	sk, err := scrypto.SymmetricKeyFromBytes(state.SK)
	if err != nil {
		return fmt.Errorf("broker: decoding sealed SK: %w", err)
	}
	verifyKey, err := unmarshalVerifyKey(state.VerifyKey)
	if err != nil {
		return err
	}
	r.sk = sk
	r.verifyKey = verifyKey
	for i, name := range state.RefNames {
		r.clientRef[name] = uint32(i)
	}
	r.refName = append(r.refName, state.RefNames...)

	for _, ent := range state.Log {
		if err := r.replayRegistration(ent); err != nil {
			return fmt.Errorf("broker: replaying subscription %d: %w", ent.SubID, err)
		}
	}
	return nil
}

// replayRegistration re-validates and re-indexes one logged
// registration under its original ID. Caller holds r.mu.
func (r *Router) replayRegistration(ent logEntry) error {
	err := r.enclave.Ecall(func() error {
		if err := scrypto.Verify(r.verifyKey, signedRegistration(ent.Blob, ent.ClientID), ent.Sig); err != nil {
			return fmt.Errorf("registration signature invalid: %w", err)
		}
		plain, err := scrypto.Open(r.sk, ent.Blob)
		if err != nil {
			return fmt.Errorf("decrypting subscription: %w", err)
		}
		spec, err := pubsub.DecodeSubscriptionSpec(plain)
		if err != nil {
			return fmt.Errorf("decoding subscription: %w", err)
		}
		sub, err := pubsub.Normalize(r.engine.Schema(), spec)
		if err != nil {
			return err
		}
		return r.engine.RegisterAssigned(sub, r.refFor(ent.ClientID), ent.SubID)
	})
	if err != nil {
		return err
	}
	r.subOwner[ent.SubID] = ent.ClientID
	r.regLog = append(r.regLog, ent)
	return nil
}

func counterAAD(counter uint64) []byte {
	aad := make([]byte, 8)
	for i := 0; i < 8; i++ {
		aad[i] = byte(counter >> (8 * i))
	}
	return aad
}
