package broker

import (
	"encoding/json"
	"errors"
	"fmt"

	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/streamhub"
)

// Sealed-state persistence: §2 of the paper describes how an enclave
// restarts without a fresh remote attestation by sealing its secrets
// and state to disk under the enclave-specific seal key, with a
// platform monotonic counter preventing the untrusted host from
// serving a stale (rolled-back) snapshot.
//
// The router seals (a) the provisioned secrets and (b) its
// registration log — the signed, SK-encrypted subscriptions exactly as
// the publisher submitted them. Restore replays the log through the
// same validation path as live registrations, reproducing the
// subscription IDs clients hold: each ID carries its partition index,
// so every subscription lands back on the slice that issued it. The
// log is unordered (removal back-fills), which is fine — replay
// assigns explicit IDs, so log order is immaterial.
//
// Sealing happens in the attestation slice (partition 0); all slices
// share one measured identity, so the blob binds to the fleet's code.

// stateCounter names the router's rollback-protection counter.
const stateCounter = "scbr-router-state"

// ErrStateRollback indicates the supplied snapshot is not the most
// recently sealed one.
var ErrStateRollback = errors.New("broker: sealed state is stale (rollback detected)")

// logEntry is one accepted registration, stored ciphertext-at-rest.
type logEntry struct {
	SubID    uint64 `json:"sub_id"`
	ClientID string `json:"client_id"`
	Blob     []byte `json:"blob"` // {s}SK
	Sig      []byte `json:"sig,omitempty"`
	// Batch marks an entry accepted through a register-batch frame: it
	// carries no per-item signature — the batch signature verified at
	// ingest covered it. Replay skips the per-item check for these;
	// the sealed state blob is AEAD-authenticated under the enclave
	// seal key, so the untrusted host cannot alter or inject entries
	// without failing the unseal.
	Batch bool `json:"batch,omitempty"`
}

// routerState is the sealed snapshot.
type routerState struct {
	SK        []byte `json:"sk"`
	VerifyKey []byte `json:"verify_key"`
	// Scheme is the matching scheme the logged registrations are
	// encoded under, with its provisioned public parameters. Restore
	// fails fast with ErrSchemeMismatch when the restoring router runs
	// a different scheme — replaying the log would misinterpret every
	// stored encoding.
	Scheme       string     `json:"scheme,omitempty"`
	SchemeParams []byte     `json:"scheme_params,omitempty"`
	NextRef      uint32     `json:"next_ref"`
	RefNames     []string   `json:"ref_names"`
	Log          []logEntry `json:"log"`
	// Shards/Slices/Placement snapshot the movable placement map (the
	// committed shard→slice table) at seal time, so a restored router
	// replays each subscription onto the slice its shard lived on —
	// including placements produced by online repartitioning. Absent
	// in pre-placement blobs; those replay into the restoring router's
	// own placement (shard indices were partition indices then, and
	// every lookup goes through the ownership index, so clients' held
	// IDs stay valid either way).
	Shards    int   `json:"shards,omitempty"`
	Slices    int   `json:"slices,omitempty"`
	Placement []int `json:"placement,omitempty"`
	// Cursors are the per-client delivery cursors at seal time, so a
	// restored router keeps stamping where the old one stopped and a
	// client's resume cursor stays meaningful across the restart. The
	// replay rings are not sealed — deliveries matched before the
	// restart are gone, which a resuming listener observes as its
	// reported gap.
	Cursors map[string]uint64 `json:"cursors,omitempty"`
}

// SealState snapshots the router's trusted state, bound to a fresh
// monotonic counter value. The returned blob is safe to store on
// untrusted disk; only the latest blob will restore.
func (r *Router) SealState() ([]byte, error) {
	r.keyMu.RLock()
	sk, verifyKey, schemeParams := r.sk, r.verifyKey, r.schemeParams
	r.keyMu.RUnlock()
	if sk == nil {
		return nil, fmt.Errorf("%w: nothing to seal", ErrNotProvisioned)
	}
	verifyDER, err := marshalVerifyKey(verifyKey)
	if err != nil {
		return nil, err
	}
	// stateMu excludes in-flight register/remove two-steps, so the
	// snapshot never captures an engine/log divergence; the seal ecall
	// below runs outside it, off the mutators' path.
	r.stateMu.Lock()
	r.ctlMu.RLock()
	pmSnap := r.pm.Snapshot()
	state := routerState{
		SK:           sk.Bytes(),
		VerifyKey:    verifyDER,
		Scheme:       r.backend.Name,
		SchemeParams: append([]byte(nil), schemeParams...),
		NextRef:      uint32(len(r.refName)),
		RefNames:     append([]string(nil), r.refName...),
		Log:          append(make([]logEntry, 0, len(r.regLog)), r.regLog...),
		Cursors:      r.delivery.cursors(),
		Shards:       pmSnap.Shards,
		Slices:       pmSnap.Slices,
		Placement:    pmSnap.Table,
	}
	r.ctlMu.RUnlock()
	r.stateMu.Unlock()
	raw, err := json.Marshal(&state)
	if err != nil {
		return nil, fmt.Errorf("broker: encoding state: %w", err)
	}
	counter := r.dev.IncrementCounter(stateCounter)
	p0 := r.p0
	var blob []byte
	p0.mu.Lock()
	err = p0.enclave.Ecall(func() error {
		var sealErr error
		blob, sealErr = p0.enclave.Seal(sgx.SealToMRENCLAVE, raw, counterAAD(counter))
		return sealErr
	})
	p0.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("broker: sealing state: %w", err)
	}
	return blob, nil
}

// RestoreState rehydrates a router from a sealed snapshot: secrets are
// unsealed inside the enclave, the counter binding is checked against
// the platform counter, and the registration log is replayed through
// full signature verification and decryption onto the partitions the
// logged IDs name. The router must be freshly constructed (no
// provisioning, no registrations) and must have been built with the
// partition count that sealed the snapshot — and with the same
// per-slice EPC share, since the share enters the measured identity
// the blob is sealed to (restoring a fleet resized by Repartition
// means scaling EPCBytes with the partition count).
func (r *Router) RestoreState(blob []byte) error {
	r.keyMu.RLock()
	provisioned := r.sk != nil
	r.keyMu.RUnlock()
	r.ctlMu.RLock()
	populated := len(r.subOwner) > 0
	r.ctlMu.RUnlock()
	if provisioned || populated {
		return errors.New("broker: restore requires a fresh router")
	}
	counter := r.dev.ReadCounter(stateCounter)
	p0 := r.p0
	var raw []byte
	p0.mu.Lock()
	err := p0.enclave.Ecall(func() error {
		var unsealErr error
		raw, unsealErr = p0.enclave.Unseal(blob, counterAAD(counter))
		return unsealErr
	})
	p0.mu.Unlock()
	if err != nil {
		// Distinguishing rollback from corruption is impossible from
		// the MAC alone; both surface as a rollback-or-corrupt failure.
		return fmt.Errorf("%w: %v", ErrStateRollback, err)
	}
	var state routerState
	if err := json.Unmarshal(raw, &state); err != nil {
		return fmt.Errorf("broker: decoding state: %w", err)
	}
	// Fail fast on a scheme disagreement before touching any slice:
	// the sealed log's encodings are only meaningful to the scheme
	// that produced them (an empty sealed ID is a pre-scheme snapshot,
	// i.e. the default scheme).
	if got := scheme.Canonical(state.Scheme); got != r.backend.Name {
		return fmt.Errorf("%w: sealed state is encoded under %q, router runs %q", ErrSchemeMismatch, got, r.backend.Name)
	}
	sk, err := scrypto.SymmetricKeyFromBytes(state.SK)
	if err != nil {
		return fmt.Errorf("broker: decoding sealed SK: %w", err)
	}
	verifyKey, err := unmarshalVerifyKey(state.VerifyKey)
	if err != nil {
		return err
	}
	if err := r.configureSlices(state.SchemeParams); err != nil {
		return fmt.Errorf("broker: restoring scheme parameters: %w", err)
	}
	if state.Shards != 0 {
		// Reinstate the sealed shard→slice table before replaying, so
		// every subscription lands on the slice its shard occupied at
		// seal time — including placements shaped by online resizes.
		if state.Shards != r.pm.Shards() {
			return fmt.Errorf("broker: sealed state uses %d placement shards, router has %d (restore with the sealing shard count)", state.Shards, r.pm.Shards())
		}
		if state.Slices != len(r.parts) {
			return fmt.Errorf("broker: sealed placement covers %d slices, router has %d (restore with the sealing partition count)", state.Slices, len(r.parts))
		}
		if err := r.pm.Install(state.Placement, state.Slices); err != nil {
			return fmt.Errorf("broker: %w", err)
		}
	}
	r.keyMu.Lock()
	r.sk = sk
	r.verifyKey = verifyKey
	r.schemeParams = append([]byte(nil), state.SchemeParams...)
	r.keyMu.Unlock()
	r.ctlMu.Lock()
	for i, name := range state.RefNames {
		r.clientRef[name] = uint32(i)
	}
	r.refName = append(r.refName, state.RefNames...)
	r.ctlMu.Unlock()
	r.delivery.seed(state.Cursors)

	for _, ent := range state.Log {
		if err := r.replayRegistration(ent); err != nil {
			return fmt.Errorf("broker: replaying subscription %d: %w", ent.SubID, err)
		}
	}
	return nil
}

// replayRegistration re-validates and re-indexes one logged
// registration under its original ID, on the slice the placement map
// assigns its shard, through the same scheme-dispatched ingest path
// live registrations take.
func (r *Router) replayRegistration(ent logEntry) error {
	shard := streamhub.ShardOf(ent.SubID)
	if shard >= r.pm.Shards() {
		return fmt.Errorf("subscription names shard %d, but the placement map has %d (restore with the sealing shard count)", shard, r.pm.Shards())
	}
	target := r.hub.SliceForShard(shard)
	if target >= len(r.parts) {
		return fmt.Errorf("shard %d places on slice %d, but the router has %d (restore with the sealing partition count)", shard, target, len(r.parts))
	}
	_, spec, haveSpec, err := r.ingestRegistration(shard, target, ent.ClientID, ent.Blob, ent.Sig, ent.SubID, ent.Batch)
	if err != nil {
		return err
	}
	r.ctlMu.Lock()
	r.subOwner[ent.SubID] = ent.ClientID
	r.regPos[ent.SubID] = len(r.regLog)
	r.regLog = append(r.regLog, ent)
	r.ctlMu.Unlock()
	if haveSpec {
		r.fedAddLocal(ent.SubID, spec)
	}
	return nil
}

func counterAAD(counter uint64) []byte {
	aad := make([]byte, 8)
	for i := 0; i < 8; i++ {
		aad[i] = byte(counter >> (8 * i))
	}
	return aad
}
