package broker

import (
	"bytes"
	"encoding/json"
	"testing"

	"scbr/internal/scheme"
)

// FuzzSchemeTaggedFrame round-trips scheme-tagged protocol frames —
// the provisioning, registration, publication, and listen messages
// whose Scheme field the router's mismatch checks read — through the
// full Send/Recv path (JSON body inside length-prefixed wire frames).
// The scheme tag, blobs, and identities must survive byte-identically:
// the mismatch check and the registration signature both depend on it.
func FuzzSchemeTaggedFrame(f *testing.F) {
	f.Add(string(TypeProvision), "sgx-plain", "", []byte(nil), []byte(nil), uint64(0))
	f.Add(string(TypeRegister), "aspe", "alice", []byte{0xA5, 1, 2}, []byte("sig"), uint64(0))
	f.Add(string(TypePublish), "aspe", "", bytes.Repeat([]byte{7}, 64), []byte(nil), uint64(3))
	f.Add(string(TypeListen), "", "carol", []byte(nil), []byte(nil), uint64(9))
	f.Fuzz(func(t *testing.T, typ, schemeTag, clientID string, blob, sig []byte, epoch uint64) {
		in := &Message{
			Type:     MsgType(typ),
			Scheme:   schemeTag,
			ClientID: clientID,
			Blob:     blob,
			Sig:      sig,
			Epoch:    epoch,
		}
		var buf bytes.Buffer
		if err := Send(&buf, in); err != nil {
			// Some fuzz strings are not valid JSON text (invalid UTF-8
			// is re-coded by encoding/json); an encode refusal is fine,
			// a mangled round trip below is not.
			return
		}
		out, err := Recv(&buf)
		if err != nil {
			t.Fatalf("sent frame does not parse back: %v", err)
		}
		// encoding/json coerces invalid UTF-8 in strings, so compare
		// against the normal form: what the sent JSON parses back to.
		inJSON, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var norm Message
		if err := json.Unmarshal(inJSON, &norm); err != nil {
			t.Fatalf("sent body is not valid JSON: %v", err)
		}
		if out.Type != norm.Type || out.Scheme != norm.Scheme || out.ClientID != norm.ClientID {
			t.Fatalf("tagged fields diverged: %+v vs %+v", out, norm)
		}
		if !bytes.Equal(out.Blob, in.Blob) || !bytes.Equal(out.Sig, in.Sig) || out.Epoch != in.Epoch {
			t.Fatalf("payload fields diverged: %+v vs %+v", out, in)
		}
		// Blobs must be byte-stable regardless of string coercion: the
		// registration signature covers them.
		if tag := scheme.Canonical(out.Scheme); schemeTag == "" && tag != scheme.Plain {
			t.Fatalf("empty tag canonicalised to %q", tag)
		}
	})
}

// FuzzRecvRobustness feeds arbitrary bytes to the frame reader: it
// must reject or parse, never panic, and anything it parses must obey
// the frame bound.
func FuzzRecvRobustness(f *testing.F) {
	var buf bytes.Buffer
	_ = Send(&buf, &Message{Type: TypeProvision, Scheme: "aspe"})
	f.Add(buf.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, '{', '}', '!', '!'})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Recv(bytes.NewReader(raw))
		if err == nil && m == nil {
			t.Fatal("nil message without error")
		}
	})
}
