package broker

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"scbr/internal/attest"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
)

// Publisher is the service provider's data source: it owns the
// public/private pair PK/PK⁻¹ clients encrypt subscriptions under, the
// symmetric key SK it shares with the enclave, the payload group key,
// the matching-scheme codec that encodes subscriptions and headers for
// the router's stores, and the client admission registry.
type Publisher struct {
	keys     *scrypto.KeyPair
	sk       *scrypto.SymmetricKey
	group    *scrypto.GroupKeyManager
	registry *ClientRegistry
	ias      *attest.Service
	routerID attest.Identity
	codec    scheme.Codec

	mu         sync.Mutex
	routerConn net.Conn            // default route (ConnectRouter / SetDefaultRouter)
	routers    map[string]net.Conn // named routes into a federated overlay
	subOwner   map[string]string   // (router, subscription) → owning client
}

// subKey keys the ownership table: subscription IDs are per-router,
// so two routers of a federation may issue the same ID.
func subKey(router string, id uint64) string {
	return fmt.Sprintf("%s\x00%d", router, id)
}

// NewPublisher creates a publisher that will only provision SK into
// enclaves matching routerID, as vouched for by ias. It encodes under
// the default sgx-plain matching scheme; use NewPublisherWithCodec for
// another scheme.
func NewPublisher(ias *attest.Service, routerID attest.Identity) (*Publisher, error) {
	return NewPublisherWithCodec(ias, routerID, nil)
}

// NewPublisherWithCodec creates a publisher encoding under the given
// matching-scheme codec (nil means the default sgx-plain codec). The
// codec's scheme ID is announced during attested provisioning and
// stamped on every registration and publication frame; routers running
// a different scheme reject them with ErrSchemeMismatch.
func NewPublisherWithCodec(ias *attest.Service, routerID attest.Identity, codec scheme.Codec) (*Publisher, error) {
	if codec == nil {
		var err error
		codec, err = scheme.NewCodec(scheme.Plain)
		if err != nil {
			return nil, fmt.Errorf("broker: building default scheme codec: %w", err)
		}
	}
	keys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: generating publisher keys: %w", err)
	}
	sk, err := scrypto.NewSymmetricKey(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: generating SK: %w", err)
	}
	group, err := scrypto.NewGroupKeyManager(nil)
	if err != nil {
		return nil, fmt.Errorf("broker: creating group key manager: %w", err)
	}
	return &Publisher{
		keys:     keys,
		sk:       sk,
		group:    group,
		registry: NewClientRegistry(),
		ias:      ias,
		routerID: routerID,
		codec:    codec,
		routers:  make(map[string]net.Conn),
		subOwner: make(map[string]string),
	}, nil
}

// Scheme returns the canonical ID of the publisher's matching scheme.
func (p *Publisher) Scheme() string { return scheme.Canonical(p.codec.Name()) }

// PublicKey is PK, distributed to clients out of band (e.g. with the
// service contract).
func (p *Publisher) PublicKey() *rsa.PublicKey { return p.keys.Public() }

// Registry exposes the admission database.
func (p *Publisher) Registry() *ClientRegistry { return p.registry }

// GroupEpoch returns the current payload key epoch.
func (p *Publisher) GroupEpoch() uint64 { return p.group.Epoch() }

// ConnectRouter attests the router enclave over conn and provisions SK
// and the signature verification key. The connection is retained for
// registrations and publications. Cancelling ctx severs the
// connection; attestation failures wrap ErrAttestationFailed and keep
// the underlying attest sentinel in the chain.
func (p *Publisher) ConnectRouter(ctx context.Context, conn net.Conn) error {
	if err := p.provisionRouter(ctx, conn); err != nil {
		return err
	}
	p.mu.Lock()
	p.routerConn = conn
	p.mu.Unlock()
	return nil
}

// ConnectRouterNamed attests and provisions one router of a federated
// overlay and retains the connection under the router's overlay name,
// so subscriptions from clients homed on that router register there.
// Every router of the overlay must be provisioned (they share one SK)
// — call this once per router, then SetDefaultRouter to choose where
// this publisher's own publications enter the overlay.
func (p *Publisher) ConnectRouterNamed(ctx context.Context, name string, conn net.Conn) error {
	if name == "" {
		return errors.New("broker: router name must not be empty")
	}
	if err := p.provisionRouter(ctx, conn); err != nil {
		return err
	}
	p.mu.Lock()
	p.routers[name] = conn
	if p.routerConn == nil {
		p.routerConn = conn
	}
	p.mu.Unlock()
	return nil
}

// SetDefaultRouter selects which named router this publisher's
// publications enter the overlay through.
func (p *Publisher) SetDefaultRouter(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, ok := p.routers[name]
	if !ok {
		return fmt.Errorf("%w: publisher knows no router %q", ErrNotConnected, name)
	}
	p.routerConn = conn
	return nil
}

// provisionRouter runs the attest-and-provision exchange on conn.
func (p *Publisher) provisionRouter(ctx context.Context, conn net.Conn) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	release := ctxGuard(ctx, conn)
	defer release()
	if err := Send(conn, &Message{Type: TypeProvision, Scheme: p.Scheme()}); err != nil {
		return ctxErr(ctx, err)
	}
	req, err := Recv(conn)
	if err != nil {
		return ctxErr(ctx, err)
	}
	if err := expect(req, TypeProvisionReq); err != nil {
		return err
	}
	verifyDER, err := x509.MarshalPKIXPublicKey(p.keys.Public())
	if err != nil {
		return fmt.Errorf("broker: encoding verify key: %w", err)
	}
	schemeParams, err := p.codec.Params()
	if err != nil {
		return fmt.Errorf("broker: encoding scheme parameters: %w", err)
	}
	bundle, err := json.Marshal(provisionPayload{
		SK:        p.sk.Bytes(),
		VerifyKey: verifyDER,
		Scheme:    p.Scheme(),
		Params:    schemeParams,
	})
	if err != nil {
		return fmt.Errorf("broker: encoding provision bundle: %w", err)
	}
	blob, err := attest.ProvisionSecret(p.ias, p.routerID,
		&attest.ProvisioningRequest{Quote: req.Quote, PubKey: req.PubKey}, bundle)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAttestationFailed, err)
	}
	if err := Send(conn, &Message{Type: TypeProvisionKey, Blob: blob}); err != nil {
		return ctxErr(ctx, err)
	}
	ok, err := Recv(conn)
	if err != nil {
		return ctxErr(ctx, err)
	}
	return expect(ok, TypeProvisionOK)
}

// ServeClient handles one client connection: subscription admission
// (step ① → ②), group key requests, and unsubscriptions. It returns
// when the client disconnects or ctx is cancelled (which severs the
// connection).
func (p *Publisher) ServeClient(ctx context.Context, conn net.Conn) {
	release := ctxGuard(ctx, conn)
	defer release()
	for {
		m, err := Recv(conn)
		if err != nil {
			return
		}
		switch m.Type {
		case TypeSubscribe:
			err = p.handleSubscribe(conn, m)
		case TypeGroupKey:
			err = p.handleGroupKey(conn, m)
		case TypeUnsubscribe:
			err = p.handleUnsubscribe(conn, m)
		default:
			sendErrf(conn, "unexpected message %q", m.Type)
			return
		}
		if err != nil {
			sendErr(conn, err)
		}
	}
}

// handleSubscribe implements steps ① and ②: decrypt {s}PK, run
// admission control, encode the subscription under the matching
// scheme (validating it), seal under SK for sealed-exchange schemes,
// sign, and forward to the router.
func (p *Publisher) handleSubscribe(conn net.Conn, m *Message) error {
	rec, err := p.admit(m)
	if err != nil {
		return err
	}
	plain, err := scrypto.DecryptPK(p.keys, m.Blob)
	if err != nil {
		return fmt.Errorf("decrypting subscription: %w", err)
	}
	spec, err := pubsub.DecodeSubscriptionSpec(plain)
	if err != nil {
		return fmt.Errorf("invalid subscription: %w", err)
	}
	// The codec validates before encoding: the publisher must not
	// relay junk to the router (and for encrypting schemes this is
	// where plaintext stops — the router only ever sees the scheme
	// ciphertext produced here).
	enc, err := p.codec.EncodeSubscription(spec)
	if err != nil {
		return fmt.Errorf("invalid subscription: %w", err)
	}
	if p.codec.Capabilities().SealedExchange {
		if enc, err = scrypto.Seal(p.sk, enc); err != nil {
			return fmt.Errorf("re-encrypting subscription: %w", err)
		}
	}
	sig, err := scrypto.Sign(p.keys, signedRegistration(enc, m.ClientID))
	if err != nil {
		return fmt.Errorf("signing registration: %w", err)
	}
	// Register on the client's home router (m.Router; the default
	// route when unset), so in a federated overlay the subscription
	// lives where the client listens.
	reply, err := p.routerRequest(m.Router, &Message{Type: TypeRegister, ClientID: m.ClientID, Scheme: p.Scheme(), Blob: enc, Sig: sig})
	if err != nil {
		return err
	}
	if err := expect(reply, TypeRegisterOK); err != nil {
		return err
	}
	p.mu.Lock()
	p.subOwner[subKey(m.Router, reply.SubID)] = m.ClientID
	p.mu.Unlock()
	// Hand the client the payload group key alongside the ack, plus
	// the deployment's scheme ID so the client can tag its listens.
	keyBlob, epoch, err := p.groupKeyFor(rec)
	if err != nil {
		return err
	}
	return Send(conn, &Message{Type: TypeSubscribeOK, SubID: reply.SubID, Scheme: p.Scheme(), Blob: keyBlob, Epoch: epoch})
}

// handleGroupKey re-issues the current payload key to an active
// client (e.g. after a rotation).
func (p *Publisher) handleGroupKey(conn net.Conn, m *Message) error {
	rec, err := p.registry.Authorize(m.ClientID)
	if err != nil {
		return err
	}
	blob, epoch, err := p.groupKeyFor(rec)
	if err != nil {
		return err
	}
	return Send(conn, &Message{Type: TypeGroupKeyOK, Blob: blob, Epoch: epoch})
}

// handleUnsubscribe relays a removal to the router after checking
// ownership.
func (p *Publisher) handleUnsubscribe(conn net.Conn, m *Message) error {
	if _, err := p.registry.Authorize(m.ClientID); err != nil {
		return err
	}
	key := subKey(m.Router, m.SubID)
	p.mu.Lock()
	owner, ok := p.subOwner[key]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSubscription, m.SubID)
	}
	if owner != m.ClientID {
		return fmt.Errorf("%w: subscription %d, client %s", ErrNotOwner, m.SubID, m.ClientID)
	}
	reply, err := p.routerRequest(m.Router, &Message{Type: TypeRemove, ClientID: m.ClientID, SubID: m.SubID})
	if err != nil {
		return err
	}
	if err := expect(reply, TypeRemoveOK); err != nil {
		return err
	}
	p.mu.Lock()
	delete(p.subOwner, key)
	p.mu.Unlock()
	return Send(conn, &Message{Type: TypeUnsubscribeOK, SubID: m.SubID})
}

// admit performs first-contact admission: the subscribe message
// carries the client's response key; known-revoked clients are
// rejected.
func (p *Publisher) admit(m *Message) (*ClientRecord, error) {
	if rec, err := p.registry.Authorize(m.ClientID); err == nil {
		return rec, nil
	} else if errors.Is(err, ErrRevokedClient) {
		return nil, err
	}
	if len(m.PubKey) == 0 {
		return nil, fmt.Errorf("client %s supplied no response key", m.ClientID)
	}
	parsed, err := x509.ParsePKIXPublicKey(m.PubKey)
	if err != nil {
		return nil, fmt.Errorf("client %s response key invalid: %w", m.ClientID, err)
	}
	pub, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("client %s response key is %T, want RSA", m.ClientID, parsed)
	}
	if err := p.registry.Admit(m.ClientID, pub); err != nil {
		return nil, err
	}
	return p.registry.Authorize(m.ClientID)
}

// groupKeyFor wraps the current group key for a client and registers
// its group membership.
func (p *Publisher) groupKeyFor(rec *ClientRecord) ([]byte, uint64, error) {
	key, epoch := p.group.Join(rec.ID)
	blob, err := scrypto.EncryptPK(rec.PubKey, key.Bytes())
	if err != nil {
		return nil, 0, fmt.Errorf("wrapping group key: %w", err)
	}
	return blob, epoch, nil
}

// Event is one publication: the routable header (matched inside the
// enclave) and the payload only subscribed clients can read.
type Event struct {
	Header  pubsub.EventSpec
	Payload []byte
}

// Publish is step ④: encode the header under the matching scheme
// (sealing it under SK for sealed-exchange schemes), encrypt the
// payload under the group key, and send both to the router.
// Cancellation is checked before the send and a ctx deadline bounds a
// stalled send; an already-started frame is never abandoned (it would
// corrupt the stream), so a bare cancel takes effect on the next call.
func (p *Publisher) Publish(ctx context.Context, header pubsub.EventSpec, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	encHeader, err := p.encodeHeader(header)
	if err != nil {
		return err
	}
	groupKey, epoch := p.group.Key()
	encPayload, err := scrypto.Seal(groupKey, payload)
	if err != nil {
		return fmt.Errorf("broker: encrypting payload: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.routerConn == nil {
		return fmt.Errorf("%w: publisher has no router", ErrNotConnected)
	}
	release := deadlineGuard(ctx, p.routerConn)
	defer release()
	return ctxErr(ctx, Send(p.routerConn, &Message{Type: TypePublish, Scheme: p.Scheme(), Blob: encHeader, Payload: encPayload, Epoch: epoch}))
}

// encodeHeader produces the routable header blob: the scheme encoding,
// SK-sealed when the scheme exchanges sealed plaintext.
func (p *Publisher) encodeHeader(header pubsub.EventSpec) ([]byte, error) {
	raw, err := p.codec.EncodeEvent(header)
	if err != nil {
		return nil, err
	}
	if !p.codec.Capabilities().SealedExchange {
		return raw, nil
	}
	enc, err := scrypto.Seal(p.sk, raw)
	if err != nil {
		return nil, fmt.Errorf("broker: encrypting header: %w", err)
	}
	return enc, nil
}

// batchFrameBudget bounds the pre-encoding size of one publish-batch
// frame. JSON base64-inflates []byte fields by 4/3 plus field
// overhead, so staying under this keeps the encoded frame safely
// below wire.MaxFrame (16 MB) with room to spare.
const batchFrameBudget = 8 << 20

// PublishBatch is step ④ for a whole batch: every header is encrypted
// under SK and every payload under the current group key, and the
// batch travels to the router as one message — one wire round trip,
// one enclave crossing (one ecall, or one ring pass in the switchless
// configuration) however many events it carries. This is the
// amortisation seed for high-throughput feeds: the per-publication
// EENTER/EEXIT cost of the synchronous path divides by the batch
// size. A batch whose ciphertext would overflow the wire's frame
// limit is transparently split into the fewest frames that fit (each
// still one enclave crossing); an empty batch is a no-op. Delivery
// order within the batch is preserved either way.
func (p *Publisher) PublishBatch(ctx context.Context, events []Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		return nil
	}
	groupKey, epoch := p.group.Key()
	items := make([]BatchItem, len(events))
	for i := range events {
		encHeader, err := p.encodeHeader(events[i].Header)
		if err != nil {
			return fmt.Errorf("broker: batch event %d: %w", i, err)
		}
		encPayload, err := scrypto.Seal(groupKey, events[i].Payload)
		if err != nil {
			return fmt.Errorf("broker: encrypting batch payload %d: %w", i, err)
		}
		items[i] = BatchItem{Blob: encHeader, Payload: encPayload}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.routerConn == nil {
		return fmt.Errorf("%w: publisher has no router", ErrNotConnected)
	}
	release := deadlineGuard(ctx, p.routerConn)
	defer release()
	for start := 0; start < len(items); {
		end, size := start, 0
		for end < len(items) {
			size += len(items[end].Blob) + len(items[end].Payload)
			if end > start && size > batchFrameBudget {
				break
			}
			end++
		}
		if err := ctxErr(ctx, Send(p.routerConn, &Message{Type: TypePublishBatch, Scheme: p.Scheme(), Items: items[start:end], Epoch: epoch})); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// RegisterBulk is the service provider's bulk-load path: it encodes,
// seals, and registers a whole subscription population on behalf of an
// admitted client with one RSA signature per wire frame instead of one
// per subscription — what makes ⑥-figure populations affordable (the
// per-subscription Subscribe path costs a PK decrypt plus an RSA sign,
// ≈2 ms each). Each frame carries up to batchFrameBudget bytes of
// sealed blobs and is signed over a digest binding every blob to the
// client identity (signedRegistrationBatch); the router verifies the
// one signature inside its enclave and ingests the items. Returns the
// assigned subscription IDs in spec order. router names the federated
// home router ("" = the default route). The client must already be
// admitted (Registry().Admit or a prior Subscribe).
func (p *Publisher) RegisterBulk(ctx context.Context, clientID, router string, specs []pubsub.SubscriptionSpec) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := p.registry.Authorize(clientID); err != nil {
		return nil, err
	}
	sealed := p.codec.Capabilities().SealedExchange
	items := make([]BatchItem, len(specs))
	for i := range specs {
		enc, err := p.codec.EncodeSubscription(specs[i])
		if err != nil {
			return nil, fmt.Errorf("broker: bulk subscription %d invalid: %w", i, err)
		}
		if sealed {
			if enc, err = scrypto.Seal(p.sk, enc); err != nil {
				return nil, fmt.Errorf("broker: re-encrypting bulk subscription %d: %w", i, err)
			}
		}
		items[i] = BatchItem{Blob: enc}
	}
	ids := make([]uint64, 0, len(specs))
	for start := 0; start < len(items); {
		end, size := start, 0
		for end < len(items) {
			size += len(items[end].Blob)
			if end > start && size > batchFrameBudget {
				break
			}
			end++
		}
		frame := items[start:end]
		sig, err := scrypto.Sign(p.keys, signedRegistrationBatch(frame, clientID))
		if err != nil {
			return nil, fmt.Errorf("broker: signing registration batch: %w", err)
		}
		reply, err := p.routerRequest(router, &Message{
			Type: TypeRegisterBatch, ClientID: clientID, Scheme: p.Scheme(), Items: frame, Sig: sig,
		})
		if err != nil {
			return nil, err
		}
		if err := expect(reply, TypeRegisterBatchOK); err != nil {
			return nil, err
		}
		if len(reply.SubIDs) != len(frame) {
			return nil, fmt.Errorf("broker: batch ack names %d subscriptions, sent %d", len(reply.SubIDs), len(frame))
		}
		ids = append(ids, reply.SubIDs...)
		start = end
	}
	p.mu.Lock()
	for _, id := range ids {
		p.subOwner[subKey(router, id)] = clientID
	}
	p.mu.Unlock()
	return ids, nil
}

// Revoke excludes a client: admission is withdrawn and the payload
// group key rotates so the client cannot read future publications.
func (p *Publisher) Revoke(clientID string) error {
	if err := p.registry.Revoke(clientID); err != nil {
		return err
	}
	if _, err := p.group.Revoke(clientID); err != nil {
		return err
	}
	return nil
}

// routerRequest performs one request/response exchange with the named
// router (the default route when router is empty), serialised on the
// publisher's shared connections.
func (p *Publisher) routerRequest(router string, m *Message) (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn := p.routerConn
	if router != "" {
		conn = p.routers[router]
		if conn == nil {
			return nil, fmt.Errorf("%w: publisher knows no router %q", ErrNotConnected, router)
		}
	}
	if conn == nil {
		return nil, fmt.Errorf("%w: publisher has no router", ErrNotConnected)
	}
	if err := Send(conn, m); err != nil {
		return nil, err
	}
	return Recv(conn)
}
