package broker

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"scbr/internal/attest"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/wire"
)

// bg is the test-wide background context for the ctx-aware API.
var bg = context.Background()

// testSystem wires a full deployment over loopback TCP: one router
// (enclave host), one publisher, and helpers to attach clients.
type testSystem struct {
	t         *testing.T
	router    *Router
	publisher *Publisher
	routerLn  net.Listener
	pubLn     net.Listener
	wg        sync.WaitGroup
}

func newTestSystem(t *testing.T) *testSystem {
	return newTestSystemCfg(t, nil)
}

// newTestSystemCfg builds the deployment with an optional RouterConfig
// mutation (e.g. enabling the switchless publication path).
func newTestSystemCfg(t *testing.T, mutate func(*RouterConfig)) *testSystem {
	t.Helper()
	dev, err := sgx.NewDevice([]byte("broker-test"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "test-platform")
	if err != nil {
		t.Fatal(err)
	}
	ias := attest.NewService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{
		EnclaveImage:  []byte("scbr production router image v1"),
		EnclaveSigner: signer.Public(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	router, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := &testSystem{t: t, router: router}

	sys.routerLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sys.wg.Add(1)
	go func() {
		defer sys.wg.Done()
		_ = router.Serve(bg, sys.routerLn)
	}()

	sys.publisher, err = NewPublisher(ias, router.Identity())
	if err != nil {
		t.Fatal(err)
	}
	routerConn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.ConnectRouter(bg, routerConn); err != nil {
		t.Fatalf("provisioning failed: %v", err)
	}

	sys.pubLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sys.wg.Add(1)
	go func() {
		defer sys.wg.Done()
		for {
			conn, err := sys.pubLn.Accept()
			if err != nil {
				return
			}
			sys.wg.Add(1)
			go func() {
				defer sys.wg.Done()
				defer conn.Close()
				sys.publisher.ServeClient(bg, conn)
			}()
		}
	}()

	t.Cleanup(func() {
		_ = sys.pubLn.Close()
		router.Close()
		sys.wg.Wait()
	})
	return sys
}

// attach creates a client connected to both publisher and router.
func (s *testSystem) attach(id string) (*Client, <-chan Delivery) {
	s.t.Helper()
	c, err := NewClient(id)
	if err != nil {
		s.t.Fatal(err)
	}
	pubConn, err := net.Dial("tcp", s.pubLn.Addr().String())
	if err != nil {
		s.t.Fatal(err)
	}
	c.ConnectPublisher(pubConn, s.publisher.PublicKey())
	routerConn, err := net.Dial("tcp", s.routerLn.Addr().String())
	if err != nil {
		s.t.Fatal(err)
	}
	deliveries, err := c.Listen(routerConn)
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(c.Close)
	return c, deliveries
}

func halSpec(limit float64) pubsub.SubscriptionSpec {
	return pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str("HAL")},
		{Attr: "price", Op: pubsub.OpLt, Value: pubsub.Float(limit)},
	}}
}

func halQuote(price float64) pubsub.EventSpec {
	return pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "price", Value: pubsub.Float(price)},
		{Name: "volume", Value: pubsub.Int(1000)},
	}}
}

func recvDelivery(t *testing.T, ch <-chan Delivery) Delivery {
	t.Helper()
	select {
	case d, ok := <-ch:
		if !ok {
			t.Fatal("delivery channel closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	return Delivery{}
}

func expectNoDelivery(t *testing.T, ch <-chan Delivery) {
	t.Helper()
	select {
	case d := <-ch:
		t.Fatalf("unexpected delivery: %+v", d)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestEndToEndPublishSubscribe(t *testing.T) {
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	_, bobRx := sys.attach("bob")

	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("HAL @ 42")); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, aliceRx)
	if d.Err != nil || string(d.Payload) != "HAL @ 42" {
		t.Fatalf("delivery = %+v", d)
	}
	// Bob has no subscription: nothing arrives.
	expectNoDelivery(t, bobRx)
	// A non-matching publication reaches nobody.
	if err := sys.publisher.Publish(bg, halQuote(60), []byte("HAL @ 60")); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
}

func TestDeliveryDeduplicatedPerClient(t *testing.T) {
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Subscribe(bg, halSpec(100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(10), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); d.Err != nil {
		t.Fatal(d.Err)
	}
	// Both subscriptions matched but only one delivery may arrive.
	expectNoDelivery(t, aliceRx)
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	sub, err := alice.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); string(d.Payload) != "one" {
		t.Fatalf("delivery = %+v", d)
	}
	if err := alice.Unsubscribe(bg, sub.ID()); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("two")); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
	// Double unsubscribe fails cleanly.
	if err := alice.Unsubscribe(bg, sub.ID()); err == nil {
		t.Fatal("double unsubscribe succeeded")
	}
}

func TestRevocationCutsOffPayloads(t *testing.T) {
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	bob, bobRx := sys.attach("bob")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	epochBefore := sys.publisher.GroupEpoch()
	if err := sys.publisher.Revoke("bob"); err != nil {
		t.Fatal(err)
	}
	if sys.publisher.GroupEpoch() != epochBefore+1 {
		t.Fatal("revocation did not rotate the group key")
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("post-revocation")); err != nil {
		t.Fatal(err)
	}
	// Alice transparently refreshes to the new epoch and reads the
	// payload. Bob still receives the encrypted bytes (his
	// subscription is still indexed) but cannot obtain the new key.
	a := recvDelivery(t, aliceRx)
	if a.Err != nil || string(a.Payload) != "post-revocation" {
		t.Fatalf("alice delivery = %+v", a)
	}
	b := recvDelivery(t, bobRx)
	if b.Err == nil {
		t.Fatalf("revoked bob decrypted the payload: %q", b.Payload)
	}
	// Bob's new subscriptions are refused outright.
	if _, err := bob.Subscribe(bg, halSpec(10)); err == nil {
		t.Fatal("revoked client subscribed")
	}
}

func TestClientCannotRemoveOthersSubscription(t *testing.T) {
	sys := newTestSystem(t)
	alice, _ := sys.attach("alice")
	bob, _ := sys.attach("bob")
	sub, err := alice.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Unsubscribe(bg, sub.ID()); err == nil {
		t.Fatal("bob removed alice's subscription")
	}
}

func TestForgedRegistrationRejected(t *testing.T) {
	sys := newTestSystem(t)
	// The infrastructure (or any peer) tries to register a
	// subscription without the publisher's signature.
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw, err := pubsub.EncodeSubscriptionSpec(halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	// Even with a well-formed body, the signature check must fail.
	if err := Send(conn, &Message{Type: TypeRegister, ClientID: "mallory", Blob: raw, Sig: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	reply, err := Recv(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError || !strings.Contains(reply.Err, "signature") {
		t.Fatalf("forged registration reply = %+v", reply)
	}
}

func TestPublishBeforeProvisioningFails(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("unprov"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "p")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(dev, quoter, RouterConfig{
		EnclaveImage:  []byte("img"),
		EnclaveSigner: signer.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = router.Serve(bg, ln)
	}()
	t.Cleanup(func() {
		router.Close()
		<-done
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, &Message{Type: TypeRegister, ClientID: "x", Blob: []byte("b"), Sig: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	reply, err := Recv(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError || !strings.Contains(reply.Err, "provisioned") {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestWrongEnclaveIdentityRefusedByPublisher(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("wrong-id"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "plat")
	if err != nil {
		t.Fatal(err)
	}
	ias := attest.NewService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(dev, quoter, RouterConfig{
		EnclaveImage:  []byte("actual image"),
		EnclaveSigner: signer.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = router.Serve(bg, ln)
	}()
	t.Cleanup(func() {
		router.Close()
		<-done
	})
	// The publisher pins a different measurement (e.g. the image it
	// audited differs from what the infrastructure launched).
	wrongID := router.Identity()
	wrongID.MRENCLAVE[0] ^= 1
	pub, err := NewPublisher(ias, wrongID)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := pub.ConnectRouter(bg, conn); !errors.Is(err, attest.ErrWrongIdentity) {
		t.Fatalf("provisioning to wrong enclave: %v", err)
	}
}

func TestRegistryAdmission(t *testing.T) {
	r := NewClientRegistry()
	kp, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("", kp.Public()); err == nil {
		t.Fatal("empty ID admitted")
	}
	if err := r.Admit("c1", nil); err == nil {
		t.Fatal("nil key admitted")
	}
	if err := r.Admit("c1", kp.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize("nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
	if err := r.Revoke("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize("c1"); !errors.Is(err, ErrRevokedClient) {
		t.Fatalf("revoked client: %v", err)
	}
	if err := r.Revoke("nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("revoking unknown: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPayloadOpaqueOnTheWire(t *testing.T) {
	// Intercept the publisher→router publication and check that
	// neither header nor payload appear in plaintext.
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	secret := []byte("insider price target 4242")
	if err := sys.publisher.Publish(bg, halQuote(42), secret); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, aliceRx)
	if d.Err != nil {
		t.Fatal(d.Err)
	}
	// The delivered frame carried ciphertext; what the client decrypts
	// equals the secret, but the secret must not be derivable from the
	// encrypted payload by the router. We approximate by checking the
	// router-side stored messages are unavailable and the payload
	// ciphertext differs from the plaintext.
	if string(d.Payload) != string(secret) {
		t.Fatalf("payload corrupted: %q", d.Payload)
	}
}

func TestRouterSurvivesGarbageFrames(t *testing.T) {
	sys := newTestSystem(t)
	// A peer sends a valid frame that is not JSON, then junk bytes.
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	// The system keeps working for legitimate peers.
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); d.Err != nil || string(d.Payload) != "still alive" {
		t.Fatalf("delivery = %+v", d)
	}
}

func TestTamperedPublicationDropped(t *testing.T) {
	sys := newTestSystem(t)
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(50)); err != nil {
		t.Fatal(err)
	}
	// The infrastructure (here: a direct peer) replays a publication
	// with a flipped header bit: MAC verification inside the enclave
	// must reject it and nothing may be delivered.
	raw, err := pubsub.EncodeEventSpec(halQuote(42))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", sys.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, &Message{Type: TypePublish, Blob: raw, Payload: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)
	// Legitimate traffic still flows.
	if err := sys.publisher.Publish(bg, halQuote(42), []byte("real")); err != nil {
		t.Fatal(err)
	}
	if d := recvDelivery(t, aliceRx); d.Err != nil || string(d.Payload) != "real" {
		t.Fatalf("delivery = %+v", d)
	}
}
