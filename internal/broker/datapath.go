// The router's matching layer: the subscription database is split
// across k enclave matcher slices (partitions) behind streamhub.Hub —
// the paper's §3.4 StreamHub-style answer to scale. A publication is
// matched by every slice in parallel and the per-slice result sets are
// merged before delivery; each slice holds 1/k of the database in its
// own enclave, so matching parallelises and the per-enclave working
// set shrinks by k (the Fig. 8 paging-cliff remedy).
//
// Two publication paths share this layer:
//
//   - synchronous: the publishing connection enters each slice's
//     enclave (one ecall per slice per wire message, a batch still
//     crossing once per slice) and merges inline;
//   - switchless: each slice owns an untrusted-memory ring drained by
//     a resident enclave worker. The raw wire frame is pushed to every
//     ring, the workers match concurrently, and a single merger
//     goroutine joins the per-slice results in publication order so
//     per-client delivery order is preserved.

package broker

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"scbr/internal/core"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
)

// partition is one matcher slice: an enclave, its scheme store (a
// share of the subscription database in the matching scheme's
// encoding), and — in the switchless configuration — the slice's
// publication ring and resident worker. The partition lock serialises
// enclave entries and meter access for this slice only; other slices,
// the control plane, and delivery never wait on it.
type partition struct {
	idx     int
	enclave *sgx.Enclave
	slice   scheme.Slice
	engine  *core.Engine // the slice's engine for sgx-plain; nil otherwise

	mu sync.Mutex // serialises this slice's enclave entries and meter

	// Switchless plumbing (nil when disabled). jobs carries the decoded
	// counterpart of every frame pushed onto ring, in ring order.
	ring       *sgx.Ring
	jobs       chan *matchJob
	workerDone chan struct{}
}

// matchJob is one wire message in flight through the switchless
// pipeline: the expanded publication items plus the merge state the
// slices fill in. done closes when the last slice has contributed.
type matchJob struct {
	items   []*Message
	mu      sync.Mutex
	merged  [][]core.MatchResult // per item, across slices
	pending int
	done    chan struct{}
}

// contribute merges one slice's per-item results and signals the
// merger when every slice has reported.
func (j *matchJob) contribute(results [][]core.MatchResult) {
	j.mu.Lock()
	for i := range results {
		j.merged[i] = append(j.merged[i], results[i]...)
	}
	j.pending--
	last := j.pending == 0
	j.mu.Unlock()
	if last {
		close(j.done)
	}
}

// expandPublication flattens a publish or publish-batch message into
// its publication items.
func expandPublication(m *Message) []*Message {
	if m.Type != TypePublishBatch {
		return []*Message{m}
	}
	items := make([]*Message, len(m.Items))
	for i := range m.Items {
		items[i] = &Message{Type: TypePublish, Blob: m.Items[i].Blob, Payload: m.Items[i].Payload, Epoch: m.Epoch}
	}
	return items
}

// startSwitchless brings up the per-partition rings, resident workers,
// and the merger. Called once from NewRouter.
func (r *Router) startSwitchless() error {
	capacity := r.cfg.RingCapacity
	if capacity <= 0 {
		capacity = 128
	}
	for _, p := range r.parts {
		ring, err := sgx.NewRing(capacity)
		if err != nil {
			return fmt.Errorf("broker: building publication ring: %w", err)
		}
		p.ring = ring
		// Jobs outstanding between dispatch and the worker's receive
		// never exceed the in-ring frame count plus the one the worker
		// already popped, so this capacity keeps dispatch non-blocking.
		p.jobs = make(chan *matchJob, ring.Capacity()+1)
		p.workerDone = make(chan struct{})
	}
	r.merge = make(chan *matchJob, capacity)
	r.mergerDone = make(chan struct{})
	for _, p := range r.parts {
		go r.publicationWorker(p)
	}
	go r.deliveryMerger()
	return nil
}

// stopSwitchless drains the pipeline: every dispatched job still
// completes (the producers are gone by the time Close calls this), the
// workers unwind, then the merger. No-op when switchless is disabled.
func (r *Router) stopSwitchless() {
	if r.merge == nil {
		return
	}
	for _, p := range r.parts {
		close(p.jobs)
	}
	for _, p := range r.parts {
		<-p.workerDone
	}
	for _, p := range r.parts {
		p.ring.Close()
	}
	close(r.merge)
	<-r.mergerDone
}

// handlePublish ingests a publication from a publisher connection:
// the federation overlay (when enabled) fans it out toward peers
// whose subscription digests match, and the local data plane matches
// and delivers it. Forwarded copies arriving from peers re-enter
// through routeLocal only — their overlay handling (dedup, TTL,
// re-forward) happened in handleFwdPub.
func (r *Router) handlePublish(m *Message) error {
	if err := r.checkScheme(m.Scheme); err != nil {
		// Publications are fire-and-forget; a frame encoded under a
		// different scheme would only be misinterpreted, so drop it.
		return err
	}
	if r.fed != nil {
		r.forwardPublication(m)
	}
	return r.routeLocal(m)
}

// routeLocal is steps ⑤–⑥ for both single publications and
// batches. On the synchronous path each slice's enclave is entered
// once for the whole wire message; on the switchless path the raw
// frame is handed to every slice's ring and the resident workers do
// the rest. Either way, delivery happens through the per-client
// queues — matching never blocks on a client connection.
func (r *Router) routeLocal(m *Message) error {
	if r.merge != nil {
		return r.pushPublication(m)
	}
	sk, _ := r.keys()
	if sk == nil {
		return ErrNotProvisioned
	}
	items := expandPublication(m)
	merged := r.matchFanout(items, sk)
	for i, item := range items {
		r.deliver(merged[i], item)
	}
	return nil
}

// matchFanout runs trusted step ⑤ on every slice in parallel: one
// ecall per slice covering the whole item list, each contributing its
// share of the matches. A per-item failure (tampered ciphertext,
// malformed header) drops that item's contribution, matching the
// wire's fire-and-forget semantics.
func (r *Router) matchFanout(items []*Message, sk *scrypto.SymmetricKey) [][]core.MatchResult {
	perPart := make([][][]core.MatchResult, len(r.parts))
	run := func(p *partition) {
		out := make([][]core.MatchResult, len(items))
		p.mu.Lock()
		_ = p.enclave.Ecall(func() error {
			for i, item := range items {
				if res, err := r.matchSlice(p, item, sk); err == nil {
					out[i] = res
				}
			}
			return nil
		})
		p.mu.Unlock()
		perPart[p.idx] = out
	}
	if len(r.parts) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// One slice, or one P: fan-out would only add scheduling
		// latency, so visit the slices in the calling goroutine.
		for _, p := range r.parts {
			run(p)
		}
	} else {
		var wg sync.WaitGroup
		for _, p := range r.parts[1:] {
			wg.Add(1)
			go func(p *partition) {
				defer wg.Done()
				run(p)
			}(p)
		}
		run(r.parts[0]) // slice 0 rides the caller, saving one handoff
		wg.Wait()
	}
	merged := make([][]core.MatchResult, len(items))
	for i := range items {
		for _, out := range perPart {
			merged[i] = append(merged[i], out[i]...)
		}
	}
	return merged
}

// matchSlice is trusted step ⑤ on one slice: authenticate the header
// and match it against the slice's share of the index in the scheme's
// encoding. Sealed-exchange schemes (sgx-plain) open the SK envelope
// first — every slice decrypts independently, the replicated key
// management of the paper's partitioning note — while ciphertext
// schemes (aspe) hand the blob to the store as-is. The caller holds
// p.mu and has accounted the enclave entry (an ecall on the
// synchronous path, the resident worker on the switchless path).
func (r *Router) matchSlice(p *partition, m *Message, sk *scrypto.SymmetricKey) ([]core.MatchResult, error) {
	enc := m.Blob
	if r.backend.Caps.SealedExchange {
		plain, err := scrypto.Open(sk, m.Blob)
		if err != nil {
			return nil, fmt.Errorf("decrypting header: %w", err)
		}
		p.slice.Accessor().Meter().ChargeAES(len(m.Blob))
		enc = plain
	}
	return r.hub.MatchEncodedIn(p.idx, enc, nil)
}

// pushPublication hands one wire message to the switchless pipeline:
// the job is dispatched to every slice's worker, the raw frame — the
// publisher's exact bytes, no re-encode — is pushed onto every slice's
// ring, and the job joins the merge queue. pushMu keeps the three in
// the same order across partitions, which is what makes ring position
// and job position line up and the merger's output order match
// publication order. Ring backpressure (a full ring blocks Push)
// propagates to the producer exactly as the single-ring design did.
func (r *Router) pushPublication(m *Message) error {
	raw := m.raw
	if raw == nil {
		// Direct callers (in-process tests) build Messages by hand;
		// wire traffic always carries its received frame.
		var err error
		raw, err = json.Marshal(m)
		if err != nil {
			return fmt.Errorf("encoding publication for the ring: %w", err)
		}
	}
	items := expandPublication(m)
	job := &matchJob{
		items:   items,
		merged:  make([][]core.MatchResult, len(items)),
		pending: len(r.parts),
		done:    make(chan struct{}),
	}
	r.pushMu.Lock()
	defer r.pushMu.Unlock()
	for _, p := range r.parts {
		p.jobs <- job
	}
	for _, p := range r.parts {
		if err := p.ring.Push(raw); err != nil {
			return fmt.Errorf("%w: publication ring: %v", ErrClosed, err)
		}
	}
	r.merge <- job
	return nil
}

// publicationWorker is one slice's resident enclave thread in the
// switchless configuration: it enters the enclave once and matches
// publications straight off the slice's untrusted ring. Per-message
// failures (tampered ciphertext, malformed headers, unprovisioned
// router) drop the slice's contribution, exactly as the per-ecall path
// does for fire-and-forget publish messages.
//
// The worker does not use Enclave.ServeRing: that helper charges the
// enclave meter outside any lock, while here registration ecalls on
// the same slice charge the same meter concurrently. All meter access
// below happens under the partition lock, like every other path that
// enters this slice.
func (r *Router) publicationWorker(p *partition) {
	defer close(p.workerDone)
	entered := false
	var buf []byte
	for job := range p.jobs {
		out := make([][]core.MatchResult, len(job.items))
		raw, ok := p.ring.Pop(buf)
		if !ok {
			// Ring severed mid-job (teardown): report empty so the
			// merger never wedges on this job.
			job.contribute(out)
			continue
		}
		buf = raw
		sk, _ := r.keys()
		p.mu.Lock()
		meter := p.slice.Accessor().Meter()
		if !entered {
			meter.ChargeTransition() // the worker's one-time entry/exit round trip
			entered = true
		}
		meter.Charge(meter.Cost.SwitchlessPollCycles)
		if sk != nil {
			for i, item := range job.items {
				if res, err := r.matchSlice(p, item, sk); err == nil {
					out[i] = res
				}
			}
		}
		p.mu.Unlock()
		job.contribute(out)
	}
}

// deliveryMerger joins the per-slice match results in publication
// order and hands each item to the delivery layer. It is the only
// goroutine that forwards switchless matches, so per-client delivery
// order equals publication order even though the slices match out of
// lockstep; it never blocks on a client (the delivery queues are
// bounded and slow consumers are cut loose), so one merger keeps up
// with k matchers.
func (r *Router) deliveryMerger() {
	defer close(r.mergerDone)
	for job := range r.merge {
		<-job.done
		for i, item := range job.items {
			r.deliver(job.merged[i], item)
		}
	}
}
