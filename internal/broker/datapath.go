// The router's matching layer: the subscription database is split
// across k enclave matcher slices (partitions) behind streamhub.Hub —
// the paper's §3.4 StreamHub-style answer to scale. A publication is
// matched by every slice in parallel and the per-slice result sets are
// merged before delivery; each slice holds 1/k of the database in its
// own enclave, so matching parallelises and the per-enclave working
// set shrinks by k (the Fig. 8 paging-cliff remedy).
//
// The layer is batch-first: a publish-batch travels as ONE unit — one
// enclave entry per slice on the synchronous path, one ring push and
// one matchJob per slice on the switchless path — and the schemes
// match it through their MatchEncodedBatch surface, so per-item work
// (enclave crossings, database walks, allocations) is amortised across
// the batch. A single publish is just a batch of one.
//
// Two publication paths share this layer:
//
//   - synchronous: the publishing connection enters each slice's
//     enclave (one ecall per slice per wire message, however many
//     items it carries) and merges inline;
//   - switchless: each slice owns an untrusted-memory ring drained by
//     a resident enclave worker. The raw wire frame is pushed to every
//     ring, the workers match concurrently, and a single merger
//     goroutine joins the per-slice results in publication order so
//     per-client delivery order is preserved.

package broker

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"scbr/internal/core"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
)

// partition is one matcher slice: an enclave, its scheme store (a
// share of the subscription database in the matching scheme's
// encoding), and — in the switchless configuration — the slice's
// publication ring and resident worker. The partition lock serialises
// enclave entries and meter access for this slice only; other slices,
// the control plane, and delivery never wait on it.
type partition struct {
	idx     int
	enclave *sgx.Enclave
	slice   scheme.Slice
	engine  *core.Engine // the slice's engine for sgx-plain; nil otherwise

	mu sync.Mutex // serialises this slice's enclave entries and meter

	// Sealed-exchange scratch, guarded by mu: the per-key envelope
	// opener (AES schedule + HMAC pads built once per provisioned key)
	// and the per-item plaintext-header buffers reused across batches.
	opener    *scrypto.Opener
	openerKey *scrypto.SymmetricKey
	enc       [][]byte

	// Switchless plumbing (nil when disabled). jobs carries the decoded
	// counterpart of every frame pushed onto ring, in ring order.
	ring       *sgx.Ring
	jobs       chan *matchJob
	workerDone chan struct{}
}

// matchJob is one wire message — a whole publish-batch — in flight
// through the matching layer: the per-item header/payload views plus
// the merge state the slices fill in. perPart[p][i] is slice p's
// matches for item i: every slot is preallocated by the dispatcher and
// written only by its own slice, so contribution is lock-free — no
// merge mutex, no append-growth under a lock. Jobs are pooled and
// recycled once the merger (or the synchronous caller) has delivered.
type matchJob struct {
	blobs    [][]byte // per-item encrypted/encoded headers
	payloads [][]byte // per-item group-key payloads
	epoch    uint64

	perPart [][][]core.MatchResult // [slice][item] result slots
	merged  []core.MatchResult     // per-item cross-slice merge scratch

	// Switchless completion (unused on the synchronous path): done
	// closes when the last slice has contributed.
	pending atomic.Int32
	done    chan struct{}

	// flush marks a barrier sentinel from the migration engine: the
	// merger closes it and moves on without touching the (empty) job.
	// Every real job dispatched before the sentinel has been merged and
	// delivered by the time it closes.
	flush chan struct{}
}

// forEachPublication visits the publication items a publish or
// publish-batch message carries, without materialising an item slice.
func forEachPublication(m *Message, fn func(blob, payload []byte)) {
	if m.Type == TypePublishBatch {
		for i := range m.Items {
			fn(m.Items[i].Blob, m.Items[i].Payload)
		}
		return
	}
	fn(m.Blob, m.Payload)
}

// contribute signals that one slice has filled its perPart slot.
func (j *matchJob) contribute() {
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

// acquireJob pulls a recycled job from the pool and loads it with m's
// publication items, resizing the per-slice merge slots while keeping
// every previously grown buffer.
func (r *Router) acquireJob(m *Message) *matchJob {
	job, _ := r.jobPool.Get().(*matchJob)
	if job == nil {
		job = &matchJob{}
	}
	job.epoch = m.Epoch
	job.blobs = job.blobs[:0]
	job.payloads = job.payloads[:0]
	if m.Type == TypePublishBatch {
		for i := range m.Items {
			job.blobs = append(job.blobs, m.Items[i].Blob)
			job.payloads = append(job.payloads, m.Items[i].Payload)
		}
	} else {
		job.blobs = append(job.blobs, m.Blob)
		job.payloads = append(job.payloads, m.Payload)
	}
	k, n := len(r.parts), len(job.blobs)
	if cap(job.perPart) < k {
		grown := make([][][]core.MatchResult, k)
		copy(grown, job.perPart[:cap(job.perPart)])
		job.perPart = grown
	}
	job.perPart = job.perPart[:k]
	for p := 0; p < k; p++ {
		rows := job.perPart[p]
		if cap(rows) < n {
			grown := make([][]core.MatchResult, n)
			copy(grown, rows[:cap(rows)])
			rows = grown
		}
		rows = rows[:n]
		for i := range rows {
			rows[i] = rows[i][:0]
		}
		job.perPart[p] = rows
	}
	return job
}

// releaseJob clears the job's references to message bytes (so the pool
// never pins a frame) and recycles it. The match-result slots keep
// their capacity — that is the point of pooling them.
func (r *Router) releaseJob(job *matchJob) {
	for i := range job.blobs {
		job.blobs[i] = nil
	}
	for i := range job.payloads {
		job.payloads[i] = nil
	}
	job.blobs = job.blobs[:0]
	job.payloads = job.payloads[:0]
	job.merged = job.merged[:0]
	job.done = nil
	job.flush = nil
	r.jobPool.Put(job)
}

// deliverJob merges each item's per-slice results in slice order and
// hands it to the delivery layer, reusing the job's merge scratch.
// While a migration's two-copy window is open (dedupActive) a
// subscription can exist on both its source and destination slice and
// match twice in one item; the merge collapses those to one delivery.
// The flag is a single atomic load, so the steady-state path pays
// nothing for the capability.
func (r *Router) deliverJob(job *matchJob) {
	dedup := r.dedupActive.Load()
	for i := range job.blobs {
		job.merged = job.merged[:0]
		for _, rows := range job.perPart {
			job.merged = append(job.merged, rows[i]...)
		}
		if dedup && len(job.merged) > 1 {
			job.merged = dedupMatches(job.merged)
		}
		r.deliver(job.merged, job.payloads[i], job.epoch)
	}
}

// dedupMatches drops repeated SubIDs in place, keeping first sight.
func dedupMatches(merged []core.MatchResult) []core.MatchResult {
	seen := make(map[uint64]struct{}, len(merged))
	out := merged[:0]
	for _, m := range merged {
		if _, dup := seen[m.SubID]; dup {
			continue
		}
		seen[m.SubID] = struct{}{}
		out = append(out, m)
	}
	return out
}

// ringCapacity resolves the configured switchless ring size.
func (r *Router) ringCapacity() int {
	if r.cfg.RingCapacity > 0 {
		return r.cfg.RingCapacity
	}
	return 128
}

// equipSwitchless attaches a publication ring and job channel to one
// partition (its resident worker is launched separately).
func (r *Router) equipSwitchless(p *partition) error {
	ring, err := sgx.NewRing(r.ringCapacity())
	if err != nil {
		return fmt.Errorf("broker: building publication ring: %w", err)
	}
	p.ring = ring
	// Jobs outstanding between dispatch and the worker's receive
	// never exceed the in-ring frame count plus the one the worker
	// already popped, so this capacity keeps dispatch non-blocking.
	p.jobs = make(chan *matchJob, ring.Capacity()+1)
	p.workerDone = make(chan struct{})
	return nil
}

// startSwitchless brings up the per-partition rings, resident workers,
// and the merger. Called once from NewRouter; slices added later by
// Repartition are equipped individually.
func (r *Router) startSwitchless() error {
	for _, p := range r.parts {
		if err := r.equipSwitchless(p); err != nil {
			return err
		}
	}
	r.merge = make(chan *matchJob, r.ringCapacity())
	r.mergerDone = make(chan struct{})
	for _, p := range r.parts {
		go r.publicationWorker(p)
	}
	go r.deliveryMerger()
	return nil
}

// stopSwitchless drains the pipeline: every dispatched job still
// completes (the producers are gone by the time Close calls this), the
// workers unwind, then the merger. No-op when switchless is disabled.
func (r *Router) stopSwitchless() {
	if r.merge == nil {
		return
	}
	for _, p := range r.parts {
		close(p.jobs)
	}
	for _, p := range r.parts {
		<-p.workerDone
	}
	for _, p := range r.parts {
		p.ring.Close()
	}
	close(r.merge)
	<-r.mergerDone
}

// handlePublish ingests a publication from a publisher connection:
// the federation overlay (when enabled) fans it out toward peers
// whose subscription digests match, and the local data plane matches
// and delivers it. Forwarded copies arriving from peers re-enter
// through routeLocal only — their overlay handling (dedup, TTL,
// re-forward) happened in handleFwdPub.
func (r *Router) handlePublish(m *Message) error {
	if err := r.checkScheme(m.Scheme); err != nil {
		// Publications are fire-and-forget; a frame encoded under a
		// different scheme would only be misinterpreted, so drop it.
		return err
	}
	if r.fed != nil {
		r.forwardPublication(m)
	}
	return r.routeLocal(m)
}

// routeLocal is steps ⑤–⑥ for both single publications and
// batches. On the synchronous path each slice's enclave is entered
// once for the whole wire message; on the switchless path the raw
// frame is handed to every slice's ring and the resident workers do
// the rest. Either way, delivery happens through the per-client
// queues — matching never blocks on a client connection.
func (r *Router) routeLocal(m *Message) error {
	if r.merge != nil {
		return r.pushPublication(m)
	}
	sk, _ := r.keys()
	if sk == nil {
		return ErrNotProvisioned
	}
	// The shared plane lock spans dispatch through delivery, so the
	// slice set (and the job's per-slice slot layout) cannot change
	// under this publication; a resize waits for it to finish.
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	job := r.acquireJob(m)
	r.matchFanout(job, sk)
	r.deliverJob(job)
	r.releaseJob(job)
	return nil
}

// matchFanout runs trusted step ⑤ on every slice in parallel: one
// ecall per slice covering the whole batch, each slice filling its own
// preallocated merge slot. A per-item failure (tampered ciphertext,
// malformed header) drops that item's contribution, matching the
// wire's fire-and-forget semantics.
func (r *Router) matchFanout(job *matchJob, sk *scrypto.SymmetricKey) {
	run := func(p *partition) {
		p.mu.Lock()
		_ = p.enclave.Ecall(func() error {
			r.matchSliceBatch(p, job, sk)
			return nil
		})
		p.mu.Unlock()
	}
	if len(r.parts) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// One slice, or one P: fan-out would only add scheduling
		// latency, so visit the slices in the calling goroutine.
		for _, p := range r.parts {
			run(p)
		}
		return
	}
	var wg sync.WaitGroup
	for _, p := range r.parts[1:] {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			run(p)
		}(p)
	}
	run(r.parts[0]) // slice 0 rides the caller, saving one handoff
	wg.Wait()
}

// matchSliceBatch is trusted step ⑤ on one slice for a whole batch:
// authenticate each header and match the batch against the slice's
// share of the index in one store pass. Sealed-exchange schemes
// (sgx-plain) open every SK envelope first — each slice decrypts
// independently, the replicated key management of the paper's
// partitioning note — into per-item buffers the slice reuses across
// batches; ciphertext schemes (aspe) hand the blobs to the store
// as-is. An item whose envelope fails authentication is blanked, so
// the scheme's decoder drops it exactly as the per-item path did. The
// caller holds p.mu and has accounted the enclave entry (an ecall on
// the synchronous path, the resident worker on the switchless path).
// Results land in job.perPart[p.idx] — this slice's own slot.
//
// scbr:vet enclave-boundary: both callers charge the entry — matchFanout wraps this in an Ecall body, publicationWorker is the resident switchless worker whose transition is charged once per drain
func (r *Router) matchSliceBatch(p *partition, job *matchJob, sk *scrypto.SymmetricKey) {
	encs := job.blobs
	if r.backend.Caps.SealedExchange {
		if p.openerKey != sk {
			opener, err := scrypto.NewOpener(sk)
			if err != nil {
				return
			}
			p.opener, p.openerKey = opener, sk
		}
		meter := p.slice.Accessor().Meter()
		for cap(p.enc) < len(job.blobs) {
			p.enc = append(p.enc[:cap(p.enc)], nil)
		}
		p.enc = p.enc[:len(job.blobs)]
		for i, blob := range job.blobs {
			plain, err := p.opener.OpenAppend(blob, p.enc[i][:0])
			if err != nil {
				p.enc[i] = p.enc[i][:0] // authentication failure: the decoder drops the empty item
				continue
			}
			meter.ChargeAES(len(blob))
			p.enc[i] = plain
		}
		encs = p.enc
	}
	// A store-level error (an unconfigured store) contributes nothing
	// for any item, exactly as every per-item call would have failed.
	_ = r.hub.MatchEncodedBatchIn(p.idx, encs, job.perPart[p.idx])
}

// pushPublication hands one wire message to the switchless pipeline:
// the job — carrying the whole batch — is dispatched to every slice's
// worker, the raw frame (the publisher's exact bytes, no re-encode) is
// pushed onto every slice's ring, and the job joins the merge queue.
// pushMu keeps the three in the same order across partitions, which is
// what makes ring position and job position line up and the merger's
// output order match publication order. Ring backpressure (a full ring
// blocks Push) propagates to the producer exactly as the single-ring
// design did.
func (r *Router) pushPublication(m *Message) error {
	raw := m.raw
	if raw == nil {
		// Direct callers (in-process tests) build Messages by hand;
		// wire traffic always carries its received frame.
		var err error
		raw, err = json.Marshal(m)
		if err != nil {
			return fmt.Errorf("encoding publication for the ring: %w", err)
		}
	}
	// The shared plane lock keeps the slice set stable from slot
	// sizing through the dispatch/push/merge handoff, so every ring
	// this job was dispatched to exists until the job is in the merge
	// queue; a resize waits behind in-flight pushes.
	r.planeMu.RLock()
	defer r.planeMu.RUnlock()
	job := r.acquireJob(m)
	job.pending.Store(int32(len(r.parts)))
	job.done = make(chan struct{})
	r.pushMu.Lock()
	defer r.pushMu.Unlock()
	for _, p := range r.parts {
		p.jobs <- job
	}
	for _, p := range r.parts {
		if err := p.ring.Push(raw); err != nil {
			return fmt.Errorf("%w: publication ring: %v", ErrClosed, err)
		}
	}
	r.merge <- job
	return nil
}

// publicationWorker is one slice's resident enclave thread in the
// switchless configuration: it enters the enclave once and matches
// publication batches straight off the slice's untrusted ring — one
// ring pop and one store pass per batch. Per-item failures (tampered
// ciphertext, malformed headers) and an unprovisioned router drop the
// slice's contribution, exactly as the per-ecall path does for
// fire-and-forget publish messages.
//
// The worker does not use Enclave.ServeRing: that helper charges the
// enclave meter outside any lock, while here registration ecalls on
// the same slice charge the same meter concurrently. All meter access
// below happens under the partition lock, like every other path that
// enters this slice.
func (r *Router) publicationWorker(p *partition) {
	defer close(p.workerDone)
	entered := false
	var buf []byte
	for job := range p.jobs {
		raw, ok := p.ring.Pop(buf)
		if !ok {
			// Ring severed mid-job (teardown): report empty so the
			// merger never wedges on this job.
			job.contribute()
			continue
		}
		buf = raw
		sk, _ := r.keys()
		p.mu.Lock()
		meter := p.slice.Accessor().Meter()
		if !entered {
			meter.ChargeTransition() // the worker's one-time entry/exit round trip
			entered = true
		}
		meter.Charge(meter.Cost.SwitchlessPollCycles)
		if sk != nil {
			r.matchSliceBatch(p, job, sk)
		}
		p.mu.Unlock()
		job.contribute()
	}
}

// deliveryMerger joins the per-slice match results in publication
// order and hands each item to the delivery layer, recycling the job
// once delivered. It is the only goroutine that forwards switchless
// matches, so per-client delivery order equals publication order even
// though the slices match out of lockstep; it never blocks on a client
// (the delivery queues are bounded and slow consumers are cut loose),
// so one merger keeps up with k matchers.
func (r *Router) deliveryMerger() {
	defer close(r.mergerDone)
	for job := range r.merge {
		if job.flush != nil {
			// Migration barrier sentinel: everything queued before it
			// has been delivered; signal and move on.
			close(job.flush)
			continue
		}
		<-job.done
		r.deliverJob(job)
		r.releaseJob(job)
	}
}
