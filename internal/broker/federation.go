// The router's federation layer: peer connection handling over the
// same wire protocol clients use, bridging internal/federation's
// overlay state machine onto real connections. A peer link is one TCP
// connection carrying both directions of digest updates and forwarded
// publications; the side listed in RouterConfig.Peers dials (with
// retry), the other side accepts the PEER_HELLO on its ordinary
// listener. Either way, the link only comes up after mutual
// attestation, and every federation frame on it is sealed under the
// per-link key the handshake derived.

package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scbr/internal/attest"
	"scbr/internal/federation"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// peerQueueLen bounds a peer link's outbound queue. It is sized to
// absorb a whole publish storm's worth of per-event forwards even
// when the link's writer goroutine is starved of CPU for the storm's
// duration (forwards fan out per publication, so a few thousand
// frames can arrive in one scheduler slice on a loaded box). What
// happens on overflow depends on the frame: losing a digest delta
// would leave the peer's view divergent forever, so digest overflow
// severs the link and lets the redial full-sync restore consistency;
// forwarded publications are fire-and-forget, so forward overflow
// drops that one frame (counted as ForwardsDropped) and keeps the
// link — severing would throw away everything else queued and lose
// every publication until the redial completes.
const peerQueueLen = 4096

// peerDialTimeout bounds one dial attempt so Close never waits long on
// an unreachable peer.
const peerDialTimeout = 2 * time.Second

// peerLink is the transport half of one attested peer connection: a
// bounded outbound queue drained by a dedicated writer, so digest
// broadcasts and forward fan-outs never block on a peer's socket.
type peerLink struct {
	fp   *federation.Peer
	conn net.Conn
	out  chan *Message
	quit chan struct{}
	once sync.Once
}

func (l *peerLink) stop() {
	l.once.Do(func() {
		close(l.quit)
		_ = l.conn.Close()
	})
}

// offer hands one frame to the writer without blocking, reporting
// whether it was accepted. The caller decides what an overflow means
// (see peerQueueLen): the frame types on a link have different loss
// semantics.
func (l *peerLink) offer(m *Message) bool {
	select {
	case l.out <- m:
		return true
	default:
		return false
	}
}

func (l *peerLink) writer() {
	for {
		select {
		case <-l.quit:
			return
		case m := <-l.out:
			if err := Send(l.conn, m); err != nil {
				l.stop()
				return
			}
		}
	}
}

// startFederation builds the overlay and launches the dialers. Called
// last in NewRouter, so a construction failure never leaves dialer
// goroutines behind.
func (r *Router) startFederation() error {
	cfg := r.cfg
	if cfg.RouterID == "" {
		return errors.New("broker: federation needs a router ID (set RouterConfig.RouterID)")
	}
	if cfg.PeerVerifier == nil {
		return errors.New("broker: federation needs a peer verifier (set RouterConfig.PeerVerifier)")
	}
	r.fedLinks = make(map[*peerLink]bool)
	r.fed = federation.NewOverlay(cfg.RouterID, cfg.FederationTTL, r.hub.Schema(),
		func(p *federation.Peer, frame []byte) {
			if link, ok := p.Tag.(*peerLink); ok {
				if !link.offer(&Message{Type: TypeSubDigest, Blob: frame}) {
					// A dropped digest delta would never be re-sent and
					// the peer's learned set would diverge silently.
					// Sever; the redial full-sync restores consistency.
					link.stop()
				}
			}
		})
	for _, addr := range cfg.Peers {
		r.wg.Add(1)
		go r.dialPeer(addr)
	}
	return nil
}

// peerIdentities returns the enclave identities this router accepts
// from peers: the configured pin set, or its own identity by default
// (a fleet launched from one measured image).
func (r *Router) peerIdentities() []attest.Identity {
	if len(r.cfg.PeerIdentities) > 0 {
		return r.cfg.PeerIdentities
	}
	return []attest.Identity{r.Identity()}
}

// dialPeer maintains one outbound peer link: dial, attest, run, and
// redial with backoff until the router closes.
func (r *Router) dialPeer(addr string) {
	defer r.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-r.closing:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
		if err == nil {
			var name string
			var key *scrypto.SymmetricKey
			name, key, err = r.dialHandshake(conn)
			if err == nil {
				backoff = 50 * time.Millisecond
				r.runPeer(conn, name, key)
			} else {
				_ = conn.Close()
			}
		}
		select {
		case <-r.closing:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > peerDialTimeout {
			backoff = peerDialTimeout
		}
	}
}

// dialHandshake runs the dialer's half of the attested handshake on a
// fresh connection. The connection is not yet registered for teardown
// (that happens in runPeer), so the whole exchange runs under a
// deadline — a stalled peer cannot wedge Close behind wg.Wait.
func (r *Router) dialHandshake(conn net.Conn) (name string, key *scrypto.SymmetricKey, err error) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	p0 := r.p0
	p0.mu.Lock()
	hello, ephemeral, err := federation.NewHello(r.cfg.RouterID, p0.enclave, r.quoter)
	p0.mu.Unlock()
	if err != nil {
		return "", nil, err
	}
	blob, err := json.Marshal(hello)
	if err != nil {
		return "", nil, fmt.Errorf("broker: encoding peer hello: %w", err)
	}
	if err := Send(conn, &Message{Type: TypePeerHello, Blob: blob}); err != nil {
		return "", nil, err
	}
	reply, err := Recv(conn)
	if err != nil {
		return "", nil, err
	}
	if err := expect(reply, TypePeerWelcome); err != nil {
		return "", nil, err
	}
	var welcome federation.Welcome
	if err := json.Unmarshal(reply.Blob, &welcome); err != nil {
		return "", nil, fmt.Errorf("broker: decoding peer welcome: %w", err)
	}
	p0.mu.Lock()
	key, err = federation.CompleteHandshake(&welcome, r.cfg.PeerVerifier, r.peerIdentities(), p0.enclave, ephemeral)
	p0.mu.Unlock()
	if err != nil {
		return "", nil, err
	}
	return welcome.RouterID, key, nil
}

// handlePeerHello runs the acceptor's half on a connection whose
// first message was PEER_HELLO, then serves the link until it drops.
// The connection never returns to the ordinary client loop.
func (r *Router) handlePeerHello(conn net.Conn, m *Message) error {
	if r.fed == nil {
		return errors.New("federation disabled on this router")
	}
	var hello federation.Hello
	if err := json.Unmarshal(m.Blob, &hello); err != nil {
		return fmt.Errorf("decoding peer hello: %w", err)
	}
	p0 := r.p0
	p0.mu.Lock()
	welcome, key, err := federation.AcceptHello(&hello, r.cfg.PeerVerifier, r.peerIdentities(),
		r.cfg.RouterID, p0.enclave, r.quoter)
	p0.mu.Unlock()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(welcome)
	if err != nil {
		return fmt.Errorf("encoding peer welcome: %w", err)
	}
	if err := Send(conn, &Message{Type: TypePeerWelcome, Blob: blob}); err != nil {
		return err
	}
	r.runPeer(conn, hello.RouterID, key)
	return nil
}

// runPeer attaches an attested link to the overlay and serves its
// read side until the connection drops or the router closes.
func (r *Router) runPeer(conn net.Conn, name string, key *scrypto.SymmetricKey) {
	link := &peerLink{
		conn: conn,
		out:  make(chan *Message, peerQueueLen),
		quit: make(chan struct{}),
	}
	link.fp = r.fed.AttachPeer(name, key, link)
	r.fedMu.Lock()
	select {
	case <-r.closing:
		r.fedMu.Unlock()
		r.fed.DetachPeer(link.fp)
		link.stop()
		return
	default:
	}
	r.fedLinks[link] = true
	r.fedMu.Unlock()
	go link.writer()
	defer func() {
		r.fed.DetachPeer(link.fp)
		r.fedMu.Lock()
		delete(r.fedLinks, link)
		r.fedMu.Unlock()
		link.stop()
	}()
	for {
		m, err := Recv(conn)
		if err != nil {
			return
		}
		switch m.Type {
		case TypeSubDigest:
			p0 := r.p0
			p0.mu.Lock()
			err := p0.enclave.Ecall(func() error { return r.fed.HandleDigest(link.fp, m.Blob) })
			p0.mu.Unlock()
			if err != nil {
				// A digest that fails to apply leaves this side's view
				// of the peer's interests divergent, and the sender has
				// already advanced its announced set — the lost delta
				// would never be re-sent. Sever the link; the redial
				// full-sync restores consistency.
				return
			}
		case TypeFwdPub:
			r.handleFwdPub(link, m)
		default:
			return // protocol violation: sever the link
		}
	}
}

// openHeaderLocked is the federation layer's trusted header
// decryption: recover and intern the publication header for digest
// evaluation. The caller holds the partition lock and is inside its
// enclave, exactly like matchSlice.
func (r *Router) openHeaderLocked(p *partition, blob []byte, sk *scrypto.SymmetricKey) (*pubsub.Event, error) {
	plain, err := scrypto.Open(sk, blob)
	if err != nil {
		return nil, fmt.Errorf("decrypting header: %w", err)
	}
	p.slice.Accessor().Meter().ChargeAES(len(blob))
	spec, err := pubsub.DecodeEventSpec(plain)
	if err != nil {
		return nil, fmt.Errorf("decoding header: %w", err)
	}
	return spec.Intern(r.hub.Schema())
}

// forwardPublication fans a locally ingested publication out to the
// peers whose digests match, alongside (and independent of) the local
// match fan-out. The digest evaluation decrypts the header inside the
// attestation slice's enclave; the frames relayed to peers carry the
// publisher's original ciphertexts.
func (r *Router) forwardPublication(m *Message) {
	if !r.fed.HasPeers() {
		// No attached links: don't pay the partition-0 enclave entry
		// (and its lock) just to decide "forward nowhere".
		return
	}
	sk, _ := r.keys()
	if sk == nil {
		return
	}
	p0 := r.p0
	var outs []federation.Outbound
	p0.mu.Lock()
	_ = p0.enclave.Ecall(func() error {
		forEachPublication(m, func(blob, payload []byte) {
			ev, err := r.openHeaderLocked(p0, blob, sk)
			if err != nil {
				return // tampered item: the local path drops it too
			}
			o, err := r.fed.ForwardLocal(blob, payload, m.Epoch, ev)
			if err == nil {
				outs = append(outs, o...)
			}
		})
		return nil
	})
	p0.mu.Unlock()
	r.fedSend(outs)
}

// handleFwdPub processes one forwarded publication from a peer:
// suppress duplicates and our own publications come full circle,
// re-forward toward further matching downstreams, and route the first
// sighting into the local matching pipeline so its deliveries flow
// through the ordinary per-client queues.
func (r *Router) handleFwdPub(link *peerLink, m *Message) {
	sk, _ := r.keys()
	p0 := r.p0
	var (
		fwd  *federation.ForwardedPublication
		outs []federation.Outbound
		err  error
	)
	p0.mu.Lock()
	_ = p0.enclave.Ecall(func() error {
		fwd, outs, err = r.fed.HandleForward(link.fp, m.Blob, func(header []byte) (*pubsub.Event, error) {
			if sk == nil {
				return nil, ErrNotProvisioned
			}
			return r.openHeaderLocked(p0, header, sk)
		})
		return nil
	})
	p0.mu.Unlock()
	if err != nil {
		return // malformed or unauthenticated frame: drop
	}
	r.fedSend(outs)
	if fwd != nil {
		_ = r.routeLocal(&Message{Type: TypePublish, Blob: fwd.Header, Payload: fwd.Payload, Epoch: fwd.Epoch})
	}
}

// fedSend enqueues sealed forward frames onto their links. A link
// whose queue is full loses this one frame (forwards are
// fire-and-forget) — the link itself stays up, so everything already
// queued and everything after still flows.
func (r *Router) fedSend(outs []federation.Outbound) {
	for _, ob := range outs {
		if link, ok := ob.Peer.Tag.(*peerLink); ok {
			if !link.offer(&Message{Type: TypeFwdPub, Blob: ob.Frame}) {
				r.fed.NoteForwardDropped()
			}
		}
	}
}

// fedAddLocal folds an accepted registration into the digest state,
// inside the attestation slice's enclave (subscription plaintext never
// leaves enclaves).
func (r *Router) fedAddLocal(subID uint64, spec pubsub.SubscriptionSpec) {
	if r.fed == nil {
		return
	}
	p0 := r.p0
	p0.mu.Lock()
	_ = p0.enclave.Ecall(func() error { return r.fed.AddLocal(subID, spec) })
	p0.mu.Unlock()
}

// fedRemoveLocal drops a removed registration from the digest state.
func (r *Router) fedRemoveLocal(subID uint64) {
	if r.fed == nil {
		return
	}
	p0 := r.p0
	p0.mu.Lock()
	_ = p0.enclave.Ecall(func() error { r.fed.RemoveLocal(subID); return nil })
	p0.mu.Unlock()
}

// FederationSnapshot reports the overlay's counters: live peers,
// digest sizes and update counts, and the forwarded / withheld /
// suppressed publication tallies. Zero when federation is disabled.
func (r *Router) FederationSnapshot() federation.Counters {
	if r.fed == nil {
		return federation.Counters{}
	}
	return r.fed.Snapshot()
}
