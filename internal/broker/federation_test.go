package broker

import (
	"net"
	"testing"
)

// TestPeerLinkOverflowPolicy pins the per-frame overflow semantics of
// a peer link's bounded outbound queue. A full queue must reject the
// offered frame without severing the link: forwarded publications are
// fire-and-forget, so the caller (fedSend) drops just that frame and
// counts it, keeping everything already queued — and every later
// publication — flowing. Severing on forward overflow is the failure
// mode this guards against: it discarded the whole queue and lost
// every forward until the redial completed (a storm's worth of
// silent loss whenever the writer goroutine was briefly starved).
// Only the digest path, whose deltas cannot be re-sent, severs.
func TestPeerLinkOverflowPolicy(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	link := &peerLink{
		conn: c1,
		out:  make(chan *Message, 1),
		quit: make(chan struct{}),
	}
	if !link.offer(&Message{Type: TypeFwdPub}) {
		t.Fatal("offer to an empty queue should be accepted")
	}
	if link.offer(&Message{Type: TypeFwdPub}) {
		t.Fatal("offer to a full queue should be rejected")
	}
	select {
	case <-link.quit:
		t.Fatal("a rejected offer must not sever the link")
	default:
	}
	// The queued frame is still there: draining one slot makes the
	// next offer land again.
	<-link.out
	if !link.offer(&Message{Type: TypeFwdPub}) {
		t.Fatal("offer after drain should be accepted again")
	}
}
