package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"scbr/internal/attest"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// collectExactly drains ch until every payload in want arrived exactly
// once, then verifies silence — a duplicate, an unexpected payload, or
// a missing one fails the test.
func collectExactly(t *testing.T, name string, ch <-chan Delivery, want map[string]bool) {
	t.Helper()
	got := make(map[string]int, len(want))
	deadline := time.After(30 * time.Second)
	for received := 0; received < len(want); {
		select {
		case d, ok := <-ch:
			if !ok {
				t.Fatalf("%s: delivery channel closed after %d/%d deliveries", name, received, len(want))
			}
			if d.Err != nil {
				t.Fatalf("%s: delivery error: %v", name, d.Err)
			}
			p := string(d.Payload)
			if !want[p] {
				t.Fatalf("%s: unexpected payload %q", name, p)
			}
			got[p]++
			if got[p] > 1 {
				t.Fatalf("%s: duplicate delivery of %q", name, p)
			}
			received++
		case <-deadline:
			t.Fatalf("%s: timed out with %d/%d deliveries (missing e.g. %s)", name, received, len(want), firstMissing(want, got))
		}
	}
	select {
	case d := <-ch:
		t.Fatalf("%s: extra delivery %q after the expected set", name, d.Payload)
	case <-time.After(150 * time.Millisecond):
	}
}

func firstMissing(want map[string]bool, got map[string]int) string {
	for p := range want {
		if got[p] == 0 {
			return p
		}
	}
	return "<none>"
}

// runRepartitionCell drives one cell of the equivalence matrix: the
// delivered set must be exactly the predicate-determined expectation
// whether the slice fleet holds still, resizes mid-publish, or resizes
// mid-register — across both schemes and both publication transports.
func runRepartitionCell(t *testing.T, schemeName string, switchless bool, mode string) {
	mutate := func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.Switchless = switchless
	}
	var sys *testSystem
	if schemeName == scheme.ASPE {
		sys = newSchemeTestSystem(t, schemeName, aspeTestCodec(t), mutate)
	} else {
		sys = newTestSystemCfg(t, mutate)
	}

	alice, aliceRx := sys.attach("alice")
	bob, bobRx := sys.attach("bob")
	aliceSub, err := alice.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Subscribe(bg, halSpec(80)); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	prices := []float64{10, 25, 40, 55, 70, 85}
	payload := func(round int, price float64) string { return fmt.Sprintf("r%d-p%g", round, price) }

	wantAlice, wantBob := make(map[string]bool), make(map[string]bool)
	for r := 0; r < rounds; r++ {
		for _, p := range prices {
			if p < 50 {
				wantAlice[payload(r, p)] = true
			}
			if p < 80 {
				wantBob[payload(r, p)] = true
			}
		}
	}

	publishAll := func() {
		for r := 0; r < rounds; r++ {
			for _, p := range prices {
				if err := sys.publisher.Publish(bg, halQuote(p), []byte(payload(r, p))); err != nil {
					t.Errorf("publish round %d price %g: %v", r, p, err)
					return
				}
			}
		}
	}
	repartition := func(targets ...int) error {
		for _, k := range targets {
			if _, err := sys.router.Repartition(bg, k); err != nil {
				return fmt.Errorf("repartition to %d: %w", k, err)
			}
		}
		return nil
	}

	var carolRx <-chan Delivery
	wantCarol := make(map[string]bool)
	switch mode {
	case "none":
		publishAll()
	case "publish":
		// Grow then shrink while the storm is in flight.
		errc := make(chan error, 1)
		go func() { errc <- repartition(4, 1) }()
		publishAll()
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	case "register":
		// A third subscriber registers while shards are moving; the
		// storm runs after, so its deliveries prove the registration
		// landed on a live slice.
		errc := make(chan error, 1)
		go func() { errc <- repartition(4, 3) }()
		var carol *Client
		carol, carolRx = sys.attach("carol")
		if _, err := carol.Subscribe(bg, halSpec(30)); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			for _, p := range prices {
				if p < 30 {
					wantCarol[payload(r, p)] = true
				}
			}
		}
		publishAll()
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	collectExactly(t, "alice", aliceRx, wantAlice)
	collectExactly(t, "bob", bobRx, wantBob)
	if carolRx != nil {
		collectExactly(t, "carol", carolRx, wantCarol)
	}

	// Ownership survives the moves: unsubscribing a migrated
	// subscription must still find and silence it.
	if err := aliceSub.Unsubscribe(bg); err != nil {
		t.Fatalf("unsubscribe after migration: %v", err)
	}
	if err := sys.publisher.Publish(bg, halQuote(10), []byte("post-unsub")); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, aliceRx)

	snap := sys.router.PlacementSnapshot()
	if mode != "none" && snap.Migrations == 0 {
		t.Fatalf("no migrations recorded: %+v", snap)
	}
	if got := sys.router.Partitions(); got != snap.Slices {
		t.Fatalf("router has %d partitions, placement says %d", got, snap.Slices)
	}
}

func TestRepartitionEquivalence(t *testing.T) {
	for _, schemeName := range []string{scheme.Plain, scheme.ASPE} {
		for _, switchless := range []bool{false, true} {
			for _, mode := range []string{"none", "publish", "register"} {
				schemeName, switchless, mode := schemeName, switchless, mode
				t.Run(fmt.Sprintf("%s/switchless=%v/%s", schemeName, switchless, mode), func(t *testing.T) {
					runRepartitionCell(t, schemeName, switchless, mode)
				})
			}
		}
	}
}

// TestRepartitionStress races publications, subscription churn, and
// repeated fleet resizes; run under -race it doubles as the migration
// engine's data-race probe.
func TestRepartitionStress(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) {
		cfg.Partitions = 2
		cfg.Switchless = true
	})
	alice, aliceRx := sys.attach("alice")
	if _, err := alice.Subscribe(bg, halSpec(1e9)); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range aliceRx {
		}
	}()

	churner, _ := sys.attach("churner")
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := sys.publisher.Publish(bg, halQuote(float64(i%100)), []byte(fmt.Sprintf("s%d", i))); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := churner.Subscribe(bg, halSpec(float64(10+i%50)))
			if err != nil {
				t.Errorf("churn subscribe %d: %v", i, err)
				return
			}
			if err := sub.Unsubscribe(bg); err != nil {
				t.Errorf("churn unsubscribe %d: %v", i, err)
				return
			}
		}
	}()

	for _, k := range []int{4, 1, 3, 2, 5, 1} {
		if _, err := sys.router.Repartition(bg, k); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("repartition to %d under load: %v", k, err)
		}
	}
	close(stop)
	wg.Wait()

	snap := sys.router.PlacementSnapshot()
	if snap.Slices != 1 || sys.router.Partitions() != 1 {
		t.Fatalf("final fleet: placement %d, router %d, want 1", snap.Slices, sys.router.Partitions())
	}
	if snap.Migrations == 0 || snap.ShardsMoved == 0 {
		t.Fatalf("no migration activity recorded: %+v", snap)
	}
}

// TestRepartitionSealRestorePlacement seals a resized router and
// restores it into a fresh fleet built with the post-resize partition
// count: the sealed shard→slice table must reinstate verbatim and the
// replayed database must match live traffic.
//
// SealToMRENCLAVE binds the per-slice EPC share into the measured
// identity (EPCBytes enters the ECREATE hash), so the restoring fleet
// must launch slices with the same share the sealing fleet used:
// EPCBytes here scales with the partition count to hold the share
// constant.
func TestRepartitionSealRestorePlacement(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("repartition-persist"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "repartition-persist-platform")
	if err != nil {
		t.Fatal(err)
	}
	ias := attest.NewService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	const epcPerSlice = 4 << 20
	cfg := RouterConfig{
		EnclaveImage:  []byte("repartition persistent router image"),
		EnclaveSigner: signer.Public(),
		Partitions:    2,
		EPCBytes:      2 * epcPerSlice,
	}
	r1, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(ias, r1.Identity())
	if err != nil {
		t.Fatal(err)
	}
	serve := func(r *Router) net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = r.Serve(bg, ln) }()
		return ln
	}
	ln1 := serve(r1)
	conn1, err := net.Dial("tcp", ln1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ConnectRouter(bg, conn1); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	clientSide, pubSide := net.Pipe()
	go pub.ServeClient(bg, pubSide)
	c.ConnectPublisher(clientSide, pub.PublicKey())
	sub, err := c.Subscribe(bg, halSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Repartition(bg, 3); err != nil {
		t.Fatalf("repartition before seal: %v", err)
	}
	sealedSnap := r1.PlacementSnapshot()
	blob, err := r1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	_ = ln1.Close()

	// A fresh 2-slice router cannot take a 3-slice snapshot.
	rMismatch, err := NewRouter(dev, quoter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rMismatch.RestoreState(blob); err == nil {
		t.Fatal("2-slice router restored a 3-slice snapshot")
	}
	rMismatch.Close()

	cfg3 := cfg
	cfg3.Partitions = 3
	cfg3.EPCBytes = 3 * epcPerSlice
	r2, err := NewRouter(dev, quoter, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreState(blob); err != nil {
		t.Fatalf("restoring resized state: %v", err)
	}
	restored := r2.PlacementSnapshot()
	if restored.Slices != sealedSnap.Slices || len(restored.Table) != len(sealedSnap.Table) {
		t.Fatalf("restored placement %+v, sealed %+v", restored, sealedSnap)
	}
	for s, slice := range sealedSnap.Table {
		if restored.Table[s] != slice {
			t.Fatalf("shard %d restored onto slice %d, sealed on %d", s, restored.Table[s], slice)
		}
	}

	ln2 := serve(r2)
	t.Cleanup(func() { r2.Close(); _ = ln2.Close() })
	conn2, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.ConnectRouter(bg, conn2); err != nil {
		t.Fatalf("re-provisioning restored router: %v", err)
	}
	routerConn, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(bg, routerConn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := pub.Publish(bg, halQuote(42), []byte("after resize restart")); err != nil {
		t.Fatal(err)
	}
	d, err := sub.Next(bg)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "after resize restart" {
		t.Fatalf("payload = %q", d.Payload)
	}
}

func TestRepartitionValidation(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) { cfg.Partitions = 2 })
	snap := sys.router.PlacementSnapshot()
	if _, err := sys.router.Repartition(bg, -1); err == nil {
		t.Fatal("repartition to -1 accepted")
	}
	if _, err := sys.router.Repartition(bg, snap.Shards+1); err == nil {
		t.Fatalf("repartition past the %d-shard map accepted", snap.Shards)
	}
	same, err := sys.router.Repartition(bg, snap.Slices)
	if err != nil {
		t.Fatalf("no-op repartition: %v", err)
	}
	if same.Epoch != snap.Epoch {
		t.Fatalf("no-op repartition bumped the epoch: %d → %d", snap.Epoch, same.Epoch)
	}
	// k = 0 resizes to the footprint-sized recommendation: this
	// near-empty store fits one slice.
	want := sys.router.RecommendPartitions()
	if want != 1 {
		t.Fatalf("recommendation for a near-empty store = %d, want 1", want)
	}
	auto, err := sys.router.Repartition(bg, 0)
	if err != nil {
		t.Fatalf("auto repartition: %v", err)
	}
	if auto.Slices != want {
		t.Fatalf("auto repartition left %d slices, recommendation was %d", auto.Slices, want)
	}
}

func TestRepartitionAfterClose(t *testing.T) {
	sys := newTestSystemCfg(t, func(cfg *RouterConfig) { cfg.Partitions = 2 })
	sys.router.Close()
	if _, err := sys.router.Repartition(bg, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("repartition after close: %v, want ErrClosed", err)
	}
}
