package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasicShape(t *testing.T) {
	s := []Series{{
		Name: "line",
		X:    []float64{1, 2, 3, 4},
		Y:    []float64{1, 2, 3, 4},
	}}
	out, err := Render(s, Options{Width: 20, Height: 10, Title: "t", XLabel: "x", YLabel: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t\n") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* line") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	// A monotonically increasing series puts the first marker row above
	// the last: find the topmost and bottommost marker columns.
	var topCol, bottomCol = -1, -1
	for _, ln := range lines {
		if i := strings.IndexByte(ln, '*'); i >= 0 {
			if topCol == -1 {
				topCol = i
			}
			bottomCol = i
		}
	}
	if topCol == -1 {
		t.Fatal("no markers rendered")
	}
	if topCol <= bottomCol {
		t.Errorf("increasing series renders top col %d ≤ bottom col %d", topCol, bottomCol)
	}
}

func TestRenderEmptyFails(t *testing.T) {
	if _, err := Render(nil, Options{}); err == nil {
		t.Fatal("empty plot accepted")
	}
	if _, err := Render([]Series{{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}}, Options{}); err == nil {
		t.Fatal("all-NaN plot accepted")
	}
	// On a log axis, non-positive values are unplottable.
	if _, err := Render([]Series{{Name: "neg", X: []float64{1}, Y: []float64{-5}}}, Options{LogY: true}); err == nil {
		t.Fatal("negative-on-log plot accepted")
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{1, 1}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{2, 2}},
	}
	out, err := Render(s, Options{Width: 10, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two distinct markers:\n%s", out)
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	// A single point must render without dividing by zero.
	out, err := Render([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("single point not rendered")
	}
	// Same on log axes.
	if _, err := Render([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{LogX: true, LogY: true}); err != nil {
		t.Fatal(err)
	}
}

// TestAxisUnitProperty: unit() maps every observed value into [0,1],
// monotonically, on both axis kinds.
func TestAxisUnitProperty(t *testing.T) {
	property := func(raw []float64) bool {
		for _, log := range []bool{false, true} {
			a := newAxis(log)
			var vals []float64
			for _, v := range raw {
				v = math.Abs(v)
				if !a.ok(v) {
					continue
				}
				a.observe(v)
				vals = append(vals, v)
			}
			if len(vals) == 0 {
				continue
			}
			a.finish()
			for _, v := range vals {
				u := a.unit(v)
				if u < -1e-9 || u > 1+1e-9 || math.IsNaN(u) {
					return false
				}
			}
			for i := 1; i < len(vals); i++ {
				lo, hi := vals[i-1], vals[i]
				if lo > hi {
					lo, hi = hi, lo
				}
				if a.unit(lo) > a.unit(hi)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTableAndFloat(t *testing.T) {
	csv := "subs,out_us,name\n1000,4.5,alpha\n2000,9.25,beta\n"
	tbl, err := ReadTable(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	subs, err := tbl.Float("subs")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0] != 1000 || subs[1] != 2000 {
		t.Fatalf("subs = %v", subs)
	}
	if _, err := tbl.Float("name"); err == nil {
		t.Fatal("textual column parsed as float")
	}
	if _, err := tbl.Float("absent"); err == nil {
		t.Fatal("missing column accepted")
	}
	got := tbl.NumericColumns()
	if len(got) != 2 || got[0] != "subs" || got[1] != "out_us" {
		t.Fatalf("NumericColumns = %v", got)
	}
}

func TestReadTableRejectsHeaderOnly(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("header-only csv accepted")
	}
	if _, err := ReadTable(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
}
