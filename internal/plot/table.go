package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Table is a parsed scbr-bench CSV: one header row naming columns,
// then data rows. Columns may be numeric (timings, sizes) or textual
// (workload names, modes); Float fails only when a requested column
// is non-numeric.
type Table struct {
	Header []string
	Rows   [][]string
}

// ReadTable parses a CSV with a header row.
func ReadTable(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("plot: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("plot: csv has %d rows, need a header and data", len(records))
	}
	return &Table{Header: records[0], Rows: records[1:]}, nil
}

// index finds a column by name.
func (t *Table) index(name string) (int, error) {
	for i, h := range t.Header {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("plot: no column %q (have %v)", name, t.Header)
}

// Float extracts a column as float64.
func (t *Table) Float(name string) ([]float64, error) {
	col, err := t.index(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(t.Rows))
	for i, row := range t.Rows {
		if col >= len(row) {
			return nil, fmt.Errorf("plot: row %d has %d cells, column %q is #%d", i+1, len(row), name, col)
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return nil, fmt.Errorf("plot: row %d column %q: %w", i+1, name, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// NumericColumns returns the names of every column whose cells all
// parse as numbers — the default set a plot renders against x.
func (t *Table) NumericColumns() []string {
	var out []string
column:
	for i, name := range t.Header {
		for _, row := range t.Rows {
			if i >= len(row) {
				continue column
			}
			if _, err := strconv.ParseFloat(row[i], 64); err != nil {
				continue column
			}
		}
		out = append(out, name)
	}
	return out
}
