// Deployment planning: size a topology's data planes from the scheme's
// measured footprint model and pack the routers onto heterogeneous
// hosts before anything launches.
//
// Partition-count sizing follows the broker's EPC discipline: a
// router's EPC budget is divided into identical page-aligned slice
// shares (broker.SliceEPCShare — identical because the share is part
// of the measured enclave identity), and a slice only performs while
// its working set stays inside its share (the Fig. 8 paging cliff).
// Feasibility is monotone: each extra slice pays the store's base cost
// again, so if one slice cannot hold the database under its share,
// more slices cannot either — the planner therefore scans k downward
// from the cap and picks the LARGEST feasible count, buying the most
// match parallelism the budget supports, and rejects the spec when
// even k=1 does not fit.
//
// Packing is first-fit-decreasing: routers by committed EPC
// descending onto hosts by capacity descending, so EPC-hungry routers
// land on EPC-rich hosts first and the classic FFD bound applies.

package deploy

import (
	"errors"
	"fmt"
	"sort"

	"scbr/internal/broker"
	"scbr/internal/scheme"
	"scbr/internal/streamhub"
)

// ErrInfeasible reports a spec no plan can satisfy: a router whose
// working set cannot fit one slice's EPC share even at the partition
// cap, or a router no host has room for. Callers match it with
// errors.Is.
var ErrInfeasible = errors.New("deploy: spec infeasible")

// DefaultMaxPartitionsPerRouter caps planned per-router slice counts:
// beyond this, per-slice base costs and fan-out merge overhead eat the
// parallelism the extra slices buy.
const DefaultMaxPartitionsPerRouter = 8

// DefaultPlanAttrs is the assumed per-subscription attribute count
// when the spec does not say: the stock-quote workload's base
// universe.
const DefaultPlanAttrs = 11

// DefaultHeadroom is the fraction of each slice's EPC share the
// planner keeps free for growth — matching the broker's online
// recommendation discipline (7/8 usable).
const DefaultHeadroom = 0.125

// RouterSpec sizes one router's expected load for the planner.
type RouterSpec struct {
	// EPCBudget is the router's total EPC across all its matcher
	// slices, in bytes. Must be positive: a plan with no memory is a
	// spec error, not a default.
	EPCBudget uint64 `json:"epc_budget"`
	// Subscriptions is the subscription volume the router must hold.
	Subscriptions int `json:"subscriptions"`
}

// HostSpec describes one machine routers can be packed onto — the
// heterogeneous-fleet case where some hosts have large EPCs and some
// small.
type HostSpec struct {
	Name string `json:"name"`
	// EPCBytes is the host's usable EPC. Must be positive.
	EPCBytes uint64 `json:"epc_bytes"`
}

// RouterPlan is one router's sized data plane.
type RouterPlan struct {
	Router        int    `json:"router"`
	EPCBudget     uint64 `json:"epc_budget"`
	Subscriptions int    `json:"subscriptions"`
	// FootprintBytes is the model-predicted store footprint of the
	// whole database on this router.
	FootprintBytes uint64 `json:"footprint_bytes"`
	// Partitions is the planned slice count; SliceEPCBytes the
	// identical per-slice EPC share; SliceFootprintBytes the predicted
	// per-slice working set under an even spread.
	Partitions          int    `json:"partitions"`
	SliceEPCBytes       uint64 `json:"slice_epc_bytes"`
	SliceFootprintBytes uint64 `json:"slice_footprint_bytes"`
	// CommittedBytes is the EPC the router actually reserves:
	// Partitions × SliceEPCBytes (≥ EPCBudget — shares are page-ceil).
	CommittedBytes uint64 `json:"committed_bytes"`
	// Host names the packed host ("" when the spec lists no hosts).
	Host string `json:"host,omitempty"`
	// Utilization is SliceFootprintBytes / SliceEPCBytes — how full
	// each slice's share is at the expected volume.
	Utilization float64 `json:"utilization"`
}

// HostPlan is one host's packing assignment.
type HostPlan struct {
	Host     string `json:"host"`
	EPCBytes uint64 `json:"epc_bytes"`
	// Routers lists packed router indices in packing order.
	Routers []int `json:"routers"`
	// CommittedBytes sums the packed routers' reserved EPC.
	CommittedBytes uint64 `json:"committed_bytes"`
}

// TopologyPlan is the inspectable result of Plan: what NewTopology
// will execute. All fields are value types with deterministic JSON
// encodings — the same spec always marshals to the same bytes.
type TopologyPlan struct {
	Scheme   string       `json:"scheme"`
	Attrs    int          `json:"attrs"`
	Headroom float64      `json:"headroom"`
	Routers  []RouterPlan `json:"routers"`
	Hosts    []HostPlan   `json:"hosts,omitempty"`
}

// validateSpec checks the structural invariants shared by Plan and
// NewTopology.
func validateSpec(spec TopologySpec) error {
	if spec.Routers < 1 {
		return fmt.Errorf("deploy: topology needs at least one router, got %d", spec.Routers)
	}
	seen := make(map[[2]int]bool, len(spec.Links))
	for _, l := range spec.Links {
		if l[0] < 0 || l[0] >= spec.Routers || l[1] < 0 || l[1] >= spec.Routers || l[0] == l[1] {
			return fmt.Errorf("deploy: link %v names no router pair of %d", l, spec.Routers)
		}
		if seen[l] {
			return fmt.Errorf("deploy: duplicate link %v", l)
		}
		seen[l] = true
	}
	if spec.RouterSpecs != nil && len(spec.RouterSpecs) != spec.Routers {
		return fmt.Errorf("deploy: %d router specs for %d routers", len(spec.RouterSpecs), spec.Routers)
	}
	for i, rs := range spec.RouterSpecs {
		if rs.EPCBudget == 0 {
			return fmt.Errorf("deploy: router %d has a zero EPC budget — plans need explicit budgets", i)
		}
		if rs.Subscriptions < 0 {
			return fmt.Errorf("deploy: router %d expects %d subscriptions", i, rs.Subscriptions)
		}
	}
	for i, h := range spec.Hosts {
		if h.Name == "" {
			return fmt.Errorf("deploy: host %d has no name", i)
		}
		if h.EPCBytes == 0 {
			return fmt.Errorf("deploy: host %q has zero EPC", h.Name)
		}
	}
	if spec.Headroom < 0 || spec.Headroom >= 1 {
		return fmt.Errorf("deploy: headroom %v out of range [0,1)", spec.Headroom)
	}
	if spec.MaxPartitionsPerRouter < 0 || spec.MaxPartitionsPerRouter > streamhub.MaxPartitions {
		return fmt.Errorf("deploy: partition cap %d out of range [1,%d]", spec.MaxPartitionsPerRouter, streamhub.MaxPartitions)
	}
	if spec.Attrs < 0 {
		return fmt.Errorf("deploy: negative attribute count %d", spec.Attrs)
	}
	return nil
}

// Plan sizes every router's partition count from the scheme's measured
// footprint model and packs the routers onto the spec's hosts. The
// spec must carry RouterSpecs; the scheme must publish a footprint
// model. Infeasible specs — a database that cannot fit one slice's
// share even at the partition cap, or a router too big for every host
// — return an error matching ErrInfeasible.
func Plan(spec TopologySpec) (*TopologyPlan, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if spec.RouterSpecs == nil {
		return nil, fmt.Errorf("deploy: spec has no router specs to plan from")
	}
	backend, err := scheme.Lookup(spec.Scheme)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	fp := backend.Footprint
	if fp.Zero() {
		return nil, fmt.Errorf("deploy: scheme %q publishes no footprint model", backend.Name)
	}
	attrs := spec.Attrs
	if attrs == 0 {
		attrs = DefaultPlanAttrs
	}
	headroom := spec.Headroom
	if headroom == 0 {
		headroom = DefaultHeadroom
	}
	maxK := spec.MaxPartitionsPerRouter
	if maxK == 0 {
		maxK = DefaultMaxPartitionsPerRouter
	}

	plan := &TopologyPlan{Scheme: backend.Name, Attrs: attrs, Headroom: headroom}
	for i, rs := range spec.RouterSpecs {
		rp, err := planRouter(i, rs, fp, attrs, headroom, maxK)
		if err != nil {
			return nil, err
		}
		plan.Routers = append(plan.Routers, rp)
	}
	if len(spec.Hosts) > 0 {
		if err := packHosts(plan, spec.Hosts); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// planRouter picks router i's largest feasible partition count: every
// k from the cap down is tried until the per-slice working set fits
// under the usable fraction of its EPC share.
func planRouter(i int, rs RouterSpec, fp scheme.FootprintModel, attrs int, headroom float64, maxK int) (RouterPlan, error) {
	rp := RouterPlan{
		Router:         i,
		EPCBudget:      rs.EPCBudget,
		Subscriptions:  rs.Subscriptions,
		FootprintBytes: fp.Footprint(rs.Subscriptions, attrs),
	}
	for k := maxK; k >= 1; k-- {
		share := broker.SliceEPCShare(rs.EPCBudget, k)
		usable := uint64(float64(share) * (1 - headroom))
		perSlice := fp.Footprint((rs.Subscriptions+k-1)/k, attrs)
		if perSlice <= usable {
			rp.Partitions = k
			rp.SliceEPCBytes = share
			rp.SliceFootprintBytes = perSlice
			rp.CommittedBytes = uint64(k) * share
			rp.Utilization = float64(perSlice) / float64(share)
			return rp, nil
		}
	}
	share := broker.SliceEPCShare(rs.EPCBudget, 1)
	return rp, fmt.Errorf("%w: router %d needs %d bytes for %d subscriptions, over the %d usable of its %d-byte share at every k ≤ %d",
		ErrInfeasible, i, rp.FootprintBytes, rs.Subscriptions,
		uint64(float64(share)*(1-headroom)), share, maxK)
}

// packHosts assigns each planned router a host, first-fit-decreasing:
// routers by committed EPC descending (ties by index), hosts by
// capacity descending (ties by spec order). Deterministic by
// construction.
func packHosts(plan *TopologyPlan, hosts []HostSpec) error {
	order := make([]int, len(plan.Routers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return plan.Routers[order[a]].CommittedBytes > plan.Routers[order[b]].CommittedBytes
	})

	hostPlans := make([]HostPlan, len(hosts))
	hostOrder := make([]int, len(hosts))
	for i, h := range hosts {
		hostPlans[i] = HostPlan{Host: h.Name, EPCBytes: h.EPCBytes, Routers: []int{}}
		hostOrder[i] = i
	}
	sort.SliceStable(hostOrder, func(a, b int) bool {
		return hosts[hostOrder[a]].EPCBytes > hosts[hostOrder[b]].EPCBytes
	})

	for _, ri := range order {
		r := &plan.Routers[ri]
		placed := false
		for _, hi := range hostOrder {
			hp := &hostPlans[hi]
			if hp.EPCBytes-hp.CommittedBytes >= r.CommittedBytes {
				hp.Routers = append(hp.Routers, ri)
				hp.CommittedBytes += r.CommittedBytes
				r.Host = hp.Host
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("%w: router %d reserves %d EPC bytes, more than any host has free",
				ErrInfeasible, ri, r.CommittedBytes)
		}
	}
	plan.Hosts = hostPlans
	return nil
}
