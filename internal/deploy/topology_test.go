package deploy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"scbr/internal/broker"
	"scbr/internal/federation"
	"scbr/internal/pubsub"
)

const fedWait = 10 * time.Second

func halSpec(t *testing.T) pubsub.SubscriptionSpec {
	t.Helper()
	spec, err := pubsub.ParseSpec(`symbol = "HAL"`)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func halHeader(symbol string) pubsub.EventSpec {
	return pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str(symbol)},
	}}
}

// expectDelivery waits for exactly one delivery with the given payload
// and then asserts the stream stays quiet.
func expectDelivery(t *testing.T, sub *broker.Subscription, payload string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), fedWait)
	defer cancel()
	d, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("waiting for delivery: %v", err)
	}
	if d.Err != nil {
		t.Fatalf("delivery error: %v", d.Err)
	}
	if string(d.Payload) != payload {
		t.Fatalf("delivered %q, want %q", d.Payload, payload)
	}
	expectQuiet(t, sub)
}

// expectQuiet asserts no further delivery arrives within a settle
// window — the exactly-once half of the federation guarantees.
func expectQuiet(t *testing.T, sub *broker.Subscription) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if d, err := sub.Next(ctx); err == nil {
		t.Fatalf("unexpected extra delivery %q", d.Payload)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiting for quiet: %v", err)
	}
}

// TestFederationChainDelivery is the acceptance scenario: in a
// 3-router chain A—B—C, a publication entering A is delivered exactly
// once to a matching subscriber on C, and a publication no router
// subscribes to never leaves A.
func TestFederationChainDelivery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{Routers: 3, Links: [][2]int{{0, 1}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	carol, err := broker.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	if err := topo.ConnectClient(ctx, pub, carol, 2); err != nil {
		t.Fatal(err)
	}
	sub, err := carol.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}

	// Carol's interest must reach A through B before A can route
	// toward it.
	if err := topo.WaitRemoteEntries(1, 1, fedWait); err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, fedWait); err != nil {
		t.Fatal(err)
	}

	if err := pub.Publish(ctx, halHeader("HAL"), []byte("across the chain")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "across the chain")

	// The publication crossed exactly the two hops of the chain.
	if err := topo.WaitFederation(2, fedWait, func(c federation.Counters) bool {
		return c.ReceivedForwards == 1
	}); err != nil {
		t.Fatal(err)
	}
	if got := topo.Routers[0].FederationSnapshot().Forwarded; got != 1 {
		t.Fatalf("router A forwarded %d publications, want 1", got)
	}

	// A publication nobody subscribes to is withheld at A: B's digest
	// has no matching subscription, so the frame never leaves.
	before := topo.Routers[0].FederationSnapshot()
	if err := pub.Publish(ctx, halHeader("IBM"), []byte("noise")); err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitFederation(0, fedWait, func(c federation.Counters) bool {
		return c.Withheld > before.Withheld
	}); err != nil {
		t.Fatal(err)
	}
	if got := topo.Routers[0].FederationSnapshot().Forwarded; got != before.Forwarded {
		t.Fatalf("router A forwarded the unmatched publication (%d → %d)", before.Forwarded, got)
	}
	if got := topo.Routers[1].FederationSnapshot().ReceivedForwards; got != 1 {
		t.Fatalf("router B received %d forwards, want only the matching one", got)
	}
}

// TestFederationCycleExactlyOnce proves duplicate suppression: on a
// cyclic triangle every publication has two paths to the subscriber's
// router, and exactly one copy is delivered.
func TestFederationCycleExactlyOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{Routers: 3, Links: [][2]int{{0, 1}, {1, 2}, {2, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	carol, err := broker.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	if err := topo.ConnectClient(ctx, pub, carol, 2); err != nil {
		t.Fatal(err)
	}
	sub, err := carol.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}

	// Wait until A knows the interest on both its links (directly from
	// C and relayed through B), so the publication actually takes two
	// paths.
	if err := topo.WaitRemoteEntries(0, 2, fedWait); err != nil {
		t.Fatal(err)
	}

	const n = 5
	for i := 0; i < n; i++ {
		if err := pub.Publish(ctx, halHeader("HAL"), []byte(fmt.Sprintf("pub-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[string]int)
	for i := 0; i < n; i++ {
		ctxN, cancelN := context.WithTimeout(ctx, fedWait)
		d, err := sub.Next(ctxN)
		cancelN()
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		got[string(d.Payload)]++
	}
	for payload, count := range got {
		if count != 1 {
			t.Fatalf("payload %q delivered %d times", payload, count)
		}
	}
	expectQuiet(t, sub)

	// The second copy of each publication was suppressed somewhere on
	// the cycle, not delivered.
	if err := topo.WaitFederation(2, fedWait, func(c federation.Counters) bool {
		return c.SuppressedDuplicates >= 1
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFederationDigestStaleness proves the freshness half: once the
// only subscriber on B unsubscribes, the removal propagates to A
// within one digest round and A stops forwarding.
func TestFederationDigestStaleness(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{Routers: 2, Links: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := broker.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if err := topo.ConnectClient(ctx, pub, bob, 1); err != nil {
		t.Fatal(err)
	}
	sub, err := bob.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, fedWait); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("while subscribed")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "while subscribed")

	if err := sub.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
	// The removal reaches A as one incremental digest update.
	if err := topo.WaitFederation(0, fedWait, func(c federation.Counters) bool {
		return c.RemoteEntries == 0
	}); err != nil {
		t.Fatal(err)
	}
	before := topo.Routers[0].FederationSnapshot()
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("after unsubscribe")); err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitFederation(0, fedWait, func(c federation.Counters) bool {
		return c.Withheld > before.Withheld
	}); err != nil {
		t.Fatal(err)
	}
	if got := topo.Routers[0].FederationSnapshot().Forwarded; got != before.Forwarded {
		t.Fatalf("router A kept forwarding after the unsubscribe (%d → %d)", before.Forwarded, got)
	}
}

// TestFederationPartitionedSwitchlessRouters exercises the overlay
// with the sharded, switchless data plane underneath: forwarded
// deliveries flow through the partitioned pipeline like local ones.
func TestFederationPartitionedSwitchlessRouters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{
		Routers: 2,
		Links:   [][2]int{{0, 1}},
		Mutate: func(i int, cfg *broker.RouterConfig) {
			cfg.Partitions = 2
			cfg.Switchless = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := broker.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if err := topo.ConnectClient(ctx, pub, bob, 1); err != nil {
		t.Fatal(err)
	}
	sub, err := bob.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, fedWait); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("switchless hop")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "switchless hop")
}

// TestFederationBatchCrossHop audits the batch-expansion path on the
// forwarded side: a PublishBatch entering router A is expanded into
// per-item publications *before* the federation layer stamps each
// item's origin/seq/TTL envelope, so every matching item — and only
// the matching items — must cross the attested hop, arrive in batch
// order, exactly once, and ride the subscriber's local delivery
// cursors like any native publication.
func TestFederationBatchCrossHop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{Routers: 2, Links: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	carol, err := broker.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	if err := topo.ConnectClient(ctx, pub, carol, 1); err != nil {
		t.Fatal(err)
	}
	sub, err := carol.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, fedWait); err != nil {
		t.Fatal(err)
	}

	// Two matching items bracket a non-matching one: order and
	// selectivity must both survive expansion + forwarding.
	batch := []broker.Event{
		{Header: halHeader("HAL"), Payload: []byte("batch-0")},
		{Header: halHeader("IBM"), Payload: []byte("withheld")},
		{Header: halHeader("HAL"), Payload: []byte("batch-2")},
	}
	if err := pub.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batch-0", "batch-2"} {
		dctx, dcancel := context.WithTimeout(ctx, fedWait)
		d, err := sub.Next(dctx)
		dcancel()
		if err != nil {
			t.Fatalf("waiting for %q: %v", want, err)
		}
		if d.Err != nil || string(d.Payload) != want {
			t.Fatalf("delivery = %+v, want %q", d, want)
		}
	}
	expectQuiet(t, sub)

	// Forwarded deliveries ride the subscriber's local cursors: one per
	// matching batch item.
	if got := carol.LastCursor(); got != 2 {
		t.Fatalf("carol's delivery cursor = %d, want 2", got)
	}
	// The non-matching item was withheld at A per-item, not forwarded
	// as part of the batch envelope.
	snapA := topo.Routers[0].FederationSnapshot()
	if snapA.Forwarded != 2 || snapA.Withheld != 1 {
		t.Fatalf("router A forwarded %d / withheld %d, want 2 / 1", snapA.Forwarded, snapA.Withheld)
	}
	if got := topo.Routers[1].FederationSnapshot().ReceivedForwards; got != 2 {
		t.Fatalf("router B received %d forwards, want 2", got)
	}
}

// TestFederationRepartitionDelivery proves the elastic data plane
// composes with the overlay: resizing both routers of a 2-router link
// — the subscriber's home while its interest is already exported, the
// publisher's home while forwarding — disturbs neither the digest
// handoff nor cross-hop delivery. Digest state is router-level (folded
// on register/remove), so shard migration between a router's own
// slices must leave the overlay's view of it untouched.
func TestFederationRepartitionDelivery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	topo, err := NewTopology(ctx, TopologySpec{
		Routers: 2,
		Links:   [][2]int{{0, 1}},
		Mutate:  func(i int, cfg *broker.RouterConfig) { cfg.Partitions = 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	pub, err := topo.NewPublisher(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	carol, err := broker.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	if err := topo.ConnectClient(ctx, pub, carol, 1); err != nil {
		t.Fatal(err)
	}
	sub, err := carol.Subscribe(ctx, halSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.WaitRemoteEntries(0, 1, fedWait); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("before resize")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "before resize")

	// Resize the subscriber's home: carol's subscription migrates
	// between enclave slices while her interest stays exported.
	if _, err := topo.Routers[1].Repartition(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("after remote resize")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "after remote resize")

	// Resize the forwarding router too, then shrink the subscriber's
	// home back down — the full grow/shrink cycle across the overlay.
	if _, err := topo.Routers[0].Repartition(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Routers[1].Repartition(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, halHeader("HAL"), []byte("after both resized")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, sub, "after both resized")

	// The digest state never wavered: no withheld matching frames, and
	// the remote entry is still the one carol registered.
	if got := topo.Routers[0].FederationSnapshot().RemoteEntries; got != 1 {
		t.Fatalf("router 0 sees %d remote entries after the resizes, want 1", got)
	}
}
