package deploy

import (
	"path/filepath"
	"testing"

	"scbr/internal/attest"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

func TestTrustBundleRoundTrip(t *testing.T) {
	dev, err := sgx.NewDevice([]byte("deploy-test"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := attest.NewQuoter(dev, "deploy-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := dev.Launch([]byte("deploy image"), signer.Public(), sgx.EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	id := attest.Identity{MRENCLAVE: enclave.MRENCLAVE(), MRSIGNER: enclave.MRSIGNER()}

	bundle, err := NewTrustBundle(quoter, id)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trust.json")
	if err := bundle.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrustBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	svc, gotID, err := loaded.Service()
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id {
		t.Fatalf("identity mismatch: %+v vs %+v", gotID, id)
	}
	// The reconstructed service verifies quotes from the original
	// platform end to end.
	req, _, err := attest.NewProvisioningRequest(enclave, quoter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attest.ProvisionSecret(svc, gotID, req, []byte("SK")); err != nil {
		t.Fatalf("provisioning through reloaded bundle failed: %v", err)
	}
}

func TestTrustBundleValidation(t *testing.T) {
	b := &TrustBundle{PlatformID: "x", AttestationKey: []byte("junk"), MRENCLAVE: make([]byte, 32), MRSIGNER: make([]byte, 32)}
	if _, _, err := b.Service(); err == nil {
		t.Fatal("junk attestation key accepted")
	}
	b2 := &TrustBundle{PlatformID: "x", MRENCLAVE: make([]byte, 5), MRSIGNER: make([]byte, 32)}
	if _, _, err := b2.Service(); err == nil {
		t.Fatal("short measurement accepted")
	}
	if _, err := LoadTrustBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPublisherKeyRoundTrip(t *testing.T) {
	kp, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pub.json")
	if err := SavePublisherKey(path, kp.Public()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPublisherKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(kp.Public().N) != 0 || got.E != kp.Public().E {
		t.Fatal("key round trip mismatch")
	}
	if _, err := LoadPublisherKey(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing key file accepted")
	}
}
