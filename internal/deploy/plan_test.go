package deploy

import (
	"context"
	"errors"
	"strings"
	"testing"

	"scbr/internal/broker"
	"scbr/internal/scheme"
)

func planSpec(mutate func(*TopologySpec)) TopologySpec {
	spec := TopologySpec{
		Routers: 2,
		RouterSpecs: []RouterSpec{
			{EPCBudget: 32 << 20, Subscriptions: 50_000},
			{EPCBudget: 8 << 20, Subscriptions: 10_000},
		},
		Hosts: []HostSpec{
			{Name: "epc-rich", EPCBytes: 96 << 20},
			{Name: "epc-poor", EPCBytes: 16 << 20},
		},
	}
	if mutate != nil {
		mutate(&spec)
	}
	return spec
}

func TestPlanSizesPartitionsFromFootprint(t *testing.T) {
	plan, err := Plan(planSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != scheme.Plain || plan.Attrs != DefaultPlanAttrs {
		t.Fatalf("plan defaults: %+v", plan)
	}
	fp := scheme.PlainFootprint
	for _, rp := range plan.Routers {
		if rp.Partitions < 1 || rp.Partitions > DefaultMaxPartitionsPerRouter {
			t.Fatalf("router %d planned %d partitions", rp.Router, rp.Partitions)
		}
		if rp.FootprintBytes != fp.Footprint(rp.Subscriptions, plan.Attrs) {
			t.Errorf("router %d footprint %d, model says %d", rp.Router, rp.FootprintBytes,
				fp.Footprint(rp.Subscriptions, plan.Attrs))
		}
		// The planned slice working set must fit the usable share, and
		// the share must match the broker's split for that k.
		if rp.SliceEPCBytes != broker.SliceEPCShare(rp.EPCBudget, rp.Partitions) {
			t.Errorf("router %d share %d diverges from the broker's split", rp.Router, rp.SliceEPCBytes)
		}
		usable := uint64(float64(rp.SliceEPCBytes) * (1 - plan.Headroom))
		if rp.SliceFootprintBytes > usable {
			t.Errorf("router %d slice working set %d over usable %d", rp.Router, rp.SliceFootprintBytes, usable)
		}
		if rp.Utilization <= 0 || rp.Utilization > 1 {
			t.Errorf("router %d utilization %v", rp.Router, rp.Utilization)
		}
	}
	// Largest feasible k: one more partition than planned must NOT fit
	// — otherwise the planner left parallelism on the table — unless
	// the cap was hit.
	for _, rp := range plan.Routers {
		if rp.Partitions == DefaultMaxPartitionsPerRouter {
			continue
		}
		k := rp.Partitions + 1
		share := broker.SliceEPCShare(rp.EPCBudget, k)
		usable := uint64(float64(share) * (1 - plan.Headroom))
		perSlice := fp.Footprint((rp.Subscriptions+k-1)/k, plan.Attrs)
		if perSlice <= usable {
			t.Errorf("router %d stopped at k=%d but k=%d also fits (%d ≤ %d)",
				rp.Router, rp.Partitions, k, perSlice, usable)
		}
	}
}

func TestPlanPacksHeterogeneousHosts(t *testing.T) {
	plan, err := Plan(planSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hosts) != 2 {
		t.Fatalf("host plans: %+v", plan.Hosts)
	}
	// The big router commits ≥ 32 MB — only the rich host holds it.
	if plan.Routers[0].Host != "epc-rich" {
		t.Errorf("router 0 packed on %q, want epc-rich", plan.Routers[0].Host)
	}
	for _, hp := range plan.Hosts {
		if hp.CommittedBytes > hp.EPCBytes {
			t.Errorf("host %q overcommitted: %d of %d", hp.Host, hp.CommittedBytes, hp.EPCBytes)
		}
		var sum uint64
		for _, ri := range hp.Routers {
			if plan.Routers[ri].Host != hp.Host {
				t.Errorf("router %d host %q disagrees with host plan %q", ri, plan.Routers[ri].Host, hp.Host)
			}
			sum += plan.Routers[ri].CommittedBytes
		}
		if sum != hp.CommittedBytes {
			t.Errorf("host %q committed %d, routers sum to %d", hp.Host, hp.CommittedBytes, sum)
		}
	}
}

func TestPlanRejectsInfeasibleSpecs(t *testing.T) {
	t.Run("working set over every k", func(t *testing.T) {
		// 5M plain subscriptions ≈ 665 MB against a 16 MB budget: even 8
		// slices leave ~83 MB per slice against 2 MB shares.
		_, err := Plan(planSpec(func(s *TopologySpec) {
			s.RouterSpecs[0] = RouterSpec{EPCBudget: 16 << 20, Subscriptions: 5_000_000}
		}))
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("footprint exceeds every host", func(t *testing.T) {
		_, err := Plan(planSpec(func(s *TopologySpec) {
			s.Hosts = []HostSpec{{Name: "tiny", EPCBytes: 4 << 20}}
		}))
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("aspe cliff comes k-times earlier", func(t *testing.T) {
		// The same budget and volume that plans fine under sgx-plain is
		// infeasible under aspe's ~16x per-subscription footprint.
		spec := planSpec(func(s *TopologySpec) { s.Scheme = scheme.ASPE })
		if _, err := Plan(spec); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible (aspe footprint)", err)
		}
	})
}

func TestTopologySpecNegativePaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TopologySpec)
		want   string
	}{
		{"no routers", func(s *TopologySpec) { s.Routers = 0 }, "at least one router"},
		{"link out of range", func(s *TopologySpec) { s.Links = [][2]int{{0, 2}} }, "no router pair"},
		{"negative link", func(s *TopologySpec) { s.Links = [][2]int{{-1, 0}} }, "no router pair"},
		{"self link", func(s *TopologySpec) { s.Links = [][2]int{{1, 1}} }, "no router pair"},
		{"duplicate link", func(s *TopologySpec) { s.Links = [][2]int{{0, 1}, {0, 1}} }, "duplicate link"},
		{"spec count mismatch", func(s *TopologySpec) { s.RouterSpecs = s.RouterSpecs[:1] }, "router specs"},
		{"zero EPC budget", func(s *TopologySpec) { s.RouterSpecs[1].EPCBudget = 0 }, "zero EPC budget"},
		{"negative subscriptions", func(s *TopologySpec) { s.RouterSpecs[0].Subscriptions = -1 }, "subscriptions"},
		{"nameless host", func(s *TopologySpec) { s.Hosts[0].Name = "" }, "no name"},
		{"zero EPC host", func(s *TopologySpec) { s.Hosts[1].EPCBytes = 0 }, "zero EPC"},
		{"headroom out of range", func(s *TopologySpec) { s.Headroom = 1 }, "headroom"},
		{"negative attrs", func(s *TopologySpec) { s.Attrs = -3 }, "attribute count"},
		{"partition cap out of range", func(s *TopologySpec) { s.MaxPartitionsPerRouter = 10_000 }, "partition cap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := planSpec(c.mutate)
			_, planErr := Plan(spec)
			if planErr == nil || !strings.Contains(planErr.Error(), c.want) {
				t.Errorf("Plan err = %v, want %q", planErr, c.want)
			}
			// NewTopology validates the same invariants before launching
			// anything.
			if _, topoErr := NewTopology(context.Background(), spec); topoErr == nil ||
				!strings.Contains(topoErr.Error(), c.want) {
				t.Errorf("NewTopology err = %v, want %q", topoErr, c.want)
			}
		})
	}
}

func TestNewTopologyExecutesPlan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := planSpec(nil)
	topo, err := NewTopology(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if topo.Plan == nil {
		t.Fatal("topology carries no plan")
	}
	for i, r := range topo.Routers {
		want := topo.Plan.Routers[i]
		if got := r.Partitions(); got != want.Partitions {
			t.Errorf("router %d launched with %d partitions, plan says %d", i, got, want.Partitions)
		}
		fps := r.SliceFootprints()
		for _, fp := range fps {
			if fp.EPCBudget != want.SliceEPCBytes {
				t.Errorf("router %d slice %d budget %d, plan share %d", i, fp.Partition, fp.EPCBudget, want.SliceEPCBytes)
			}
		}
	}
	// An infeasible spec must fail before any router launches.
	bad := planSpec(func(s *TopologySpec) {
		s.RouterSpecs[0] = RouterSpec{EPCBudget: 16 << 20, Subscriptions: 5_000_000}
	})
	if _, err := NewTopology(ctx, bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("NewTopology(infeasible) err = %v, want ErrInfeasible", err)
	}
}
