// Package deploy holds the small trust artefacts the SCBR command-line
// tools exchange out of band: the router's platform/enclave trust
// bundle (what Intel's attestation service plus the audited enclave
// measurement provide in production) and the publisher's public key
// (what clients receive with their service contract).
package deploy

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"os"

	"scbr/internal/attest"
)

// TrustBundle is written by scbr-router at startup and consumed by
// scbr-publisher to verify attestation quotes and pin the enclave.
type TrustBundle struct {
	PlatformID     string `json:"platform_id"`
	AttestationKey []byte `json:"attestation_key"` // PKIX DER
	MRENCLAVE      []byte `json:"mrenclave"`
	MRSIGNER       []byte `json:"mrsigner"`
}

// NewTrustBundle assembles a bundle from a quoter and enclave identity.
func NewTrustBundle(quoter *attest.Quoter, id attest.Identity) (*TrustBundle, error) {
	der, err := x509.MarshalPKIXPublicKey(quoter.AttestationKey())
	if err != nil {
		return nil, fmt.Errorf("deploy: encoding attestation key: %w", err)
	}
	return &TrustBundle{
		PlatformID:     quoter.PlatformID(),
		AttestationKey: der,
		MRENCLAVE:      append([]byte(nil), id.MRENCLAVE[:]...),
		MRSIGNER:       append([]byte(nil), id.MRSIGNER[:]...),
	}, nil
}

// Service materialises the verification service and pinned identity.
func (b *TrustBundle) Service() (*attest.Service, attest.Identity, error) {
	var id attest.Identity
	if len(b.MRENCLAVE) != 32 || len(b.MRSIGNER) != 32 {
		return nil, id, fmt.Errorf("deploy: trust bundle has malformed measurements")
	}
	parsed, err := x509.ParsePKIXPublicKey(b.AttestationKey)
	if err != nil {
		return nil, id, fmt.Errorf("deploy: parsing attestation key: %w", err)
	}
	key, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, id, fmt.Errorf("deploy: attestation key is %T, want RSA", parsed)
	}
	svc := attest.NewService()
	svc.RegisterPlatform(b.PlatformID, key)
	copy(id.MRENCLAVE[:], b.MRENCLAVE)
	copy(id.MRSIGNER[:], b.MRSIGNER)
	return svc, id, nil
}

// Save writes the bundle as JSON.
func (b *TrustBundle) Save(path string) error {
	return writeJSON(path, b)
}

// LoadTrustBundle reads a bundle written by Save.
func LoadTrustBundle(path string) (*TrustBundle, error) {
	var b TrustBundle
	if err := readJSON(path, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// PublisherKey is the publisher's public key file for clients.
type PublisherKey struct {
	PubKey []byte `json:"pub_key"` // PKIX DER
}

// SavePublisherKey writes pk for distribution to clients.
func SavePublisherKey(path string, pk *rsa.PublicKey) error {
	der, err := x509.MarshalPKIXPublicKey(pk)
	if err != nil {
		return fmt.Errorf("deploy: encoding publisher key: %w", err)
	}
	return writeJSON(path, &PublisherKey{PubKey: der})
}

// LoadPublisherKey reads a key written by SavePublisherKey.
func LoadPublisherKey(path string) (*rsa.PublicKey, error) {
	var k PublisherKey
	if err := readJSON(path, &k); err != nil {
		return nil, err
	}
	parsed, err := x509.ParsePKIXPublicKey(k.PubKey)
	if err != nil {
		return nil, fmt.Errorf("deploy: parsing publisher key: %w", err)
	}
	pk, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("deploy: publisher key is %T, want RSA", parsed)
	}
	return pk, nil
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("deploy: writing %s: %w", path, err)
	}
	return nil
}

func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("deploy: reading %s: %w", path, err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("deploy: decoding %s: %w", path, err)
	}
	return nil
}
