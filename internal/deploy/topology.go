// Multi-router federation topologies. The paper's deployment is one
// service provider and one routing engine; the federation overlay
// composes several engines, and this helper stands up a whole overlay
// in process — one simulated SGX device per router, a shared
// attestation service vouching for every platform, a shared measured
// image so all routers carry one pinned identity, and attested peer
// links along the requested edges. Tests and examples build chains,
// cycles, and meshes from it.

package deploy

import (
	"context"
	"fmt"
	"net"
	"time"

	"scbr/internal/attest"
	"scbr/internal/broker"
	"scbr/internal/federation"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// TopologySpec describes a federated overlay to stand up.
type TopologySpec struct {
	// Routers is the number of routers (≥ 1). Router i is named
	// "router-i" in the overlay.
	Routers int `json:"routers"`
	// Links lists directed dial edges {dialer, acceptor} by router
	// index. Each link is one bidirectional attested connection; a
	// chain of three routers is {{0,1},{1,2}}, a cycle adds {2,0}.
	Links [][2]int `json:"links,omitempty"`
	// Image is the measured enclave image every router launches
	// (default: a fixed topology image). All routers must share it —
	// peer attestation pins the fleet's single identity.
	Image []byte `json:"image,omitempty"`
	// Mutate optionally adjusts each router's config before launch
	// (partitions, switchless, EPC, TTL, ...). Fields that define the
	// overlay — RouterID, Peers, PeerVerifier — are set after Mutate
	// and cannot be overridden.
	Mutate func(i int, cfg *broker.RouterConfig) `json:"-"`
	// PlacementShards sets every router's virtual-shard count — the
	// migration grain for Router.Repartition (0 = the broker default).
	// Applied after Mutate, like the overlay fields.
	PlacementShards int `json:"placement_shards,omitempty"`
	// PlacementSeed seeds every router's rendezvous shard→slice hash
	// (0 = the fixed built-in seed), so a topology's routers agree on
	// placement byte-for-byte.
	PlacementSeed int64 `json:"placement_seed,omitempty"`
	// Scheme selects the matching scheme every router runs (empty =
	// the default sgx-plain). Schemes without federation-digest
	// support only stand up single-router, link-free topologies: the
	// routers are launched without overlay state, and a spec with
	// Links is rejected.
	Scheme string `json:"scheme,omitempty"`
	// SchemeOptions parameterise the publishers NewPublisher builds
	// (e.g. the ASPE attribute universe).
	SchemeOptions []scheme.Option `json:"-"`

	// RouterSpecs optionally declares each router's expected load for
	// the deployment planner (must list exactly Routers entries). When
	// set, NewTopology runs Plan first and launches each router with
	// the planned EPCBytes and Partitions — applied after Mutate, like
	// the overlay fields — rejecting infeasible specs before any
	// enclave launches.
	RouterSpecs []RouterSpec `json:"router_specs,omitempty"`
	// Hosts optionally describes the heterogeneous machines the
	// planner packs routers onto. Packing is advisory in-process (all
	// routers still run locally); the plan records the assignment.
	Hosts []HostSpec `json:"hosts,omitempty"`
	// Attrs is the expected per-subscription attribute count the
	// footprint model is evaluated at (0 = DefaultPlanAttrs).
	Attrs int `json:"attrs,omitempty"`
	// Headroom is the fraction of each slice's EPC share the planner
	// keeps free (0 = DefaultHeadroom; must stay below 1).
	Headroom float64 `json:"headroom,omitempty"`
	// MaxPartitionsPerRouter caps planned per-router slice counts
	// (0 = DefaultMaxPartitionsPerRouter).
	MaxPartitionsPerRouter int `json:"max_partitions_per_router,omitempty"`
}

// Topology is a running overlay.
type Topology struct {
	spec TopologySpec
	// Service vouches for every router platform (register publishers'
	// verification against it).
	Service *attest.Service
	// Identity is the fleet's shared enclave identity.
	Identity attest.Identity
	// Routers, IDs, and Addrs are indexed by router number.
	Routers []*broker.Router
	IDs     []string
	Addrs   []string
	// Plan is the executed deployment plan (nil when the spec carried
	// no RouterSpecs and the routers launched with ad-hoc sizing).
	Plan *TopologyPlan

	listeners []net.Listener
}

// NewTopology launches the overlay and serves every router. Callers
// must Close it.
func NewTopology(ctx context.Context, spec TopologySpec) (*Topology, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	var plan *TopologyPlan
	if spec.RouterSpecs != nil {
		var err error
		plan, err = Plan(spec)
		if err != nil {
			return nil, err
		}
	}
	backend, err := scheme.Lookup(spec.Scheme)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	federated := backend.Caps.FederationDigests
	if !federated && len(spec.Links) > 0 {
		return nil, fmt.Errorf("deploy: scheme %q cannot form overlay links (no federation-digest support)", backend.Name)
	}
	image := spec.Image
	if len(image) == 0 {
		image = []byte("scbr federated router image v1")
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("deploy: generating fleet signer: %w", err)
	}
	t := &Topology{spec: spec, Service: attest.NewService(), Plan: plan}
	ok := false
	defer func() {
		if !ok {
			t.Close()
		}
	}()

	// Listeners first, so every router knows its peers' addresses at
	// construction time regardless of launch order.
	for i := 0; i < spec.Routers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("deploy: listening for router %d: %w", i, err)
		}
		t.listeners = append(t.listeners, ln)
		t.Addrs = append(t.Addrs, ln.Addr().String())
		t.IDs = append(t.IDs, fmt.Sprintf("router-%d", i))
	}

	for i := 0; i < spec.Routers; i++ {
		dev, err := sgx.NewDevice(nil, simmem.DefaultCost())
		if err != nil {
			return nil, fmt.Errorf("deploy: device %d: %w", i, err)
		}
		quoter, err := attest.NewQuoter(dev, fmt.Sprintf("topology-platform-%d", i))
		if err != nil {
			return nil, fmt.Errorf("deploy: quoter %d: %w", i, err)
		}
		t.Service.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
		cfg := broker.RouterConfig{
			EnclaveImage:  image,
			EnclaveSigner: signer.Public(),
		}
		if spec.Mutate != nil {
			spec.Mutate(i, &cfg)
		}
		cfg.EnclaveImage = image
		cfg.EnclaveSigner = signer.Public()
		cfg.Scheme = spec.Scheme
		if plan != nil {
			// Planned sizing wins over Mutate, like the overlay fields:
			// the plan was validated as feasible, ad-hoc overrides were
			// not.
			cfg.EPCBytes = plan.Routers[i].EPCBudget
			cfg.Partitions = plan.Routers[i].Partitions
		}
		if spec.PlacementShards != 0 {
			cfg.PlacementShards = spec.PlacementShards
		}
		if spec.PlacementSeed != 0 {
			cfg.PlacementSeed = spec.PlacementSeed
		}
		if federated {
			cfg.RouterID = t.IDs[i]
			cfg.PeerVerifier = t.Service
			cfg.PeerIdentities = nil // pin the fleet's own identity
			for _, l := range spec.Links {
				if l[0] == i {
					cfg.Peers = append(cfg.Peers, t.Addrs[l[1]])
				}
			}
		} else {
			cfg.RouterID, cfg.Peers, cfg.PeerVerifier, cfg.PeerIdentities = "", nil, nil, nil
		}
		router, err := broker.NewRouter(dev, quoter, cfg)
		if err != nil {
			return nil, fmt.Errorf("deploy: router %d: %w", i, err)
		}
		t.Routers = append(t.Routers, router)
		go func(r *broker.Router, ln net.Listener) { _ = r.Serve(ctx, ln) }(router, t.listeners[i])
	}
	t.Identity = t.Routers[0].Identity()
	ok = true
	return t, nil
}

// NewPublisher creates the overlay's service provider: it attests and
// provisions every router (the overlay shares one SK) and routes its
// own publications through router home.
func (t *Topology) NewPublisher(ctx context.Context, home int) (*broker.Publisher, error) {
	if home < 0 || home >= len(t.Routers) {
		return nil, fmt.Errorf("deploy: home router %d of %d", home, len(t.Routers))
	}
	codec, err := scheme.NewCodec(t.spec.Scheme, t.spec.SchemeOptions...)
	if err != nil {
		return nil, err
	}
	pub, err := broker.NewPublisherWithCodec(t.Service, t.Identity, codec)
	if err != nil {
		return nil, err
	}
	var dialer net.Dialer
	for i := range t.Routers {
		conn, err := dialer.DialContext(ctx, "tcp", t.Addrs[i])
		if err != nil {
			return nil, fmt.Errorf("deploy: dialing router %d: %w", i, err)
		}
		if err := pub.ConnectRouterNamed(ctx, t.IDs[i], conn); err != nil {
			return nil, fmt.Errorf("deploy: provisioning router %d: %w", i, err)
		}
	}
	if err := pub.SetDefaultRouter(t.IDs[home]); err != nil {
		return nil, err
	}
	return pub, nil
}

// ConnectClient homes a client on router home: it binds the client to
// the publisher over an in-process pipe (pub.ServeClient runs until
// the pipe closes) and attaches the client's delivery channel to its
// home router.
func (t *Topology) ConnectClient(ctx context.Context, pub *broker.Publisher, c *broker.Client, home int) error {
	if home < 0 || home >= len(t.Routers) {
		return fmt.Errorf("deploy: home router %d of %d", home, len(t.Routers))
	}
	clientSide, pubSide := net.Pipe()
	go pub.ServeClient(ctx, pubSide)
	c.ConnectPublisher(clientSide, pub.PublicKey())
	c.UseRouter(t.IDs[home])
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", t.Addrs[home])
	if err != nil {
		return fmt.Errorf("deploy: dialing home router %d: %w", home, err)
	}
	return c.Attach(ctx, conn)
}

// BindClient wires c to the publisher (over an in-process pipe) and
// homes it on router home — everything ConnectClient does except the
// delivery attach. Callers that manage their own delivery connections
// (e.g. resumable listeners that DialRouter and c.Resume, reconnecting
// on churn) use this so the client's pump semantics stay theirs.
func (t *Topology) BindClient(ctx context.Context, pub *broker.Publisher, c *broker.Client, home int) error {
	if home < 0 || home >= len(t.Routers) {
		return fmt.Errorf("deploy: home router %d of %d", home, len(t.Routers))
	}
	clientSide, pubSide := net.Pipe()
	go pub.ServeClient(ctx, pubSide)
	c.ConnectPublisher(clientSide, pub.PublicKey())
	c.UseRouter(t.IDs[home])
	return nil
}

// DialRouter opens a raw connection to router i — the delivery
// connection a resumable client hands to Resume.
func (t *Topology) DialRouter(i int) (net.Conn, error) {
	if i < 0 || i >= len(t.Addrs) {
		return nil, fmt.Errorf("deploy: router %d of %d", i, len(t.Addrs))
	}
	conn, err := net.Dial("tcp", t.Addrs[i])
	if err != nil {
		return nil, fmt.Errorf("deploy: dialing router %d: %w", i, err)
	}
	return conn, nil
}

// WaitFederation polls router i's federation counters until cond
// holds or the timeout elapses — the barrier tests use around
// asynchronous digest propagation.
func (t *Topology) WaitFederation(i int, timeout time.Duration, cond func(federation.Counters) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond(t.Routers[i].FederationSnapshot()) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("deploy: router %d federation state never converged: %+v",
				i, t.Routers[i].FederationSnapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitRemoteEntries blocks until router i's overlay has learned at
// least n digest entries from its peers — the barrier between
// subscribing on one router and publishing on another.
func (t *Topology) WaitRemoteEntries(i, n int, timeout time.Duration) error {
	return t.WaitFederation(i, timeout, func(c federation.Counters) bool {
		return c.RemoteEntries >= n
	})
}

// Close stops every router and listener.
func (t *Topology) Close() {
	for _, r := range t.Routers {
		r.Close()
	}
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
}
