// Package attest simulates SGX remote attestation: the mechanism SCBR
// uses to convince the service provider that a genuine enclave with
// the expected measurement is running on the (untrusted)
// infrastructure before provisioning it with the symmetric key SK
// (§2, "an enclave is provided with secrets ... with the help of a
// remote attestation protocol").
//
// The simulation mirrors the EPID flow structurally: the application
// enclave produces a local report addressed to the platform's quoting
// enclave; the quoting enclave verifies it and signs the body with a
// platform attestation key; a verification service (Intel's IAS in
// production) vouches for platform keys; and the service provider
// checks the quoted measurement before releasing secrets over a
// channel bound to the quote.
package attest

import (
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"

	"scbr/internal/scrypto"
	"scbr/internal/sgx"
)

// Errors returned by verification.
var (
	ErrUnknownPlatform = errors.New("attest: unknown platform")
	ErrBadQuote        = errors.New("attest: quote verification failed")
	ErrDebugEnclave    = errors.New("attest: debug enclave rejected")
	ErrWrongIdentity   = errors.New("attest: enclave identity mismatch")
	ErrChannelBinding  = errors.New("attest: provisioning key not bound to quote")
)

// Quote is a remotely-verifiable attestation of an enclave identity.
type Quote struct {
	PlatformID string
	Body       []byte // marshalled sgx.ReportBody
	Sig        []byte
}

// Quoter plays the role of the platform quoting enclave: it holds the
// device's attestation key and converts local reports into quotes.
type Quoter struct {
	dev        *sgx.Device
	platformID string
	key        *scrypto.KeyPair
}

// NewQuoter provisions a quoting identity for a device.
func NewQuoter(dev *sgx.Device, platformID string) (*Quoter, error) {
	if platformID == "" {
		return nil, errors.New("attest: empty platform ID")
	}
	key, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("attest: generating platform key: %w", err)
	}
	return &Quoter{dev: dev, platformID: platformID, key: key}, nil
}

// PlatformID returns the quoter's platform identity.
func (q *Quoter) PlatformID() string { return q.platformID }

// AttestationKey returns the public half registered with the
// verification service.
func (q *Quoter) AttestationKey() *rsa.PublicKey { return q.key.Public() }

// Quote verifies a local report addressed to the quoting enclave and
// signs its body. Reports from other devices fail the MAC check.
func (q *Quoter) Quote(r *sgx.Report) (*Quote, error) {
	if !q.dev.VerifyQuotableReport(r) {
		return nil, fmt.Errorf("%w: report MAC invalid for this platform", ErrBadQuote)
	}
	body := r.Body.Marshal()
	sig, err := scrypto.Sign(q.key, body)
	if err != nil {
		return nil, fmt.Errorf("attest: signing quote: %w", err)
	}
	return &Quote{PlatformID: q.platformID, Body: body, Sig: sig}, nil
}

// Service is the attestation verification service (IAS stand-in): it
// knows the attestation keys of genuine platforms and validates
// quotes. Safe for concurrent use.
type Service struct {
	mu        sync.RWMutex
	platforms map[string]*rsa.PublicKey
	// AllowDebug admits debug-mode enclaves (never in production).
	AllowDebug bool
}

// NewService returns an empty verification service.
func NewService() *Service {
	return &Service{platforms: make(map[string]*rsa.PublicKey)}
}

// RegisterPlatform records a genuine platform's attestation key.
func (s *Service) RegisterPlatform(id string, key *rsa.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[id] = key
}

// Verify checks a quote's platform signature and returns the attested
// report body.
func (s *Service) Verify(q *Quote) (*sgx.ReportBody, error) {
	if q == nil {
		return nil, ErrBadQuote
	}
	s.mu.RLock()
	key, ok := s.platforms[q.PlatformID]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, q.PlatformID)
	}
	if err := scrypto.Verify(key, q.Body, q.Sig); err != nil {
		return nil, ErrBadQuote
	}
	body, err := sgx.UnmarshalReportBody(q.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	if body.Debug && !s.AllowDebug {
		return nil, ErrDebugEnclave
	}
	return body, nil
}

// Identity pins the enclave a verifier will release secrets to.
type Identity struct {
	MRENCLAVE [32]byte
	MRSIGNER  [32]byte
	// MinISVSVN rejects enclaves below this security version.
	MinISVSVN uint16
}

// ProvisioningRequest is what an enclave sends to a service provider
// to obtain secrets: its quote plus an ephemeral public key generated
// inside the enclave. The quote's report data binds the key hash, so
// the infrastructure cannot substitute its own key.
type ProvisioningRequest struct {
	Quote  *Quote
	PubKey []byte // PKIX-encoded RSA public key
}

// NewProvisioningRequest runs inside the enclave: it generates an
// ephemeral key pair, binds its hash into a report addressed to the
// quoting enclave, and has the quoter produce the quote.
func NewProvisioningRequest(e *sgx.Enclave, quoter *Quoter) (*ProvisioningRequest, *scrypto.KeyPair, error) {
	var (
		kp  *scrypto.KeyPair
		err error
	)
	if ecallErr := e.Ecall(func() error {
		kp, err = scrypto.NewKeyPair(nil)
		return err
	}); ecallErr != nil {
		return nil, nil, fmt.Errorf("attest: generating provisioning key: %w", ecallErr)
	}
	pubDER, err := x509.MarshalPKIXPublicKey(kp.Public())
	if err != nil {
		return nil, nil, fmt.Errorf("attest: encoding provisioning key: %w", err)
	}
	var data sgx.ReportData
	digest := sha256.Sum256(pubDER)
	copy(data[:], digest[:])
	report, err := e.Report(sgx.QuotingTargetMR, data)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: producing report: %w", err)
	}
	quote, err := quoter.Quote(report)
	if err != nil {
		return nil, nil, err
	}
	return &ProvisioningRequest{Quote: quote, PubKey: pubDER}, kp, nil
}

// ProvisionSecret runs at the service provider: it validates the quote
// against the verification service and the pinned identity, checks the
// channel binding, and returns the secret encrypted for the enclave's
// ephemeral key.
func ProvisionSecret(svc *Service, id Identity, req *ProvisioningRequest, secret []byte) ([]byte, error) {
	if req == nil || req.Quote == nil {
		return nil, ErrBadQuote
	}
	body, err := svc.Verify(req.Quote)
	if err != nil {
		return nil, err
	}
	if !sgx.EqualMeasurement(body.MRENCLAVE, id.MRENCLAVE) ||
		!sgx.EqualMeasurement(body.MRSIGNER, id.MRSIGNER) {
		return nil, ErrWrongIdentity
	}
	if body.ISVSVN < id.MinISVSVN {
		return nil, fmt.Errorf("%w: ISVSVN %d below minimum %d", ErrWrongIdentity, body.ISVSVN, id.MinISVSVN)
	}
	digest := sha256.Sum256(req.PubKey)
	var bound [sha256.Size]byte
	copy(bound[:], body.Data[:sha256.Size])
	if bound != digest {
		return nil, ErrChannelBinding
	}
	parsed, err := x509.ParsePKIXPublicKey(req.PubKey)
	if err != nil {
		return nil, fmt.Errorf("attest: parsing provisioning key: %w", err)
	}
	pub, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("attest: provisioning key is %T, want RSA", parsed)
	}
	blob, err := scrypto.EncryptPK(pub, secret)
	if err != nil {
		return nil, fmt.Errorf("attest: encrypting secret: %w", err)
	}
	return blob, nil
}

// ReceiveSecret runs inside the enclave: it decrypts a provisioned
// secret with the ephemeral private key.
func ReceiveSecret(e *sgx.Enclave, kp *scrypto.KeyPair, blob []byte) ([]byte, error) {
	var (
		secret []byte
		err    error
	)
	if ecallErr := e.Ecall(func() error {
		secret, err = scrypto.DecryptPK(kp, blob)
		return err
	}); ecallErr != nil {
		return nil, fmt.Errorf("attest: decrypting secret: %w", ecallErr)
	}
	return secret, nil
}
