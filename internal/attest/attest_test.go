package attest

import (
	"bytes"
	"errors"
	"testing"

	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

type fixture struct {
	dev     *sgx.Device
	quoter  *Quoter
	svc     *Service
	signer  *scrypto.KeyPair
	enclave *sgx.Enclave
	id      Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dev, err := sgx.NewDevice([]byte("attest-dev"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := NewQuoter(dev, "platform-1")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	svc.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := dev.Launch([]byte("scbr router image"), signer.Public(), sgx.EnclaveConfig{ISVSVN: 3})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		dev:     dev,
		quoter:  quoter,
		svc:     svc,
		signer:  signer,
		enclave: e,
		id: Identity{
			MRENCLAVE: e.MRENCLAVE(),
			MRSIGNER:  e.MRSIGNER(),
			MinISVSVN: 1,
		},
	}
}

func TestProvisioningHappyPath(t *testing.T) {
	f := newFixture(t)
	req, kp, err := NewProvisioningRequest(f.enclave, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("the symmetric key SK")
	blob, err := ProvisionSecret(f.svc, f.id, req, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("secret visible in provisioning blob")
	}
	got, err := ReceiveSecret(f.enclave, kp, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("provisioned secret mismatch")
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	f := newFixture(t)
	// A different (possibly malicious) enclave on the same platform.
	other, err := f.dev.Launch([]byte("evil router image"), f.signer.Public(), sgx.EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	req, _, err := NewProvisioningRequest(other, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProvisionSecret(f.svc, f.id, req, []byte("SK")); !errors.Is(err, ErrWrongIdentity) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
}

func TestWrongSignerRejected(t *testing.T) {
	f := newFixture(t)
	otherSigner, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same code, different vendor signature.
	other, err := f.dev.Launch([]byte("scbr router image"), otherSigner.Public(), sgx.EnclaveConfig{ISVSVN: 3})
	if err != nil {
		t.Fatal(err)
	}
	req, _, err := NewProvisioningRequest(other, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProvisionSecret(f.svc, f.id, req, []byte("SK")); !errors.Is(err, ErrWrongIdentity) {
		t.Fatalf("wrong signer accepted: %v", err)
	}
}

func TestStaleISVSVNRejected(t *testing.T) {
	f := newFixture(t)
	stale, err := f.dev.Launch([]byte("scbr router image"), f.signer.Public(), sgx.EnclaveConfig{ISVSVN: 0})
	if err != nil {
		t.Fatal(err)
	}
	req, _, err := NewProvisioningRequest(stale, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	id := f.id
	id.MRENCLAVE = stale.MRENCLAVE() // measurement differs via ISVSVN; pin it
	if _, err := ProvisionSecret(f.svc, id, req, []byte("SK")); !errors.Is(err, ErrWrongIdentity) {
		t.Fatalf("stale ISVSVN accepted: %v", err)
	}
}

func TestDebugEnclaveRejected(t *testing.T) {
	f := newFixture(t)
	dbg, err := f.dev.Launch([]byte("scbr router image"), f.signer.Public(), sgx.EnclaveConfig{Debug: true, ISVSVN: 3})
	if err != nil {
		t.Fatal(err)
	}
	req, _, err := NewProvisioningRequest(dbg, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity{MRENCLAVE: dbg.MRENCLAVE(), MRSIGNER: dbg.MRSIGNER()}
	if _, err := ProvisionSecret(f.svc, id, req, []byte("SK")); !errors.Is(err, ErrDebugEnclave) {
		t.Fatalf("debug enclave accepted: %v", err)
	}
	f.svc.AllowDebug = true
	if _, err := ProvisionSecret(f.svc, id, req, []byte("SK")); err != nil {
		t.Fatalf("debug enclave rejected with AllowDebug: %v", err)
	}
}

func TestSubstitutedKeyRejected(t *testing.T) {
	f := newFixture(t)
	req, _, err := NewProvisioningRequest(f.enclave, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	// The untrusted infrastructure swaps in its own key.
	mallory, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	swapped, _, err := NewProvisioningRequest(f.enclave, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	_ = mallory
	swapped.PubKey = req.PubKey // key from another session
	if _, err := ProvisionSecret(f.svc, f.id, swapped, []byte("SK")); !errors.Is(err, ErrChannelBinding) {
		t.Fatalf("substituted key accepted: %v", err)
	}
}

func TestForgedQuoteRejected(t *testing.T) {
	f := newFixture(t)
	req, _, err := NewProvisioningRequest(f.enclave, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	req.Quote.Body[0] ^= 1
	if _, err := f.svc.Verify(req.Quote); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered quote verified: %v", err)
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	f := newFixture(t)
	req, _, err := NewProvisioningRequest(f.enclave, f.quoter)
	if err != nil {
		t.Fatal(err)
	}
	req.Quote.PlatformID = "rogue"
	if _, err := f.svc.Verify(req.Quote); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("unknown platform accepted: %v", err)
	}
	if _, err := f.svc.Verify(nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("nil quote accepted: %v", err)
	}
}

func TestCrossDeviceReportRejected(t *testing.T) {
	f := newFixture(t)
	dev2, err := sgx.NewDevice([]byte("other-dev"), simmem.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dev2.Launch([]byte("scbr router image"), f.signer.Public(), sgx.EnclaveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := e2.Report(sgx.QuotingTargetMR, sgx.ReportData{})
	if err != nil {
		t.Fatal(err)
	}
	// f's quoter belongs to a different device; the report MAC must
	// not verify there.
	if _, err := f.quoter.Quote(report); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("cross-device report quoted: %v", err)
	}
}

func TestQuoterValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewQuoter(f.dev, ""); err == nil {
		t.Fatal("empty platform ID accepted")
	}
	if _, err := ProvisionSecret(f.svc, f.id, nil, []byte("s")); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("nil request accepted: %v", err)
	}
}
