package loadgen

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/workload"
)

// The harness's attribute universe. It is fixed up front because ASPE
// encodes every vector over the full declared universe — a dimension
// added later would change every ciphertext.
const (
	// attrMarker is the constant-valued marker every generated event
	// carries; the measured listeners subscribe to a closed interval
	// around it, which both schemes can express (ASPE has no
	// match-anything form, and `lg between 0 and 2` costs one
	// dimension).
	attrMarker = "lg"
	attrSymbol = "symbol"
	attrPrice  = "price"
	attrVolume = "volume"
)

// Value domains the generators draw from (and ASPE scales by).
const (
	priceDomain  = 100.0
	volumeDomain = 1_000_000
)

// SchemeOptions parameterises the codec for the harness's universe —
// required by ASPE (fixed attribute set, numeric scales), ignored by
// schemes that don't need pre-declared dimensions.
func (s *Scenario) SchemeOptions() []scheme.Option {
	return []scheme.Option{
		scheme.WithAttrs(attrMarker, attrSymbol, attrPrice, attrVolume),
		scheme.WithSeed(s.Seed),
		scheme.WithScale(attrMarker, 4),
		scheme.WithScale(attrPrice, priceDomain),
		scheme.WithScale(attrVolume, volumeDomain),
	}
}

// MatchAllSpec is the measured listeners' subscription: it matches
// every generated event (all carry lg = 1) in every scheme.
func MatchAllSpec() pubsub.SubscriptionSpec {
	return pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: attrMarker, Op: pubsub.OpBetween, Value: pubsub.Int(0), Hi: pubsub.Int(2)},
	}}
}

func symbolName(rank int) string {
	return fmt.Sprintf("S%d", rank)
}

// Population derives the deterministic zipf filler population: count
// subscriptions whose symbol interest follows rank ∝ 1/(rank+1)^s —
// the paper's skewed-subscription model, where a few hot symbols
// attract most subscribers. Three rotating shapes (symbol equality,
// price band, symbol + volume band) keep the matcher exercising both
// equality and interval paths; every shape is expressible under ASPE
// (equality and closed intervals only). The same (seed, s, symbols,
// count) always produces the same population.
func Population(s *Scenario, count int) ([]pubsub.SubscriptionSpec, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	z, err := workload.NewZipf(rng, s.ZipfS, s.Symbols)
	if err != nil {
		return nil, fmt.Errorf("loadgen: population: %w", err)
	}
	specs := make([]pubsub.SubscriptionSpec, count)
	for i := range specs {
		sym := symbolName(z.Draw())
		switch i % 3 {
		case 0:
			specs[i] = pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
				{Attr: attrSymbol, Op: pubsub.OpEq, Value: pubsub.Str(sym)},
			}}
		case 1:
			lo := rng.Float64() * (priceDomain - 10)
			specs[i] = pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
				{Attr: attrPrice, Op: pubsub.OpBetween, Value: pubsub.Float(lo), Hi: pubsub.Float(lo + 10)},
			}}
		default:
			lo := int64(rng.Intn(volumeDomain / 2))
			specs[i] = pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
				{Attr: attrSymbol, Op: pubsub.OpEq, Value: pubsub.Str(sym)},
				{Attr: attrVolume, Op: pubsub.OpBetween, Value: pubsub.Int(lo), Hi: pubsub.Int(volumeDomain)},
			}}
		}
	}
	return specs, nil
}

// EventStream deterministically generates publication headers whose
// symbol popularity follows the same zipf law as the population. Not
// safe for concurrent use — the driver pre-draws each phase's headers
// and shards them across publisher goroutines.
type EventStream struct {
	rng *rand.Rand
	z   *workload.Zipf
}

// NewEventStream builds the scenario's header generator. The stream
// seeds off Seed+1 so events and population are decorrelated but both
// reproducible.
func NewEventStream(s *Scenario) (*EventStream, error) {
	rng := rand.New(rand.NewSource(s.Seed + 1))
	z, err := workload.NewZipf(rng, s.ZipfS, s.Symbols)
	if err != nil {
		return nil, fmt.Errorf("loadgen: event stream: %w", err)
	}
	return &EventStream{rng: rng, z: z}, nil
}

// Next draws one header.
func (es *EventStream) Next() pubsub.EventSpec {
	return pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: attrMarker, Value: pubsub.Int(1)},
		{Name: attrSymbol, Value: pubsub.Str(symbolName(es.z.Draw()))},
		{Name: attrPrice, Value: pubsub.Float(es.rng.Float64() * priceDomain)},
		{Name: attrVolume, Value: pubsub.Int(int64(es.rng.Intn(volumeDomain)))},
	}}
}

// payloadLen is the fixed measured-event payload: sequence number plus
// publish timestamp, enough for uniqueness accounting and end-to-end
// latency without bulk.
const payloadLen = 16

// EncodePayload packs an event's global sequence number and its
// publish stamp (UnixNano).
func EncodePayload(seq uint64, stamp int64) []byte {
	b := make([]byte, payloadLen)
	binary.LittleEndian.PutUint64(b[0:8], seq)
	binary.LittleEndian.PutUint64(b[8:16], uint64(stamp))
	return b
}

// DecodePayload unpacks EncodePayload's form.
func DecodePayload(b []byte) (seq uint64, stamp int64, err error) {
	if len(b) != payloadLen {
		return 0, 0, fmt.Errorf("loadgen: payload is %d bytes, want %d", len(b), payloadLen)
	}
	return binary.LittleEndian.Uint64(b[0:8]), int64(binary.LittleEndian.Uint64(b[8:16])), nil
}
