package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"scbr/internal/broker"
	"scbr/internal/hdrhist"
)

// HostBaseline pins the run to the machine and build that produced
// it, so a recorded trajectory is comparable across PRs and hosts.
type HostBaseline struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
}

// CaptureHost records the current host baseline.
func CaptureHost(commit string) HostBaseline {
	return HostBaseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     commit,
	}
}

// LatencySummary is one histogram reduced to the percentiles the
// trajectory tracks. All values are nanoseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	P50    int64   `json:"p50_ns"`
	P95    int64   `json:"p95_ns"`
	P99    int64   `json:"p99_ns"`
	Max    int64   `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

func summarize(s *hdrhist.Snapshot) LatencySummary {
	return LatencySummary{
		Count:  s.N,
		P50:    s.Quantile(0.50),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		Max:    s.Max,
		MeanNs: s.Mean(),
	}
}

// CellResult is one deployment cell's measurements.
type CellResult struct {
	Partitions int    `json:"partitions"`
	Scheme     string `json:"scheme"`
	Routers    int    `json:"routers"`
	// Skipped carries the reason a cell was not deployable (e.g. aspe ×
	// federated); all measurement fields are zero for skipped cells.
	Skipped string `json:"skipped,omitempty"`

	// Scale is the population multiplier this cell ran under;
	// Subscribers and Events are the post-scale actuals.
	Scale       float64 `json:"scale"`
	Subscribers int     `json:"subscribers"`
	Measured    int     `json:"measured"`
	Events      int     `json:"events"`

	// RegisterSecs covers bulk-registering the filler population.
	RegisterSecs   float64 `json:"register_secs"`
	RegisterPerSec float64 `json:"register_per_sec"`

	// PublishSecs covers every publish phase (steady + flash + churn);
	// EventsPerSec is total events over that time.
	PublishSecs  float64 `json:"publish_secs"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Delivery accounting across every measured listener: each event is
	// expected once per listener; Delivered counts unique receipts, Gaps
	// the losses the resume protocol *reported*, Unaccounted whatever
	// neither delivered nor reported — the invariant the harness
	// enforces is Unaccounted == 0 (no silent loss).
	Expected    uint64 `json:"expected"`
	Delivered   uint64 `json:"delivered"`
	Duplicates  uint64 `json:"duplicates"`
	Gaps        uint64 `json:"gaps"`
	Unaccounted uint64 `json:"unaccounted"`
	Resumes     int    `json:"resumes,omitempty"`

	// PlannedPartitions records the slice count deploy.Plan chose for a
	// planner-sized cell (Partitions == 0), with the budget it planned
	// under; both zero for fixed-partition cells.
	PlannedPartitions int    `json:"planned_partitions,omitempty"`
	PlanEPCBudget     uint64 `json:"plan_epc_budget,omitempty"`

	// Repartitions counts completed online resizes of the cell's
	// matcher-slice fleets; MigrationPauseNanos is the worst data-plane
	// flush pause any router observed across them (the time publishes
	// were fenced behind a placement flip).
	Repartitions        int   `json:"repartitions,omitempty"`
	MigrationPauseNanos int64 `json:"migration_pause_nanos,omitempty"`

	// EndToEnd is publish-stamp → client-receipt latency (from payload
	// timestamps); EnqueueWrite is the router-side delivery-queue
	// latency surface added with this harness.
	EndToEnd     LatencySummary `json:"end_to_end"`
	EnqueueWrite LatencySummary `json:"enqueue_write"`

	// Counters is the home router's delivery-snapshot at cell end.
	Counters broker.DeliveryCounters `json:"counters"`
}

// Result is the self-describing run artifact (BENCH_prN.json).
type Result struct {
	Harness   string       `json:"harness"`
	Version   int          `json:"version"`
	StartedAt time.Time    `json:"started_at"`
	WallSecs  float64      `json:"wall_secs"`
	Host      HostBaseline `json:"host"`
	Scenario  *Scenario    `json:"scenario"`
	Cells     []CellResult `json:"cells"`
}

// WriteJSON emits the artifact, indented for diffability.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("loadgen: encoding result: %w", err)
	}
	return nil
}
