package loadgen

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"scbr/internal/scheme"
)

// The population generator is deterministic: one (seed, skew,
// universe) always produces the same specs, and the event stream the
// same headers.
func TestPopulationDeterministic(t *testing.T) {
	s, err := Builtin("ci")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Population(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Population(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different populations")
	}
	ea, err := NewEventStream(s)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEventStream(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if ha, hb := ea.Next(), eb.Next(); !reflect.DeepEqual(ha, hb) {
			t.Fatalf("event %d diverged: %v vs %v", i, ha, hb)
		}
	}
	// A different seed must actually change the draw.
	s2 := *s
	s2.Seed++
	c, err := Population(&s2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical populations")
	}
}

// The zipf law shows: the rank-0 symbol attracts more subscriptions
// than a tail rank.
func TestPopulationZipfSkew(t *testing.T) {
	s, err := Builtin("ci")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Population(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	count := func(sym string) int {
		n := 0
		for _, sp := range specs {
			for _, p := range sp.Predicates {
				if p.Attr == attrSymbol && p.Value.S == sym {
					n++
				}
			}
		}
		return n
	}
	hot, cold := count(symbolName(0)), count(symbolName(s.Symbols-1))
	if hot <= cold*2 {
		t.Fatalf("no zipf skew: rank 0 drew %d, rank %d drew %d", hot, s.Symbols-1, cold)
	}
}

// The golden scenario file round-trips byte-identically through
// parse → re-encode, so the on-disk spec format is stable.
func TestGoldenScenarioRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "scenario.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseScenario(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(buf.Bytes()), bytes.TrimSpace(raw)) {
		t.Fatalf("golden scenario did not round-trip:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), raw)
	}
	// And the parsed scenario is runnable as specified.
	if s.Name != "golden" || len(s.Cells()) == 0 {
		t.Fatalf("unexpected golden scenario: %+v", s)
	}
}

// Malformed scenarios are rejected with a descriptive error, never
// silently defaulted.
func TestParseScenarioRejectsMalformed(t *testing.T) {
	base := func() map[string]any {
		return map[string]any{
			"name": "m", "seed": 1, "subscribers": 10, "measured": 1,
			"zipf_s": 1.0, "symbols": 10, "events": 10, "publishers": 1,
			"batch_size": 5, "partitions": []int{1}, "schemes": []string{scheme.Plain},
			"routers": []int{1},
		}
	}
	cases := []struct {
		name   string
		mutate func(m map[string]any)
		want   string
	}{
		{"unknown field", func(m map[string]any) { m["subscriberz"] = 10 }, "unknown field"},
		{"missing name", func(m map[string]any) { delete(m, "name") }, "name"},
		{"zero subscribers", func(m map[string]any) { m["subscribers"] = 0 }, "subscribers"},
		{"negative events", func(m map[string]any) { m["events"] = -1 }, "events"},
		{"zero zipf", func(m map[string]any) { m["zipf_s"] = 0.0 }, "zipf_s"},
		{"empty partitions", func(m map[string]any) { m["partitions"] = []int{} }, "partitions"},
		{"partitions out of range", func(m map[string]any) { m["partitions"] = []int{0} }, "partitions"},
		{"empty schemes", func(m map[string]any) { m["schemes"] = []string{} }, "schemes"},
		{"unknown scheme", func(m map[string]any) { m["schemes"] = []string{"rot13"} }, "unknown matching scheme"},
		{"zero routers", func(m map[string]any) { m["routers"] = []int{0} }, "routers"},
		{"bad overflow", func(m map[string]any) { m["overflow"] = "yolo" }, "overflow"},
		{"scale over one", func(m map[string]any) { m["scheme_scale"] = map[string]float64{scheme.ASPE: 1.5} }, "scheme_scale"},
		{"scale unknown scheme", func(m map[string]any) { m["scheme_scale"] = map[string]float64{"rot13": 0.5} }, "unknown matching scheme"},
		{"not json", func(m map[string]any) {}, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var raw []byte
			if tc.name == "not json" {
				raw = []byte("{nope")
			} else {
				m := base()
				tc.mutate(m)
				var err error
				raw, err = json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
			}
			_, err := ParseScenario(bytes.NewReader(raw))
			if err == nil {
				t.Fatalf("malformed scenario accepted: %s", raw)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The base map itself must be valid — otherwise the sweep tests
	// nothing.
	raw, err := json.Marshal(base())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScenario(bytes.NewReader(raw)); err != nil {
		t.Fatalf("base scenario rejected: %v", err)
	}
}

// Cell expansion applies scheme and federation scales and marks
// aspe × federated combinations as skipped rather than dropping them.
func TestCells(t *testing.T) {
	s, err := Builtin("ci")
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Cells()
	want := len(s.Schemes) * len(s.Partitions) * len(s.Routers)
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	var skipped, run int
	for _, c := range cells {
		if c.Scheme == scheme.ASPE && c.Routers > 1 {
			if c.Skip == "" {
				t.Fatalf("aspe federated cell not skipped: %+v", c)
			}
			skipped++
			continue
		}
		if c.Skip != "" {
			t.Fatalf("unexpected skip: %+v", c)
		}
		run++
		wantScale := 1.0
		if f, ok := s.SchemeScale[c.Scheme]; ok {
			wantScale *= f
		}
		if c.Routers > 1 {
			wantScale *= s.FederationScale
		}
		if c.Scale != wantScale {
			t.Fatalf("cell %+v: scale %v, want %v", c, c.Scale, wantScale)
		}
		if c.Subscribers != scaled(s.Subscribers, wantScale) || c.Events != scaled(s.Events, wantScale) {
			t.Fatalf("cell %+v: population not scaled by %v", c, wantScale)
		}
	}
	if skipped != len(s.Partitions) || run != want-skipped {
		t.Fatalf("skipped %d run %d of %d", skipped, run, want)
	}
}

// Every builtin validates and expands.
func TestBuiltinsValid(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("builtin %q invalid: %v", name, err)
		}
		if len(s.Cells()) == 0 {
			t.Fatalf("builtin %q expands to no cells", name)
		}
	}
	// The acceptance sweep must actually reach the target population.
	smoke, err := Builtin("smoke")
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, c := range smoke.Cells() {
		if c.Subscribers > max {
			max = c.Subscribers
		}
	}
	if max < 100_000 {
		t.Fatalf("smoke's largest cell registers %d subscriptions, want ≥100000", max)
	}
}

// Payloads round-trip and reject foreign sizes.
func TestPayloadRoundTrip(t *testing.T) {
	b := EncodePayload(42, 1_700_000_000_000_000_000)
	seq, stamp, err := DecodePayload(b)
	if err != nil || seq != 42 || stamp != 1_700_000_000_000_000_000 {
		t.Fatalf("round trip: %d %d %v", seq, stamp, err)
	}
	if _, _, err := DecodePayload(b[:8]); err == nil {
		t.Fatal("short payload accepted")
	}
}
