package loadgen

import (
	"context"
	"testing"

	"scbr/internal/scheme"
)

// tinyScenario is a seconds-scale run covering a federated plain cell
// and a single-router aspe cell, with flash and churn phases.
func tinyScenario() *Scenario {
	return &Scenario{
		Name:        "tiny",
		Seed:        11,
		Subscribers: 60,
		Measured:    2,
		ZipfS:       1,
		Symbols:     20,
		Events:      60,
		Publishers:  2,
		BatchSize:   15,
		FlashEvents: 30,
		ChurnCycles: 1,
		ChurnEvents: 20,
		Partitions:  []int{2},
		Schemes:     []string{scheme.Plain, scheme.ASPE},
		Routers:     []int{1, 2},
	}
}

// The harness end to end: every cell either runs with full delivery
// accounting (zero unaccounted events) or is explicitly skipped.
func TestRunTinyScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up live topologies")
	}
	s := tinyScenario()
	res, err := Run(context.Background(), s, t.Logf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	var ran, skipped int
	for _, c := range res.Cells {
		if c.Skipped != "" {
			if c.Scheme != scheme.ASPE || c.Routers != 2 {
				t.Fatalf("unexpected skip: %+v", c)
			}
			skipped++
			continue
		}
		ran++
		total := uint64(c.Events) * uint64(c.Measured)
		if c.Expected != total {
			t.Fatalf("cell %s/r%d: expected %d, want %d", c.Scheme, c.Routers, c.Expected, total)
		}
		if c.Unaccounted != 0 {
			t.Fatalf("cell %s/r%d: %d events unaccounted (delivered=%d gaps=%d expected=%d)",
				c.Scheme, c.Routers, c.Unaccounted, c.Delivered, c.Gaps, c.Expected)
		}
		if c.Delivered+c.Gaps != c.Expected {
			t.Fatalf("cell %s/r%d: delivered=%d gaps=%d does not cover expected=%d",
				c.Scheme, c.Routers, c.Delivered, c.Gaps, c.Expected)
		}
		if c.Delivered == 0 {
			t.Fatalf("cell %s/r%d: nothing delivered", c.Scheme, c.Routers)
		}
		if c.EndToEnd.Count == 0 || c.EndToEnd.P99 < c.EndToEnd.P50 {
			t.Fatalf("cell %s/r%d: bad end-to-end summary %+v", c.Scheme, c.Routers, c.EndToEnd)
		}
		// Live sends record enqueue→write latency; replayed frames
		// deliberately do not. Every delivery must be one or the other.
		if c.EnqueueWrite.Count+c.Counters.DeliveriesReplayed == 0 {
			t.Fatalf("cell %s/r%d: no live sends and no replays despite %d deliveries",
				c.Scheme, c.Routers, c.Delivered)
		}
		if c.Resumes < s.Measured {
			t.Fatalf("cell %s/r%d: %d resumes, want at least one per listener", c.Scheme, c.Routers, c.Resumes)
		}
		if c.EventsPerSec <= 0 || c.RegisterPerSec <= 0 {
			t.Fatalf("cell %s/r%d: missing throughput: %+v", c.Scheme, c.Routers, c)
		}
	}
	if ran != 3 || skipped != 1 {
		t.Fatalf("ran %d skipped %d, want 3/1", ran, skipped)
	}
	if res.Host.GoVersion == "" || res.Host.CPUs == 0 {
		t.Fatalf("host baseline not captured: %+v", res.Host)
	}
	if res.WallSecs <= 0 {
		t.Fatal("wall time not recorded")
	}
}

// A partitions entry of 0 is planner-sized: the cell's slice count
// must come from deploy.Plan and be recorded in the result.
func TestRunPlannerSizedCell(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up live topologies")
	}
	s := tinyScenario()
	s.Schemes = []string{scheme.Plain}
	s.Routers = []int{1}
	s.Partitions = []int{0}
	s.PlanEPCBudget = 4 << 20
	res, err := Run(context.Background(), s, t.Logf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.PlannedPartitions < 1 {
		t.Fatalf("no planned partition count recorded: %+v", c)
	}
	if c.PlanEPCBudget != s.PlanEPCBudget {
		t.Fatalf("plan budget %d recorded, want %d", c.PlanEPCBudget, s.PlanEPCBudget)
	}
	if c.Unaccounted != 0 || c.Delivered == 0 {
		t.Fatalf("planner-sized cell lost traffic: %+v", c)
	}
}

func TestValidatePlannerPartitions(t *testing.T) {
	s := tinyScenario()
	s.Partitions = []int{0}
	if err := s.Validate(); err == nil {
		t.Error("partitions 0 without plan_epc_budget accepted")
	}
	s.PlanEPCBudget = 1 << 20
	if err := s.Validate(); err != nil {
		t.Errorf("planner-sized scenario rejected: %v", err)
	}
}
