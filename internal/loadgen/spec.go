// Package loadgen is the production-shaped load harness behind
// cmd/scbr-loadgen: it stands up live in-process topologies
// (partitions × scheme × federation × overflow policy, via
// internal/deploy), registers zipf-distributed subscription
// populations through the bulk-registration path, drives sustained
// multi-goroutine publish storms with PublishBatch, flash-crowd
// ramps, and mobile-style reconnect churn over the resumable delivery
// path, and reports throughput plus HDR-histogram latency percentiles
// in a self-describing BENCH_prN.json. The paper's evaluation (§5) is
// built on exactly this class of parameterized sweep; the harness
// makes every future perf change measurable against a recorded
// trajectory.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"scbr/internal/scheme"

	"scbr/internal/broker"
)

// Scenario is one named, declarative sweep: a population and traffic
// shape crossed with a deployment matrix. Every (partitions × scheme ×
// routers) combination becomes one cell; combinations the scheme
// cannot form (aspe × federated — no federation-digest support) are
// recorded as explicitly skipped, never silently dropped.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed makes the whole run deterministic: population, event
	// stream, and churn schedule all derive from it.
	Seed int64 `json:"seed"`

	// Subscribers is the zipf filler population per cell: subscription
	// count registered through the bulk path, owned by a client that
	// never listens — matching load without delivery fan-out.
	Subscribers int `json:"subscribers"`
	// Measured is the number of resumable, match-everything listeners
	// whose deliveries are counted and latency-stamped.
	Measured int `json:"measured"`
	// ZipfS is the population skew exponent (the paper uses s = 1).
	ZipfS float64 `json:"zipf_s"`
	// Symbols is the symbol universe the zipf ranks map onto.
	Symbols int `json:"symbols"`

	// Events is the steady-phase publication count per cell.
	Events int `json:"events"`
	// Publishers is the number of concurrent publishing goroutines.
	// They share the deployment's one provisioned publisher identity —
	// the paper's model is a single service provider — so this scales
	// wire/batch concurrency, not provisioning.
	Publishers int `json:"publishers"`
	// BatchSize is the PublishBatch granularity of the storm phases.
	BatchSize int `json:"batch_size"`
	// FlashEvents, when non-zero, adds a flash-crowd phase: that many
	// events published as fast as possible in maximal batches.
	FlashEvents int `json:"flash_events,omitempty"`
	// ChurnCycles, when non-zero, adds a reconnect-churn phase: each
	// cycle severs every measured listener's delivery connection,
	// publishes ChurnEvents while they are away, then resumes them —
	// the mobile reconnect story, exercising replay rings and gap
	// accounting under load.
	ChurnCycles int `json:"churn_cycles,omitempty"`
	// ChurnEvents is how many events each churn cycle publishes while
	// the listeners are detached (default: BatchSize).
	ChurnEvents int `json:"churn_events,omitempty"`
	// RepartitionCycles, when non-zero, adds a repartition-churn phase:
	// each cycle resizes every router's matcher-slice fleet online
	// (Router.Repartition) while RepartitionEvents are published into
	// the live migration, asserting delivered + gaps == expected across
	// the move — the elastic-data-plane story.
	RepartitionCycles int `json:"repartition_cycles,omitempty"`
	// RepartitionTo lists the slice counts the cycles rotate through
	// (cycle i resizes to RepartitionTo[i mod len]); required when
	// RepartitionCycles > 0, each in [1,256].
	RepartitionTo []int `json:"repartition_to,omitempty"`
	// RepartitionEvents is how many events each repartition cycle
	// publishes concurrently with the resize (default: BatchSize).
	RepartitionEvents int `json:"repartition_events,omitempty"`

	// Partitions, Schemes, and Routers span the deployment matrix.
	// Routers: 1 = single router, n > 1 = a federated chain of n.
	// A Partitions entry of 0 means "planner-sized": the cell's slice
	// count comes from deploy.Plan (the scheme's footprint model under
	// PlanEPCBudget) instead of being fixed; requires PlanEPCBudget.
	Partitions []int    `json:"partitions"`
	Schemes    []string `json:"schemes"`
	Routers    []int    `json:"routers"`
	// Overflow is the slow-consumer policy every cell runs under
	// (empty = drop-oldest).
	Overflow string `json:"overflow,omitempty"`

	// SchemeScale multiplies Subscribers and Events for named schemes,
	// bounding super-linear matchers (aspe is O(subs·d²) per event) so
	// one sweep can cross cheap and expensive schemes. Applied scales
	// are recorded in the cell results — no silent caps.
	SchemeScale map[string]float64 `json:"scheme_scale,omitempty"`
	// FederationScale multiplies Subscribers and Events for cells with
	// more than one router (digest propagation and forwarded delivery
	// make federated cells inherently heavier). Zero means 1.
	FederationScale float64 `json:"federation_scale,omitempty"`

	// PlanEPCBudget is the per-router EPC budget (bytes) for
	// planner-sized cells (Partitions entry 0): the deployment planner
	// sizes each router's slice count so the cell's subscription volume
	// fits the scheme's footprint model under this budget, and the cell
	// fails up front if it cannot.
	PlanEPCBudget uint64 `json:"plan_epc_budget,omitempty"`
}

// Cell is one resolved point of a scenario's deployment matrix.
type Cell struct {
	Partitions  int
	Scheme      string
	Routers     int
	Subscribers int
	Events      int
	// Scale is the population multiplier applied (scheme × federation).
	Scale float64
	// Skip is non-empty when the combination cannot be deployed; the
	// cell is reported with this reason instead of run.
	Skip string
}

// Validate rejects malformed scenarios with a descriptive error.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if s.Subscribers <= 0 {
		return fmt.Errorf("loadgen: scenario %q: subscribers must be positive, got %d", s.Name, s.Subscribers)
	}
	if s.Measured <= 0 {
		return fmt.Errorf("loadgen: scenario %q: measured must be positive, got %d", s.Name, s.Measured)
	}
	if s.ZipfS <= 0 {
		return fmt.Errorf("loadgen: scenario %q: zipf_s must be positive, got %v", s.Name, s.ZipfS)
	}
	if s.Symbols <= 0 {
		return fmt.Errorf("loadgen: scenario %q: symbols must be positive, got %d", s.Name, s.Symbols)
	}
	if s.Events <= 0 {
		return fmt.Errorf("loadgen: scenario %q: events must be positive, got %d", s.Name, s.Events)
	}
	if s.Publishers <= 0 {
		return fmt.Errorf("loadgen: scenario %q: publishers must be positive, got %d", s.Name, s.Publishers)
	}
	if s.BatchSize <= 0 {
		return fmt.Errorf("loadgen: scenario %q: batch_size must be positive, got %d", s.Name, s.BatchSize)
	}
	if s.FlashEvents < 0 || s.ChurnCycles < 0 || s.ChurnEvents < 0 || s.RepartitionCycles < 0 || s.RepartitionEvents < 0 {
		return fmt.Errorf("loadgen: scenario %q: phase counts must not be negative", s.Name)
	}
	if s.RepartitionCycles > 0 && len(s.RepartitionTo) == 0 {
		return fmt.Errorf("loadgen: scenario %q: repartition_cycles needs repartition_to targets", s.Name)
	}
	for _, k := range s.RepartitionTo {
		if k < 1 || k > 256 {
			return fmt.Errorf("loadgen: scenario %q: repartition_to %d out of range [1,256]", s.Name, k)
		}
	}
	if len(s.Partitions) == 0 {
		return fmt.Errorf("loadgen: scenario %q: partitions sweep is empty", s.Name)
	}
	for _, k := range s.Partitions {
		if k == 0 {
			if s.PlanEPCBudget == 0 {
				return fmt.Errorf("loadgen: scenario %q: partitions 0 means planner-sized and needs plan_epc_budget", s.Name)
			}
			continue
		}
		if k < 1 || k > 256 {
			return fmt.Errorf("loadgen: scenario %q: partitions %d out of range [1,256] (0 = planner-sized)", s.Name, k)
		}
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("loadgen: scenario %q: schemes sweep is empty", s.Name)
	}
	for _, name := range s.Schemes {
		if _, err := scheme.Lookup(name); err != nil {
			return fmt.Errorf("loadgen: scenario %q: %w", s.Name, err)
		}
	}
	if len(s.Routers) == 0 {
		return fmt.Errorf("loadgen: scenario %q: routers sweep is empty", s.Name)
	}
	for _, n := range s.Routers {
		if n < 1 || n > 16 {
			return fmt.Errorf("loadgen: scenario %q: routers %d out of range [1,16]", s.Name, n)
		}
	}
	if _, err := broker.ParseOverflowPolicy(s.Overflow); err != nil {
		return fmt.Errorf("loadgen: scenario %q: %w", s.Name, err)
	}
	for name, f := range s.SchemeScale {
		if _, err := scheme.Lookup(name); err != nil {
			return fmt.Errorf("loadgen: scenario %q: scheme_scale: %w", s.Name, err)
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("loadgen: scenario %q: scheme_scale[%s] must be in (0,1], got %v", s.Name, name, f)
		}
	}
	if s.FederationScale < 0 || s.FederationScale > 1 {
		return fmt.Errorf("loadgen: scenario %q: federation_scale must be in (0,1], got %v", s.Name, s.FederationScale)
	}
	return nil
}

// Cells expands the scenario's deployment matrix in deterministic
// order (scheme, then partitions, then routers), resolving per-cell
// population scales and marking undeployable combinations as skipped.
func (s *Scenario) Cells() []Cell {
	var out []Cell
	for _, schemeName := range s.Schemes {
		backend, err := scheme.Lookup(schemeName)
		if err != nil {
			continue // Validate already rejected unknown schemes
		}
		for _, k := range s.Partitions {
			for _, n := range s.Routers {
				c := Cell{Partitions: k, Scheme: backend.Name, Routers: n, Scale: 1}
				if f, ok := s.SchemeScale[backend.Name]; ok {
					c.Scale *= f
				}
				if n > 1 {
					if !backend.Caps.FederationDigests {
						c.Skip = fmt.Sprintf("scheme %q cannot form overlay links (no federation-digest support)", backend.Name)
						out = append(out, c)
						continue
					}
					if s.FederationScale != 0 {
						c.Scale *= s.FederationScale
					}
				}
				c.Subscribers = scaled(s.Subscribers, c.Scale)
				c.Events = scaled(s.Events, c.Scale)
				out = append(out, c)
			}
		}
	}
	return out
}

// scaled applies a population multiplier, keeping at least 1.
func scaled(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// churnEvents resolves the per-cycle detached-phase event count.
func (s *Scenario) churnEvents() int {
	if s.ChurnEvents > 0 {
		return s.ChurnEvents
	}
	return s.BatchSize
}

// repartitionEvents resolves the per-cycle mid-migration event count.
func (s *Scenario) repartitionEvents() int {
	if s.RepartitionEvents > 0 {
		return s.RepartitionEvents
	}
	return s.BatchSize
}

// ParseScenario decodes and validates one scenario from JSON. Unknown
// fields are rejected — a typoed knob must fail loudly, not silently
// run the defaults.
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: decoding scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// builtins is the named scenario table. "ci" is the scaled-down
// per-PR smoke run (thousands of subscriptions, seconds of traffic);
// "smoke" is the full acceptance sweep that emits the committed
// BENCH_pr6.json (≥100k subscriptions, the full {1,4} × {sgx-plain,
// aspe} × {1,2-router} matrix, flash and churn phases).
var builtins = map[string]*Scenario{
	"ci": {
		Name:              "ci",
		Description:       "scaled-down per-PR smoke: thousands of subs, seconds of traffic",
		Seed:              61,
		Subscribers:       2_000,
		Measured:          2,
		ZipfS:             1,
		Symbols:           100,
		Events:            600,
		Publishers:        2,
		BatchSize:         50,
		FlashEvents:       200,
		ChurnCycles:       2,
		ChurnEvents:       100,
		RepartitionCycles: 2,
		RepartitionTo:     []int{2, 4},
		RepartitionEvents: 100,
		// The trailing 0 is the EPC-budgeted planner cell: partition
		// counts come from deploy.Plan under an 8 MB per-router budget,
		// so the smoke job exercises the planning path end to end.
		Partitions:      []int{1, 4, 0},
		Schemes:         []string{scheme.Plain, scheme.ASPE},
		Routers:         []int{1, 2},
		SchemeScale:     map[string]float64{scheme.ASPE: 0.25},
		FederationScale: 0.5,
		PlanEPCBudget:   8 << 20,
	},
	"ci-batch": {
		Name:        "ci-batch",
		Description: "batch-heavy per-PR smoke: few jumbo PublishBatch frames drive the batch-first hot path",
		Seed:        73,
		Subscribers: 2_000,
		Measured:    2,
		ZipfS:       1,
		Symbols:     100,
		Events:      1_200,
		Publishers:  2,
		// The point of the cell: publication traffic arrives as a
		// handful of 400-event batches per publisher, so one ring
		// pass / store pass carries hundreds of events and the
		// per-event amortisation dominates the throughput number.
		BatchSize:   400,
		FlashEvents: 400,
		Partitions:  []int{1, 4},
		Schemes:     []string{scheme.Plain},
		Routers:     []int{1},
	},
	"smoke": {
		Name:              "smoke",
		Description:       "full acceptance sweep: 100k-subscriber cells, flash crowd, reconnect churn",
		Seed:              67,
		Subscribers:       100_000,
		Measured:          3,
		ZipfS:             1,
		Symbols:           1_000,
		Events:            2_000,
		Publishers:        2,
		BatchSize:         100,
		FlashEvents:       500,
		ChurnCycles:       3,
		ChurnEvents:       200,
		RepartitionCycles: 3,
		RepartitionTo:     []int{2, 8, 4},
		RepartitionEvents: 200,
		Partitions:        []int{1, 4},
		Schemes:           []string{scheme.Plain, scheme.ASPE},
		Routers:           []int{1, 2},
		SchemeScale:       map[string]float64{scheme.ASPE: 0.02},
		FederationScale:   0.1,
	},
}

// Builtin returns a copy of a named builtin scenario.
func Builtin(name string) (*Scenario, error) {
	s, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, BuiltinNames())
	}
	cp := *s
	return &cp, nil
}

// BuiltinNames lists the builtin scenarios, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
