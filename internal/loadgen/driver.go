package loadgen

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scbr/internal/broker"
	"scbr/internal/deploy"
	"scbr/internal/hdrhist"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// Tunables the scenarios don't need to vary.
const (
	// deliveryQueueLen and replayRingLen are raised over the router
	// defaults so that scenario-scale bursts convert into resumable
	// replay (counted gaps) rather than early ring evictions.
	deliveryQueueLen = 1024
	replayRingLen    = 1024
	// attachTimeout bounds the initial all-listeners-attached barrier
	// and each churn cycle's reattach barrier.
	attachTimeout = 30 * time.Second
	// drainTimeout bounds the end-of-cell wait for every expected
	// event to be delivered or gap-reported.
	drainTimeout = 90 * time.Second
	// fedTimeout bounds federation digest propagation barriers.
	fedTimeout = 30 * time.Second
	// redialBackoff paces a listener's reconnect retries.
	redialBackoff = 5 * time.Millisecond
)

// fillerClientID owns the zipf population; it never attaches a
// delivery connection, so its matches exercise the engine without
// delivery fan-out (the router drops deliveries for clients that have
// never listened).
const fillerClientID = "loadgen-filler"

// Logf receives human-readable progress lines.
type Logf func(format string, args ...any)

// Run executes every cell of the scenario and assembles the artifact.
func Run(ctx context.Context, s *Scenario, logf Logf, commit string) (*Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Harness:   "scbr-loadgen",
		Version:   1,
		StartedAt: time.Now().UTC(),
		Host:      CaptureHost(commit),
		Scenario:  s,
	}
	start := time.Now()
	cells := s.Cells()
	for i, c := range cells {
		if c.Skip != "" {
			logf("cell %d/%d [p=%d %s routers=%d]: SKIPPED: %s", i+1, len(cells), c.Partitions, c.Scheme, c.Routers, c.Skip)
			res.Cells = append(res.Cells, CellResult{
				Partitions: c.Partitions, Scheme: c.Scheme, Routers: c.Routers,
				Scale: c.Scale, Skipped: c.Skip,
			})
			continue
		}
		logf("cell %d/%d [p=%d %s routers=%d]: %d subscribers, %d steady events (scale %.3g)",
			i+1, len(cells), c.Partitions, c.Scheme, c.Routers, c.Subscribers, c.Events, c.Scale)
		cr, err := runCell(ctx, s, c, logf)
		if err != nil {
			return nil, fmt.Errorf("loadgen: cell [p=%d %s routers=%d]: %w", c.Partitions, c.Scheme, c.Routers, err)
		}
		res.Cells = append(res.Cells, cr)
		logf("  done: %.0f ev/s, e2e p50=%s p99=%s, delivered=%d gaps=%d unaccounted=%d",
			cr.EventsPerSec, time.Duration(cr.EndToEnd.P50), time.Duration(cr.EndToEnd.P99),
			cr.Delivered, cr.Gaps, cr.Unaccounted)
	}
	res.WallSecs = time.Since(start).Seconds()
	return res, nil
}

// listener is one measured, resumable consumer and its accounting.
type listener struct {
	c    *broker.Client
	sub  *broker.Subscription
	home int

	mu   sync.Mutex
	conn net.Conn      // current delivery connection (manager-owned)
	hold chan struct{} // non-nil: churn wants the listener detached

	attachGen atomic.Int64 // successful Resume count (incl. first attach)
	gap       atomic.Uint64
	received  atomic.Uint64
	dups      atomic.Uint64
	errs      atomic.Uint64
}

// cellDriver carries one cell's live state.
type cellDriver struct {
	scenario  *Scenario
	cell      Cell
	topo      *deploy.Topology
	pub       *broker.Publisher
	listeners []*listener
	stream    *EventStream
	e2e       *hdrhist.Hist
	seq       uint64 // next global event sequence number
	total     int    // events the cell will publish end to end
}

func runCell(ctx context.Context, s *Scenario, c Cell, logf Logf) (CellResult, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	cr := CellResult{
		Partitions: c.Partitions, Scheme: c.Scheme, Routers: c.Routers,
		Scale: c.Scale, Subscribers: c.Subscribers, Measured: s.Measured,
	}
	overflow, err := broker.ParseOverflowPolicy(s.Overflow)
	if err != nil {
		return cr, err
	}

	var links [][2]int
	for i := 1; i < c.Routers; i++ {
		links = append(links, [2]int{i - 1, i})
	}
	spec := deploy.TopologySpec{
		Routers:       c.Routers,
		Links:         links,
		Scheme:        c.Scheme,
		SchemeOptions: s.SchemeOptions(),
		Mutate: func(i int, cfg *broker.RouterConfig) {
			if c.Partitions > 0 {
				cfg.Partitions = c.Partitions
			}
			cfg.OverflowPolicy = overflow
			cfg.DeliveryQueueLen = deliveryQueueLen
			cfg.ReplayRingLen = replayRingLen
		},
	}
	if c.Partitions == 0 {
		// Planner-sized cell: declare every router's expected load and
		// let deploy.Plan pick the slice counts from the scheme's
		// footprint model under the scenario's EPC budget.
		specs := make([]deploy.RouterSpec, c.Routers)
		for i := range specs {
			specs[i] = deploy.RouterSpec{EPCBudget: s.PlanEPCBudget, Subscriptions: c.Subscribers}
		}
		spec.RouterSpecs = specs
	}
	topo, err := deploy.NewTopology(cctx, spec)
	if err != nil {
		return cr, err
	}
	defer topo.Close()
	if topo.Plan != nil {
		cr.PlannedPartitions = topo.Plan.Routers[0].Partitions
		cr.PlanEPCBudget = s.PlanEPCBudget
		logf("  planner sized %d slices per router (budget %d MB, predicted %d bytes/router)",
			cr.PlannedPartitions, s.PlanEPCBudget>>20, topo.Plan.Routers[0].FootprintBytes)
	}

	pub, err := topo.NewPublisher(cctx, 0)
	if err != nil {
		return cr, err
	}
	stream, err := NewEventStream(s)
	if err != nil {
		return cr, err
	}
	d := &cellDriver{scenario: s, cell: c, topo: topo, pub: pub, stream: stream, e2e: hdrhist.New()}

	// Phase 1 — filler population, bulk-registered on the publish
	// router under a client that never listens.
	specs, err := Population(s, c.Subscribers)
	if err != nil {
		return cr, err
	}
	fillerKeys, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return cr, err
	}
	if err := pub.Registry().Admit(fillerClientID, fillerKeys.Public()); err != nil {
		return cr, err
	}
	regStart := time.Now()
	if _, err := pub.RegisterBulk(cctx, fillerClientID, "", specs); err != nil {
		return cr, fmt.Errorf("registering population: %w", err)
	}
	cr.RegisterSecs = time.Since(regStart).Seconds()
	cr.RegisterPerSec = float64(c.Subscribers) / cr.RegisterSecs
	logf("  registered %d subscriptions in %.2fs (%.0f/s)", c.Subscribers, cr.RegisterSecs, cr.RegisterPerSec)

	// Phase 2 — measured listeners. On federated cells they home on
	// the far router so every delivery crosses the overlay.
	home := 0
	if c.Routers > 1 {
		home = c.Routers - 1
	}
	for j := 0; j < s.Measured; j++ {
		cl, err := broker.NewClient(fmt.Sprintf("measured-%d", j))
		if err != nil {
			return cr, err
		}
		defer cl.Close()
		if err := topo.BindClient(cctx, pub, cl, home); err != nil {
			return cr, err
		}
		sub, err := cl.Subscribe(cctx, MatchAllSpec())
		if err != nil {
			return cr, fmt.Errorf("subscribing measured-%d: %w", j, err)
		}
		st := &listener{c: cl, sub: sub, home: home}
		d.listeners = append(d.listeners, st)
	}

	// Phase 3 — plan total traffic so consumers can size their
	// dedup bitmaps up front.
	flash := 0
	if s.FlashEvents > 0 {
		flash = scaled(s.FlashEvents, c.Scale)
	}
	churnPer := 0
	if s.ChurnCycles > 0 {
		churnPer = scaled(s.churnEvents(), c.Scale)
	}
	repPer := 0
	if s.RepartitionCycles > 0 {
		repPer = scaled(s.repartitionEvents(), c.Scale)
	}
	d.total = c.Events + flash + s.ChurnCycles*churnPer + s.RepartitionCycles*repPer
	cr.Events = d.total
	cr.Expected = uint64(d.total) * uint64(s.Measured)

	var consumers sync.WaitGroup
	for _, st := range d.listeners {
		consumers.Add(1)
		go func(st *listener) { defer consumers.Done(); d.consume(cctx, st) }(st)
		go d.manage(cctx, st)
	}
	if err := d.waitAttached(cctx, 1); err != nil {
		return cr, err
	}
	if c.Routers > 1 {
		// Publications enter at router 0; wait until it has learned the
		// listeners' digests from across the overlay before publishing.
		if err := topo.WaitRemoteEntries(0, 1, fedTimeout); err != nil {
			return cr, err
		}
	}

	// Phase 4 — steady storm.
	pubStart := time.Now()
	if err := d.publishEvents(cctx, c.Events, s.BatchSize); err != nil {
		return cr, err
	}
	// Phase 5 — flash crowd: maximal batches, no pacing.
	if flash > 0 {
		if err := d.publishEvents(cctx, flash, 5*s.BatchSize); err != nil {
			return cr, err
		}
	}
	// Phase 5b — repartition churn: resize every router's matcher-slice
	// fleet online while a storm publishes into the live migration. The
	// delivery invariant (delivered + gaps == expected) holds across the
	// move or the cell reports unaccounted loss.
	for cycle := 0; cycle < s.RepartitionCycles; cycle++ {
		target := s.RepartitionTo[cycle%len(s.RepartitionTo)]
		pauses := make([]int64, len(topo.Routers))
		errc := make(chan error, len(topo.Routers))
		var rwg sync.WaitGroup
		for ri := range topo.Routers {
			rwg.Add(1)
			go func(ri int) {
				defer rwg.Done()
				snap, err := topo.Routers[ri].Repartition(cctx, target)
				if err != nil {
					errc <- fmt.Errorf("repartition cycle %d: router %d → %d slices: %w", cycle, ri, target, err)
					return
				}
				pauses[ri] = snap.LastPauseNanos
			}(ri)
		}
		pubErr := d.publishEvents(cctx, repPer, s.BatchSize)
		rwg.Wait()
		if pubErr != nil {
			return cr, pubErr
		}
		select {
		case err := <-errc:
			return cr, err
		default:
		}
		cr.Repartitions++
		for _, p := range pauses {
			if p > cr.MigrationPauseNanos {
				cr.MigrationPauseNanos = p
			}
		}
		logf("  repartitioned to %d slices (cycle %d, max pause %s)", target, cycle, time.Duration(maxInt64(pauses)))
	}
	// Phase 6 — reconnect churn: sever every listener, publish into
	// their absence, resume, and require the cursor protocol to account
	// for every event as a delivery or a reported gap.
	for cycle := 0; cycle < s.ChurnCycles; cycle++ {
		before := make([]int64, len(d.listeners))
		for j, st := range d.listeners {
			before[j] = st.attachGen.Load()
			d.detach(st)
		}
		if err := d.publishEvents(cctx, churnPer, s.BatchSize); err != nil {
			return cr, err
		}
		for _, st := range d.listeners {
			st.release()
		}
		if err := d.waitReattached(cctx, before); err != nil {
			return cr, fmt.Errorf("churn cycle %d: %w", cycle, err)
		}
	}
	cr.PublishSecs = time.Since(pubStart).Seconds()
	cr.EventsPerSec = float64(d.total) / cr.PublishSecs

	// Phase 7 — drain: every expected event must be delivered or
	// gap-reported; whatever is left is unaccounted (silent loss).
	d.drain(cctx)
	cancel()
	consumers.Wait()

	for _, st := range d.listeners {
		cr.Delivered += st.received.Load()
		cr.Duplicates += st.dups.Load()
		cr.Gaps += st.gap.Load()
		cr.Resumes += int(st.attachGen.Load())
	}
	if got := cr.Delivered + cr.Gaps; got < cr.Expected {
		cr.Unaccounted = cr.Expected - got
	}
	cr.EndToEnd = summarize(d.e2e.Snapshot())
	lat := topo.Routers[home].DeliveryLatencySnapshot()
	cr.EnqueueWrite = LatencySummary{
		Count: lat.Total.Count, P50: lat.Total.P50, P95: lat.Total.P95,
		P99: lat.Total.P99, Max: lat.Total.Max,
	}
	cr.Counters = topo.Routers[home].DeliverySnapshot()
	return cr, nil
}

// publishEvents drives n events through PublishBatch across the
// scenario's publisher goroutines. Headers are pre-drawn from the
// deterministic stream; payloads are stamped at publish time so the
// end-to-end histogram measures live delivery.
func (d *cellDriver) publishEvents(ctx context.Context, n, batchSize int) error {
	if n <= 0 {
		return nil
	}
	headers := make([]pubsub.EventSpec, n)
	for i := range headers {
		headers[i] = d.stream.Next()
	}
	base := d.seq
	d.seq += uint64(n)

	type job struct {
		start int
		hdrs  []pubsub.EventSpec
	}
	jobs := make(chan job)
	workers := d.scenario.Publishers
	if workers > (n+batchSize-1)/batchSize {
		workers = (n + batchSize - 1) / batchSize
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				events := make([]broker.Event, len(j.hdrs))
				for i, h := range j.hdrs {
					events[i] = broker.Event{
						Header:  h,
						Payload: EncodePayload(base+uint64(j.start+i), time.Now().UnixNano()),
					}
				}
				if err := d.pub.PublishBatch(ctx, events); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for off := 0; off < n; off += batchSize {
		end := off + batchSize
		if end > n {
			end = n
		}
		select {
		case jobs <- job{start: off, hdrs: headers[off:end]}:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errc:
		return fmt.Errorf("publishing: %w", err)
	default:
		return nil
	}
}

// consume drains one listener's subscription, deduplicating by
// sequence number and recording publish→receipt latency.
func (d *cellDriver) consume(ctx context.Context, st *listener) {
	seen := make([]bool, d.total)
	for {
		del, err := st.sub.Next(ctx)
		if err != nil {
			return
		}
		if del.Err != nil {
			st.errs.Add(1)
			continue
		}
		seq, stamp, err := DecodePayload(del.Payload)
		if err != nil || seq >= uint64(len(seen)) {
			st.errs.Add(1)
			continue
		}
		if seen[seq] {
			st.dups.Add(1)
			continue
		}
		seen[seq] = true
		st.received.Add(1)
		d.e2e.RecordDuration(time.Since(time.Unix(0, stamp)))
	}
}

// manage is a listener's reconnect loop — the mobile-client shape:
// wait for the delivery pump to die, honor a churn hold if one is
// posted, then redial and Resume, accumulating the reported gap.
func (d *cellDriver) manage(ctx context.Context, st *listener) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-st.c.DeliveryDone():
		}
		st.mu.Lock()
		hold := st.hold
		st.mu.Unlock()
		if hold != nil {
			select {
			case <-ctx.Done():
				return
			case <-hold:
			}
		}
		if ctx.Err() != nil {
			return
		}
		conn, err := d.topo.DialRouter(st.home)
		if err != nil {
			if !sleepCtx(ctx, redialBackoff) {
				return
			}
			continue
		}
		gap, err := st.c.Resume(ctx, conn)
		if err != nil {
			_ = conn.Close()
			if !sleepCtx(ctx, redialBackoff) {
				return
			}
			continue
		}
		st.gap.Add(gap)
		st.attachGen.Add(1)
		st.mu.Lock()
		st.conn = conn
		st.mu.Unlock()
	}
}

// detach posts a churn hold and severs the listener's delivery
// connection, returning once its pump has exited. The loop re-closes
// the current connection on a timer to cover the race where a Resume
// was in flight when the hold was posted.
func (d *cellDriver) detach(st *listener) {
	st.mu.Lock()
	st.hold = make(chan struct{})
	st.mu.Unlock()
	for {
		done := st.c.DeliveryDone()
		st.mu.Lock()
		conn := st.conn
		st.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
		select {
		case <-done:
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// release lifts a churn hold; the manager loop then resumes.
func (st *listener) release() {
	st.mu.Lock()
	hold := st.hold
	st.hold = nil
	st.mu.Unlock()
	if hold != nil {
		close(hold)
	}
}

// waitAttached blocks until every listener has resumed at least n
// times.
func (d *cellDriver) waitAttached(ctx context.Context, n int64) error {
	before := make([]int64, len(d.listeners))
	for j := range before {
		before[j] = n - 1
	}
	return d.waitReattached(ctx, before)
}

// waitReattached blocks until every listener's attach generation has
// advanced past its own baseline — per listener, because resumes are
// independent (a listener that weathered extra reconnects is ahead of
// its peers).
func (d *cellDriver) waitReattached(ctx context.Context, before []int64) error {
	deadline := time.Now().Add(attachTimeout)
	for {
		ready := true
		for j, st := range d.listeners {
			if st.attachGen.Load() <= before[j] {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("listeners did not all reattach within %v", attachTimeout)
		}
		if !sleepCtx(ctx, 5*time.Millisecond) {
			return ctx.Err()
		}
	}
}

// drain waits until every listener has accounted for every expected
// event (received + reported gap == total) or the drain timeout
// passes; the shortfall surfaces as CellResult.Unaccounted.
func (d *cellDriver) drain(ctx context.Context) {
	deadline := time.Now().Add(drainTimeout)
	for time.Now().Before(deadline) {
		done := true
		for _, st := range d.listeners {
			if st.received.Load()+st.gap.Load() < uint64(d.total) {
				done = false
				break
			}
		}
		if done {
			return
		}
		if !sleepCtx(ctx, 20*time.Millisecond) {
			return
		}
	}
}

// maxInt64 returns the largest element (0 for an empty slice).
func maxInt64(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// sleepCtx sleeps d or until ctx is done, reporting whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
