package scheme

import "fmt"

// FootprintModel predicts how many bytes of slice-store memory a
// scheme's subscription database occupies — the quantity the Fig. 8
// paging cliff is measured against. The planner (internal/deploy) uses
// it to size partition counts so every slice's working set stays under
// its EPC share, and the placement layer uses it to weight least-loaded
// shard selection by bytes rather than raw subscription counts.
//
// The model is linear in the subscription count and, where the scheme's
// encoding scales with the attribute universe (ASPE: vector
// dimensionality is 2·attrs+2), in the universe width:
//
//	footprint(subs, attrs) = Base + subs · (SubBytes + attrs · SubAttrBytes)
//
// The constants are measured from real stores — workload-generated
// subscriptions registered into freshly built slices — and pinned by
// TestFootprintModelMatchesStores, which re-measures and fails if the
// model drifts more than tolerance from the stores it claims to
// describe. `scbr-workload -scheme` reports the same cross-check for
// arbitrary workloads.
type FootprintModel struct {
	// BaseBytes is the empty store: arena bootstrap plus index pages
	// touched before the first entry.
	BaseBytes uint64
	// SubBytes is the per-subscription cost independent of the
	// attribute universe (record headers, predicate storage, index
	// growth).
	SubBytes uint64
	// SubAttrBytes is the additional per-subscription cost for each
	// attribute in the scheme's universe. Zero for schemes whose entry
	// size depends only on the subscription itself (sgx-plain stores
	// the predicates that arrive, not the universe).
	SubAttrBytes uint64
	// EntryOverheadBytes is the store cost of one entry beyond its
	// registration-encoding length — used when a live encoded length is
	// at hand and beats the model average (placement accounting).
	EntryOverheadBytes uint64
}

// Measured footprint constants for the built-in schemes. Derived from
// live stores over Table 1 workloads (see TestFootprintModelMatchesStores,
// which re-measures and pins these within tolerance): register
// workload-generated subscriptions into a freshly built slice, read the
// arena watermark back, and fit the linear model over two universe
// widths.
var (
	// PlainFootprint: the containment engine stores the predicates
	// that arrive, so the cost is per subscription and independent of
	// the universe width. Unpadded engine records measure ≈133 B per
	// e80a1 subscription (avg 80 B wire encoding + record/index
	// overhead); the paper's ≈437 B/subscription figure corresponds to
	// PadRecordTo≈400 deployments, which this model does not assume.
	PlainFootprint = FootprintModel{
		BaseBytes:          8192,
		SubBytes:           133,
		SubAttrBytes:       0,
		EntryOverheadBytes: 48,
	}
	// ASPEFootprint: every subscription stores ciphertext query
	// vectors of dimension 2·attrs+2 at 8 bytes per coordinate, so the
	// cost scales with the universe: measured ≈2.1 KB/subscription at
	// the base 11-attribute quote universe and ≈8.7 KB at ×4 — the
	// ~5×-earlier paging cliff of ROADMAP item 4. The store holds the
	// wire ciphertext essentially as-is, so the per-attribute slope
	// carries the whole cost (the fitted intercept is ≈0).
	ASPEFootprint = FootprintModel{
		BaseBytes:          16384,
		SubBytes:           0,
		SubAttrBytes:       196,
		EntryOverheadBytes: 128,
	}
)

// Zero reports whether the model is unset.
func (m FootprintModel) Zero() bool {
	return m == FootprintModel{}
}

// PerSubscription returns the modelled store bytes one subscription
// adds under a universe of the given width.
func (m FootprintModel) PerSubscription(attrs int) uint64 {
	if attrs < 0 {
		attrs = 0
	}
	return m.SubBytes + uint64(attrs)*m.SubAttrBytes
}

// Footprint returns the modelled store bytes of a subscription database
// of the given size under a universe of the given width.
func (m FootprintModel) Footprint(subs, attrs int) uint64 {
	if subs < 0 {
		subs = 0
	}
	return m.BaseBytes + uint64(subs)*m.PerSubscription(attrs)
}

// EntryBytes estimates the store bytes of one entry from its
// registration-encoding length. For encodings that carry the stored
// payload (ASPE ciphertext vectors travel as they are stored) this
// tracks the store more closely than the universe-width average.
func (m FootprintModel) EntryBytes(encLen int) uint64 {
	if encLen < 0 {
		encLen = 0
	}
	return m.EntryOverheadBytes + uint64(encLen)
}

// Footprint resolves a scheme and evaluates its footprint model.
func Footprint(name string, subs, attrs int) (uint64, error) {
	b, err := Lookup(name)
	if err != nil {
		return 0, err
	}
	if b.Footprint.Zero() {
		return 0, fmt.Errorf("scheme: %s has no footprint model", b.Name)
	}
	return b.Footprint.Footprint(subs, attrs), nil
}
