// Package scheme defines SCBR's pluggable matching-scheme abstraction:
// how subscriptions and publications are encoded outside the enclave,
// and how the router's partitioned slices store and match them inside
// it. The paper's headline result is a *comparison* of two such
// schemes — plaintext matching protected by SGX against ASPE-encrypted
// containment matching — and this package makes both first-class,
// wire-negotiated backends of the live data plane:
//
//   - "sgx-plain" (the default): subscriptions and headers travel as
//     SK-sealed plaintext encodings, are opened inside the enclave,
//     and are matched by the containment engine (internal/core). Full
//     expressiveness, federation-digest support.
//
//   - "aspe": the publisher encrypts subscriptions into sign-test
//     query vectors and publications into points under its secret
//     matrices (internal/aspe); the router stores and scans ciphertext
//     it can never open. No enclave trust needed for matching — and
//     orders of magnitude slower, the gap Figure 7 quantifies. No
//     prefix constraints, no strict bounds, no federation digests
//     (the router cannot evaluate §3.2 containment on ciphertext).
//
// A scheme has two halves. The publisher-side Codec holds the secrets
// and encodes; the router-side Slice (one per partition) stores and
// matches. The halves meet on the wire: the publisher announces its
// scheme ID and public parameters during attested provisioning, every
// registration/publication frame is tagged with the scheme ID, and
// routers reject mismatches with the broker's ErrSchemeMismatch.
package scheme

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// Built-in scheme IDs.
const (
	// Plain is the default scheme: plaintext matching inside the
	// enclave, blobs SK-sealed in transit (the paper's SCBR).
	Plain = "sgx-plain"
	// ASPE is the software-only encrypted baseline: asymmetric
	// scalar-product-preserving encryption (Wong et al.), matched on
	// ciphertext without enclave trust.
	ASPE = "aspe"
)

// Canonical maps a wire scheme tag to its canonical ID: the empty tag
// (a frame from a pre-scheme peer) means the default scheme.
func Canonical(name string) string {
	if name == "" {
		return Plain
	}
	return name
}

// Capabilities describe what a scheme's encodings can express and
// where its blobs may be evaluated. The broker consults them instead
// of switching on scheme names.
type Capabilities struct {
	// SealedExchange: registration and header blobs are SK-sealed on
	// the wire and must be opened inside the enclave before the slice
	// sees them. Schemes whose blobs are self-protecting ciphertext
	// (ASPE) clear it.
	SealedExchange bool
	// FederationDigests: the router can recover subscription specs and
	// fold them into §3.2 containment digests for federation. Schemes
	// that never reveal plaintext to the router cannot; federated
	// topologies reject such schemes at construction.
	FederationDigests bool
	// PrefixConstraints: the scheme can express string prefix
	// predicates (plain ASPE cannot — one of the expressiveness gaps
	// the paper holds against software-only schemes).
	PrefixConstraints bool
}

// SliceStats summarises one slice's store.
type SliceStats struct {
	Subscriptions int
	Bytes         uint64
}

// Slice is one partition's scheme-owned subscription store and
// matcher — the storage half the partitioned engine delegates to. The
// broker serialises entries per partition (under the partition lock
// and, where the deployment demands it, inside the slice's enclave);
// implementations need not be concurrency-safe.
type Slice interface {
	// Configure applies the scheme's wire-negotiated public parameters
	// (from provisioning, or from a sealed snapshot during restore).
	// Idempotent for identical parameters.
	Configure(params []byte) error
	// RegisterEncoded ingests one subscription in the scheme's
	// registration encoding and returns its slice-local ID.
	RegisterEncoded(enc []byte, clientRef uint32) (uint64, error)
	// RegisterEncodedAssigned re-ingests a subscription under a
	// previously issued ID — the state-restore path.
	RegisterEncodedAssigned(enc []byte, clientRef uint32, id uint64) error
	// Unregister removes a subscription by slice-local ID.
	Unregister(id uint64) error
	// MatchEncoded matches one publication header in the scheme's
	// encoding, appending to out.
	MatchEncoded(enc []byte, out []core.MatchResult) ([]core.MatchResult, error)
	// MatchEncodedBatch matches a batch of publication headers in one
	// store pass, appending encs[i]'s matches to out[i] (len(out) must
	// be at least len(encs)). An item that fails to decode or validate
	// contributes nothing to its slot — the same items the per-item
	// path drops with an error under the wire's fire-and-forget publish
	// semantics — so the appended results are exactly the per-item
	// MatchEncoded results, in the same per-item order. The error
	// return is reserved for whole-store failures (an unconfigured
	// store), where every per-item call would have failed identically.
	// Schemes whose scan has batch-amortisable setup (ASPE: point
	// norms, tolerance, prefilter, ciphertext reads) walk the database
	// once per batch rather than once per item.
	MatchEncodedBatch(encs [][]byte, out [][]core.MatchResult) error
	// Stats summarises the store.
	Stats() SliceStats
	// Accessor exposes the slice's metered memory (experiment and
	// observability meters).
	Accessor() simmem.Accessor
}

// Codec is the publisher-side half of a scheme: it holds whatever
// secrets the scheme needs and encodes subscriptions and publication
// headers into the scheme's wire form. Safe for concurrent use — the
// publisher encodes from concurrent client-serving goroutines.
type Codec interface {
	// Name returns the scheme ID stamped on wire frames.
	Name() string
	// Capabilities mirrors the backend's capability flags.
	Capabilities() Capabilities
	// Params returns the public parameter blob routers need to
	// configure their slices (nil when the scheme has none). Carried
	// inside the attested provisioning bundle.
	Params() ([]byte, error)
	// EncodeSubscription validates and encodes one subscription spec.
	EncodeSubscription(spec pubsub.SubscriptionSpec) ([]byte, error)
	// EncodeEvent encodes one publication header.
	EncodeEvent(spec pubsub.EventSpec) ([]byte, error)
}

// Options parameterise codec construction. Scheme-specific: the plain
// scheme ignores all of them.
type Options struct {
	// Attrs is the fixed attribute universe (ASPE: vector positions;
	// required, its dimensionality is 2·len(Attrs)+2).
	Attrs []string
	// Seed seeds the scheme's secret material deterministically; 0
	// draws fresh randomness.
	Seed int64
	// Scales fixes per-attribute normalisation divisors (ASPE: public
	// parameters balancing the sign-test tolerance across magnitudes).
	Scales map[string]float64
	// Calibration derives scales from sample events (largest observed
	// magnitude per numeric attribute), after Scales is applied.
	Calibration []pubsub.EventSpec
}

// Option adjusts codec construction.
type Option func(*Options)

// WithAttrs fixes the scheme's attribute universe.
func WithAttrs(names ...string) Option {
	return func(o *Options) { o.Attrs = append(o.Attrs, names...) }
}

// WithSeed seeds the scheme's secret material deterministically.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithScale fixes one attribute's normalisation divisor.
func WithScale(name string, scale float64) Option {
	return func(o *Options) {
		if o.Scales == nil {
			o.Scales = make(map[string]float64)
		}
		o.Scales[name] = scale
	}
}

// WithCalibration calibrates scales from sample events.
func WithCalibration(sample ...pubsub.EventSpec) Option {
	return func(o *Options) { o.Calibration = append(o.Calibration, sample...) }
}

// Resolve folds options onto their zero state.
func Resolve(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Backend is one registered matching scheme: capability flags plus the
// factories for its two halves.
type Backend struct {
	// Name is the scheme ID carried on the wire.
	Name string
	// Caps are the scheme's capability flags.
	Caps Capabilities
	// Footprint models the scheme's slice-store memory cost — measured
	// constants, pinned against real stores by the scheme's tests.
	Footprint FootprintModel
	// NewCodec builds the publisher-side half.
	NewCodec func(opts Options) (Codec, error)
	// NewSlice builds one partition's router-side store over the given
	// (typically enclave) memory. The schema is the router's shared
	// attribute intern table; opts carry engine tuning the scheme may
	// ignore.
	NewSlice func(acc simmem.Accessor, schema *pubsub.Schema, opts core.Options) (Slice, error)
}

// ErrUnknown reports a scheme ID no backend is registered for.
var ErrUnknown = errors.New("scheme: unknown matching scheme")

var (
	regMu    sync.RWMutex
	registry = make(map[string]*Backend)
)

// Register adds a backend to the registry. Registering a duplicate
// name is a programming error and panics (registration happens from
// package init).
func Register(b *Backend) {
	if b == nil || b.Name == "" || b.NewCodec == nil || b.NewSlice == nil {
		panic("scheme: incomplete backend registration")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("scheme: backend %q registered twice", b.Name))
	}
	registry[b.Name] = b
}

// Lookup resolves a scheme ID ("" means the default) to its backend.
func Lookup(name string) (*Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[Canonical(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return b, nil
}

// Names lists the registered scheme IDs, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewCodec resolves a scheme and builds its publisher-side codec.
func NewCodec(name string, opts ...Option) (Codec, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return b.NewCodec(Resolve(opts))
}
