package scheme

import (
	"testing"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

// measureStore registers n workload subscriptions into a freshly built
// slice and returns the store bytes after a warmup prefix and after all
// n, so callers can difference out the base cost.
func measureStore(t *testing.T, name string, spec workload.Spec, n, warm int) (warmBytes, fullBytes uint64, attrs int, avgEnc float64) {
	t.Helper()
	qs, err := workload.NewQuoteSet(1, 60, 40)
	if err != nil {
		t.Fatalf("quote set: %v", err)
	}
	gen, err := workload.NewGenerator(spec, qs, 7)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	universe := workload.QuoteAttrs(spec.AttrFactor)
	codec, err := NewCodec(name, WithAttrs(universe...), WithSeed(11))
	if err != nil {
		t.Fatalf("codec: %v", err)
	}
	b, err := Lookup(name)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	slice, err := b.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), core.Options{})
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	params, err := codec.Params()
	if err != nil {
		t.Fatalf("params: %v", err)
	}
	if err := slice.Configure(params); err != nil {
		t.Fatalf("configure: %v", err)
	}
	encTotal := 0
	for i, sub := range gen.Subscriptions(n) {
		enc, err := codec.EncodeSubscription(sub)
		if err != nil {
			t.Fatalf("encode sub %d: %v", i, err)
		}
		encTotal += len(enc)
		if _, err := slice.RegisterEncoded(enc, uint32(i)); err != nil {
			t.Fatalf("register sub %d: %v", i, err)
		}
		if i+1 == warm {
			warmBytes = slice.Stats().Bytes
		}
	}
	return warmBytes, slice.Stats().Bytes, len(universe), float64(encTotal) / float64(n)
}

// TestFootprintModelMatchesStores pins the measured footprint constants
// against the stores they model: the per-subscription cost predicted by
// each backend's FootprintModel must stay within tolerance of a live
// store populated with Table 1 workload subscriptions, at two universe
// widths. If a scheme's storage layout changes, this test fails and the
// constants in footprint.go must be re-derived (run with -v for the
// measured values).
func TestFootprintModelMatchesStores(t *testing.T) {
	const (
		n         = 2000
		warm      = 500
		tolerance = 0.25
	)
	specA1, err := workload.SpecByName("e80a1")
	if err != nil {
		t.Fatal(err)
	}
	specA4, err := workload.SpecByName("e80a4")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		scheme string
		model  FootprintModel
	}{
		{Plain, PlainFootprint},
		{ASPE, ASPEFootprint},
	} {
		for _, spec := range []workload.Spec{specA1, specA4} {
			warmBytes, fullBytes, attrs, avgEnc := measureStore(t, tc.scheme, spec, n, warm)
			measured := float64(fullBytes-warmBytes) / float64(n-warm)
			predicted := float64(tc.model.PerSubscription(attrs))
			t.Logf("%s/%s: universe=%d attrs, measured %.0f B/sub (store %d B @ %d subs, avg enc %.0f B), model %.0f B/sub",
				tc.scheme, spec.Name, attrs, measured, fullBytes, n, avgEnc, predicted)
			if measured <= 0 {
				t.Fatalf("%s/%s: degenerate measurement %f", tc.scheme, spec.Name, measured)
			}
			ratio := predicted / measured
			if ratio < 1-tolerance || ratio > 1+tolerance {
				t.Errorf("%s/%s: model %.0f B/sub vs measured %.0f B/sub (ratio %.2f outside ±%.0f%%) — re-derive the constants in footprint.go",
					tc.scheme, spec.Name, predicted, measured, ratio, tolerance*100)
			}
		}
	}
}

// TestFootprintModelShape covers the model arithmetic and the
// package-level resolver.
func TestFootprintModelShape(t *testing.T) {
	m := FootprintModel{BaseBytes: 100, SubBytes: 10, SubAttrBytes: 2, EntryOverheadBytes: 5}
	if got := m.Footprint(0, 11); got != 100 {
		t.Errorf("empty store: got %d, want 100", got)
	}
	if got := m.Footprint(3, 4); got != 100+3*(10+4*2) {
		t.Errorf("footprint: got %d", got)
	}
	if got := m.Footprint(-1, -1); got != 100 {
		t.Errorf("negative inputs: got %d, want 100", got)
	}
	if got := m.EntryBytes(20); got != 25 {
		t.Errorf("entry bytes: got %d, want 25", got)
	}
	if !(FootprintModel{}).Zero() || m.Zero() {
		t.Error("Zero() misreports")
	}
	if _, err := Footprint("no-such-scheme", 1, 1); err == nil {
		t.Error("unknown scheme: want error")
	}
	got, err := Footprint(Plain, 1000, 11)
	if err != nil {
		t.Fatalf("plain footprint: %v", err)
	}
	if want := PlainFootprint.Footprint(1000, 11); got != want {
		t.Errorf("resolver: got %d, want %d", got, want)
	}
}
