package scheme

import (
	"math/rand"
	"testing"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// buildSlice constructs a configured codec/slice pair for one backend.
func buildSlice(t *testing.T, name string, opts ...Option) (Codec, Slice) {
	t.Helper()
	backend, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := backend.NewCodec(Resolve(opts))
	if err != nil {
		t.Fatal(err)
	}
	slice, err := backend.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params, err := codec.Params()
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.Configure(params); err != nil {
		t.Fatal(err)
	}
	return codec, slice
}

// matchBatchEquivalence is the batch-matching correctness property:
// MatchEncodedBatch appends, for every item, exactly what a per-item
// MatchEncoded call appends — same IDs, same order — with per-item
// decode failures contributing nothing, and it respects pre-existing
// content in the result rows.
func matchBatchEquivalence(t *testing.T, name string, opts ...Option) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	codec, slice := buildSlice(t, name, opts...)

	symbols := []string{"HAL", "IBM", "APL"}
	for i := 0; i < 40; i++ {
		var preds []pubsub.Predicate
		if rng.Intn(3) > 0 { // a third of the population has no equality → no Bloom prefilter entry
			preds = append(preds, pubsub.Predicate{Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str(symbols[rng.Intn(len(symbols))])})
		}
		op := pubsub.OpLt
		if rng.Intn(2) == 0 {
			op = pubsub.OpGt
		}
		preds = append(preds, pubsub.Predicate{Attr: "price", Op: op, Value: pubsub.Float(float64(rng.Intn(90)))})
		enc, err := codec.EncodeSubscription(pubsub.SubscriptionSpec{Predicates: preds})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := slice.RegisterEncoded(enc, uint32(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	var encs [][]byte
	for i := 0; i < 25; i++ {
		ev := pubsub.EventSpec{Attrs: []pubsub.NamedValue{
			{Name: "symbol", Value: pubsub.Str(symbols[rng.Intn(len(symbols))])},
			{Name: "price", Value: pubsub.Float(float64(rng.Intn(100)))},
		}}
		blob, err := codec.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, blob)
	}
	// Undecodable items must contribute nothing, exactly as the
	// per-item calls error out and the caller drops them.
	encs = append(encs, []byte{}, []byte("garbage"), nil)

	want := make([][]core.MatchResult, len(encs))
	for i, enc := range encs {
		res, err := slice.MatchEncoded(enc, nil)
		if err != nil {
			res = nil
		}
		want[i] = res
	}

	// Rows carry pre-existing sentinel content the batch must append
	// after, mirroring the hub's append contract.
	sentinel := core.MatchResult{SubID: 999999, ClientRef: 77}
	out := make([][]core.MatchResult, len(encs))
	for i := range out {
		out[i] = []core.MatchResult{sentinel}
	}
	if err := slice.MatchEncodedBatch(encs, out); err != nil {
		t.Fatalf("MatchEncodedBatch: %v", err)
	}
	for i := range encs {
		if len(out[i]) == 0 || out[i][0] != sentinel {
			t.Fatalf("item %d: batch overwrote pre-existing row content: %v", i, out[i])
		}
		got := out[i][1:]
		if len(got) != len(want[i]) {
			t.Fatalf("item %d: batch matched %d, per-item matched %d (%v vs %v)", i, len(got), len(want[i]), got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("item %d result %d: batch %v, per-item %v", i, j, got[j], want[i][j])
			}
		}
	}
}

func TestPlainMatchBatchEquivalence(t *testing.T) { matchBatchEquivalence(t, Plain) }

func TestASPEMatchBatchEquivalence(t *testing.T) {
	matchBatchEquivalence(t, ASPE, WithAttrs("symbol", "price"), WithSeed(13), WithScale("price", 100))
}

// TestMatchBatchErrors pins the whole-store failure contract: the
// batch call errors (rather than silently matching nothing) exactly
// when every per-item call would fail identically.
func TestMatchBatchErrors(t *testing.T) {
	codec, slice := buildSlice(t, ASPE, WithAttrs("symbol", "price"), WithSeed(13))
	blob, err := codec.EncodeEvent(pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "price", Value: pubsub.Float(10)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Result slots shorter than the batch.
	if err := slice.MatchEncodedBatch([][]byte{blob, blob}, make([][]core.MatchResult, 1)); err == nil {
		t.Fatal("short result slots accepted")
	}
	// An unconfigured store fails the whole batch.
	backend, err := Lookup(ASPE)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := backend.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.MatchEncodedBatch([][]byte{blob}, make([][]core.MatchResult, 1)); err == nil {
		t.Fatal("unconfigured store matched a batch")
	}
}
