package scheme

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"scbr/internal/aspe"
	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// The aspe scheme: the paper's software-only encrypted baseline on the
// live data plane. The publisher holds the secret matrices and encodes
// subscriptions as sign-test query vectors and publications as
// encrypted points; the router stores and scans ciphertext it cannot
// open, so matching needs no enclave trust — at the matching cost
// Figure 7 quantifies. The only wire-negotiated public parameter is
// the vector dimensionality (2·d+2 for a d-attribute universe).

func init() {
	Register(&Backend{
		Name:      ASPE,
		Caps:      aspeCaps,
		Footprint: ASPEFootprint,
		NewCodec: func(opts Options) (Codec, error) {
			return newASPECodec(opts)
		},
		NewSlice: func(acc simmem.Accessor, _ *pubsub.Schema, _ core.Options) (Slice, error) {
			// The slice keeps its own value domain: ASPE blobs reference
			// vector positions, never the router's schema. Engine tuning
			// (padding, sharding) has no counterpart here.
			return &aspeSlice{store: aspe.NewStore(acc, aspe.Options{Prefilter: true})}, nil
		},
	})
}

var aspeCaps = Capabilities{
	SealedExchange:    false,
	FederationDigests: false,
	PrefixConstraints: false,
}

// aspeParams is the public parameter blob carried in the provisioning
// bundle: everything a router-side store needs. KeyID fingerprints the
// codec's secret matrices, attribute layout, and scales — a store
// holding vectors refuses re-provisioning under a different KeyID even
// at the same dimension, because the stored ciphertexts would be
// noise against the new scheme's points.
type aspeParams struct {
	Dim   int    `json:"dim"`
	KeyID string `json:"key_id"`
}

// aspeCodec is the publisher-side half: the scheme with its secret
// matrices plus a private schema fixing attribute vector positions.
// The mutex guards the scheme's internal RNG (blinding components and
// per-vector scales draw from it on every encode).
type aspeCodec struct {
	mu     sync.Mutex
	sch    *aspe.Scheme
	schema *pubsub.Schema
}

func newASPECodec(opts Options) (*aspeCodec, error) {
	if len(opts.Attrs) == 0 {
		return nil, fmt.Errorf("scheme: %s needs a fixed attribute universe (WithAttrs)", ASPE)
	}
	schema := pubsub.NewSchema()
	ids := make([]pubsub.AttrID, 0, len(opts.Attrs))
	seen := make(map[pubsub.AttrID]bool, len(opts.Attrs))
	for _, name := range opts.Attrs {
		id, err := schema.Intern(name)
		if err != nil {
			return nil, err
		}
		if seen[id] {
			return nil, fmt.Errorf("scheme: duplicate attribute %q in %s universe", name, ASPE)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	seed := opts.Seed
	if seed == 0 {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, fmt.Errorf("scheme: seeding %s matrices: %w", ASPE, err)
		}
		seed = int64(binary.LittleEndian.Uint64(raw[:]))
	}
	sch, err := aspe.NewScheme(schema, ids, seed)
	if err != nil {
		return nil, err
	}
	for name, scale := range opts.Scales {
		id, ok := schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("scheme: scale for %q outside the %s universe", name, ASPE)
		}
		if err := sch.SetScale(id, scale); err != nil {
			return nil, err
		}
	}
	if len(opts.Calibration) > 0 {
		sample := make([]*pubsub.Event, 0, len(opts.Calibration))
		for _, spec := range opts.Calibration {
			ev, err := spec.Intern(schema)
			if err != nil {
				return nil, fmt.Errorf("scheme: calibration event: %w", err)
			}
			sample = append(sample, ev)
		}
		if err := sch.CalibrateScales(sample); err != nil {
			return nil, err
		}
	}
	return &aspeCodec{sch: sch, schema: schema}, nil
}

func (c *aspeCodec) Name() string { return ASPE }

func (c *aspeCodec) Capabilities() Capabilities { return aspeCaps }

func (c *aspeCodec) Params() ([]byte, error) {
	return json.Marshal(aspeParams{Dim: c.sch.Dim(), KeyID: c.sch.KeyID()})
}

func (c *aspeCodec) EncodeSubscription(spec pubsub.SubscriptionSpec) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub, err := pubsub.Normalize(c.schema, spec)
	if err != nil {
		return nil, err
	}
	es, err := c.sch.EncodeSubscription(sub)
	if err != nil {
		return nil, err
	}
	return aspe.AppendSubscription(nil, es)
}

func (c *aspeCodec) EncodeEvent(spec pubsub.EventSpec) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev, err := spec.Intern(c.schema)
	if err != nil {
		return nil, err
	}
	ep, err := c.sch.EncodePublication(ev)
	if err != nil {
		return nil, err
	}
	return aspe.AppendPublication(nil, ep)
}

// aspeSlice adapts the router-side ASPE store to the Slice interface.
// The broker serialises all entries per partition, so the scratch
// buffers and keyID need no locking.
type aspeSlice struct {
	store   *aspe.Store
	keyID   string
	scratch []aspe.Match

	// Batch scratch, reused across MatchEncodedBatch calls: decoded
	// publications (their point storage is recycled), the nil-able view
	// handed to the store, and per-item match slots.
	eps      []*aspe.EncodedPublication
	epView   []*aspe.EncodedPublication
	batchOut [][]aspe.Match
}

func (s *aspeSlice) Configure(params []byte) error {
	var p aspeParams
	if err := json.Unmarshal(params, &p); err != nil {
		return fmt.Errorf("scheme: decoding %s parameters: %w", ASPE, err)
	}
	if s.store.Len() > 0 && p.KeyID != s.keyID {
		// Same failure class as a dimension change: every stored vector
		// was encrypted under the old matrices and would sign-test as
		// noise against points encrypted under the new ones.
		return fmt.Errorf("scheme: cannot re-key a store holding %d subscriptions (key %.8s → %.8s)",
			s.store.Len(), s.keyID, p.KeyID)
	}
	if err := s.store.Configure(p.Dim); err != nil {
		return err
	}
	s.keyID = p.KeyID
	return nil
}

func (s *aspeSlice) RegisterEncoded(enc []byte, clientRef uint32) (uint64, error) {
	es, err := aspe.DecodeSubscription(enc)
	if err != nil {
		return 0, err
	}
	return s.store.Register(es, clientRef)
}

func (s *aspeSlice) RegisterEncodedAssigned(enc []byte, clientRef uint32, id uint64) error {
	es, err := aspe.DecodeSubscription(enc)
	if err != nil {
		return err
	}
	return s.store.RegisterAssigned(es, clientRef, id)
}

func (s *aspeSlice) Unregister(id uint64) error { return s.store.Unregister(id) }

func (s *aspeSlice) MatchEncoded(enc []byte, out []core.MatchResult) ([]core.MatchResult, error) {
	ep, err := aspe.DecodePublication(enc)
	if err != nil {
		return nil, err
	}
	res, err := s.store.MatchEncoded(ep, s.scratch[:0])
	if err != nil {
		return nil, err
	}
	s.scratch = res
	for _, r := range res {
		out = append(out, core.MatchResult{SubID: r.SubID, ClientRef: r.ClientRef})
	}
	return out, nil
}

// MatchEncodedBatch decodes the whole batch into reused scratch and
// hands it to the store's single-walk batch scan, which amortises
// point norms, prefilter setup, and ciphertext-vector reads across
// the items.
func (s *aspeSlice) MatchEncodedBatch(encs [][]byte, out [][]core.MatchResult) error {
	if len(out) < len(encs) {
		return fmt.Errorf("scheme: %s batch result slots %d < items %d", ASPE, len(out), len(encs))
	}
	for len(s.eps) < len(encs) {
		s.eps = append(s.eps, new(aspe.EncodedPublication))
	}
	if cap(s.epView) < len(encs) {
		s.epView = make([]*aspe.EncodedPublication, len(encs))
	}
	view := s.epView[:len(encs)]
	for i, enc := range encs {
		if err := aspe.DecodePublicationInto(enc, s.eps[i]); err != nil {
			view[i] = nil // dropped, like the per-item decode error
			continue
		}
		view[i] = s.eps[i]
	}
	if cap(s.batchOut) < len(encs) {
		grown := make([][]aspe.Match, len(encs))
		copy(grown, s.batchOut[:cap(s.batchOut)])
		s.batchOut = grown
	}
	slots := s.batchOut[:len(encs)]
	for i := range slots {
		slots[i] = slots[i][:0]
	}
	if err := s.store.MatchEncodedBatch(view, slots); err != nil {
		return err
	}
	for i := range slots {
		for _, r := range slots[i] {
			out[i] = append(out[i], core.MatchResult{SubID: r.SubID, ClientRef: r.ClientRef})
		}
	}
	return nil
}

func (s *aspeSlice) Stats() SliceStats {
	return SliceStats{Subscriptions: s.store.Len(), Bytes: s.store.Bytes()}
}

func (s *aspeSlice) Accessor() simmem.Accessor { return s.store.Accessor() }
