package scheme

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// The sgx-plain scheme: today's SCBR path. Subscriptions and headers
// travel as the compact plaintext encodings of internal/pubsub, sealed
// under SK by the broker (SealedExchange); the router opens them
// inside the enclave and matches with the containment engine.

func init() {
	Register(&Backend{
		Name: Plain,
		Caps: Capabilities{
			SealedExchange:    true,
			FederationDigests: true,
			PrefixConstraints: true,
		},
		Footprint: PlainFootprint,
		NewCodec:  func(Options) (Codec, error) { return plainCodec{}, nil },
		NewSlice: func(acc simmem.Accessor, schema *pubsub.Schema, opts core.Options) (Slice, error) {
			engine, err := core.NewEngine(acc, schema, opts)
			if err != nil {
				return nil, err
			}
			return NewPlainSlice(engine, schema), nil
		},
	})
}

// plainCodec validates and encodes with the pubsub wire codecs; the
// broker layers SK sealing on top (the scheme's SealedExchange flag).
type plainCodec struct{}

func (plainCodec) Name() string { return Plain }

func (plainCodec) Capabilities() Capabilities {
	return Capabilities{SealedExchange: true, FederationDigests: true, PrefixConstraints: true}
}

func (plainCodec) Params() ([]byte, error) { return nil, nil }

func (plainCodec) EncodeSubscription(spec pubsub.SubscriptionSpec) ([]byte, error) {
	// Validate before encoding: the publisher must not relay junk to
	// the enclave. Normalisation against a throwaway schema exercises
	// the full predicate validation path.
	if _, err := pubsub.Normalize(pubsub.NewSchema(), spec); err != nil {
		return nil, err
	}
	return pubsub.EncodeSubscriptionSpec(spec)
}

func (plainCodec) EncodeEvent(spec pubsub.EventSpec) ([]byte, error) {
	return pubsub.EncodeEventSpec(spec)
}

// PlainSlice adapts one containment engine to the Slice interface —
// the sgx-plain backend's store, and the adapter any engine-backed hub
// uses for the scheme-agnostic surface.
type PlainSlice struct {
	engine *core.Engine
	schema *pubsub.Schema
	// evs is MatchEncodedBatch's decode scratch (the broker serialises
	// slice entries per partition, like aspeSlice's scratch).
	evs []*pubsub.Event
}

// NewPlainSlice wraps an existing engine (sharing the hub schema).
func NewPlainSlice(engine *core.Engine, schema *pubsub.Schema) *PlainSlice {
	return &PlainSlice{engine: engine, schema: schema}
}

// Engine exposes the wrapped containment engine (observability and the
// experiment harness read its stats and shape).
func (s *PlainSlice) Engine() *core.Engine { return s.engine }

// Configure accepts only the plain scheme's empty parameter blob.
func (s *PlainSlice) Configure(params []byte) error {
	if len(params) != 0 {
		return fmt.Errorf("scheme: %s expects no parameters, got %d bytes", Plain, len(params))
	}
	return nil
}

func (s *PlainSlice) decode(enc []byte) (*pubsub.Subscription, error) {
	spec, err := pubsub.DecodeSubscriptionSpec(enc)
	if err != nil {
		return nil, fmt.Errorf("decoding subscription: %w", err)
	}
	return pubsub.Normalize(s.schema, spec)
}

func (s *PlainSlice) RegisterEncoded(enc []byte, clientRef uint32) (uint64, error) {
	sub, err := s.decode(enc)
	if err != nil {
		return 0, err
	}
	return s.engine.RegisterNormalized(sub, clientRef)
}

func (s *PlainSlice) RegisterEncodedAssigned(enc []byte, clientRef uint32, id uint64) error {
	sub, err := s.decode(enc)
	if err != nil {
		return err
	}
	return s.engine.RegisterAssigned(sub, clientRef, id)
}

func (s *PlainSlice) Unregister(id uint64) error { return s.engine.Unregister(id) }

func (s *PlainSlice) MatchEncoded(enc []byte, out []core.MatchResult) ([]core.MatchResult, error) {
	spec, err := pubsub.DecodeEventSpec(enc)
	if err != nil {
		return nil, fmt.Errorf("decoding header: %w", err)
	}
	ev, err := spec.Intern(s.schema)
	if err != nil {
		return nil, err
	}
	return s.engine.MatchAppend(ev, out)
}

// MatchEncodedBatch decodes and interns the whole batch, then crosses
// into the engine once: one lock acquisition covers every item, the
// sgx-plain counterpart of the ASPE store's single database walk.
func (s *PlainSlice) MatchEncodedBatch(encs [][]byte, out [][]core.MatchResult) error {
	s.evs = s.evs[:0]
	for _, enc := range encs {
		spec, err := pubsub.DecodeEventSpec(enc)
		if err != nil {
			s.evs = append(s.evs, nil) // dropped, like the per-item error
			continue
		}
		ev, err := spec.Intern(s.schema)
		if err != nil {
			s.evs = append(s.evs, nil)
			continue
		}
		s.evs = append(s.evs, ev)
	}
	return s.engine.MatchAppendBatch(s.evs, out)
}

func (s *PlainSlice) Stats() SliceStats {
	st := s.engine.Stats()
	return SliceStats{Subscriptions: st.Subscriptions, Bytes: st.Bytes}
}

func (s *PlainSlice) Accessor() simmem.Accessor { return s.engine.Accessor() }
