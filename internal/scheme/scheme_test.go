package scheme

import (
	"errors"
	"testing"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	want := map[string]bool{Plain: false, ASPE: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("builtin scheme %q not registered (have %v)", n, names)
		}
	}
	if _, err := Lookup("no-such-scheme"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown lookup err = %v", err)
	}
	// The empty name canonicalises to the default.
	b, err := Lookup("")
	if err != nil || b.Name != Plain {
		t.Fatalf("Lookup(\"\") = %v, %v", b, err)
	}
	if Canonical("") != Plain || Canonical(ASPE) != ASPE {
		t.Fatal("Canonical misbehaves")
	}
}

func TestCapabilities(t *testing.T) {
	plain, err := Lookup(Plain)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Caps.SealedExchange || !plain.Caps.FederationDigests || !plain.Caps.PrefixConstraints {
		t.Fatalf("plain caps = %+v", plain.Caps)
	}
	aspe, err := Lookup(ASPE)
	if err != nil {
		t.Fatal(err)
	}
	if aspe.Caps.SealedExchange || aspe.Caps.FederationDigests || aspe.Caps.PrefixConstraints {
		t.Fatalf("aspe caps = %+v", aspe.Caps)
	}
}

func subSpec(limit float64) pubsub.SubscriptionSpec {
	return pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str("HAL")},
		{Attr: "price", Op: pubsub.OpLt, Value: pubsub.Float(limit)},
	}}
}

func event(price float64) pubsub.EventSpec {
	return pubsub.EventSpec{Attrs: []pubsub.NamedValue{
		{Name: "symbol", Value: pubsub.Str("HAL")},
		{Name: "price", Value: pubsub.Float(price)},
	}}
}

// roundTrip drives one codec/slice pair through register → match →
// unregister, asserting the match outcomes.
func roundTrip(t *testing.T, name string, opts ...Option) {
	t.Helper()
	backend, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := backend.NewCodec(Resolve(opts))
	if err != nil {
		t.Fatal(err)
	}
	if codec.Name() != backend.Name {
		t.Fatalf("codec name %q, backend %q", codec.Name(), backend.Name)
	}
	slice, err := backend.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params, err := codec.Params()
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.Configure(params); err != nil {
		t.Fatal(err)
	}
	enc, err := codec.EncodeSubscription(subSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	id, err := slice.RegisterEncoded(enc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st := slice.Stats(); st.Subscriptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	match := func(price float64) []core.MatchResult {
		blob, err := codec.EncodeEvent(event(price))
		if err != nil {
			t.Fatal(err)
		}
		out, err := slice.MatchEncoded(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := match(42); len(got) != 1 || got[0].SubID != id || got[0].ClientRef != 7 {
		t.Fatalf("matching event → %v, want [{%d 7}]", got, id)
	}
	if got := match(60); len(got) != 0 {
		t.Fatalf("non-matching event → %v", got)
	}
	if err := slice.Unregister(id); err != nil {
		t.Fatal(err)
	}
	if got := match(42); len(got) != 0 {
		t.Fatalf("match after unregister → %v", got)
	}
	// Restore path: the same encoding replays under its original ID.
	if err := slice.RegisterEncodedAssigned(enc, 7, id); err != nil {
		t.Fatal(err)
	}
	if got := match(42); len(got) != 1 || got[0].SubID != id {
		t.Fatalf("match after assigned re-register → %v", got)
	}
}

func TestPlainRoundTrip(t *testing.T) { roundTrip(t, Plain) }

func TestASPERoundTrip(t *testing.T) {
	roundTrip(t, ASPE, WithAttrs("symbol", "price"), WithSeed(3), WithScale("price", 100))
}

func TestASPECodecRequiresUniverse(t *testing.T) {
	if _, err := NewCodec(ASPE); err == nil {
		t.Fatal("aspe codec constructed without an attribute universe")
	}
	if _, err := NewCodec(ASPE, WithAttrs("a", "a")); err == nil {
		t.Fatal("aspe codec accepted a duplicate universe")
	}
}

func TestASPEExpressivenessGaps(t *testing.T) {
	codec, err := NewCodec(ASPE, WithAttrs("symbol", "price"), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Prefix constraints are not expressible (the capability flag's
	// enforcement at encode time).
	_, err = codec.EncodeSubscription(pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "symbol", Op: pubsub.OpPrefix, Value: pubsub.Str("HA")},
	}})
	if err == nil {
		t.Fatal("aspe encoded a prefix constraint")
	}
	// Attributes outside the fixed universe are rejected.
	_, err = codec.EncodeSubscription(pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "volume", Op: pubsub.OpGt, Value: pubsub.Int(10)},
	}})
	if err == nil {
		t.Fatal("aspe encoded an out-of-universe attribute")
	}
}

func TestASPESliceReconfigure(t *testing.T) {
	backend, err := Lookup(ASPE)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := backend.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec, err := NewCodec(ASPE, WithAttrs("symbol", "price"), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	params, err := codec.Params()
	if err != nil {
		t.Fatal(err)
	}
	// Unconfigured slices reject traffic.
	enc, err := codec.EncodeSubscription(subSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slice.RegisterEncoded(enc, 1); err == nil {
		t.Fatal("unconfigured slice accepted a registration")
	}
	if err := slice.Configure(params); err != nil {
		t.Fatal(err)
	}
	if err := slice.Configure(params); err != nil {
		t.Fatalf("idempotent re-configure failed: %v", err)
	}
	if _, err := slice.RegisterEncoded(enc, 1); err != nil {
		t.Fatal(err)
	}
	// Re-dimensioning a populated store must fail: its stored vectors
	// would be garbage under the new universe.
	other, err := NewCodec(ASPE, WithAttrs("a", "b", "c"), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	otherParams, err := other.Params()
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.Configure(otherParams); err == nil {
		t.Fatal("populated slice accepted a different dimensionality")
	}
	// Re-keying at the *same* dimensionality must fail too: a publisher
	// restart with fresh matrices would turn every stored vector into
	// noise while the dimension check alone stays silent.
	rekeyed, err := NewCodec(ASPE, WithAttrs("symbol", "price"), WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	rekeyedParams, err := rekeyed.Params()
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.Configure(rekeyedParams); err == nil {
		t.Fatal("populated slice accepted re-provisioning under different matrices")
	}
}
