package hdrhist

import (
	"math/rand"
	"sync"
	"testing"
)

// Bucketing must be monotone and bounded-error: a value's bucket
// midpoint is within ~3% of the value itself.
func TestBucketResolution(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1_000, 12_345, 1_000_000, 3_141_592_653, 1 << 40} {
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		diff := mid - v
		if diff < 0 {
			diff = -diff
		}
		// Bucket width at v is at most v/16 (half-octave linear steps),
		// so midpoint error is bounded by v/16 + 1.
		if bound := v/16 + 1; diff > bound {
			t.Errorf("value %d: bucket mid %d off by %d (> %d)", v, mid, diff, bound)
		}
	}
	prev := -1
	for v := int64(0); v < 10_000; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestQuantiles(t *testing.T) {
	h := New()
	for i := int64(1); i <= 10_000; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	if s.N != 10_000 {
		t.Fatalf("count = %d, want 10000", s.N)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 5_000}, {0.95, 9_500}, {0.99, 9_900}, {0, 1}, {1, 10_000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if bound := c.want/16 + 1; diff > bound {
			t.Errorf("q%.2f = %d, want %d ± %d", c.q, got, c.want, bound)
		}
	}
	if s.Min != 1 || s.Max != 10_000 {
		t.Errorf("min/max = %d/%d, want 1/10000", s.Min, s.Max)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	rng := rand.New(rand.NewSource(7))
	all := New()
	for i := 0; i < 20_000; i++ {
		v := int64(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := all.Snapshot()
	if merged.N != want.N || merged.Min != want.Min || merged.Max != want.Max {
		t.Fatalf("merged N/min/max = %d/%d/%d, want %d/%d/%d",
			merged.N, merged.Min, merged.Max, want.N, want.Min, want.Max)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%.2f: merged %d != combined %d", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const per = 10_000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1_000_000)) + 1)
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.N != 4*per {
		t.Fatalf("count = %d, want %d", s.N, 4*per)
	}
	if s.Min < 1 || s.Max >= 1_000_001+1_000_001/16 {
		t.Fatalf("min/max out of range: %d/%d", s.Min, s.Max)
	}
}

func TestEmpty(t *testing.T) {
	s := New().Snapshot()
	if s.N != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	s.Merge(nil) // must not panic
}
