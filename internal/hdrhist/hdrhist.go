// Package hdrhist is a fixed-footprint log-linear histogram for
// latency measurements, in the spirit of HdrHistogram: values are
// bucketed by a power-of-two octave subdivided into linear
// sub-buckets, so relative error is bounded (≈3% at 32 sub-buckets
// per octave) across the full nanosecond-to-hours range while the
// whole histogram stays a couple of kilobytes of atomics. Recording
// is lock-free and safe from any number of goroutines; reading takes
// a consistent-enough snapshot for percentile extraction (quantiles
// over concurrently recorded data are inherently approximate).
//
// Both the broker's delivery layer (enqueue→write per client) and
// the load harness (publish→delivery end to end) record into this
// package, so the percentiles they report are directly comparable.
package hdrhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBucketBits fixes the linear resolution inside each power-of-two
// octave: 1<<subBucketBits sub-buckets, so bucket width is value/32 —
// ≈3% worst-case relative error, plenty for p50/p95/p99 reporting.
const subBucketBits = 5

const subBucketCount = 1 << subBucketBits

// maxOctaves covers the full int64 nanosecond range (≈292 years).
const maxOctaves = 64 - subBucketBits

const numBuckets = (maxOctaves + 1) * subBucketCount

// Hist is a concurrent histogram over non-negative int64 values
// (by convention, nanoseconds). The zero value is NOT ready; use New.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so zero means "unset"
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// bucketIndex maps a value onto its log-linear bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBucketCount {
		return int(v)
	}
	// Shift so the mantissa lands in [subBucketCount/2, subBucketCount).
	e := bits.Len64(uint64(v)) - subBucketBits
	return e*subBucketCount + int(v>>uint(e))
}

// bucketMid returns a representative value (the bucket midpoint) for
// quantile reconstruction.
func bucketMid(idx int) int64 {
	e := idx / subBucketCount
	m := int64(idx % subBucketCount)
	if e == 0 {
		return m
	}
	lo := m << uint(e)
	hi := (m+1)<<uint(e) - 1
	return lo + (hi-lo)/2
}

// Record adds one value. Negative values clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && -cur <= v) || h.min.CompareAndSwap(cur, -v-1) {
			break
		}
	}
}

// RecordDuration adds one duration in nanoseconds.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot is a point-in-time copy of a histogram, safe to read and
// merge without synchronisation.
type Snapshot struct {
	Counts []uint64 // sparse-ish dense copy, indexed like the live buckets
	N      uint64
	Sum    int64
	Min    int64
	Max    int64
}

// Snapshot copies the histogram's current contents.
func (h *Hist) Snapshot() *Snapshot {
	s := &Snapshot{Counts: make([]uint64, numBuckets)}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Counts[i] = c
			s.N += c
			s.Sum += int64(c) * bucketMid(i)
		}
	}
	if s.N > 0 {
		s.Min = h.Min()
		s.Max = h.max.Load()
	}
	return s
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Hist) Min() int64 {
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return -m - 1
}

// Merge adds other's counts into s.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil || other.N == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Counts = make([]uint64, numBuckets)
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	if s.N == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.N += other.N
	s.Sum += other.Sum
}

// Quantile returns the value at quantile q ∈ [0, 1] (0.5 = median),
// reconstructed from bucket midpoints. Returns 0 for an empty
// snapshot; q outside [0,1] clamps.
func (s *Snapshot) Quantile(q float64) int64 {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(s.N-1)) + 1
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < s.Min {
				v = s.Min
			}
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the approximate mean of recorded values.
func (s *Snapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}
