package federation

import (
	"errors"
	"testing"
	"time"

	"scbr/internal/attest"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

func mustSpec(t *testing.T, s string) pubsub.SubscriptionSpec {
	t.Helper()
	spec, err := pubsub.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func mustEvent(t *testing.T, schema *pubsub.Schema, attrs map[string]pubsub.Value) *pubsub.Event {
	t.Helper()
	ev, err := pubsub.NewEvent(schema, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestCanonicalizeCollapsesEquivalentSpecs: predicate order and
// redundant range splits must not change the canonical form, or
// refcounting and cross-router set diffs would fracture.
func TestCanonicalizeCollapsesEquivalentSpecs(t *testing.T) {
	schema := pubsub.NewSchema()
	a := mustSpec(t, `symbol = "HAL", price < 50`)
	b := pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "price", Op: pubsub.OpLt, Value: pubsub.Float(50)},
		{Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str("HAL")},
	}}
	ka, _, err := canonicalize(schema, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, _, err := canonicalize(schema, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equivalent specs canonicalised differently:\n%q\n%q", ka, kb)
	}
	c := mustSpec(t, `symbol = "IBM", price < 50`)
	kc, _, err := canonicalize(schema, c)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kc {
		t.Fatal("different specs share a canonical form")
	}
}

// TestMaximalCompaction: the announced digest keeps only ⊒-maximal
// subscriptions — a covered subscription adds no forwarding
// information.
func TestMaximalCompaction(t *testing.T) {
	schema := pubsub.NewSchema()
	pool := make(map[string]*entry)
	add := func(s string) string {
		k, e, err := canonicalize(schema, mustSpec(t, s))
		if err != nil {
			t.Fatal(err)
		}
		pool[k] = e
		return k
	}
	wide := add(`price < 100`)
	add(`price < 50`)                 // covered by wide
	add(`symbol = "HAL", price < 80`) // covered by wide
	other := add(`symbol = "IBM"`)    // incomparable

	out := maximal(pool)
	if len(out) != 2 {
		t.Fatalf("maximal kept %d entries, want 2", len(out))
	}
	if _, ok := out[wide]; !ok {
		t.Fatal("maximal dropped the covering subscription")
	}
	if _, ok := out[other]; !ok {
		t.Fatal("maximal dropped an incomparable subscription")
	}

	// Equal entries: exactly one survives.
	dup := make(map[string]*entry)
	k1, e1, _ := canonicalize(schema, mustSpec(t, `price < 10`))
	dup[k1] = e1
	k2, e2, _ := canonicalize(schema, pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
		{Attr: "price", Op: pubsub.OpLt, Value: pubsub.Float(10)},
	}})
	dup[k2] = e2
	if len(maximal(dup)) != 1 {
		t.Fatalf("equal entries should compact to one, got %d", len(maximal(dup)))
	}
}

func TestDedupWindow(t *testing.T) {
	d := newDedup()
	if fresh, _ := d.observe("a", 1, 5); !fresh {
		t.Fatal("first sighting reported as duplicate")
	}
	if fresh, improved := d.observe("a", 1, 5); fresh || improved {
		t.Fatal("equal-budget replay reported as fresh or improved")
	}
	// A duplicate with more hop budget is improved (re-forward, never
	// re-deliver); a later copy with less is fully suppressed.
	if fresh, improved := d.observe("a", 1, 7); fresh || !improved {
		t.Fatal("higher-budget duplicate not reported as improved")
	}
	if fresh, improved := d.observe("a", 1, 6); fresh || improved {
		t.Fatal("lower-budget duplicate accepted after a better copy")
	}
	if fresh, _ := d.observe("b", 1, 5); !fresh {
		t.Fatal("origins must be independent")
	}
	if fresh, _ := d.observe("a", 2, 5); !fresh {
		t.Fatal("per-origin sequence tracking broken")
	}
	// Far below the window: treated as seen and spent, whatever the
	// budget.
	if fresh, _ := d.observe("a", dedupWindow+100, 5); !fresh {
		t.Fatal("fresh high sequence rejected")
	}
	if fresh, improved := d.observe("a", 50, 99); fresh || improved {
		t.Fatal("sequence far below the window accepted")
	}
}

// handshakeRig builds two simulated platforms sharing one measured
// image and a verification service that vouches for both.
type handshakeRig struct {
	svc         *attest.Service
	ids         []attest.Identity
	encA        *sgx.Enclave
	encB        *sgx.Enclave
	quoterA     *attest.Quoter
	quoterB     *attest.Quoter
	otherEnc    *sgx.Enclave // same signer, different image (wrong identity)
	otherQuoter *attest.Quoter
}

func newHandshakeRig(t *testing.T) *handshakeRig {
	t.Helper()
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	image := []byte("federation handshake image")
	svc := attest.NewService()
	launch := func(seed, platform string, img []byte) (*sgx.Enclave, *attest.Quoter) {
		dev, err := sgx.NewDevice([]byte(seed), simmem.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		q, err := attest.NewQuoter(dev, platform)
		if err != nil {
			t.Fatal(err)
		}
		svc.RegisterPlatform(q.PlatformID(), q.AttestationKey())
		e, err := dev.Launch(img, signer.Public(), sgx.EnclaveConfig{EPCBytes: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Terminate)
		return e, q
	}
	encA, quoterA := launch("dev-a", "platform-a", image)
	encB, quoterB := launch("dev-b", "platform-b", image)
	otherEnc, otherQuoter := launch("dev-c", "platform-c", []byte("some other image"))
	id := attest.Identity{MRENCLAVE: encA.MRENCLAVE(), MRSIGNER: encA.MRSIGNER()}
	return &handshakeRig{
		svc: svc, ids: []attest.Identity{id},
		encA: encA, encB: encB, quoterA: quoterA, quoterB: quoterB,
		otherEnc: otherEnc, otherQuoter: otherQuoter,
	}
}

func TestHandshakeDerivesSharedKey(t *testing.T) {
	rig := newHandshakeRig(t)
	hello, ephemeral, err := NewHello("router-a", rig.encA, rig.quoterA)
	if err != nil {
		t.Fatal(err)
	}
	welcome, keyB, err := AcceptHello(hello, rig.svc, rig.ids, "router-b", rig.encB, rig.quoterB)
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := CompleteHandshake(welcome, rig.svc, rig.ids, rig.encA, ephemeral)
	if err != nil {
		t.Fatal(err)
	}
	if !keyA.Equal(keyB) {
		t.Fatal("handshake sides derived different link keys")
	}
}

func TestHandshakeRejectsWrongIdentity(t *testing.T) {
	rig := newHandshakeRig(t)
	// A rogue enclave (different measured image, genuine platform)
	// dials: the acceptor must refuse to mint a link.
	hello, _, err := NewHello("rogue", rig.otherEnc, rig.otherQuoter)
	if err == nil {
		_, _, err = AcceptHello(hello, rig.svc, rig.ids, "router-b", rig.encB, rig.quoterB)
	}
	if err == nil || !errors.Is(err, ErrPeerRejected) {
		t.Fatalf("rogue hello accepted (err=%v)", err)
	}
}

func TestHandshakeRejectsSubstitutedSecret(t *testing.T) {
	rig := newHandshakeRig(t)
	hello, ephemeral, err := NewHello("router-a", rig.encA, rig.quoterA)
	if err != nil {
		t.Fatal(err)
	}
	welcome, _, err := AcceptHello(hello, rig.svc, rig.ids, "router-b", rig.encB, rig.quoterB)
	if err != nil {
		t.Fatal(err)
	}
	// A man in the middle swaps the encrypted secret for one it knows:
	// the welcome quote's binding must catch it.
	welcome.Secret = append([]byte(nil), welcome.Secret...)
	welcome.Secret[0] ^= 0xff
	if _, err := CompleteHandshake(welcome, rig.svc, rig.ids, rig.encA, ephemeral); !errors.Is(err, ErrPeerRejected) {
		t.Fatalf("substituted secret accepted (err=%v)", err)
	}
}

// overlayPair wires two overlays together with in-memory transports
// sharing one link key, as the broker does over TCP.
type overlayPair struct {
	a, b   *Overlay
	pa, pb *Peer // a's handle for b, b's handle for a
}

func newOverlayPair(t *testing.T) *overlayPair {
	t.Helper()
	key, err := scrypto.NewSymmetricKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pair := &overlayPair{}
	// Each overlay's emit hands the frame to the other side's
	// HandleDigest, mimicking the broker's link writer/reader. The
	// ready gate orders the peer-handle writes before the announcer
	// goroutines read them.
	ready := make(chan struct{})
	pair.a = NewOverlay("A", 0, pubsub.NewSchema(), func(p *Peer, frame []byte) {
		<-ready
		if err := pair.b.HandleDigest(pair.pb, frame); err != nil {
			t.Errorf("B applying digest: %v", err)
		}
	})
	pair.b = NewOverlay("B", 0, pubsub.NewSchema(), func(p *Peer, frame []byte) {
		<-ready
		if err := pair.a.HandleDigest(pair.pa, frame); err != nil {
			t.Errorf("A applying digest: %v", err)
		}
	})
	t.Cleanup(pair.a.Close)
	t.Cleanup(pair.b.Close)
	pair.pa = pair.a.AttachPeer("B", key, nil)
	pair.pb = pair.b.AttachPeer("A", key, nil)
	close(ready)
	return pair
}

func waitCounters(t *testing.T, o *Overlay, cond func(Counters) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(o.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatalf("overlay never converged: %+v", o.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverlayDigestDrivesForwarding: interests announced by B make A
// forward matching publications (and only those) toward B, and a
// removal stops the forwarding.
func TestOverlayDigestDrivesForwarding(t *testing.T) {
	pair := newOverlayPair(t)
	if err := pair.b.AddLocal(1, mustSpec(t, `symbol = "HAL"`)); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, pair.a, func(c Counters) bool { return c.RemoteEntries == 1 })

	evMatch := mustEvent(t, pair.a.schema, map[string]pubsub.Value{"symbol": pubsub.Str("HAL")})
	outs, err := pair.a.ForwardLocal([]byte("hdr"), []byte("pay"), 7, evMatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Peer != pair.pa {
		t.Fatalf("matching publication produced %d forwards", len(outs))
	}

	evMiss := mustEvent(t, pair.a.schema, map[string]pubsub.Value{"symbol": pubsub.Str("IBM")})
	outs, err = pair.a.ForwardLocal([]byte("hdr"), []byte("pay"), 7, evMiss)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("non-matching publication forwarded %d times", len(outs))
	}

	pair.b.RemoveLocal(1)
	waitCounters(t, pair.a, func(c Counters) bool { return c.RemoteEntries == 0 })
	outs, err = pair.a.ForwardLocal([]byte("hdr"), []byte("pay"), 7, evMatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("forwarding survived the unsubscribe (%d forwards)", len(outs))
	}
}

// TestOverlayForwardDedupAndTTL: a forwarded frame is accepted once,
// suppressed on replay, and a TTL-exhausted frame is not re-forwarded.
func TestOverlayForwardDedupAndTTL(t *testing.T) {
	pair := newOverlayPair(t)
	// B subscribes so A's frames carry toward it; C is simulated by
	// feeding A's sealed frames straight back into B.
	if err := pair.b.AddLocal(1, mustSpec(t, `symbol = "HAL"`)); err != nil {
		t.Fatal(err)
	}
	waitCounters(t, pair.a, func(c Counters) bool { return c.RemoteEntries == 1 })

	ev := mustEvent(t, pair.a.schema, map[string]pubsub.Value{"symbol": pubsub.Str("HAL")})
	outs, err := pair.a.ForwardLocal([]byte("hdr"), []byte("pay"), 7, ev)
	if err != nil || len(outs) != 1 {
		t.Fatalf("forward setup: outs=%d err=%v", len(outs), err)
	}
	decode := func(header []byte) (*pubsub.Event, error) {
		return mustEvent(t, pair.b.schema, map[string]pubsub.Value{"symbol": pubsub.Str("HAL")}), nil
	}
	fwd, _, err := pair.b.HandleForward(pair.pb, outs[0].Frame, decode)
	if err != nil {
		t.Fatal(err)
	}
	if fwd == nil || string(fwd.Header) != "hdr" || string(fwd.Payload) != "pay" || fwd.Epoch != 7 {
		t.Fatalf("first sighting mangled: %+v", fwd)
	}
	if fwd.Origin != "A" || fwd.Seq == 0 {
		t.Fatalf("origin envelope mangled: %+v", fwd)
	}
	// Replay of the same frame: suppressed.
	fwd, _, err = pair.b.HandleForward(pair.pb, outs[0].Frame, decode)
	if err != nil {
		t.Fatal(err)
	}
	if fwd != nil {
		t.Fatal("duplicate frame accepted for delivery")
	}
	if c := pair.b.Snapshot(); c.SuppressedDuplicates != 1 {
		t.Fatalf("suppressed counter %d, want 1", c.SuppressedDuplicates)
	}
	// A frame from an unknown key (tampered) is rejected.
	if _, _, err := pair.b.HandleForward(pair.pb, []byte("garbage"), decode); !errors.Is(err, ErrBadForward) {
		t.Fatalf("tampered frame error %v", err)
	}
}
