package federation

// dedupWindow bounds the per-origin set of remembered sequence
// numbers. Sequence numbers more than dedupWindow below the highest
// seen are treated as already delivered — by then any copy still in
// flight is a stale loop artefact, and remembering an unbounded past
// would grow without limit.
const dedupWindow = 4096

// dedup tracks which (origin, seq) pairs this router has already
// accepted, and with how much hop budget. Not safe for concurrent
// use; the overlay serialises access under its lock.
type dedup struct {
	origins map[string]*originWindow
}

type originWindow struct {
	max uint64
	// seen maps seq → the best remaining TTL any accepted copy
	// carried after its decrement.
	seen map[uint64]int
}

func newDedup() *dedup {
	return &dedup{origins: make(map[string]*originWindow)}
}

// observe records one sighting with its post-decrement hop budget.
// fresh is true on the first sighting (deliver and re-forward);
// improved is true when a duplicate arrives with a larger remaining
// TTL than any earlier copy — such a copy must not be re-delivered,
// but re-forwarding it can reach routers the earlier, more
// hop-starved copy could not.
func (d *dedup) observe(origin string, seq uint64, ttl int) (fresh, improved bool) {
	w := d.origins[origin]
	if w == nil {
		w = &originWindow{seen: make(map[uint64]int)}
		d.origins[origin] = w
	}
	if w.max >= dedupWindow && seq <= w.max-dedupWindow {
		return false, false // below the window: assume seen and spent
	}
	best, dup := w.seen[seq]
	switch {
	case !dup:
		fresh = true
	case ttl > best:
		improved = true
	default:
		return false, false
	}
	w.seen[seq] = ttl
	if seq > w.max {
		w.max = seq
	}
	// Prune lazily so steady-state traffic amortises the sweep instead
	// of paying it on every max-advancing publication.
	if len(w.seen) > 2*dedupWindow && w.max >= dedupWindow {
		floor := w.max - dedupWindow
		for s := range w.seen {
			if s <= floor {
				delete(w.seen, s)
			}
		}
	}
	return fresh, improved
}
