// The overlay state machine: which peers exist, what interests they
// announced (their digests), what this router has announced to them,
// and the loop-safety bookkeeping for forwarded publications. The
// overlay is transport-agnostic — the broker owns connections and
// hands sealed frames back and forth — and conceptually lives inside
// the enclave: the broker enters an enclave before calling the
// plaintext-touching methods, exactly as it does for matching.

package federation

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
)

// announceCoalesce batches digest recomputation: registrations landing
// within this window produce one incremental update instead of one
// per subscription, which keeps the containment compaction (O(n²) in
// the announced set) off the registration hot path.
const announceCoalesce = 2 * time.Millisecond

// Peer is one attested link to a neighbouring router. The overlay
// tracks the digest state per link; the broker stores its connection
// handle in Tag.
type Peer struct {
	name string // remote router ID, as claimed in its hello/welcome
	key  *scrypto.SymmetricKey

	// learned is the digest the peer announced to us — the interests
	// reachable through it. announced is what we last announced to it.
	learned    map[string]*entry
	announced  map[string]*entry
	outVersion uint64
	inVersion  uint64

	// Tag is an opaque transport handle owned by the broker.
	Tag any
}

// Name returns the peer's claimed router ID.
func (p *Peer) Name() string { return p.name }

// Outbound is one sealed frame the broker must send to a peer.
type Outbound struct {
	Peer  *Peer
	Frame []byte
}

// Overlay is one router's view of the federation.
type Overlay struct {
	routerID string
	ttl      int
	schema   *pubsub.Schema
	// emit delivers a sealed SUB_DIGEST frame to a peer's transport.
	// Called from the overlay's announcer goroutine; must not block.
	emit func(p *Peer, frame []byte)

	mu    sync.Mutex
	local map[string]*entry // canonical key → refcounted local entry
	bySub map[uint64]string // local subscription ID → canonical key
	peers map[*Peer]bool
	seq   uint64
	dd    *dedup

	digestSent, digestRecv       uint64
	forwarded, withheld          uint64
	forwardsDropped              uint64
	receivedForwards             uint64
	suppressedDup, suppressedTTL uint64

	dirty chan struct{}
	quit  chan struct{}
	done  chan struct{}
}

// NewOverlay builds the overlay for routerID. schema is the router's
// attribute intern table (shared with its matching engines); emit is
// the digest transport hook.
func NewOverlay(routerID string, ttl int, schema *pubsub.Schema, emit func(p *Peer, frame []byte)) *Overlay {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	o := &Overlay{
		routerID: routerID,
		ttl:      ttl,
		schema:   schema,
		emit:     emit,
		local:    make(map[string]*entry),
		bySub:    make(map[uint64]string),
		peers:    make(map[*Peer]bool),
		dd:       newDedup(),
		dirty:    make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go o.announcer()
	return o
}

// RouterID returns this router's overlay identity.
func (o *Overlay) RouterID() string { return o.routerID }

// HasPeers reports whether any attested link is attached — the cheap
// gate the broker checks before paying an enclave entry to evaluate
// forwarding for a publication.
func (o *Overlay) HasPeers() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.peers) > 0
}

// Close stops the announcer. Pending digest updates are dropped — a
// closing router's peers observe the link teardown instead.
func (o *Overlay) Close() {
	o.mu.Lock()
	select {
	case <-o.quit:
	default:
		close(o.quit)
	}
	o.mu.Unlock()
	<-o.done
}

// AttachPeer registers a completed handshake: the peer enters the
// digest fan-out and a full announcement is scheduled for it.
func (o *Overlay) AttachPeer(name string, key *scrypto.SymmetricKey, tag any) *Peer {
	p := &Peer{
		name:      name,
		key:       key,
		learned:   make(map[string]*entry),
		announced: make(map[string]*entry),
		Tag:       tag,
	}
	o.mu.Lock()
	o.peers[p] = true
	o.mu.Unlock()
	o.markDirty()
	return p
}

// DetachPeer removes a severed link; interests learned from it stop
// influencing forwarding and announcements to the remaining peers.
func (o *Overlay) DetachPeer(p *Peer) {
	o.mu.Lock()
	delete(o.peers, p)
	o.mu.Unlock()
	o.markDirty()
}

// AddLocal folds one accepted local registration into the digest
// state. Duplicate subscriptions (same canonical form) collapse into
// one refcounted entry.
func (o *Overlay) AddLocal(subID uint64, spec pubsub.SubscriptionSpec) error {
	key, e, err := canonicalize(o.schema, spec)
	if err != nil {
		return err
	}
	o.mu.Lock()
	if cur, ok := o.local[key]; ok {
		cur.refs++
	} else {
		e.refs = 1
		o.local[key] = e
	}
	o.bySub[subID] = key
	o.mu.Unlock()
	o.markDirty()
	return nil
}

// RemoveLocal drops one local registration from the digest state.
func (o *Overlay) RemoveLocal(subID uint64) {
	o.mu.Lock()
	key, ok := o.bySub[subID]
	if ok {
		delete(o.bySub, subID)
		if cur, found := o.local[key]; found {
			cur.refs--
			if cur.refs <= 0 {
				delete(o.local, key)
			}
		}
	}
	o.mu.Unlock()
	if ok {
		o.markDirty()
	}
}

// HandleDigest applies one sealed SUB_DIGEST frame from a peer and
// schedules re-announcement to the other peers (their view of what is
// reachable through us includes what is reachable through p).
func (o *Overlay) HandleDigest(p *Peer, frame []byte) error {
	plain, err := scrypto.Open(p.key, frame)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	var u digestUpdate
	if err := json.Unmarshal(plain, &u); err != nil {
		return fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.peers[p] {
		return nil // link already detached
	}
	if u.Full {
		p.learned = make(map[string]*entry, len(u.Add))
	}
	for _, enc := range u.Add {
		key, e, err := decodeEntry(o.schema, enc)
		if err != nil {
			return err
		}
		p.learned[key] = e
	}
	for _, enc := range u.Remove {
		delete(p.learned, string(enc))
	}
	p.inVersion = u.Version
	o.digestRecv++
	o.markDirtyLocked()
	return nil
}

// ForwardLocal decides the federation fan-out for one locally
// published item: the publication is forwarded to exactly the peers
// whose announced digest matches the decrypted header. It stamps the
// origin + sequence envelope and seals one frame per target link.
func (o *Overlay) ForwardLocal(header, payload []byte, epoch uint64, ev *pubsub.Event) ([]Outbound, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.seq++
	fp := forwardPub{
		Origin:  o.routerID,
		Seq:     o.seq,
		TTL:     o.ttl,
		Header:  header,
		Payload: payload,
		Epoch:   epoch,
	}
	return o.fanOutLocked(fp, ev, nil)
}

// HandleForward processes one sealed FWD_PUB frame from a peer. It
// returns the decoded publication when this is its first sighting
// (the caller routes it into local matching) and the sealed frames
// for the next hops. decode recovers the plaintext header event from
// the SK-encrypted header; it runs inside the caller's enclave entry,
// like every other header decryption.
func (o *Overlay) HandleForward(from *Peer, frame []byte,
	decode func(header []byte) (*pubsub.Event, error)) (*ForwardedPublication, []Outbound, error) {
	plain, err := scrypto.Open(from.key, frame)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadForward, err)
	}
	var fp forwardPub
	if err := json.Unmarshal(plain, &fp); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadForward, err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if fp.Origin == o.routerID {
		// Our own publication come full circle: suppress entirely.
		o.suppressedDup++
		return nil, nil, nil
	}
	fp.TTL--
	fresh, improved := o.dd.observe(fp.Origin, fp.Seq, fp.TTL)
	if !fresh && !improved {
		// A duplicate copy along a second path with no more hop budget
		// than an earlier one: suppress entirely.
		o.suppressedDup++
		return nil, nil, nil
	}
	var accepted *ForwardedPublication
	if fresh {
		o.receivedForwards++
		accepted = &ForwardedPublication{
			Origin:  fp.Origin,
			Seq:     fp.Seq,
			Header:  fp.Header,
			Payload: fp.Payload,
			Epoch:   fp.Epoch,
		}
	} else {
		// improved: already delivered here, but this copy carries more
		// hop budget than the one that arrived first — re-forward it
		// (never re-deliver) so routers beyond the earlier copy's TTL
		// horizon are still reached.
		o.suppressedDup++
	}
	if fp.TTL <= 0 {
		o.suppressedTTL++
		return accepted, nil, nil
	}
	ev, err := decode(fp.Header)
	if err != nil {
		// Unprovisioned router or tampered header: deliver the attempt
		// to the local pipeline (which applies the same checks), but
		// re-forward nothing — we cannot consult digests blind.
		return accepted, nil, nil
	}
	outs, err := o.fanOutLocked(fp, ev, from)
	return accepted, outs, err
}

// fanOutLocked seals fp for every peer whose digest matches ev,
// excluding the arrival link and any link to the origin router.
func (o *Overlay) fanOutLocked(fp forwardPub, ev *pubsub.Event, from *Peer) ([]Outbound, error) {
	raw, err := json.Marshal(&fp)
	if err != nil {
		return nil, fmt.Errorf("federation: encoding forward: %w", err)
	}
	var outs []Outbound
	for p := range o.peers {
		if p == from || p.name == fp.Origin {
			continue
		}
		if !anyMatch(p.learned, ev) {
			o.withheld++
			continue
		}
		frame, err := scrypto.Seal(p.key, raw)
		if err != nil {
			return nil, fmt.Errorf("federation: sealing forward: %w", err)
		}
		outs = append(outs, Outbound{Peer: p, Frame: frame})
		o.forwarded++
	}
	return outs, nil
}

// NoteForwardDropped records a forwarded publication the transport
// could not hand to a peer link (outbound queue full). The overlay's
// forwarding is fire-and-forget, so the frame is simply lost; the
// counter keeps the loss visible instead of silent.
func (o *Overlay) NoteForwardDropped() {
	o.mu.Lock()
	o.forwardsDropped++
	o.mu.Unlock()
}

// Snapshot returns the overlay's counters.
func (o *Overlay) Snapshot() Counters {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := Counters{
		Peers:                 len(o.peers),
		LocalEntries:          len(o.local),
		DigestUpdatesSent:     o.digestSent,
		DigestUpdatesReceived: o.digestRecv,
		Forwarded:             o.forwarded,
		Withheld:              o.withheld,
		ForwardsDropped:       o.forwardsDropped,
		ReceivedForwards:      o.receivedForwards,
		SuppressedDuplicates:  o.suppressedDup,
		SuppressedTTL:         o.suppressedTTL,
	}
	for p := range o.peers {
		c.RemoteEntries += len(p.learned)
		c.AnnouncedEntries += len(p.announced)
	}
	return c
}

// markDirty schedules an announcement refresh.
func (o *Overlay) markDirty() {
	select {
	case o.dirty <- struct{}{}:
	default:
	}
}

// markDirtyLocked is markDirty for callers holding o.mu (the dirty
// channel never blocks, so no lock ordering is involved; the split
// exists only for symmetry with the other helpers).
func (o *Overlay) markDirtyLocked() { o.markDirty() }

// announcer is the overlay's single digest-update producer: it wakes
// on dirt, coalesces briefly, recomputes each peer's announcement, and
// emits incremental updates for whatever changed. One producer per
// overlay means updates reach each link in a consistent order. The
// coalescing window grows with the cost of the previous refresh (the
// containment compaction is quadratic in the announced set), so a
// registration burst amortises into a few batched updates instead of
// one recomputation per subscription.
func (o *Overlay) announcer() {
	defer close(o.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	coalesce := announceCoalesce
	for {
		select {
		case <-o.quit:
			return
		case <-o.dirty:
		}
		timer.Reset(coalesce)
		select {
		case <-o.quit:
			return
		case <-timer.C:
		}
		// Fold in any dirt that accumulated during the window.
		select {
		case <-o.dirty:
		default:
		}
		start := time.Now()
		for _, ob := range o.refreshAnnouncements() {
			o.emit(ob.Peer, ob.Frame)
		}
		if cost := time.Since(start); cost > announceCoalesce {
			coalesce = cost // self-throttle: spend ≤ half the time refreshing
		} else {
			coalesce = announceCoalesce
		}
	}
}

// refreshAnnouncements recomputes every peer's announcement set and
// returns the sealed incremental updates for the links whose set
// changed.
func (o *Overlay) refreshAnnouncements() []Outbound {
	o.mu.Lock()
	defer o.mu.Unlock()
	var outs []Outbound
	for p := range o.peers {
		next := o.announcementForLocked(p)
		u := digestUpdate{}
		for k, e := range next {
			if _, ok := p.announced[k]; !ok {
				u.Add = append(u.Add, e.enc)
			}
		}
		for k, e := range p.announced {
			if _, ok := next[k]; !ok {
				u.Remove = append(u.Remove, e.enc)
			}
		}
		if p.outVersion == 0 {
			u.Full = true
		} else if len(u.Add) == 0 && len(u.Remove) == 0 {
			continue
		}
		p.outVersion++
		u.Version = p.outVersion
		p.announced = next
		raw, err := json.Marshal(&u)
		if err != nil {
			continue // cannot happen: update fields are plain data
		}
		frame, err := scrypto.Seal(p.key, raw)
		if err != nil {
			continue
		}
		o.digestSent++
		outs = append(outs, Outbound{Peer: p, Frame: frame})
	}
	return outs
}

// announcementForLocked computes what peer p should be told is
// reachable through this router: the local subscriptions plus
// everything learned from the *other* peers (split horizon — p is
// never told about interests it announced itself), compacted to the
// ⊒-maximal elements.
func (o *Overlay) announcementForLocked(p *Peer) map[string]*entry {
	pool := make(map[string]*entry, len(o.local))
	for k, e := range o.local {
		pool[k] = e
	}
	for q := range o.peers {
		if q == p {
			continue
		}
		for k, e := range q.learned {
			if _, ok := pool[k]; !ok {
				pool[k] = e
			}
		}
	}
	return maximal(pool)
}
