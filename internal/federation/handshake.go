// The attested link handshake. Router A (the dialer) and router B
// (the acceptor) mutually prove they run genuine, pinned SCBR enclaves
// and agree on a per-link symmetric key, reusing the provisioning
// machinery of internal/attest:
//
//	A → B  PEER_HELLO:   A's quote + an ephemeral public key generated
//	                     inside A's enclave, hash-bound into the quote
//	                     (exactly a provisioning request).
//	B → A  PEER_WELCOME: B verifies A's quote against the attestation
//	                     service and the pinned identities, generates a
//	                     link secret inside its enclave, encrypts it to
//	                     A's quoted key, and returns its own quote whose
//	                     report data binds the encrypted secret — so a
//	                     man in the middle can neither read the secret
//	                     (it is encrypted to an attested enclave key)
//	                     nor substitute its own (the substitution breaks
//	                     B's quote binding).
//
// Both sides derive the link key from the secret with the labelled
// KDF. Everything after the handshake — digests and forwarded
// publications — travels sealed under that key: the operator of the
// network between two routers learns nothing about subscriptions or
// interests.

package federation

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"

	"scbr/internal/attest"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
)

// linkSecretLen is the entropy both link sub-keys derive from.
const linkSecretLen = 32

// linkKeyLabel namespaces the KDF so a link secret can never collide
// with group-key or sealing derivations.
const linkKeyLabel = "scbr/federation/link-key/v1"

// Hello is the dialer's half of the handshake (PEER_HELLO payload).
type Hello struct {
	RouterID string        `json:"router_id"`
	Quote    *attest.Quote `json:"quote"`
	PubKey   []byte        `json:"pub_key"` // PKIX RSA, hash-bound into the quote
}

// Welcome is the acceptor's half (PEER_WELCOME payload).
type Welcome struct {
	RouterID string        `json:"router_id"`
	Quote    *attest.Quote `json:"quote"`  // report data binds SHA-256(Secret)
	Secret   []byte        `json:"secret"` // link secret, encrypted to the hello's key
}

// NewHello runs on the dialing router: generate the quote-bound
// ephemeral key inside the enclave and assemble the hello. The
// returned key pair must be kept for CompleteHandshake.
func NewHello(routerID string, e *sgx.Enclave, quoter *attest.Quoter) (*Hello, *scrypto.KeyPair, error) {
	req, ephemeral, err := attest.NewProvisioningRequest(e, quoter)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: building hello: %w", err)
	}
	return &Hello{RouterID: routerID, Quote: req.Quote, PubKey: req.PubKey}, ephemeral, nil
}

// AcceptHello runs on the accepting router: verify the dialer's quote
// against the attestation service and the pinned identities, mint a
// link secret inside the enclave, and return the welcome plus the
// derived link key.
func AcceptHello(h *Hello, svc *attest.Service, identities []attest.Identity,
	selfID string, e *sgx.Enclave, quoter *attest.Quoter) (*Welcome, *scrypto.SymmetricKey, error) {
	if h == nil || h.Quote == nil {
		return nil, nil, fmt.Errorf("%w: empty hello", ErrPeerRejected)
	}
	secret := make([]byte, linkSecretLen)
	if err := e.Ecall(func() error {
		_, err := rand.Read(secret)
		return err
	}); err != nil {
		return nil, nil, fmt.Errorf("federation: minting link secret: %w", err)
	}
	// ProvisionSecret performs the full verification — service
	// signature, pinned measurement, debug rejection, channel binding —
	// and encrypts the secret to the hello's quoted key. Accept the
	// first pinned identity the quote satisfies.
	req := &attest.ProvisioningRequest{Quote: h.Quote, PubKey: h.PubKey}
	var sealed []byte
	err := fmt.Errorf("%w: no pinned identities", ErrPeerRejected)
	for _, id := range identities {
		sealed, err = attest.ProvisionSecret(svc, id, req, secret)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrPeerRejected, err)
	}
	// Bind our quote to the encrypted secret so it cannot be swapped
	// in flight.
	var data sgx.ReportData
	digest := sha256.Sum256(sealed)
	copy(data[:], digest[:])
	report, err := e.Report(sgx.QuotingTargetMR, data)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: producing welcome report: %w", err)
	}
	quote, err := quoter.Quote(report)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: quoting welcome: %w", err)
	}
	key, err := LinkKey(secret)
	if err != nil {
		return nil, nil, err
	}
	return &Welcome{RouterID: selfID, Quote: quote, Secret: sealed}, key, nil
}

// CompleteHandshake runs back on the dialing router: verify the
// acceptor's quote and its binding to the encrypted secret, decrypt
// the secret inside the enclave, and derive the link key.
func CompleteHandshake(w *Welcome, svc *attest.Service, identities []attest.Identity,
	e *sgx.Enclave, ephemeral *scrypto.KeyPair) (*scrypto.SymmetricKey, error) {
	if w == nil || w.Quote == nil {
		return nil, fmt.Errorf("%w: empty welcome", ErrPeerRejected)
	}
	body, err := svc.Verify(w.Quote)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrPeerRejected, err)
	}
	matched := false
	for _, id := range identities {
		if sgx.EqualMeasurement(body.MRENCLAVE, id.MRENCLAVE) &&
			sgx.EqualMeasurement(body.MRSIGNER, id.MRSIGNER) &&
			body.ISVSVN >= id.MinISVSVN {
			matched = true
			break
		}
	}
	if !matched {
		return nil, fmt.Errorf("%w: %w", ErrPeerRejected, attest.ErrWrongIdentity)
	}
	digest := sha256.Sum256(w.Secret)
	var bound [sha256.Size]byte
	copy(bound[:], body.Data[:sha256.Size])
	if bound != digest {
		return nil, fmt.Errorf("%w: %w", ErrPeerRejected, attest.ErrChannelBinding)
	}
	secret, err := attest.ReceiveSecret(e, ephemeral, w.Secret)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPeerRejected, err)
	}
	return LinkKey(secret)
}

// LinkKey derives the link's symmetric key from the exchanged secret.
func LinkKey(secret []byte) (*scrypto.SymmetricKey, error) {
	if len(secret) != linkSecretLen {
		return nil, fmt.Errorf("%w: link secret is %d bytes, want %d", ErrPeerRejected, len(secret), linkSecretLen)
	}
	raw := scrypto.DeriveKey(secret, linkKeyLabel, scrypto.SymmetricKeySize+scrypto.MACKeySize)
	return scrypto.SymmetricKeyFromBytes(raw)
}
