// Digest entries: canonical, schema-independent encodings of
// normalised subscriptions, plus the containment compaction that keeps
// announcements compact. The canonical form carries attribute *names*
// (every router interns its own schema, so IDs do not travel), orders
// constraints by name, and folds each attribute's predicates into the
// engine's normalised single-constraint form — two subscriptions that
// match the same events canonicalise to the same bytes, so refcounting
// and set diffs work across routers.

package federation

import (
	"fmt"
	"sort"

	"scbr/internal/pubsub"
)

// entry is one digest element: the canonical wire encoding and the
// subscription normalised against the local router's schema (the form
// Covers and Matches operate on).
type entry struct {
	enc []byte
	sub *pubsub.Subscription
	// refs counts local registrations canonicalising to this entry;
	// unused (0) in learned sets, which have set semantics.
	refs int
}

// canonicalize normalises spec against schema and re-encodes it in
// canonical name-keyed form. The returned key is the canonical bytes
// as a string (map key), enc the same bytes for the wire.
func canonicalize(schema *pubsub.Schema, spec pubsub.SubscriptionSpec) (key string, e *entry, err error) {
	sub, err := pubsub.Normalize(schema, spec)
	if err != nil {
		return "", nil, err
	}
	canon, err := canonicalSpec(schema, sub)
	if err != nil {
		return "", nil, err
	}
	enc, err := pubsub.EncodeSubscriptionSpec(canon)
	if err != nil {
		return "", nil, err
	}
	return string(enc), &entry{enc: enc, sub: sub}, nil
}

// canonicalSpec converts a normalised subscription back into a
// name-keyed spec with a deterministic predicate order: attributes
// sorted by name, lower bound before upper bound.
func canonicalSpec(schema *pubsub.Schema, sub *pubsub.Subscription) (pubsub.SubscriptionSpec, error) {
	type namedConstraint struct {
		name string
		c    pubsub.Constraint
	}
	ncs := make([]namedConstraint, 0, len(sub.Constraints))
	for _, c := range sub.Constraints {
		name, ok := schema.Name(c.ID)
		if !ok {
			return pubsub.SubscriptionSpec{}, fmt.Errorf("federation: constraint names unknown attribute %d", c.ID)
		}
		ncs = append(ncs, namedConstraint{name: name, c: c})
	}
	sort.Slice(ncs, func(i, j int) bool { return ncs[i].name < ncs[j].name })
	var spec pubsub.SubscriptionSpec
	for _, nc := range ncs {
		spec.Predicates = append(spec.Predicates, constraintPredicates(nc.name, nc.c)...)
	}
	return spec, nil
}

// constraintPredicates expands one normalised constraint into its
// canonical predicate list.
func constraintPredicates(name string, c pubsub.Constraint) []pubsub.Predicate {
	if c.Str {
		op := pubsub.OpEq
		if c.Prefix {
			op = pubsub.OpPrefix
		}
		return []pubsub.Predicate{{Attr: name, Op: op, Value: pubsub.Str(c.EqS)}}
	}
	if c.HasLo && c.HasHi && c.LoIncl && c.HiIncl {
		if c.Lo == c.Hi {
			return []pubsub.Predicate{{Attr: name, Op: pubsub.OpEq, Value: pubsub.Float(c.Lo)}}
		}
		return []pubsub.Predicate{{Attr: name, Op: pubsub.OpBetween, Value: pubsub.Float(c.Lo), Hi: pubsub.Float(c.Hi)}}
	}
	var out []pubsub.Predicate
	if c.HasLo {
		op := pubsub.OpGt
		if c.LoIncl {
			op = pubsub.OpGe
		}
		out = append(out, pubsub.Predicate{Attr: name, Op: op, Value: pubsub.Float(c.Lo)})
	}
	if c.HasHi {
		op := pubsub.OpLt
		if c.HiIncl {
			op = pubsub.OpLe
		}
		out = append(out, pubsub.Predicate{Attr: name, Op: op, Value: pubsub.Float(c.Hi)})
	}
	return out
}

// decodeEntry rebuilds an entry from its canonical wire bytes,
// normalising against the local schema.
func decodeEntry(schema *pubsub.Schema, enc []byte) (string, *entry, error) {
	spec, err := pubsub.DecodeSubscriptionSpec(enc)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	sub, err := pubsub.Normalize(schema, spec)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	return string(enc), &entry{enc: enc, sub: sub}, nil
}

// maximal filters a pool of entries down to its ⊒-maximal elements:
// an entry covered by another entry contributes nothing to "does any
// subscription match this event", so it is dropped. Mutually covering
// (equal) entries keep the one with the smaller canonical key, so
// exactly one survives.
func maximal(pool map[string]*entry) map[string]*entry {
	out := make(map[string]*entry, len(pool))
	for k, e := range pool {
		covered := false
		for k2, f := range pool {
			if k2 == k {
				continue
			}
			if f.sub.Covers(e.sub) && (!e.sub.Covers(f.sub) || k2 < k) {
				covered = true
				break
			}
		}
		if !covered {
			out[k] = e
		}
	}
	return out
}

// anyMatch reports whether any entry of the set matches the event.
func anyMatch(set map[string]*entry, ev *pubsub.Event) bool {
	for _, e := range set {
		if e.sub.Matches(ev) {
			return true
		}
	}
	return false
}

// digestUpdate is the SUB_DIGEST payload, sealed under the link key
// before it touches the wire: set deltas of canonical entries. Full
// marks a from-scratch synchronisation (link establishment).
type digestUpdate struct {
	Version uint64   `json:"version"`
	Full    bool     `json:"full,omitempty"`
	Add     [][]byte `json:"add,omitempty"`
	Remove  [][]byte `json:"remove,omitempty"`
}

// forwardPub is the FWD_PUB payload, sealed under the link key: the
// publisher's original ciphertexts plus the loop-safety envelope. The
// header stays encrypted under SK and the payload under the group key
// end to end — hops relay ciphertext, they never re-encrypt content.
type forwardPub struct {
	Origin  string `json:"origin"`
	Seq     uint64 `json:"seq"`
	TTL     int    `json:"ttl"`
	Header  []byte `json:"header"`
	Payload []byte `json:"payload"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// ForwardedPublication is the decoded form of an accepted forward the
// broker routes into its local matching pipeline.
type ForwardedPublication struct {
	Origin  string
	Seq     uint64
	Header  []byte
	Payload []byte
	Epoch   uint64
}
