// Package federation lets SCBR routers peer into an overlay, the
// broker-network deployment the paper positions content-based routing
// for: one enclave-backed router is a single filtering hop, and total
// capacity scales by composing many of them (cf. PubSub-SGX, which
// scales privacy-preserving pub/sub across multiple enclave matcher
// nodes, and the StreamHub partitioning the paper's §3.4 adopts
// *inside* one router).
//
// Three mechanisms make the overlay safe on untrusted infrastructure:
//
//   - Attested links (handshake.go): peers mutually attest each
//     other's enclaves — the same quote/verify/pinned-measurement flow
//     a publisher runs before provisioning SK — and derive a per-link
//     symmetric key from a secret that only the two enclaves learn. An
//     operator between routers sees framing, never digest contents.
//
//   - Subscription digests (digest.go, overlay.go): each router
//     summarises the subscriptions reachable through it as the set of
//     ⊒-maximal subscriptions (§3.2 containment: if s covers t, any
//     event matching t matches s, so announcing s alone suffices for
//     forwarding decisions). Digests propagate with split horizon —
//     a peer is never told about interests learned from itself — and
//     stay fresh through incremental add/remove updates.
//
//   - Loop-safe forwarding (overlay.go, dedup.go): every publication
//     carries its origin router ID, a per-origin sequence number, and
//     a hop TTL. A router delivers and re-forwards a publication only
//     the first time it sees an (origin, seq) pair, and only toward
//     peers whose digest matches the decrypted header, so cyclic peer
//     graphs neither duplicate nor loop traffic.
//
// Digests presuppose a matching scheme that reveals subscription
// plaintext to the router's enclave for the §3.2 containment
// compaction (scheme.Capabilities.FederationDigests). Schemes that
// withhold plaintext from routers entirely — aspe, whose encrypted
// sign-test vectors support no containment test the router could run —
// cannot feed this overlay; the broker rejects such configurations at
// router construction rather than forwarding blindly.
package federation

import "errors"

// DefaultTTL is the hop budget a publication starts with when the
// overlay configuration does not set one. Digest-driven forwarding
// already prevents loops on consistent state; the TTL bounds the blast
// radius while digests are converging.
const DefaultTTL = 8

// Errors of the federation layer.
var (
	// ErrPeerRejected reports a peer handshake that failed attestation
	// or channel binding.
	ErrPeerRejected = errors.New("federation: peer rejected")
	// ErrBadUpdate reports a digest update that could not be decoded or
	// applied.
	ErrBadUpdate = errors.New("federation: malformed digest update")
	// ErrBadForward reports a forwarded publication that could not be
	// opened under the link key or decoded.
	ErrBadForward = errors.New("federation: malformed forwarded publication")
)

// Counters is a snapshot of the overlay's federation activity,
// exposed next to the router's enclave meter snapshots.
type Counters struct {
	// Peers is the number of live attested peer links.
	Peers int `json:"peers"`
	// LocalEntries counts distinct canonical subscriptions registered
	// locally (refcounted duplicates collapse into one entry).
	LocalEntries int `json:"local_entries"`
	// RemoteEntries sums the digest entries peers have announced to
	// this router — its view of reachable downstream interests.
	RemoteEntries int `json:"remote_entries"`
	// AnnouncedEntries sums the entries this router has announced
	// across its peers (after containment compaction and split
	// horizon).
	AnnouncedEntries int `json:"announced_entries"`
	// DigestUpdatesSent and DigestUpdatesReceived count incremental
	// SUB_DIGEST messages on all links.
	DigestUpdatesSent     uint64 `json:"digest_updates_sent"`
	DigestUpdatesReceived uint64 `json:"digest_updates_received"`
	// Forwarded counts publications sent to a peer (per link, so one
	// publication fanned out to two peers counts twice).
	Forwarded uint64 `json:"forwarded"`
	// Withheld counts peer links skipped because the peer's digest had
	// no subscription matching the publication.
	Withheld uint64 `json:"withheld"`
	// ForwardsDropped counts forwarded publications lost because a
	// peer link's outbound queue was full when the transport tried to
	// hand the frame over. Forwarding is fire-and-forget, so the
	// frame is not retried — the counter makes the loss observable.
	ForwardsDropped uint64 `json:"forwards_dropped"`
	// ReceivedForwards counts forwarded publications accepted for
	// local delivery (first sighting of their origin+seq).
	ReceivedForwards uint64 `json:"received_forwards"`
	// SuppressedDuplicates counts forwarded publications dropped
	// because their origin+seq was already seen (cycle suppression);
	// SuppressedTTL counts re-forwards stopped by an exhausted TTL.
	SuppressedDuplicates uint64 `json:"suppressed_duplicates"`
	SuppressedTTL        uint64 `json:"suppressed_ttl"`
}
