package simmem

// Pager is notified once per distinct page spanned by an access. The
// enclave layer implements it with EPC residency management; the plain
// layer implements soft-fault accounting. It returns the extra cycles
// the touch cost.
type Pager interface {
	Touch(page uint64, write bool) (extraCycles uint64)
}

// Residency is implemented by pagers that track a resident working
// set. ResidentBytes returns the bytes currently resident and the
// high-water mark since the pager was built — the quantity deployment
// plans are validated against (a slice whose peak approaches its EPC
// share is at the paging cliff).
type Residency interface {
	ResidentBytes() (resident, peak uint64)
}

// Meter charges simulated cycles for memory accesses and CPU work. One
// Meter corresponds to one core running the filtering engine, matching
// the paper's single-machine filter deployment.
type Meter struct {
	Cost    CostModel
	LLC     *LLC
	C       Counters
	enclave bool
	pager   Pager
}

// NewMeter builds a meter in plain (non-enclave) mode with the default
// LLC geometry.
func NewMeter(cost CostModel) *Meter {
	return &Meter{Cost: cost, LLC: NewDefaultLLC()}
}

// SetEnclave switches MEE charging on LLC misses on or off.
func (m *Meter) SetEnclave(on bool) { m.enclave = on }

// Enclave reports whether the meter charges MEE costs.
func (m *Meter) Enclave() bool { return m.enclave }

// SetPager installs the residency layer.
func (m *Meter) SetPager(p Pager) { m.pager = p }

// Residency reports the pager's resident-set size and high-water mark.
// ok is false when no pager is installed or it does not track
// residency.
func (m *Meter) Residency() (resident, peak uint64, ok bool) {
	r, isTracked := m.pager.(Residency)
	if !isTracked {
		return 0, 0, false
	}
	resident, peak = r.ResidentBytes()
	return resident, peak, true
}

// Access charges for a read or write of size bytes at addr: one LLC
// lookup per spanned cache line, DRAM cost per miss, MEE cost per miss
// in enclave mode, and a pager touch per spanned page.
func (m *Meter) Access(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	if m.pager != nil {
		first := pageOf(addr)
		last := pageOf(addr + uint64(size) - 1)
		for p := first; p <= last; p++ {
			m.C.Cycles += m.pager.Touch(p, write)
		}
	}
	lineSize := m.LLC.LineSize()
	firstLine := addr / lineSize
	lastLine := (addr + uint64(size) - 1) / lineSize
	for line := firstLine; line <= lastLine; line++ {
		if m.LLC.Touch(line * lineSize) {
			m.C.LLCHits++
			m.C.Cycles += m.Cost.LLCHitCycles
		} else {
			m.C.LLCMisses++
			m.C.Cycles += m.Cost.LLCHitCycles + m.Cost.DRAMCycles
			if m.enclave {
				m.C.Cycles += m.Cost.MEECycles
			}
		}
	}
	if write {
		m.C.BytesWritten += uint64(size)
	} else {
		m.C.BytesRead += uint64(size)
	}
}

// Charge adds raw CPU cycles (predicate evaluation, arithmetic, ...).
func (m *Meter) Charge(cycles uint64) { m.C.Cycles += cycles }

// ChargeAES charges the simulated cost of decrypting (or encrypting) an
// n-byte message: fixed setup plus the per-byte stream cost.
func (m *Meter) ChargeAES(n int) {
	m.C.Cycles += m.Cost.AESFixedCycles + uint64(m.Cost.AESByteCycles*float64(n))
	m.C.CryptoBytes += uint64(n)
}

// ChargeTransition charges one ecall round trip.
func (m *Meter) ChargeTransition() {
	m.C.Cycles += m.Cost.EnclaveTransitionCycles
	m.C.Transitions++
}
