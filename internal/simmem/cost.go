// Package simmem simulates the memory hierarchy of the paper's
// evaluation machine (Intel i7-6700 Skylake, 3.4 GHz, 8 MB LLC, SGX
// with a 128 MB EPC). The SCBR matching engine performs its real reads
// and writes through this package, which maintains a set-associative
// LLC model and a deterministic cycle counter. All figures in the
// reproduction report simulated time derived from these cycles, which
// makes the experiments machine-independent while preserving the
// paper's crossover points (the 8 MB cache boundary and the ~93 MB EPC
// boundary).
package simmem

import "time"

// CostModel holds the cycle costs of the simulated machine. The default
// values are calibrated against the figures reported in the paper; each
// constant notes its provenance.
type CostModel struct {
	// ClockHz is the simulated core frequency (i7-6700: 3.4 GHz).
	ClockHz float64

	// LLCHitCycles approximates a load served by the cache hierarchy
	// (folding L1/L2/L3 into a single average; Skylake L3 ≈ 40 cycles).
	LLCHitCycles uint64

	// DRAMCycles is the extra cost of an LLC miss served by DRAM
	// (~60 ns ≈ 200 cycles at 3.4 GHz).
	DRAMCycles uint64

	// MEECycles is the additional cost of an LLC miss inside an enclave:
	// the memory encryption engine decrypts the line and verifies the
	// integrity tree. Calibrated so that the in/out-enclave matching
	// ratio on miss-heavy databases lands near the ~1.4× the paper
	// reports at 100 k subscriptions (Fig. 5): with DRAM at 200 cycles,
	// a 130-cycle MEE surcharge bounds the miss-path ratio at 1.54 and
	// the blended ratio (hits, compute, AES) settles around 1.4.
	MEECycles uint64

	// PageFaultCycles is the cost of one EPC paging event (AEX, EWB of
	// the victim, ELD of the target, integrity-tree update; ~7 µs —
	// within the 3–40 µs range reported for SGX paging). Calibrated so
	// that registration at DB ≈ 2.3× EPC runs ≈18× slower inside the
	// enclave (Fig. 8).
	PageFaultCycles uint64

	// MinorFaultCycles is the cost of a soft page fault outside the
	// enclave (first touch of an anonymous mapping).
	MinorFaultCycles uint64

	// EnclaveTransitionCycles is the round-trip EENTER+EEXIT cost of one
	// ecall (~2 µs; Intel reports 7–14 k cycles depending on flush
	// behaviour).
	EnclaveTransitionCycles uint64

	// AESByteCycles is the per-byte cost of AES-CTR with AES-NI.
	AESByteCycles float64

	// AESFixedCycles is the fixed per-message cost of decryption,
	// Base64 decoding and deserialisation. The paper measures the whole
	// encryption overhead at <5 µs per operation; 12 k cycles ≈ 3.5 µs
	// leaves the per-byte part within that envelope.
	AESFixedCycles uint64

	// SealFixedCycles is the fixed cost of one in-enclave AES-GCM
	// seal or unseal of a page in the split-memory (user-level paging)
	// layer: key-schedule reuse, IV/tag handling and version
	// bookkeeping, without any AEX or kernel crossing. The stream part
	// is charged per byte via AESByteCycles. Distinct from
	// AESFixedCycles, which also covers Base64 and deserialisation of
	// protocol messages.
	SealFixedCycles uint64

	// SwitchlessPollCycles is the per-message cost of the in-enclave
	// worker polling the untrusted call ring (two atomic loads, a
	// bounds check, and the slot hand-off) in the switchless-call
	// configuration of §6.
	SwitchlessPollCycles uint64

	// MulAddCycles is the cost of one scalar multiply-accumulate in the
	// ASPE matcher (no SIMD in the reference implementation).
	MulAddCycles float64

	// PredicateCycles is the CPU cost of evaluating one decoded
	// predicate against an event (comparison + branch).
	PredicateCycles uint64
}

// DefaultCost returns the calibrated model for the paper's machine.
func DefaultCost() CostModel {
	return CostModel{
		ClockHz:                 3.4e9,
		LLCHitCycles:            40,
		DRAMCycles:              200,
		MEECycles:               130,
		PageFaultCycles:         25_000,
		MinorFaultCycles:        2_000,
		EnclaveTransitionCycles: 7_000,
		AESByteCycles:           1.3,
		AESFixedCycles:          12_000,
		SealFixedCycles:         1_500,
		SwitchlessPollCycles:    150,
		MulAddCycles:            3,
		PredicateCycles:         12,
	}
}

// Duration converts a cycle count into simulated wall time.
func (c CostModel) Duration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / c.ClockHz * float64(time.Second))
}

// Micros converts a cycle count into simulated microseconds.
func (c CostModel) Micros(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz * 1e6
}
