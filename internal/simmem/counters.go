package simmem

// Counters accumulates events observed by the simulator. A Counters
// value is owned by a single Meter and is not safe for concurrent use;
// experiments snapshot it between phases.
type Counters struct {
	// Cycles is the total simulated cycle count.
	Cycles uint64
	// LLCHits and LLCMisses count cache-line lookups in the LLC model.
	LLCHits   uint64
	LLCMisses uint64
	// PageFaults counts EPC paging events (enclave mode).
	PageFaults uint64
	// MinorFaults counts soft faults (plain mode first touches).
	MinorFaults uint64
	// UserFaults counts split-memory cache misses serviced at user
	// level inside the enclave (unseal of a cold page) — the §6
	// "enclaved and external parts" configuration. These replace
	// PageFaults when the split accessor is in use.
	UserFaults uint64
	// UserWritebacks counts dirty-page seals performed by the
	// split-memory layer on eviction.
	UserWritebacks uint64
	// Transitions counts enclave ecall round trips.
	Transitions uint64
	// BytesRead and BytesWritten count payload bytes moved through the
	// accessor (not cache-line traffic).
	BytesRead    uint64
	BytesWritten uint64
	// CryptoBytes counts bytes pushed through the simulated AES charge.
	CryptoBytes uint64
}

// Sub returns the delta c - prev, field by field. Snapshot a Counters
// before a phase and call Sub after it to get per-phase numbers.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Cycles:         c.Cycles - prev.Cycles,
		LLCHits:        c.LLCHits - prev.LLCHits,
		LLCMisses:      c.LLCMisses - prev.LLCMisses,
		PageFaults:     c.PageFaults - prev.PageFaults,
		MinorFaults:    c.MinorFaults - prev.MinorFaults,
		UserFaults:     c.UserFaults - prev.UserFaults,
		UserWritebacks: c.UserWritebacks - prev.UserWritebacks,
		Transitions:    c.Transitions - prev.Transitions,
		BytesRead:      c.BytesRead - prev.BytesRead,
		BytesWritten:   c.BytesWritten - prev.BytesWritten,
		CryptoBytes:    c.CryptoBytes - prev.CryptoBytes,
	}
}

// Add returns the field-by-field sum c + other. Partitioned deployments
// (one meter per matcher slice) aggregate their slices' counters into a
// fleet-wide view with it.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		Cycles:         c.Cycles + other.Cycles,
		LLCHits:        c.LLCHits + other.LLCHits,
		LLCMisses:      c.LLCMisses + other.LLCMisses,
		PageFaults:     c.PageFaults + other.PageFaults,
		MinorFaults:    c.MinorFaults + other.MinorFaults,
		UserFaults:     c.UserFaults + other.UserFaults,
		UserWritebacks: c.UserWritebacks + other.UserWritebacks,
		Transitions:    c.Transitions + other.Transitions,
		BytesRead:      c.BytesRead + other.BytesRead,
		BytesWritten:   c.BytesWritten + other.BytesWritten,
		CryptoBytes:    c.CryptoBytes + other.CryptoBytes,
	}
}

// MissRate returns LLC misses / lookups, or 0 when nothing was accessed.
func (c Counters) MissRate() float64 {
	total := c.LLCHits + c.LLCMisses
	if total == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(total)
}
