package simmem

import "fmt"

// PageSize is the simulated (and SGX) page size.
const PageSize = 4096

// Arena is a paged, byte-backed bump allocator. All SCBR subscription
// state lives in an arena so that every byte the matcher touches has a
// well-defined simulated address. Allocations of up to one page never
// cross a page boundary, which lets the EPC layer treat pages as the
// unit of residency and lets Bytes return a single contiguous view.
//
// Arenas only grow; SCBR's subscription store is append-mostly and the
// paper's registration experiment (Fig. 8) populates monotonically.
type Arena struct {
	pages [][]byte
	next  uint64 // next free offset
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Alloc reserves n bytes and returns their offset. Allocations of up to
// PageSize bytes are padded to the next page when they would straddle a
// boundary. Larger allocations are rejected: callers split their data
// into page-sized chunks (no SCBR record exceeds a page).
func (a *Arena) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("simmem: invalid allocation size %d", n)
	}
	if n > PageSize {
		return 0, fmt.Errorf("simmem: allocation of %d bytes exceeds page size %d", n, PageSize)
	}
	if pageOf(a.next) != pageOf(a.next+uint64(n)-1) {
		a.next = (pageOf(a.next) + 1) * PageSize
	}
	off := a.next
	a.next += uint64(n)
	for int(pageOf(a.next-1)) >= len(a.pages) {
		a.pages = append(a.pages, make([]byte, PageSize))
	}
	return off, nil
}

// Size returns the number of bytes allocated so far (including padding).
func (a *Arena) Size() uint64 { return a.next }

// NumPages returns the number of backing pages.
func (a *Arena) NumPages() int { return len(a.pages) }

// Page returns the backing bytes of page p. The EPC layer uses this to
// encrypt a page out and decrypt it back in place.
func (a *Arena) Page(p uint64) []byte { return a.pages[p] }

// Bytes returns a view of [off, off+n). The range must lie within one
// page (guaranteed for any range inside a single allocation).
func (a *Arena) Bytes(off uint64, n int) []byte {
	p := pageOf(off)
	base := off - p*PageSize
	if base+uint64(n) > PageSize {
		panic(fmt.Sprintf("simmem: read of %d bytes at offset %d crosses page boundary", n, off))
	}
	return a.pages[p][base : base+uint64(n)]
}

func pageOf(off uint64) uint64 { return off / PageSize }

// PageOf exposes the page index of an offset for residency layers.
func PageOf(off uint64) uint64 { return pageOf(off) }
