package simmem

// Accessor is the memory interface the matching engine is written
// against. The same engine code runs against a plain accessor (the
// paper's "outside the enclave" configuration) and an enclave accessor
// backed by the EPC model (the "inside" configuration), mirroring the
// paper's methodology of running identical filtering code in both
// environments.
type Accessor interface {
	// Alloc reserves n bytes (n ≤ PageSize) and returns their offset.
	Alloc(n int) (uint64, error)
	// Read meters a read of [off, off+n) and returns a view of the
	// bytes. The view is valid until the next Alloc/Read/Write call.
	Read(off uint64, n int) []byte
	// Write meters a write and copies b into [off, off+len(b)).
	Write(off uint64, b []byte)
	// Charge adds raw CPU cycles.
	Charge(cycles uint64)
	// Meter exposes the underlying meter for counters and cost model.
	Meter() *Meter
	// Size returns the bytes allocated so far.
	Size() uint64
}

// PlainAccessor runs the engine outside any enclave: accesses cost LLC
// lookups and DRAM misses, and first touches of new memory cost a soft
// fault per THP-sized (2 MB) region, matching Linux with transparent
// huge pages enabled — the reason the paper's outside-enclave minor
// fault counts stay small.
type PlainAccessor struct {
	arena *Arena
	meter *Meter
	thp   *thpPager
}

var (
	_ Accessor  = (*PlainAccessor)(nil)
	_ Residency = (*thpPager)(nil)
)

// THPRegionPages is the number of 4 KB pages per transparent huge page.
const THPRegionPages = 512 // 2 MB

type thpPager struct {
	cost    CostModel
	c       *Counters
	touched map[uint64]bool
}

func (t *thpPager) Touch(page uint64, _ bool) uint64 {
	region := page / THPRegionPages
	if t.touched[region] {
		return 0
	}
	t.touched[region] = true
	t.c.MinorFaults++
	return t.cost.MinorFaultCycles
}

// ResidentBytes implements Residency. Plain memory is never evicted,
// so the resident set is every THP region ever touched and the peak
// equals the current size.
func (t *thpPager) ResidentBytes() (resident, peak uint64) {
	resident = uint64(len(t.touched)) * THPRegionPages * PageSize
	return resident, resident
}

// NewPlainAccessor builds an accessor in plain mode.
func NewPlainAccessor(cost CostModel) *PlainAccessor {
	meter := NewMeter(cost)
	pager := &thpPager{cost: cost, c: &meter.C, touched: make(map[uint64]bool)}
	meter.SetPager(pager)
	return &PlainAccessor{arena: NewArena(), meter: meter, thp: pager}
}

// Alloc implements Accessor.
func (p *PlainAccessor) Alloc(n int) (uint64, error) { return p.arena.Alloc(n) }

// Read implements Accessor.
func (p *PlainAccessor) Read(off uint64, n int) []byte {
	p.meter.Access(off, n, false)
	return p.arena.Bytes(off, n)
}

// Write implements Accessor.
func (p *PlainAccessor) Write(off uint64, b []byte) {
	p.meter.Access(off, len(b), true)
	copy(p.arena.Bytes(off, len(b)), b)
}

// Charge implements Accessor.
func (p *PlainAccessor) Charge(cycles uint64) { p.meter.Charge(cycles) }

// Meter implements Accessor.
func (p *PlainAccessor) Meter() *Meter { return p.meter }

// Size implements Accessor.
func (p *PlainAccessor) Size() uint64 { return p.arena.Size() }
