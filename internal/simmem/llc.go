package simmem

// LLC is a set-associative last-level cache model with true-LRU
// replacement. The default geometry mirrors the i7-6700: 8 MB capacity,
// 64-byte lines, 16 ways. The model tracks tags only — data always
// lives in the backing arena — so a lookup is a handful of word
// comparisons.
type LLC struct {
	lineSize  uint64
	lineShift uint
	setMask   uint64
	ways      int
	// sets[s] holds up to `ways` line addresses in LRU order:
	// index 0 is most recently used.
	sets [][]uint64
}

// LLC geometry defaults (i7-6700).
const (
	DefaultLLCSize  = 8 << 20
	DefaultLineSize = 64
	DefaultLLCWays  = 16
)

// NewLLC builds a cache model. size and lineSize must be powers of two
// and size must be divisible by lineSize*ways; NewLLC panics otherwise,
// since geometry is a compile-time-style configuration error.
func NewLLC(size, lineSize uint64, ways int) *LLC {
	if size == 0 || lineSize == 0 || ways <= 0 {
		panic("simmem: invalid LLC geometry")
	}
	if size%(lineSize*uint64(ways)) != 0 {
		panic("simmem: LLC size must be a multiple of lineSize*ways")
	}
	numSets := size / lineSize / uint64(ways)
	if numSets&(numSets-1) != 0 || lineSize&(lineSize-1) != 0 {
		panic("simmem: LLC sets and line size must be powers of two")
	}
	shift := uint(0)
	for l := lineSize; l > 1; l >>= 1 {
		shift++
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, ways)
	}
	return &LLC{
		lineSize:  lineSize,
		lineShift: shift,
		setMask:   numSets - 1,
		ways:      ways,
		sets:      sets,
	}
}

// NewDefaultLLC returns the 8 MB / 64 B / 16-way model.
func NewDefaultLLC() *LLC { return NewLLC(DefaultLLCSize, DefaultLineSize, DefaultLLCWays) }

// LineSize returns the cache line size in bytes.
func (c *LLC) LineSize() uint64 { return c.lineSize }

// Touch looks up the line containing addr, updating LRU state, and
// reports whether it hit. On a miss the line is installed, evicting the
// LRU way if the set is full.
func (c *LLC) Touch(addr uint64) (hit bool) {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to front (most recently used).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
	return false
}

// Flush empties the cache (used between experiment phases).
func (c *LLC) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Lines returns how many cache lines span [addr, addr+size).
func (c *LLC) Lines(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	return int(last - first + 1)
}
