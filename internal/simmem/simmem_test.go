package simmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestArenaAllocDoesNotCrossPages(t *testing.T) {
	a := NewArena()
	var offs []uint64
	sizes := []int{100, 4000, 96, 4096, 1, 4095, 64}
	for _, n := range sizes {
		off, err := a.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if PageOf(off) != PageOf(off+uint64(n)-1) {
			t.Fatalf("allocation of %d bytes at %d crosses a page", n, off)
		}
		offs = append(offs, off)
	}
	// Offsets are strictly increasing and distinct.
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not increasing: %v", offs)
		}
	}
}

func TestArenaRejectsBadSizes(t *testing.T) {
	a := NewArena()
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) succeeded")
	}
	if _, err := a.Alloc(PageSize + 1); err == nil {
		t.Fatal("Alloc(PageSize+1) succeeded")
	}
}

func TestArenaBytesRoundTrip(t *testing.T) {
	a := NewArena()
	off, err := a.Alloc(300)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 300)
	copy(a.Bytes(off, 300), want)
	if !bytes.Equal(a.Bytes(off, 300), want) {
		t.Fatal("arena bytes round trip failed")
	}
}

func TestLLCSmallWorkingSetHits(t *testing.T) {
	llc := NewDefaultLLC()
	// 1 MB working set fits in an 8 MB cache: after a warmup pass,
	// everything hits.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		llc.Touch(addr)
	}
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		if !llc.Touch(addr) {
			t.Fatalf("miss at %d with resident working set", addr)
		}
	}
}

func TestLLCLargeWorkingSetMisses(t *testing.T) {
	llc := NewDefaultLLC()
	// A 64 MB sequential scan with LRU replacement misses on every
	// revisit: the set is 8× the cache.
	for pass := 0; pass < 2; pass++ {
		misses := 0
		for addr := uint64(0); addr < 64<<20; addr += 64 {
			if !llc.Touch(addr) {
				misses++
			}
		}
		if misses != (64<<20)/64 {
			t.Fatalf("pass %d: misses = %d, want all %d", pass, misses, (64<<20)/64)
		}
	}
}

func TestLLCAssociativity(t *testing.T) {
	llc := NewLLC(64*16*4, 64, 16) // 4 sets, 16 ways
	// 16 lines mapping to the same set all fit.
	stride := uint64(64 * 4)
	for i := uint64(0); i < 16; i++ {
		llc.Touch(i * stride)
	}
	for i := uint64(0); i < 16; i++ {
		if !llc.Touch(i * stride) {
			t.Fatalf("line %d evicted from non-full set", i)
		}
	}
	// The 17th conflicts and evicts the LRU line (line 0).
	llc.Touch(16 * stride)
	if llc.Touch(0) {
		t.Fatal("LRU line survived a conflict miss")
	}
}

func TestLLCFlush(t *testing.T) {
	llc := NewDefaultLLC()
	llc.Touch(0)
	llc.Flush()
	if llc.Touch(0) {
		t.Fatal("hit after flush")
	}
}

func TestLLCGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewLLC(0, 64, 16) },
		func() { NewLLC(8<<20, 0, 16) },
		func() { NewLLC(8<<20, 64, 0) },
		func() { NewLLC(100, 64, 16) },
		func() { NewLLC(63*16*4, 63, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestMeterChargesDRAMAndMEE(t *testing.T) {
	cost := DefaultCost()
	m := NewMeter(cost)
	m.Access(0, 64, false)
	wantMiss := cost.LLCHitCycles + cost.DRAMCycles
	if m.C.Cycles != wantMiss {
		t.Fatalf("plain miss cycles = %d, want %d", m.C.Cycles, wantMiss)
	}
	m.Access(0, 64, false)
	if m.C.Cycles != wantMiss+cost.LLCHitCycles {
		t.Fatalf("hit cycles = %d, want %d", m.C.Cycles, wantMiss+cost.LLCHitCycles)
	}

	e := NewMeter(cost)
	e.SetEnclave(true)
	e.Access(0, 64, false)
	wantEnclaveMiss := cost.LLCHitCycles + cost.DRAMCycles + cost.MEECycles
	if e.C.Cycles != wantEnclaveMiss {
		t.Fatalf("enclave miss cycles = %d, want %d", e.C.Cycles, wantEnclaveMiss)
	}
}

func TestMeterSpansLinesAndPages(t *testing.T) {
	m := NewMeter(DefaultCost())
	// 130 bytes starting at line boundary → 3 lines.
	m.Access(0, 130, false)
	if m.C.LLCHits+m.C.LLCMisses != 3 {
		t.Fatalf("lookups = %d, want 3", m.C.LLCHits+m.C.LLCMisses)
	}
	if m.C.BytesRead != 130 {
		t.Fatalf("BytesRead = %d, want 130", m.C.BytesRead)
	}
	// Zero-size accesses are free.
	before := m.C
	m.Access(0, 0, false)
	if m.C != before {
		t.Fatal("zero-size access charged")
	}
}

func TestPlainAccessorMinorFaults(t *testing.T) {
	p := NewPlainAccessor(DefaultCost())
	// Touch 4 MB: two 2 MB THP regions → exactly 2 minor faults.
	for i := 0; i < 1024; i++ {
		off, err := p.Alloc(PageSize)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(off, make([]byte, PageSize))
	}
	if p.Meter().C.MinorFaults != 2 {
		t.Fatalf("MinorFaults = %d, want 2", p.Meter().C.MinorFaults)
	}
}

func TestPlainAccessorReadWrite(t *testing.T) {
	p := NewPlainAccessor(DefaultCost())
	off, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 128)
	p.Write(off, data)
	if !bytes.Equal(p.Read(off, 128), data) {
		t.Fatal("accessor read/write mismatch")
	}
	if p.Size() == 0 {
		t.Fatal("Size() = 0 after allocation")
	}
}

func TestCountersSubAndMissRate(t *testing.T) {
	a := Counters{Cycles: 100, LLCHits: 30, LLCMisses: 10}
	b := Counters{Cycles: 250, LLCHits: 90, LLCMisses: 30}
	d := b.Sub(a)
	if d.Cycles != 150 || d.LLCHits != 60 || d.LLCMisses != 20 {
		t.Fatalf("Sub = %+v", d)
	}
	if got := d.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %f, want 0.25", got)
	}
	if (Counters{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestCostModelConversions(t *testing.T) {
	c := DefaultCost()
	if got := c.Micros(3_400_000); got < 999 || got > 1001 {
		t.Fatalf("3.4M cycles = %f µs, want ~1000", got)
	}
	if c.Duration(3400).Microseconds() != 1 {
		t.Fatalf("Duration(3400) = %v, want 1µs", c.Duration(3400))
	}
}

func TestArenaAllocQuick(t *testing.T) {
	a := NewArena()
	f := func(raw uint16) bool {
		n := int(raw%PageSize) + 1
		off, err := a.Alloc(n)
		if err != nil {
			return false
		}
		return PageOf(off) == PageOf(off+uint64(n)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
