// Package placement is the router's movable placement map — the
// control-plane layer that turns the static hash-to-slice assignment
// of the partitioned data plane into something that can be resized
// online. The subscription key space is divided into a fixed number of
// virtual shards (the unit of migration); rendezvous hashing
// (highest-random-weight) assigns every shard to one enclave matcher
// slice. Growing or shrinking the slice set re-runs the rendezvous
// election, and the minimality property of HRW means only the shards
// whose winner changed move: growing k→k′ relocates ~(k′−k)/k′ of the
// shards, shrinking relocates exactly the evicted slices' shards.
//
// The map itself is passive bookkeeping; the broker's migration engine
// drives it through the Plan → Begin → Commit protocol:
//
//   - Plan(k′) diffs the committed table against the rendezvous
//     election over k′ slices and returns the moves;
//   - Begin(moves) diverts the moving shards — new registrations
//     resolve to the destination slice while the existing entries are
//     still being copied over;
//   - Commit(moves) flips the committed table and bumps the epoch.
//
// Lookups (SliceOf) observe the divert first, so a shard's placement
// changes exactly once per move, atomically, at Begin. Everything is
// internally locked; reads take the shared lock only.
package placement

import (
	"fmt"
	"sync"
)

// MaxShards bounds the virtual shard count: the shard index is packed
// into the top byte of a hub subscription ID.
const MaxShards = 256

// DefaultShards is the shard count a router uses unless configured.
// 64 shards over at most 64 slices keeps per-shard granularity at
// ≥1/64 of the key space while leaving the top-byte ID packing of the
// pre-placement hub intact.
const DefaultShards = 64

// defaultSeed seeds the rendezvous election when the caller passes 0,
// so unconfigured deployments still place deterministically.
const defaultSeed = 0x5cb2a9e1d4f30b77

// Move relocates one shard between slices.
type Move struct {
	Shard int
	From  int
	To    int
}

// Snapshot is the observable placement state — the shard→slice table,
// the epoch, and the migration counters — exposed on the router's
// /metrics endpoint and returned by Repartition.
type Snapshot struct {
	// Epoch counts committed placement changes; it bumps once per
	// committed move group and once per completed resize.
	Epoch uint64 `json:"epoch"`
	// Shards is the fixed virtual shard count.
	Shards int `json:"shards"`
	// Slices is the current slice count shards are assigned across.
	Slices int `json:"slices"`
	// Table maps shard → slice (the committed assignment).
	Table []int `json:"table"`
	// Moving counts shards currently diverted mid-migration.
	Moving int `json:"moving,omitempty"`
	// Migrations counts completed Repartition runs.
	Migrations uint64 `json:"migrations"`
	// ShardsMoved and SubsMoved total the shards and subscriptions
	// relocated across all migrations.
	ShardsMoved uint64 `json:"shards_moved"`
	SubsMoved   uint64 `json:"subs_moved"`
	// LastPauseNanos is the cumulative data-plane pause (flush-barrier
	// hold time) of the most recent migration — the availability cost
	// of the resize, as opposed to its wall-clock duration.
	LastPauseNanos int64 `json:"last_pause_nanos"`
}

// Map is a movable shard→slice placement map.
type Map struct {
	mu     sync.RWMutex
	shards int
	seed   uint64
	slices int
	table  []int
	divert map[int]int // shard → destination, set between Begin and Commit

	epoch          uint64
	migrations     uint64
	shardsMoved    uint64
	subsMoved      uint64
	lastPauseNanos int64
}

// New builds a map of the given shard count placed across slices by
// the seeded rendezvous election. A zero seed selects the fixed
// default, so placement is deterministic unless explicitly varied.
func New(shards, slices int, seed int64) (*Map, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("placement: shard count %d out of range [1,%d]", shards, MaxShards)
	}
	if slices < 1 || slices > shards {
		return nil, fmt.Errorf("placement: slice count %d out of range [1,%d shards]", slices, shards)
	}
	m := &Map{
		shards: shards,
		seed:   mixSeed(seed),
		slices: slices,
		table:  make([]int, shards),
		divert: make(map[int]int),
	}
	for s := 0; s < shards; s++ {
		m.table[s] = m.owner(s, slices)
	}
	return m, nil
}

func mixSeed(seed int64) uint64 {
	if seed == 0 {
		return defaultSeed
	}
	return splitmix(uint64(seed))
}

// splitmix is the splitmix64 finalizer — enough avalanche for an
// election weight; this is placement, not cryptography.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// weight is shard's election weight for one slice.
func (m *Map) weight(shard, slice int) uint64 {
	return splitmix(m.seed ^ uint64(shard)*0x9e3779b97f4a7c15 ^ uint64(slice)*0xd6e8feb86659fd93)
}

// owner runs the rendezvous election for one shard over the first
// `slices` slices: the highest weight wins, lowest index breaking ties.
func (m *Map) owner(shard, slices int) int {
	best, bestW := 0, m.weight(shard, 0)
	for s := 1; s < slices; s++ {
		if w := m.weight(shard, s); w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// Shards returns the fixed virtual shard count.
func (m *Map) Shards() int { return m.shards }

// Slices returns the current slice count.
func (m *Map) Slices() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.slices
}

// Epoch returns the committed placement epoch.
func (m *Map) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// SliceOf resolves one shard's current slice: the migration divert if
// the shard is mid-move (registrations land on the destination while
// existing entries are copied), the committed table otherwise.
func (m *Map) SliceOf(shard int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if to, moving := m.divert[shard]; moving {
		return to
	}
	return m.table[shard]
}

// Plan diffs the committed table against the rendezvous election over
// newSlices and returns the moves a resize to newSlices requires, in
// deterministic (From, To, Shard) order. HRW minimality keeps the set
// small: only shards whose elected winner changes appear.
func (m *Map) Plan(newSlices int) ([]Move, error) {
	if newSlices < 1 || newSlices > m.shards {
		return nil, fmt.Errorf("placement: slice count %d out of range [1,%d shards]", newSlices, m.shards)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var moves []Move
	for shard := 0; shard < m.shards; shard++ {
		want := m.owner(shard, newSlices)
		if cur := m.table[shard]; cur != want {
			moves = append(moves, Move{Shard: shard, From: cur, To: want})
		}
	}
	sortMoves(moves)
	return moves, nil
}

func sortMoves(moves []Move) {
	// Insertion sort: move sets are small (≤ MaxShards) and this keeps
	// the package dependency-free.
	for i := 1; i < len(moves); i++ {
		for j := i; j > 0 && lessMove(moves[j], moves[j-1]); j-- {
			moves[j], moves[j-1] = moves[j-1], moves[j]
		}
	}
}

func lessMove(a, b Move) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Shard < b.Shard
}

// Begin diverts the moving shards to their destinations: from here on,
// SliceOf resolves them to Move.To while the committed table still
// names Move.From (the two-copy migration window).
func (m *Map) Begin(moves []Move) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mv := range moves {
		m.divert[mv.Shard] = mv.To
	}
}

// Commit flips the committed table for the moved shards, clears their
// diverts, and bumps the epoch.
func (m *Map) Commit(moves []Move) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mv := range moves {
		m.table[mv.Shard] = mv.To
		delete(m.divert, mv.Shard)
	}
	m.shardsMoved += uint64(len(moves))
	m.epoch++
}

// Abort clears the diverts of moves that will not be committed (a
// resize cancelled before a group's copy started). Only safe before
// any entry has been imported under the divert.
func (m *Map) Abort(moves []Move) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mv := range moves {
		delete(m.divert, mv.Shard)
	}
}

// SetSlices records the new slice count after a resize's slices have
// been added (grow) or are about to be removed (shrink, once every
// shard has moved off them) and bumps the epoch.
func (m *Map) SetSlices(n int) error {
	if n < 1 || n > m.shards {
		return fmt.Errorf("placement: slice count %d out of range [1,%d shards]", n, m.shards)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for shard, slice := range m.table {
		if slice >= n {
			return fmt.Errorf("placement: shard %d still assigned to slice %d, cannot shrink to %d", shard, slice, n)
		}
	}
	m.slices = n
	m.epoch++
	return nil
}

// FinishMigration records one completed Repartition run: the
// subscriptions relocated and the cumulative data-plane pause.
func (m *Map) FinishMigration(subsMoved uint64, pauseNanos int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.migrations++
	m.subsMoved += subsMoved
	m.lastPauseNanos = pauseNanos
}

// Install replaces the committed table — the seal/restore path. The
// table length must equal the shard count and every entry must name a
// slice below slices.
func (m *Map) Install(table []int, slices int) error {
	if len(table) != m.shards {
		return fmt.Errorf("placement: sealed table covers %d shards, map has %d", len(table), m.shards)
	}
	if slices < 1 || slices > m.shards {
		return fmt.Errorf("placement: slice count %d out of range [1,%d shards]", slices, m.shards)
	}
	for shard, slice := range table {
		if slice < 0 || slice >= slices {
			return fmt.Errorf("placement: sealed table assigns shard %d to slice %d of %d", shard, slice, slices)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.table, table)
	m.slices = slices
	m.epoch++
	return nil
}

// Snapshot returns the observable placement state.
func (m *Map) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Snapshot{
		Epoch:          m.epoch,
		Shards:         m.shards,
		Slices:         m.slices,
		Table:          append([]int(nil), m.table...),
		Moving:         len(m.divert),
		Migrations:     m.migrations,
		ShardsMoved:    m.shardsMoved,
		SubsMoved:      m.subsMoved,
		LastPauseNanos: m.lastPauseNanos,
	}
}
