package placement

import (
	"encoding/json"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		shards, slices int
		ok             bool
	}{
		{0, 1, false},
		{1, 1, true},
		{MaxShards, 1, true},
		{MaxShards + 1, 1, false},
		{8, 0, false},
		{8, 8, true},
		{8, 9, false},
		{64, 4, true},
	}
	for _, c := range cases {
		_, err := New(c.shards, c.slices, 0)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d): err=%v, want ok=%v", c.shards, c.slices, err, c.ok)
		}
	}
}

func TestDeterministicAndCovering(t *testing.T) {
	a, err := New(64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(64, 4, 7)
	seen := make(map[int]int)
	for s := 0; s < a.Shards(); s++ {
		if a.SliceOf(s) != b.SliceOf(s) {
			t.Fatalf("shard %d: same seed placed differently", s)
		}
		if sl := a.SliceOf(s); sl < 0 || sl >= 4 {
			t.Fatalf("shard %d assigned out-of-range slice %d", s, sl)
		}
		seen[a.SliceOf(s)]++
	}
	// Rendezvous over 64 shards should touch every one of 4 slices.
	for sl := 0; sl < 4; sl++ {
		if seen[sl] == 0 {
			t.Errorf("slice %d received no shards: distribution %v", sl, seen)
		}
	}
	c, _ := New(64, 4, 8)
	diff := 0
	for s := 0; s < 64; s++ {
		if a.SliceOf(s) != c.SliceOf(s) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical placement")
	}
}

// TestPlanMinimality checks the HRW property the migration engine
// relies on: growing only moves shards onto the new slices, shrinking
// only moves shards off the removed ones.
func TestPlanMinimality(t *testing.T) {
	m, err := New(128, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	grow, err := m.Plan(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(grow) == 0 {
		t.Fatal("grow plan moved nothing")
	}
	for _, mv := range grow {
		if mv.To < 3 || mv.To >= 5 {
			t.Errorf("grow move %+v targets an old slice", mv)
		}
		if mv.From < 0 || mv.From >= 3 {
			t.Errorf("grow move %+v sourced from out-of-range slice", mv)
		}
	}
	m.Begin(grow)
	m.Commit(grow)
	if err := m.SetSlices(5); err != nil {
		t.Fatal(err)
	}

	shrink, err := m.Plan(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range shrink {
		if mv.From < 2 {
			t.Errorf("shrink move %+v sourced from a surviving slice", mv)
		}
		if mv.To >= 2 {
			t.Errorf("shrink move %+v targets a removed slice", mv)
		}
	}
	// Every shard on slices 2..4 must be planned off them.
	planned := make(map[int]bool)
	for _, mv := range shrink {
		planned[mv.Shard] = true
	}
	for s := 0; s < 128; s++ {
		if m.SliceOf(s) >= 2 && !planned[s] {
			t.Errorf("shard %d on slice %d not planned off for shrink to 2", s, m.SliceOf(s))
		}
	}
	m.Begin(shrink)
	m.Commit(shrink)
	if err := m.SetSlices(2); err != nil {
		t.Fatal(err)
	}
	// Shrinking back to the original 2-of-N election must equal a fresh
	// map: placement is history-free.
	fresh, _ := New(128, 2, 0)
	for s := 0; s < 128; s++ {
		if m.SliceOf(s) != fresh.SliceOf(s) {
			t.Fatalf("shard %d: post-shrink slice %d != fresh slice %d", s, m.SliceOf(s), fresh.SliceOf(s))
		}
	}
}

func TestPlanIdentityIsEmpty(t *testing.T) {
	m, _ := New(64, 4, 0)
	moves, err := m.Plan(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("plan to the current slice count produced %d moves", len(moves))
	}
}

func TestBeginDivertsCommitFlips(t *testing.T) {
	m, _ := New(16, 2, 0)
	moves, err := m.Plan(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	epoch0 := m.Epoch()
	m.Begin(moves)
	for _, mv := range moves {
		if got := m.SliceOf(mv.Shard); got != mv.To {
			t.Errorf("shard %d after Begin: SliceOf=%d, want divert target %d", mv.Shard, got, mv.To)
		}
	}
	if snap := m.Snapshot(); snap.Moving != len(moves) {
		t.Errorf("Moving=%d, want %d", snap.Moving, len(moves))
	}
	// The committed table must still name the source until Commit.
	if snap := m.Snapshot(); snap.Table[moves[0].Shard] != moves[0].From {
		t.Errorf("table flipped before Commit")
	}
	m.Commit(moves)
	snap := m.Snapshot()
	if snap.Moving != 0 {
		t.Errorf("Moving=%d after Commit, want 0", snap.Moving)
	}
	if snap.Table[moves[0].Shard] != moves[0].To {
		t.Errorf("table not flipped by Commit")
	}
	if snap.Epoch <= epoch0 {
		t.Errorf("epoch did not advance across Commit")
	}
	if snap.ShardsMoved != uint64(len(moves)) {
		t.Errorf("ShardsMoved=%d, want %d", snap.ShardsMoved, len(moves))
	}
}

func TestAbortClearsDivert(t *testing.T) {
	m, _ := New(16, 2, 0)
	moves, _ := m.Plan(3)
	m.Begin(moves)
	m.Abort(moves)
	for _, mv := range moves {
		if got := m.SliceOf(mv.Shard); got != mv.From {
			t.Errorf("shard %d after Abort: SliceOf=%d, want %d", mv.Shard, got, mv.From)
		}
	}
}

func TestSetSlicesRejectsOccupied(t *testing.T) {
	m, _ := New(64, 4, 0)
	if err := m.SetSlices(2); err == nil {
		t.Fatal("SetSlices(2) succeeded with shards still on slices 2..3")
	}
	if err := m.SetSlices(6); err != nil {
		t.Fatalf("grow SetSlices(6): %v", err)
	}
	if m.Slices() != 6 {
		t.Fatalf("Slices()=%d, want 6", m.Slices())
	}
}

func TestInstall(t *testing.T) {
	m, _ := New(8, 2, 0)
	table := []int{0, 1, 2, 0, 1, 2, 0, 1}
	if err := m.Install(table, 3); err != nil {
		t.Fatal(err)
	}
	for s, want := range table {
		if got := m.SliceOf(s); got != want {
			t.Errorf("shard %d: SliceOf=%d, want %d", s, got, want)
		}
	}
	if err := m.Install([]int{0}, 1); err == nil {
		t.Error("short table accepted")
	}
	if err := m.Install(table, 2); err == nil {
		t.Error("table referencing slice 2 accepted with slices=2")
	}
	if err := m.Install([]int{0, 0, 0, 0, 0, 0, 0, -1}, 2); err == nil {
		t.Error("negative slice accepted")
	}
}

func TestSnapshotJSONAndCounters(t *testing.T) {
	m, _ := New(8, 2, 0)
	m.FinishMigration(42, 1234)
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"epoch", "shards", "slices", "table", "migrations", "shards_moved", "subs_moved", "last_pause_nanos"} {
		if _, ok := got[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, raw)
		}
	}
	snap := m.Snapshot()
	if snap.Migrations != 1 || snap.SubsMoved != 42 || snap.LastPauseNanos != 1234 {
		t.Errorf("counters not recorded: %+v", snap)
	}
	// Snapshot table must be a copy, not an alias.
	snap.Table[0] = 99
	if m.SliceOf(0) == 99 {
		t.Error("snapshot table aliases internal state")
	}
}
