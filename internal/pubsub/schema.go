package pubsub

import (
	"fmt"
	"sort"
	"sync"
)

// AttrID is an interned attribute identifier. The engine stores
// constraints by ID rather than by name so subscription records stay
// compact inside the limited enclave memory — the paper's key sizing
// concern (≈437 bytes per stored subscription).
type AttrID uint16

// Schema interns attribute names. One Schema belongs to one routing
// engine; the wire protocol always carries names, and the engine
// interns them at its boundary. Safe for concurrent use.
type Schema struct {
	mu    sync.RWMutex
	ids   map[string]AttrID
	names []string
}

// MaxAttrs bounds the number of distinct attribute names a schema can
// intern (AttrID is 16 bits).
const MaxAttrs = 1 << 16

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{ids: make(map[string]AttrID)}
}

// Intern returns the ID for name, assigning the next free ID on first
// sight. It fails only when the 16-bit ID space is exhausted.
func (s *Schema) Intern(name string) (AttrID, error) {
	s.mu.RLock()
	id, ok := s.ids[name]
	s.mu.RUnlock()
	if ok {
		return id, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id, nil
	}
	if len(s.names) >= MaxAttrs {
		return 0, fmt.Errorf("pubsub: schema full (%d attributes)", MaxAttrs)
	}
	id = AttrID(len(s.names))
	s.ids[name] = id
	s.names = append(s.names, name)
	return id, nil
}

// Lookup returns the ID for name without interning.
func (s *Schema) Lookup(name string) (AttrID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the attribute name for id.
func (s *Schema) Name(id AttrID) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.names) {
		return "", false
	}
	return s.names[id], true
}

// Len returns the number of interned attributes.
func (s *Schema) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Names returns all interned names sorted alphabetically (for
// diagnostics).
func (s *Schema) Names() []string {
	s.mu.RLock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}
