package pubsub

import "testing"

// Fuzz targets harden the decoders that face attacker-controlled bytes:
// the event/subscription codecs sit behind decryption inside the
// enclave, but a compromised publisher key or a malicious admitted
// client must not be able to crash the router with crafted bodies.

func FuzzDecodeEventSpec(f *testing.F) {
	valid, err := EncodeEventSpec(EventSpec{Attrs: []NamedValue{
		{Name: "symbol", Value: Str("HAL")},
		{Name: "price", Value: Float(49.5)},
		{Name: "volume", Value: Int(12)},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, err := DecodeEventSpec(raw)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode.
		if _, err := EncodeEventSpec(spec); err != nil {
			t.Fatalf("decoded spec does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeSubscriptionSpec(f *testing.F) {
	valid, err := EncodeSubscriptionSpec(SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
		{Attr: "price", Op: OpBetween, Value: Float(1), Hi: Float(2)},
		{Attr: "name", Op: OpPrefix, Value: Str("HA")},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, err := DecodeSubscriptionSpec(raw)
		if err != nil {
			return
		}
		// Normalising arbitrary decoded specs must never panic.
		_, _ = Normalize(NewSchema(), spec)
	})
}

func FuzzDecodeConstraints(f *testing.F) {
	schema := NewSchema()
	sub, err := Normalize(schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "a", Op: OpBetween, Value: Float(1), Hi: Float(5)},
		{Attr: "b", Op: OpEq, Value: Str("x")},
	}})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := AppendConstraints(nil, sub.Constraints)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		cs, n, err := DecodeConstraints(raw)
		if err != nil {
			return
		}
		if n > len(raw) {
			t.Fatalf("consumed %d of %d bytes", n, len(raw))
		}
		// Decoded constraints must round-trip.
		enc, err := AppendConstraints(nil, cs)
		if err != nil {
			t.Fatalf("decoded constraints do not re-encode: %v", err)
		}
		cs2, _, err := DecodeConstraints(enc)
		if err != nil {
			t.Fatalf("re-encoded constraints do not decode: %v", err)
		}
		if len(cs2) != len(cs) {
			t.Fatalf("round trip changed arity: %d vs %d", len(cs2), len(cs))
		}
	})
}

func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		`symbol = "HAL", price < 50`,
		`price in [10..50] && volume >= 1000`,
		`symbol prefix HA`,
		`a=1,b=2,c=3`,
		`x in [`,
		`= = =`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			return
		}
		// Parsed specs must survive encoding and normalisation attempts.
		if _, err := EncodeSubscriptionSpec(spec); err != nil {
			// Over-long attribute names are a legitimate encode error.
			return
		}
		_, _ = Normalize(NewSchema(), spec)
	})
}
