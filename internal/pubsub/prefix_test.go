package pubsub

import (
	"math/rand"
	"testing"
)

func prefixSub(t *testing.T, schema *Schema, preds ...Predicate) *Subscription {
	t.Helper()
	sub, err := Normalize(schema, SubscriptionSpec{Predicates: preds})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestPrefixMatching(t *testing.T) {
	schema := NewSchema()
	sub := prefixSub(t, schema, Predicate{Attr: "symbol", Op: OpPrefix, Value: Str("HA")})
	cases := []struct {
		value string
		want  bool
	}{
		{"HAL", true},
		{"HA", true},
		{"HAS", true},
		{"H", false},
		{"IBM", false},
		{"", false},
	}
	for _, tc := range cases {
		ev, err := NewEvent(schema, map[string]Value{"symbol": Str(tc.value)})
		if err != nil {
			t.Fatal(err)
		}
		if got := sub.Matches(ev); got != tc.want {
			t.Errorf("prefix HA vs %q = %v, want %v", tc.value, got, tc.want)
		}
	}
	// Numeric values never satisfy string prefixes.
	ev, err := NewEvent(schema, map[string]Value{"symbol": Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matches(ev) {
		t.Error("numeric value satisfied a prefix constraint")
	}
}

func TestPrefixCovering(t *testing.T) {
	schema := NewSchema()
	pHA := prefixSub(t, schema, Predicate{Attr: "s", Op: OpPrefix, Value: Str("HA")})
	pHAL := prefixSub(t, schema, Predicate{Attr: "s", Op: OpPrefix, Value: Str("HAL")})
	eqHAL9000 := prefixSub(t, schema, Predicate{Attr: "s", Op: OpEq, Value: Str("HAL9000")})
	eqIBM := prefixSub(t, schema, Predicate{Attr: "s", Op: OpEq, Value: Str("IBM")})

	if !pHA.Covers(pHAL) || pHAL.Covers(pHA) {
		t.Error("prefix/prefix covering wrong")
	}
	if !pHA.Covers(eqHAL9000) || !pHAL.Covers(eqHAL9000) {
		t.Error("prefix must cover extending equalities")
	}
	if pHA.Covers(eqIBM) {
		t.Error("prefix covered non-extending equality")
	}
	if eqHAL9000.Covers(pHAL) {
		t.Error("equality covered an infinite prefix set")
	}
	if !pHA.Covers(pHA) {
		t.Error("prefix covering not reflexive")
	}
}

func TestPrefixIntersection(t *testing.T) {
	schema := NewSchema()
	// prefix ∧ longer prefix → longer prefix.
	sub := prefixSub(t, schema,
		Predicate{Attr: "s", Op: OpPrefix, Value: Str("HA")},
		Predicate{Attr: "s", Op: OpPrefix, Value: Str("HAL")})
	if len(sub.Constraints) != 1 || !sub.Constraints[0].Prefix || sub.Constraints[0].EqS != "HAL" {
		t.Fatalf("prefix∧prefix = %+v", sub.Constraints)
	}
	// prefix ∧ extending equality → equality.
	sub = prefixSub(t, schema,
		Predicate{Attr: "s", Op: OpPrefix, Value: Str("HA")},
		Predicate{Attr: "s", Op: OpEq, Value: Str("HAL")})
	if sub.Constraints[0].Prefix || sub.Constraints[0].EqS != "HAL" {
		t.Fatalf("prefix∧eq = %+v", sub.Constraints)
	}
	// Contradictions.
	for _, preds := range [][]Predicate{
		{{Attr: "s", Op: OpPrefix, Value: Str("HA")}, {Attr: "s", Op: OpEq, Value: Str("IBM")}},
		{{Attr: "s", Op: OpPrefix, Value: Str("HA")}, {Attr: "s", Op: OpPrefix, Value: Str("IB")}},
		{{Attr: "s", Op: OpPrefix, Value: Str("HA")}, {Attr: "s", Op: OpGt, Value: Float(1)}},
		{{Attr: "s", Op: OpPrefix, Value: Float(1)}},
	} {
		if _, err := Normalize(schema, SubscriptionSpec{Predicates: preds}); err == nil {
			t.Errorf("contradictory/invalid prefix spec accepted: %v", preds)
		}
	}
}

func TestPrefixCoveringSoundness(t *testing.T) {
	// Random prefix/equality pairs: covering implies match implication.
	schema := NewSchema()
	rng := rand.New(rand.NewSource(9))
	alphabet := []string{"", "H", "HA", "HAL", "HAL9", "I", "IB", "IBM"}
	randSub := func() *Subscription {
		v := alphabet[1+rng.Intn(len(alphabet)-1)]
		op := OpPrefix
		if rng.Intn(2) == 0 {
			op = OpEq
		}
		return prefixSub(t, schema, Predicate{Attr: "s", Op: op, Value: Str(v)})
	}
	covered := 0
	for i := 0; i < 5000; i++ {
		a, b := randSub(), randSub()
		if !a.Covers(b) {
			continue
		}
		covered++
		for _, v := range alphabet {
			ev, err := NewEvent(schema, map[string]Value{"s": Str(v)})
			if err != nil {
				t.Fatal(err)
			}
			if b.Matches(ev) && !a.Matches(ev) {
				t.Fatalf("prefix covering unsound: a=%+v b=%+v v=%q", a.Constraints, b.Constraints, v)
			}
		}
	}
	if covered < 100 {
		t.Fatalf("only %d covered pairs; test too weak", covered)
	}
}

func TestPrefixCodecRoundTrip(t *testing.T) {
	schema := NewSchema()
	sub := prefixSub(t, schema,
		Predicate{Attr: "symbol", Op: OpPrefix, Value: Str("HA")},
		Predicate{Attr: "price", Op: OpLt, Value: Float(50)})
	raw, err := AppendConstraints(nil, sub.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := DecodeConstraints(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !(&Subscription{Constraints: cs}).Equal(sub) {
		t.Fatalf("prefix codec round trip: %+v vs %+v", cs, sub.Constraints)
	}
	// Wire spec codec too.
	spec := SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpPrefix, Value: Str("HA")},
	}}
	wireRaw, err := EncodeSubscriptionSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscriptionSpec(wireRaw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predicates[0].Op != OpPrefix || got.Predicates[0].Value.S != "HA" {
		t.Fatalf("wire round trip = %+v", got.Predicates[0])
	}
}

func TestParsePrefix(t *testing.T) {
	spec, err := ParseSpec(`symbol prefix HA, price < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Predicates[0].Op != OpPrefix || spec.Predicates[0].Value.S != "HA" {
		t.Fatalf("parsed = %+v", spec.Predicates[0])
	}
	if _, err := ParseSpec(`symbol prefix 42`); err == nil {
		t.Fatal("numeric prefix operand accepted")
	}
}
