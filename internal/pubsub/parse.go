package pubsub

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a human-readable subscription expression into a
// SubscriptionSpec. The grammar mirrors the paper's examples
// ('symbol = "HAL" ∧ price < 50'):
//
//	expr      := predicate { ("," | "&&" | "and") predicate }
//	predicate := attr op value | attr "in" "[" value "," value "]"
//	op        := "=" | "<" | "<=" | ">" | ">="
//	value     := number | string (optionally "quoted")
//
// Examples:
//
//	symbol = HAL, price < 50
//	price in [10, 50] && volume >= 1000
func ParseSpec(input string) (SubscriptionSpec, error) {
	var spec SubscriptionSpec
	normalised := strings.NewReplacer("&&", ",", " and ", ",", " AND ", ",", "∧", ",").Replace(input)
	for _, part := range strings.Split(normalised, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// "in [a, b]" ranges contain a comma that the split above broke;
		// re-join by detecting a dangling '['.
		if open := strings.Count(part, "["); open > strings.Count(part, "]") {
			return spec, fmt.Errorf("pubsub: unterminated range in %q (write 'attr in [lo..hi]' or 'attr in [lo;hi]')", input)
		}
		pred, err := parsePredicate(part)
		if err != nil {
			return spec, err
		}
		spec.Predicates = append(spec.Predicates, pred)
	}
	if len(spec.Predicates) == 0 {
		return spec, ErrEmptySubscription
	}
	return spec, nil
}

// indexFold finds token in s with ASCII case folding, returning a byte
// offset valid in s itself. strings.ToLower would be wrong here: it
// re-encodes invalid UTF-8 and changes byte offsets.
func indexFold(s, token string) int {
	n := len(token)
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], token) {
			return i
		}
	}
	return -1
}

func parsePredicate(s string) (Predicate, error) {
	// Prefix form: attr prefix value.
	if idx := indexFold(s, " prefix "); idx > 0 {
		attr := strings.TrimSpace(s[:idx])
		val, err := parseValue(strings.TrimSpace(s[idx+8:]), OpEq)
		if err != nil {
			return Predicate{}, err
		}
		if val.Kind != KindString {
			return Predicate{}, fmt.Errorf("pubsub: prefix operand for %q must be a string", attr)
		}
		return Predicate{Attr: attr, Op: OpPrefix, Value: val}, nil
	}
	// Range form: attr in [lo..hi] (also accepts ';' as separator).
	if idx := indexFold(s, " in "); idx > 0 {
		attr := strings.TrimSpace(s[:idx])
		rest := strings.TrimSpace(s[idx+4:])
		if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
			return Predicate{}, fmt.Errorf("pubsub: range for %q must be like [lo..hi]", attr)
		}
		body := rest[1 : len(rest)-1]
		var loStr, hiStr string
		switch {
		case strings.Contains(body, ".."):
			parts := strings.SplitN(body, "..", 2)
			loStr, hiStr = parts[0], parts[1]
		case strings.Contains(body, ";"):
			parts := strings.SplitN(body, ";", 2)
			loStr, hiStr = parts[0], parts[1]
		default:
			return Predicate{}, fmt.Errorf("pubsub: range bounds for %q must be separated by '..' or ';'", attr)
		}
		lo, err := parseNumber(loStr)
		if err != nil {
			return Predicate{}, fmt.Errorf("pubsub: range low bound: %w", err)
		}
		hi, err := parseNumber(hiStr)
		if err != nil {
			return Predicate{}, fmt.Errorf("pubsub: range high bound: %w", err)
		}
		return Predicate{Attr: attr, Op: OpBetween, Value: lo, Hi: hi}, nil
	}

	for _, cand := range []struct {
		token string
		op    Op
	}{
		{"<=", OpLe}, {">=", OpGe}, {"<", OpLt}, {">", OpGt}, {"=", OpEq},
	} {
		idx := strings.Index(s, cand.token)
		if idx <= 0 {
			continue
		}
		attr := strings.TrimSpace(s[:idx])
		valStr := strings.TrimSpace(s[idx+len(cand.token):])
		if attr == "" || valStr == "" {
			return Predicate{}, fmt.Errorf("pubsub: malformed predicate %q", s)
		}
		val, err := parseValue(valStr, cand.op)
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Attr: attr, Op: cand.op, Value: val}, nil
	}
	return Predicate{}, fmt.Errorf("pubsub: no operator in predicate %q", s)
}

func parseValue(s string, op Op) (Value, error) {
	if strings.HasPrefix(s, `"`) {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("pubsub: bad quoted string %s: %w", s, err)
		}
		return Str(unq), nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(v), nil
	}
	if op != OpEq {
		return Value{}, fmt.Errorf("pubsub: %q needs a numeric value for %s", s, op)
	}
	return Str(s), nil
}

func parseNumber(s string) (Value, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return Value{}, fmt.Errorf("pubsub: %q is not a number", s)
	}
	return Float(v), nil
}
