// Package pubsub defines the data model of the SCBR content-based
// router: typed attribute values, events (publication headers),
// subscription predicates, their normalised constraint form, and the
// containment ("covering") relation the matching engine is built on.
//
// Messages in the paper carry a header of 8–11 attributes with
// associated values; subscriptions are conjunctions of equality and
// range predicates over those attributes (§3.2).
package pubsub

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates attribute value types.
type ValueKind uint8

// Supported kinds. Numeric kinds (Int, Float) share a comparison
// domain; strings support equality only, as in the paper's stock-quote
// workloads (symbol equality plus numeric ranges).
const (
	KindInt ValueKind = iota + 1
	KindFloat
	KindString
)

func (k ValueKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is one attribute value. The zero Value is invalid.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// String returns a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Numeric reports whether the value participates in range comparisons.
func (v Value) Numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value as float64. Int values up to 2⁵³
// convert exactly, which comfortably covers quote volumes and prices.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// Valid reports whether the value has a known kind.
func (v Value) Valid() bool {
	return v.Kind == KindInt || v.Kind == KindFloat || v.Kind == KindString
}

// Equal reports deep equality (kind-sensitive: Int(1) ≠ Float(1)).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	default:
		return false
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return fmt.Sprintf("invalid(%d)", v.Kind)
	}
}
